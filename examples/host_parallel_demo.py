#!/usr/bin/env python3
"""Host-parallel COMPASS (the paper's §1 SMP-host argument, Table 3).

Runs the same 4-frontend scan twice: inline (everything in one host
process) and with frontends as real OS processes streaming events to the
backend over pipes — then verifies the simulated results are bit-identical
and reports the wall-clock difference (meaningful only on a multi-core
host; this also prints the host's core count).

Run:  python examples/host_parallel_demo.py
"""

import os
import time

from repro import Engine, complex_backend
from repro.host import ParallelEngine, WorkerSpec
from repro.isa import Interpreter, Machine, assemble
from repro.isa.memory import DataMemory

PROG = """
    li r1, 0
    li r2, 120000
    li r10, 0x100000
    li r6, 0
loop:
    loadx r3, r10, r1, 4
    mul r4, r3, r3
    add r6, r6, r4
    xor r6, r6, r3
    addi r1, r1, 64
    blt r1, r2, loop
    li r3, 0
    halt
"""
N = 4


def run_inline():
    eng = Engine(complex_backend(num_cpus=N))
    for i in range(N):
        dm = DataMemory()
        dm.map_segment(0x100000, 1 << 22)
        eng.spawn_interpreter(f"w{i}",
                              Interpreter(assemble(PROG, f"w{i}"),
                                          Machine(dm)))
    t0 = time.perf_counter()
    stats = eng.run()
    return stats.end_cycle, eng.events_processed, time.perf_counter() - t0


def run_parallel():
    eng = ParallelEngine(complex_backend(num_cpus=N))
    with eng:
        for i in range(N):
            eng.spawn_worker(WorkerSpec(f"w{i}", PROG))
        t0 = time.perf_counter()
        stats = eng.run()
        wall = time.perf_counter() - t0
    return stats.end_cycle, eng.events_processed, wall


def main() -> None:
    cores = len(os.sched_getaffinity(0))
    print(f"host cores available: {cores}")
    ci, ei, ti = run_inline()
    cp, ep, tp = run_parallel()
    print(f"inline:        {ei} events, {ci} simulated cycles, "
          f"{ti:.2f}s wall")
    print(f"host-parallel: {ep} events, {cp} simulated cycles, "
          f"{tp:.2f}s wall (frontends as OS processes)")
    assert (ci, ei) == (cp, ep), "modes must agree bit-for-bit"
    print("simulated results identical across modes ✓")
    if cores > 1:
        print(f"wall-clock ratio inline/parallel: {ti / tp:.2f}x")
    else:
        print("single-core host: no physical parallelism to exploit; see "
              "benchmarks/bench_table3_slowdown_smp.py for the modeled "
              "Table 3 numbers")


if __name__ == "__main__":
    main()
