#!/usr/bin/env python3
"""TPC-C-like OLTP on minidb.

Four DB2-style agents run a NewOrder/Payment mix through the shared buffer
pool with row locks and WAL commits; the resulting profile shows the
paper's TPCC signature: ~80 % user time once the engine's user-space work
is included, kernel time dominated by kreadv/kwritev, interrupts from the
disk and the interval timer.

Run:  python examples/oltp_tpcc.py
"""

from repro import Engine, complex_backend
from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
from repro.harness import profile_row, render_table, top_oscall_table


def main() -> None:
    eng = Engine(complex_backend(num_cpus=4))
    cat = tpcc_catalog(warehouses=1, scale=0.01)
    db = MiniDb(eng, cat, pool_frames=48)
    db.setup()
    print(f"database: {cat.total_bytes() >> 10} KiB across "
          f"{len(cat.tables)} tables")

    drv = TpccDriver(db, nagents=4, tx_per_agent=8, think_cycles=15_000)
    drv.spawn_agents(eng)
    stats = eng.run()

    print(f"committed {drv.committed} transactions "
          f"({drv.neworders} NewOrder, {drv.payments} Payment) in "
          f"{eng.cfg.clock.cycles_to_s(stats.end_cycle) * 1e3:.1f} ms "
          f"simulated")
    print(f"buffer pool hit rate {db.pool.hit_rate():.2f}, "
          f"WAL commits {db.wal.commits}, disk requests {eng.disk.requests}")

    row = profile_row("TPCC/minidb", stats)
    print(render_table(
        ("benchmark", "user", "OS", "interrupt", "kernel"),
        [row.as_tuple()], title="\nTable-1-style profile:"))
    print("\nsignificant OS calls (% of kernel time):")
    for name, pct, cnt in top_oscall_table(stats, 6):
        print(f"  {name:10s} {pct:5.1f}%  ({cnt} calls)")
    print("\ninterrupt sources (cycles):", dict(stats.interrupt_cycles))


if __name__ == "__main__":
    main()
