#!/usr/bin/env python3
"""SPECWeb96-style web serving (the paper's §4.2).

Generates the class-structured file set, records a request trace, then
replays it with the trace player against a pre-fork server on a 4-way SMP.
The profile reproduces Table 1's headline: the web server spends ~85 % of
its CPU in the OS, split between the TCP/IP syscalls and the
ethernet/disk interrupt handlers.

Run:  python examples/webserver_specweb.py
"""

import tempfile

from repro import Engine, complex_backend
from repro.apps.webserver import (TracePlayer, generate_fileset, make_trace,
                                  prefork_web_server)
from repro.harness import profile_row, top_oscall_table
from repro.traces import load_trace, save_trace


def main() -> None:
    eng = Engine(complex_backend(num_cpus=4, coherence="mesi", num_nodes=1))
    fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.25)
    print(f"file set: {len(fset.paths)} files, "
          f"{fset.total_bytes >> 10} KiB total")

    # record the intermediate trace file, then play it back (§4.2)
    trace = make_trace(fset, nrequests=25, seed=3)
    with tempfile.NamedTemporaryFile("w", suffix=".trace",
                                     delete=False) as f:
        trace_path = f.name
    save_trace(trace, trace_path)
    trace = load_trace(trace_path)
    print(f"request trace: {len(trace)} GETs -> {trace_path}")

    workers, wstats = prefork_web_server(eng, nworkers=3)
    player = TracePlayer(eng, trace, fset, nclients=4,
                         nworkers_to_quit=len(workers))
    player.start()
    stats = eng.run()

    print(f"\nserved {wstats.get('served', 0)} requests "
          f"({wstats.get('bytes', 0) >> 10} KiB of file data); "
          f"{player.completed} responses completed")
    print(f"mean response time "
          f"{eng.cfg.clock.cycles_to_s(int(player.mean_response_cycles())) * 1e3:.2f} ms "
          f"simulated")

    row = profile_row("SPECWeb/compass-httpd", stats)
    print(f"\nuser {row.user_pct:.1f}%  OS {row.os_pct:.1f}%  "
          f"(interrupt {row.interrupt_pct:.1f}%, kernel {row.kernel_pct:.1f}%)"
          f"   [paper: 14.9 / 85.1 / 37.8 / 47.3]")
    print("top OS calls (% of kernel time):")
    for name, pct, cnt in top_oscall_table(stats, 8):
        print(f"  {name:10s} {pct:5.1f}%  ({cnt} calls)")


if __name__ == "__main__":
    main()
