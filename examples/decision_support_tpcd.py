#!/usr/bin/env python3
"""TPC-D-like decision support on minidb (the paper's §4.1 / §5 workload).

Runs the Q1-like scan-aggregate on a scaled lineitem table with four
database agents on a 4-way CC-NUMA machine, comparing the kreadv and mmap
I/O strategies, and checks the simulated answer against the native one.

Run:  python examples/decision_support_tpcd.py
"""

from repro import Engine, complex_backend
from repro.apps.minidb import (MiniDb, TpcdDriver, q1_scan_raw,
                               tpcd_catalog)
from repro.harness import profile_row, top_oscall_table


def run(io: str) -> None:
    eng = Engine(complex_backend(num_cpus=4))
    cat = tpcd_catalog(scale=0.0003)
    db = MiniDb(eng, cat, pool_frames=64)
    db.setup()
    print(f"\n=== Q1 scan, io={io!r}, lineitem = "
          f"{cat.tables['lineitem'].nbytes >> 10} KiB ===")
    drv = TpcdDriver(db, nagents=4, io=io)
    drv.spawn_q1(eng)
    stats = eng.run()

    raw = q1_scan_raw(eng.os_server.fs, cat)
    assert drv.result == raw, "simulated result diverged from native"
    for flag in sorted(raw):
        q, p, n = raw[flag]
        print(f"  flag {flag.decode()}: qty={q} price={p} rows={n}")

    row = profile_row(f"TPCD-Q1/{io}", stats)
    print(f"  user {row.user_pct:.1f}%  OS {row.os_pct:.1f}% "
          f"(interrupt {row.interrupt_pct:.1f}%, kernel {row.kernel_pct:.1f}%)")
    print(f"  simulated {stats.end_cycle} cycles, pool hit rate "
          f"{db.pool.hit_rate():.2f}, disk requests {eng.disk.requests}")
    print("  top OS calls:",
          ", ".join(f"{n} {p:.0f}%" for n, p, _c in
                    top_oscall_table(stats, 4)))


def main() -> None:
    run("read")
    run("mmap")


if __name__ == "__main__":
    main()
