#!/usr/bin/env python3
"""Process-scheduler study (the paper's §3.3.2 design space).

Runs the same oversubscribed OLTP workload (6 agents on 4 CPUs) under the
three schedulers the paper implements — FCFS, affinity, and pre-emptive —
and reports completion time, affinity hits and cache behaviour.

Run:  python examples/scheduler_study.py
"""

from repro import Engine, complex_backend, with_os
from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
from repro.harness import render_table


def run(policy: str, preemptive: bool):
    cfg = with_os(complex_backend(num_cpus=4),
                  scheduler=policy, preemptive=preemptive,
                  quantum=2_000_000)
    eng = Engine(cfg)
    cat = tpcc_catalog(warehouses=1, scale=0.008)
    db = MiniDb(eng, cat, pool_frames=48)
    db.setup()
    drv = TpccDriver(db, nagents=6, tx_per_agent=5, seed=5,
                     think_cycles=10_000)
    drv.spawn_agents(eng)
    stats = eng.run()
    l1_misses = sum(c.misses for c in eng.memsys.l1s)
    l1_refs = sum(c.accesses for c in eng.memsys.l1s)
    label = policy + ("+preempt" if preemptive else "")
    return (label, stats.end_cycle, eng.procsched.dispatch_count,
            eng.procsched.affinity_hits, eng.procsched.preemptions,
            f"{l1_misses / max(1, l1_refs):.4f}")


def main() -> None:
    rows = [
        run("fcfs", False),
        run("affinity", False),
        run("fcfs", True),
        run("affinity", True),
    ]
    print(render_table(
        ("scheduler", "cycles", "dispatches", "affinity hits",
         "preemptions", "L1 miss rate"),
        rows, title="6 OLTP agents on 4 CPUs:"))


if __name__ == "__main__":
    main()
