#!/usr/bin/env python3
"""Quickstart: two processes on a 2-way simulated SMP.

Shows the three frontend idioms — compute/load/store macros, OS calls, and
synchronisation — plus the live structure of the simulator (the paper's
Figure 1/2: frontends, OS threads, event ports, backend models).

Run:  python examples/quickstart.py
"""

from repro import Engine, complex_backend


def app(proc):
    """One frontend process: touch memory, call the OS, synchronise."""
    proc.compute(500)                       # 500 cycles of pure computation
    for i in range(8):
        yield from proc.store(0x10_000 + 64 * i)
    lat = yield from proc.load(0x10_000)
    print(f"    [{proc.process.name}] first load latency: {lat} cycles")

    r = yield from proc.call("open", "/tmp/hello", 0x100)   # O_CREAT
    fd = r.value
    yield from proc.call("kwritev", fd, 0x20_000, 4096, b"hi" * 2048)
    yield from proc.call("close", fd)

    yield from proc.lock(1)
    proc.compute(200)
    yield from proc.unlock(1)
    yield from proc.barrier(9, 2)
    yield from proc.exit(0)


def main() -> None:
    eng = Engine(complex_backend(num_cpus=2))
    p0 = eng.spawn("proc-a", app)
    p1 = eng.spawn("proc-b", app)

    print("simulated machine (Figure 1 structure):")
    print(f"  CPUs: {eng.cfg.num_cpus}, backend: {eng.cfg.backend.detail} "
          f"({eng.cfg.backend.coherence} coherence, "
          f"{eng.cfg.backend.memory.num_nodes} node(s))")
    print(f"  frontends: {[p.name for p in (p0, p1)]}")
    print(f"  OS threads paired: "
          f"{[(t.tid, t.state) for t in eng.os_server.threads]}")
    print(f"  devices: disk={eng.disk.name}, nic={eng.nic.name}, "
          f"timer interval={eng.timer.interval} cycles")
    print("running...")

    stats = eng.run()

    print(f"\ndone at cycle {stats.end_cycle} "
          f"({eng.cfg.clock.cycles_to_s(stats.end_cycle) * 1e3:.2f} ms "
          f"simulated), {eng.events_processed} events")
    b = stats.total_cpu().breakdown()
    print(f"CPU time: user {b['user']:.1%}, kernel {b['kernel']:.1%}, "
          f"interrupt {b['interrupt']:.1%}")
    print(f"exit status: {p0.exit_status}, {p1.exit_status}")
    caches = eng.memsys.cache_summary()
    print(f"L1 hits/misses: {caches['l1']}")


if __name__ == "__main__":
    main()
