#!/usr/bin/env python3
"""NUMA page-placement study (the paper's §3.3.1 policies).

A SPLASH-style ocean stencil on a 4-node CC-NUMA machine under the three
placement policies — round-robin, block, first-touch — showing how home-node
assignment changes remote-access counts and execution time.

Run:  python examples/numa_page_placement.py
"""

from dataclasses import replace

from repro import Engine, complex_backend
from repro.apps.splash import spawn_kernel
from repro.harness import render_table


def run(placement: str):
    cfg = complex_backend(num_cpus=4, num_nodes=4)
    cfg = replace(cfg, backend=replace(
        cfg.backend, memory=replace(cfg.backend.memory,
                                    placement=placement))).validate()
    eng = Engine(cfg)
    procs = spawn_kernel(eng, "ocean", 4, n=48, iters=2)
    stats = eng.run()
    assert all(p.exit_status == 0 for p in procs)
    pc = eng.memsys.protocol.counters
    local = pc.get("local_read", 0)
    remote = pc.get("remote_read_2hop", 0) + pc.get("remote_dirty", 0) \
        + pc.get("remote_dirty_3hop", 0)
    return (placement, stats.end_cycle, local, remote,
            pc.get("invalidation", 0))


def main() -> None:
    rows = [run(p) for p in ("round_robin", "block", "first_touch")]
    print(render_table(
        ("placement", "cycles", "local reads", "remote reads",
         "invalidations"),
        rows, title="ocean 48x48, 4 workers, 4 NUMA nodes:"))


if __name__ == "__main__":
    main()
