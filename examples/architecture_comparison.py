#!/usr/bin/env python3
"""Target-architecture comparison (the paper's §5 use case).

"COMPASS is currently being used at IBM to study the interaction of three
commercial applications ... with a variety of shared memory architectures
such as CCNUMA, COMA and software DSM multiprocessors."

Runs the same two kernels — a cross-partition ocean stencil (fine-grained
sharing) and a private scan (no sharing) — on all four backends and prints
the comparison an architecture study would start from.

Run:  python examples/architecture_comparison.py
"""

from repro import Engine, complex_backend
from repro.apps.splash import spawn_kernel
from repro.harness import render_table


def private_scan(index):
    base = 0x0100_0000 + index * 0x0100_0000

    def app(proc):
        for rep in range(2):
            yield from proc.touch(base, 48 * 1024, write=(rep == 1),
                                  stride=64, work_per_line=6)
            yield from proc.barrier(77, 4)
        yield from proc.exit(0)
    return app


def run(coherence, workload):
    eng = Engine(complex_backend(num_cpus=4, coherence=coherence))
    if workload == "stencil":
        spawn_kernel(eng, "ocean", 4, n=48, iters=2)
    else:
        for i in range(4):
            eng.spawn(f"scan{i}", private_scan(i))
    stats = eng.run()
    return stats.end_cycle


def main() -> None:
    protocols = ("mesi", "directory", "coma", "dsm")
    rows = []
    for p in protocols:
        sten = run(p, "stencil")
        priv = run(p, "private")
        rows.append((p, sten, priv))
    base = rows[1]
    print(render_table(
        ("architecture", "stencil cycles", "vs CC-NUMA",
         "private cycles", "vs CC-NUMA"),
        [(p, s, f"{s / base[1]:.2f}x", v, f"{v / base[2]:.2f}x")
         for p, s, v in rows],
        title="4 CPUs, ocean 48x48 (sharing) vs private scans (no sharing):"))
    print("\nreading: software DSM collapses under fine-grained sharing "
          "(page ping-pong) but matches hardware coherence on private "
          "data; COMA trades an attraction-memory lookup for migration "
          "locality; the bus SMP wins small configurations.")


if __name__ == "__main__":
    main()
