#!/usr/bin/env python
"""Fault-injection smoke gate: chaos must stay deterministic.

Runs the OLTP and webserver workloads twice under the same seeded
``FaultPlan`` and fails on *any* divergence between the two runs — the
acceptance bar for the fault subsystem is that a faulty run is exactly as
reproducible as a clean one. Also checks the off-switch (``faults=None``
vs an empty plan must be bit-identical) and that the smoke plan actually
exercises at least three distinct fault sites.

Usage::

    python benchmarks/bench_faults.py --smoke    # CI gate, exit 1 on fail
    pytest benchmarks/bench_faults.py            # same checks as a test
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Engine, FaultPlan, complex_backend          # noqa: E402
from repro.core.frontend import SimProcess                    # noqa: E402

SAMPLE_PLAN = REPO_ROOT / "examples" / "faultplan.sample.json"


def _fingerprint(eng, stats):
    return (
        stats.end_cycle,
        eng.events_processed,
        tuple((c.user, c.kernel, c.interrupt, c.idle, c.ctx_switch)
              for c in stats.cpu),
        tuple(sorted(stats.syscall_cycles.items())),
        tuple(sorted(stats.syscall_counts.items())),
    )


def run_oltp(plan, **cfg_kw):
    from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=2, faults=plan, **cfg_kw))
    db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16, seed=3)
    db.setup()
    drv = TpccDriver(db, nagents=4, tx_per_agent=4, seed=3,
                     think_cycles=5_000, user_work=20_000)
    drv.spawn_agents(eng)
    stats = eng.run()
    assert drv.committed == 16
    return _fingerprint(eng, stats), dict(eng.faults.stats.fired)


def run_web(plan):
    from repro.apps.webserver import (TracePlayer, generate_fileset,
                                      make_trace, prefork_web_server)
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=4, coherence="mesi", num_nodes=1,
                                 faults=plan))
    fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.1)
    trace = make_trace(fset, nrequests=12, seed=3)
    prefork_web_server(eng, nworkers=2)
    player = TracePlayer(eng, trace, fset, nclients=2, nworkers_to_quit=2)
    player.start()
    stats = eng.run()
    assert player.completed == 12
    return _fingerprint(eng, stats), dict(eng.faults.stats.fired)


WORKLOADS = {"oltp": run_oltp, "webserver": run_web}


def smoke() -> dict:
    plan = FaultPlan.from_file(str(SAMPLE_PLAN))
    report = {"plan": str(SAMPLE_PLAN), "seed": plan.seed,
              "workloads": {}, "failures": []}
    all_fired: dict = {}
    for name, run in sorted(WORKLOADS.items()):
        fp1, fired1 = run(plan)
        fp2, fired2 = run(plan)
        ok = fp1 == fp2 and fired1 == fired2
        if not ok:
            report["failures"].append(
                f"{name}: two same-seed faulty runs diverged "
                f"(fired {fired1} vs {fired2})")
        off_fp, off_fired = run(None)
        empty_fp, empty_fired = run(FaultPlan())
        if off_fp != empty_fp or off_fired or empty_fired:
            report["failures"].append(
                f"{name}: faults=None and an empty FaultPlan differ")
        report["workloads"][name] = {
            "deterministic": ok,
            "end_cycle": fp1[0],
            "end_cycle_clean": off_fp[0],
            "fired": dict(sorted(fired1.items())),
        }
        for site, n in fired1.items():
            all_fired[site] = all_fired.get(site, 0) + n
    # lookahead x faults cross-check: the conservative windows (on by
    # default) must not move fault draws or outcomes relative to the
    # strict scheduler
    la_fp, la_fired = run_oltp(plan, lookahead=True)
    strict_fp, strict_fired = run_oltp(plan, lookahead=False)
    report["lookahead_identical"] = (la_fp == strict_fp
                                     and la_fired == strict_fired)
    if not report["lookahead_identical"]:
        report["failures"].append(
            "oltp: lookahead on/off diverged under the fault plan "
            f"(fired {la_fired} vs {strict_fired})")
    report["fired_total"] = dict(sorted(all_fired.items()))
    report["distinct_sites"] = len(all_fired)
    if len(all_fired) < 3:
        report["failures"].append(
            f"smoke plan exercised only {len(all_fired)} distinct fault "
            f"sites ({sorted(all_fired)}), need >= 3")
    return report


def _write_report(report) -> None:
    out = REPO_ROOT / "BENCH_faults.json"
    out.write_text(json.dumps(report, indent=2) + "\n")


def test_fault_smoke():
    # write the artifact before asserting so run_all.py's summary sees the
    # smoke results even on failure (the pytest path used to leave
    # BENCH_faults.json untouched — i.e. empty/stale)
    report = smoke()
    _write_report(report)
    assert not report["failures"], report["failures"]
    assert report["distinct_sites"] >= 3


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="run the CI determinism gate")
    ap.parse_args(argv)

    report = smoke()
    _write_report(report)
    print(json.dumps(report, indent=2))
    if report["failures"]:
        print("FAULT SMOKE FAILED:", file=sys.stderr)
        for f in report["failures"]:
            print(" -", f, file=sys.stderr)
        return 1
    print(f"fault smoke ok: {report['distinct_sites']} distinct sites "
          f"fired, all runs deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
