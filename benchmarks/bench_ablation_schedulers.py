"""Ablation A1 — Process-scheduler policies (paper §3.3.2).

The paper implements FCFS (default), affinity (optimized) and a pre-emptive
variant composable with either. On an oversubscribed OLTP workload the
affinity scheduler should re-use warm caches (higher affinity-hit counts,
lower L1 miss rate); pre-emption should rotate CPU-bound work.
"""

import pytest

from repro import Engine, complex_backend, with_os
from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
from repro.harness import render_table


def run_policy(policy, preemptive, quantum=1_000_000):
    cfg = with_os(complex_backend(num_cpus=4), scheduler=policy,
                  preemptive=preemptive, quantum=quantum)
    eng = Engine(cfg)
    db = MiniDb(eng, tpcc_catalog(1, 0.008), pool_frames=32)
    db.setup()
    drv = TpccDriver(db, nagents=6, tx_per_agent=4, seed=5,
                     think_cycles=5_000, user_work=60_000)
    drv.spawn_agents(eng)
    stats = eng.run()
    l1_m = sum(c.misses for c in eng.memsys.l1s)
    l1_a = sum(c.accesses for c in eng.memsys.l1s)
    return {
        "label": policy + ("+preempt" if preemptive else ""),
        "cycles": stats.end_cycle,
        "dispatches": eng.procsched.dispatch_count,
        "affinity_hits": eng.procsched.affinity_hits,
        "preemptions": eng.procsched.preemptions,
        "l1_miss": l1_m / max(1, l1_a),
    }


def test_ablation_schedulers(benchmark):
    def experiment():
        return [run_policy("fcfs", False),
                run_policy("affinity", False),
                run_policy("affinity", True, quantum=300_000)]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(render_table(
        ("scheduler", "cycles", "dispatches", "affinity hits",
         "preemptions", "L1 miss rate"),
        [(r["label"], r["cycles"], r["dispatches"], r["affinity_hits"],
          r["preemptions"], f"{r['l1_miss']:.4f}") for r in rows],
        title="\nA1 — scheduler policies (6 agents / 4 CPUs):"))

    fcfs, aff, _pre = rows
    benchmark.extra_info.update(
        fcfs_miss=fcfs["l1_miss"], affinity_miss=aff["l1_miss"])
    assert fcfs["affinity_hits"] == 0
    assert aff["affinity_hits"] > 0, "affinity scheduler must land hits"
    assert aff["l1_miss"] <= fcfs["l1_miss"] * 1.02, \
        "warm-cache placement should not hurt the miss rate"


def run_cpu_bound(quantum):
    """CPU-bound oversubscription (6 spinners on 2 CPUs): the workload
    where the pre-emption interval actually bites — OLTP agents block so
    often they rarely hold a CPU through a quantum."""
    cfg = with_os(complex_backend(num_cpus=2), preemptive=True,
                  quantum=quantum)
    eng = Engine(cfg)

    def spinner(proc):
        for _ in range(30):
            proc.compute(150_000)
            yield from proc.advance()
        yield from proc.exit(0)

    for i in range(6):
        eng.spawn(f"spin{i}", spinner)
    eng.run()
    return eng.procsched.preemptions


def test_ablation_preemption_quantum(benchmark):
    """Smaller quanta mean more preemptions (the paper's changeable
    pre-emption interval)."""
    def experiment():
        return run_cpu_bound(5_000_000), run_cpu_bound(400_000)

    coarse, fine = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nA1b — preemption interval (6 spinners / 2 CPUs): "
          f"quantum 5M -> {coarse} preemptions, quantum 400K -> {fine}")
    assert fine > coarse
    assert fine > 0
