"""Ablation A5 — Interleaving granularity (the §2 novel technique).

COMPASS interleaves frontends at basic-block granularity by always serving
the smallest execution-time event — fine-grained and cheap. The alternative
the paper rejects (context-switching per instruction) is too slow; a
*coarser* quantum would be faster but wrong. This bench quantifies the
accuracy side: it compares exact min-time interleaving against a relaxed
engine that lets each frontend run a whole quantum of events ahead before
rotating, on a lock-contended workload where ordering matters.
"""

import pytest

from repro import Engine, complex_backend
from repro.harness import render_table


def contended_app(n_iters):
    def app(proc):
        for i in range(n_iters):
            yield from proc.lock(1)
            proc.compute(400)
            yield from proc.load(0x50_000)
            yield from proc.store(0x50_000)
            yield from proc.unlock(1)
            proc.compute(1500 + 137 * (proc.process.pid % 3))
            yield from proc.advance()
        yield from proc.exit(0)
    return app


class RelaxedEngine(Engine):
    """Ablation engine: instead of the global min, serve the *current*
    frontend for up to ``quantum`` events before re-selecting. This is the
    cheap-but-coarse alternative the paper's design avoids."""

    def __init__(self, cfg, quantum):
        super().__init__(cfg)
        self._quantum = quantum
        self._streak = 0
        self._last = None

    def run(self, until=None, max_events=None):
        select = self.comm.select

        def sticky_select():
            if (self._last is not None
                    and self._last.port_event is not None
                    and self._streak < self._quantum):
                self._streak += 1
                return self._last
            cand = select()
            self._last = cand
            self._streak = 0
            return cand

        self.comm.select = sticky_select
        try:
            return super().run(until=until, max_events=max_events)
        finally:
            self.comm.select = select


def run_engine(engine_cls, quantum=None, iters=40):
    # this ablation studies per-event selection order, so the batched
    # fast path (which serves runs of references per selection) is off
    cfg = complex_backend(num_cpus=4, fastpath=False)
    eng = (engine_cls(cfg) if quantum is None
           else engine_cls(cfg, quantum))
    for i in range(4):
        eng.spawn(f"w{i}", contended_app(iters))
    stats = eng.run()
    return stats.end_cycle, stats.get("lock_contention")


def test_ablation_interleave_granularity(benchmark):
    def experiment():
        exact = run_engine(Engine)
        out = {"exact (per-event min-time)": exact}
        for q in (8, 64):
            out[f"relaxed quantum={q}"] = run_engine(RelaxedEngine, q)
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    exact_cycles, exact_cont = res["exact (per-event min-time)"]
    rows = []
    for label, (cycles, cont) in res.items():
        err = abs(cycles - exact_cycles) / exact_cycles * 100
        rows.append((label, cycles, cont, f"{err:.1f}%"))
    print(render_table(
        ("interleaving", "cycles", "lock contention", "timing error"),
        rows, title="\nA5 — interleaving granularity vs accuracy:"))

    worst = max(abs(c - exact_cycles) / exact_cycles
                for c, _ in res.values())
    benchmark.extra_info.update(worst_relative_error=worst)
    # the relaxed engines observe *different* contention interleavings —
    # that drift is exactly the inaccuracy conservative ordering prevents
    others = [v for k, v in res.items() if not k.startswith("exact")]
    assert any(v != (exact_cycles, exact_cont) for v in others), \
        "coarser interleaving should perturb a contended execution"
