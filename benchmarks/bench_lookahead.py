"""Lookahead-window speedup — conservative windows on the backend hot loop.

The lookahead scheduler (``SimConfig.lookahead``) lets the batched hot
loop drain invisible references past the strict rival horizon, and lets
``ParallelEngine`` workers pre-time fast-path stretches under a lease.
Both are bit-identical to the strict path (tests/test_lookahead_equivalence).
This bench measures what they buy on the configuration they target: a
4-CPU run where every CPU streams over a *private*, L1-resident buffer —
all references qualify as invisible, so the strict path's tiny alternating
batch windows are pure scheduling overhead.

Writes ``BENCH_lookahead.json`` at the repo root with wall-clock seconds,
events/second, the on/off speedup, and a ``worker_batch`` sweep for the
parallel engine; asserts the windows are at least 2x faster than the
strict interleaving (1.3x under ``COMPASS_BENCH_QUICK=1``, where fixed
setup costs dominate).

Also runs standalone for CI::

    python benchmarks/bench_lookahead.py --smoke

Smoke mode does a single small round, hard-fails if lookahead on/off are
not bit-identical, and does not overwrite the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Engine, complex_backend                     # noqa: E402
from repro.core.frontend import SimProcess                    # noqa: E402
from repro.harness import render_table                        # noqa: E402

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))
NCPUS = 4
NBYTES = 8192           # per-CPU buffer: L1-resident, so warm passes stay hits
PASSES = 40 if QUICK else 150
MIN_SPEEDUP = 1.3 if QUICK else 2.0
SWEEP_BATCHES = (16, 64, 256)
OUT_PATH = REPO_ROOT / "BENCH_lookahead.json"

#: worker program for the parallel sweep: re-scans a private 8 KiB buffer
HOT_PROG = """
    li r7, 0
    li r8, {passes}
    li r10, 0x100000
pass:
    li r1, 0
    li r2, 8192
loop:
    loadx r3, r10, r1, 4
    storex r3, r10, r1, 4
    addi r1, r1, 32
    blt r1, r2, loop
    addi r7, r7, 1
    blt r7, r8, pass
    li r3, 0
    halt
"""


def _run_once(lookahead, passes=PASSES):
    """One 4-CPU private-heavy run; returns (host seconds, engine, stats)."""
    SimProcess._next_pid[0] = 1
    # speculate=False: this bench isolates the *conservative* lookahead
    # layer; the optimistic layer (on by default) would shadow both arms
    # — it is measured against this one in bench_speculation.py
    eng = Engine(complex_backend(num_cpus=NCPUS, coherence="mesi",
                                 num_nodes=1, lookahead=lookahead,
                                 speculate=False))

    def make_app(base):
        def app(p):
            yield from p.touch(base, NBYTES, write=True, stride=32)
            for _ in range(passes):
                yield from p.touch(base, NBYTES, write=True, stride=32)
            yield from p.exit(0)
        return app

    for c in range(NCPUS):
        eng.spawn(f"w{c}", make_app(0x1_0000 + c * 0x10_000))
    t0 = time.perf_counter()
    stats = eng.run()
    return time.perf_counter() - t0, eng, stats


def _fingerprint(eng, stats):
    return (stats.end_cycle, eng.events_processed,
            tuple(sorted(eng.memsys.cache_summary()["l1"].items())),
            dict(eng.memsys.cache_summary()["protocol"]))


def _measure(rounds, passes=PASSES):
    """Interleaved best-of-N for each arm so a host hiccup in either arm
    cannot fake (or hide) the speedup. Returns (best_on, best_off)."""
    best = {}
    for _ in range(rounds):
        for la in (True, False):
            secs, eng, stats = _run_once(la, passes)
            prev = best.get(la)
            if prev is None or secs < prev[0]:
                best[la] = (secs, eng, stats)
    return best[True], best[False]


def _sweep_worker_batch(passes):
    """ParallelEngine throughput across worker_batch sizes (leases on).

    The sweep is host-side only — simulated results must not move — so the
    end cycle doubles as a correctness check across the knob values.
    """
    from repro.host import ParallelEngine, WorkerSpec
    # staggered pass counts: the short worker finishes early, leaving the
    # long one running solo — the steady state where leases engage (two
    # lockstep workers keep each other's windows below the grant minimum)
    progs = [HOT_PROG.format(passes=passes),
             HOT_PROG.format(passes=max(1, passes // 4))]
    rows = []
    end_cycles = set()
    for wb in SWEEP_BATCHES:
        SimProcess._next_pid[0] = 1
        eng = ParallelEngine(complex_backend(num_cpus=2, worker_lease=4,
                                             worker_batch=wb,
                                             speculate=False))
        with eng:
            for i, prog in enumerate(progs):
                eng.spawn_worker(WorkerSpec(f"w{i}", prog))
            t0 = time.perf_counter()
            stats = eng.run()
            secs = time.perf_counter() - t0
        end_cycles.add(stats.end_cycle)
        rows.append({"worker_batch": wb, "seconds": secs,
                     "events": eng.events_processed,
                     "events_per_sec": eng.events_processed / secs,
                     "end_cycle": stats.end_cycle,
                     "lease_refs": eng.batch_stats["lease_refs"]})
    assert len(end_cycles) == 1, \
        f"worker_batch changed the simulation: {sorted(end_cycles)}"
    return rows


def _report(on, off, sweep=None, write=True):
    (on_s, on_eng, on_stats), (off_s, off_eng, off_stats) = on, off
    fp_on, fp_off = _fingerprint(on_eng, on_stats), \
        _fingerprint(off_eng, off_stats)
    assert fp_on == fp_off, \
        f"lookahead changed the simulation:\n  on : {fp_on}\n  off: {fp_off}"

    speedup = off_s / on_s
    bs = on_eng.batch_stats
    rows = [
        ("lookahead on", f"{on_s:.3f}",
         f"{on_eng.events_processed / on_s:,.0f}"),
        ("lookahead off", f"{off_s:.3f}",
         f"{off_eng.events_processed / off_s:,.0f}"),
    ]
    print(render_table(
        ("configuration", "host seconds", "events/s"),
        rows, title="\nLookahead-window speedup (4-CPU private-heavy):"))
    print(f"  speedup: {speedup:.2f}x   windows: {bs['la_windows']}   "
          f"extended refs: {bs['la_refs']}   "
          f"batches: {bs['batches']} vs {off_eng.batch_stats['batches']}")
    if sweep:
        print(render_table(
            ("worker_batch", "host seconds", "events/s", "lease refs"),
            [(str(r["worker_batch"]), f"{r['seconds']:.3f}",
              f"{r['events_per_sec']:,.0f}", str(r["lease_refs"]))
             for r in sweep],
            title="\nworker_batch sweep (2 workers, leases on):"))

    payload = {
        "workload": f"private_heavy {NCPUS}cpu {NBYTES}B x{PASSES}",
        "quick": QUICK,
        "end_cycle": on_stats.end_cycle,
        "events": on_eng.events_processed,
        "seconds_on": on_s,
        "seconds_off": off_s,
        "events_per_sec_on": on_eng.events_processed / on_s,
        "events_per_sec_off": off_eng.events_processed / off_s,
        "speedup": speedup,
        "la_windows": bs["la_windows"],
        "la_refs": bs["la_refs"],
        "worker_batch_sweep": sweep or [],
    }
    if write:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return speedup, payload


def test_lookahead_speedup(benchmark):
    on, off = benchmark.pedantic(
        lambda: _measure(2 if QUICK else 3), rounds=1, iterations=1)
    sweep = _sweep_worker_batch(passes=10 if QUICK else 40)
    speedup, payload = _report(on, off, sweep)
    benchmark.extra_info.update(speedup=speedup,
                                la_refs=payload["la_refs"])
    assert speedup >= MIN_SPEEDUP, \
        f"lookahead must be >= {MIN_SPEEDUP}x faster (got {speedup:.2f}x)"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="single small round: verify bit-identity, report "
                         "the speedup, skip the JSON artifact")
    args = ap.parse_args(argv)
    if args.smoke:
        on, off = _measure(rounds=1, passes=20)
        speedup, _ = _report(on, off, write=False)
        # smoke gates correctness (the _report identity assert), not perf —
        # CI machines are too noisy for a hard speedup floor on a tiny run
        print(f"smoke ok: bit-identical, {speedup:.2f}x")
        return 0
    on, off = _measure(rounds=3)
    sweep = _sweep_worker_batch(passes=40)
    speedup, _ = _report(on, off, sweep)
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < {MIN_SPEEDUP}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
