#!/usr/bin/env python
"""Run every benchmark file and collect their BENCH_*.json artifacts.

Each ``bench_*.py`` runs in its own pytest subprocess (pytest-benchmark
prints its tables; benches that write ``BENCH_*.json`` refresh the copies
at the repo root). Usage::

    python benchmarks/run_all.py              # full runs
    python benchmarks/run_all.py --quick      # COMPASS_BENCH_QUICK=1
    python benchmarks/run_all.py fastpath     # only bench_fastpath.py

Exits non-zero if any bench fails.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def discover(patterns):
    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if patterns:
        benches = [b for b in benches
                   if any(p in b.stem for p in patterns)]
    return benches


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("patterns", nargs="*",
                    help="substring filters on bench file names")
    ap.add_argument("--quick", action="store_true",
                    help="set COMPASS_BENCH_QUICK=1 (smaller workloads)")
    args = ap.parse_args(argv)

    benches = discover(args.patterns)
    if not benches:
        print("no benchmarks match", args.patterns, file=sys.stderr)
        return 2

    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (os.pathsep + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    if args.quick:
        env["COMPASS_BENCH_QUICK"] = "1"

    results = []
    for bench in benches:
        print(f"\n=== {bench.name} ===", flush=True)
        t0 = time.perf_counter()
        rc = subprocess.call(
            [sys.executable, "-m", "pytest", "-q", str(bench),
             "-p", "no:cacheprovider"],
            cwd=REPO_ROOT, env=env)
        results.append((bench.name, rc, time.perf_counter() - t0))

    print("\n=== summary ===")
    failed = 0
    for name, rc, secs in results:
        status = "ok" if rc == 0 else f"FAILED (rc={rc})"
        print(f"  {name:40s} {status:14s} {secs:7.1f}s")
        failed += rc != 0
    artifacts = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if artifacts:
        print("artifacts:")
        for a in artifacts:
            try:
                keys = ", ".join(sorted(json.loads(a.read_text()))[:6])
            except (OSError, ValueError):
                keys = "<unreadable>"
            print(f"  {a.name}: {keys}")
        speedups = []
        for a in artifacts:
            try:
                data = json.loads(a.read_text())
            except (OSError, ValueError):
                continue
            sp = data.get("speedup")
            if isinstance(sp, (int, float)):
                speedups.append((a.name, sp, data.get("workload", "")))
        if speedups:
            print("speedups:")
            for name, sp, workload in speedups:
                print(f"  {name:28s} {sp:6.2f}x  {workload}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
