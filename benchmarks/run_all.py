#!/usr/bin/env python
"""Run every benchmark file and collect their BENCH_*.json artifacts.

Each ``bench_*.py`` runs in its own pytest subprocess (pytest-benchmark
prints its tables; benches that write ``BENCH_*.json`` refresh the copies
at the repo root). A unified ``BENCH_summary.json`` is written at the repo
root after the run: per-benchmark pass/fail, wall time, and the headline
numbers (events/sec, speedup, rollback rate) pulled from each artifact.
Any artifact reporting ``bit_identical: false`` — an optimisation that
changed simulated results — fails the whole run, independent of the
per-bench exit codes. Usage::

    python benchmarks/run_all.py              # full runs
    python benchmarks/run_all.py --quick      # COMPASS_BENCH_QUICK=1
    python benchmarks/run_all.py fastpath     # only bench_fastpath.py

The summary is (re)written after *every* benchmark, marked
``"complete": false`` until the last one finishes — a crashed or
interrupted run leaves a partial ``BENCH_summary.json`` covering the
benches that did complete (and exits non-zero) instead of losing the
already-collected artifacts.

Exits non-zero if any bench fails.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def discover(patterns):
    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if patterns:
        benches = [b for b in benches
                   if any(p in b.stem for p in patterns)]
    return benches


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("patterns", nargs="*",
                    help="substring filters on bench file names")
    ap.add_argument("--quick", action="store_true",
                    help="set COMPASS_BENCH_QUICK=1 (smaller workloads)")
    args = ap.parse_args(argv)

    benches = discover(args.patterns)
    if not benches:
        print("no benchmarks match", args.patterns, file=sys.stderr)
        return 2

    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (os.pathsep + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    if args.quick:
        env["COMPASS_BENCH_QUICK"] = "1"

    results = []
    try:
        for bench in benches:
            print(f"\n=== {bench.name} ===", flush=True)
            t0 = time.perf_counter()
            rc = subprocess.call(
                [sys.executable, "-m", "pytest", "-q", str(bench),
                 "-p", "no:cacheprovider"],
                cwd=REPO_ROOT, env=env)
            results.append((bench.name, rc, time.perf_counter() - t0))
            # checkpoint the summary after every bench: a later crash
            # must not lose the artifacts already collected
            write_summary(args, results, complete=False)
    except BaseException as exc:   # Ctrl-C, OOM kill of a child, bugs
        write_summary(args, results, complete=False,
                      interrupted=f"{type(exc).__name__}: {exc}")
        print(f"\ninterrupted after {len(results)}/{len(benches)} "
              f"benches; partial BENCH_summary.json written",
              file=sys.stderr)
        if isinstance(exc, KeyboardInterrupt):
            return 130
        raise

    print("\n=== summary ===")
    failed = 0
    for name, rc, secs in results:
        status = "ok" if rc == 0 else f"FAILED (rc={rc})"
        print(f"  {name:40s} {status:14s} {secs:7.1f}s")
        failed += rc != 0
    artifact_data = collect_artifacts(verbose=True)
    # every perf bench must leave the simulation bit-identical; an
    # artifact saying otherwise fails the run even if its own
    # assertions were too loose to catch it
    mismatches = [name for name, data in artifact_data.items()
                  if data.get("bit_identical") is False]
    for name in mismatches:
        print(f"  BIT-IDENTITY MISMATCH in {name}", file=sys.stderr)
    failed += len(mismatches)

    out = write_summary(args, results, complete=True)
    print(f"wrote {out.name}")
    return 1 if failed else 0


def collect_artifacts(verbose=False):
    artifacts = sorted(p for p in REPO_ROOT.glob("BENCH_*.json")
                       if p.name != "BENCH_summary.json")
    artifact_data = {}
    if artifacts and verbose:
        print("artifacts:")
    for a in artifacts:
        try:
            artifact_data[a.name] = json.loads(a.read_text())
            keys = ", ".join(sorted(artifact_data[a.name])[:6])
        except (OSError, ValueError):
            keys = "<unreadable>"
            continue
        if verbose:
            print(f"  {a.name}: {keys}")
    if verbose:
        speedups = [(name, data["speedup"], data.get("workload", ""))
                    for name, data in artifact_data.items()
                    if isinstance(data.get("speedup"), (int, float))]
        if speedups:
            print("speedups:")
            for name, sp, workload in speedups:
                print(f"  {name:28s} {sp:6.2f}x  {workload}")
    return artifact_data


def write_summary(args, results, complete, interrupted=None):
    """Write BENCH_summary.json covering the benches finished so far."""
    artifact_data = collect_artifacts()
    summary = {
        "quick": args.quick,
        "patterns": args.patterns,
        "complete": complete,
        "bit_identity_failures": [
            name for name, data in artifact_data.items()
            if data.get("bit_identical") is False],
        "benches": [{"name": name, "ok": rc == 0, "seconds": round(secs, 2)}
                    for name, rc, secs in results],
        "artifacts": {
            # every top-level scalar is a headline number; nested tables
            # (per-workload breakdowns, decline counters) stay in the
            # per-bench artifact files
            name: {k: v for k, v in data.items()
                   if isinstance(v, (str, int, float, bool))}
            for name, data in artifact_data.items()
        },
    }
    if interrupted is not None:
        summary["interrupted"] = interrupted
    out = REPO_ROOT / "BENCH_summary.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")
    return out


if __name__ == "__main__":
    sys.exit(main())
