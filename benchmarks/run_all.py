#!/usr/bin/env python
"""Run every benchmark file and collect their BENCH_*.json artifacts.

Each ``bench_*.py`` runs in its own pytest subprocess (pytest-benchmark
prints its tables; benches that write ``BENCH_*.json`` refresh the copies
at the repo root). A unified ``BENCH_summary.json`` is written at the repo
root after the run: per-benchmark pass/fail, wall time, and the headline
numbers (events/sec, speedup, rollback rate) pulled from each artifact.
Any artifact reporting ``bit_identical: false`` — an optimisation that
changed simulated results — fails the whole run, independent of the
per-bench exit codes. Usage::

    python benchmarks/run_all.py              # full runs
    python benchmarks/run_all.py --quick      # COMPASS_BENCH_QUICK=1
    python benchmarks/run_all.py fastpath     # only bench_fastpath.py

Exits non-zero if any bench fails.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def discover(patterns):
    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if patterns:
        benches = [b for b in benches
                   if any(p in b.stem for p in patterns)]
    return benches


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("patterns", nargs="*",
                    help="substring filters on bench file names")
    ap.add_argument("--quick", action="store_true",
                    help="set COMPASS_BENCH_QUICK=1 (smaller workloads)")
    args = ap.parse_args(argv)

    benches = discover(args.patterns)
    if not benches:
        print("no benchmarks match", args.patterns, file=sys.stderr)
        return 2

    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (os.pathsep + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    if args.quick:
        env["COMPASS_BENCH_QUICK"] = "1"

    results = []
    for bench in benches:
        print(f"\n=== {bench.name} ===", flush=True)
        t0 = time.perf_counter()
        rc = subprocess.call(
            [sys.executable, "-m", "pytest", "-q", str(bench),
             "-p", "no:cacheprovider"],
            cwd=REPO_ROOT, env=env)
        results.append((bench.name, rc, time.perf_counter() - t0))

    print("\n=== summary ===")
    failed = 0
    for name, rc, secs in results:
        status = "ok" if rc == 0 else f"FAILED (rc={rc})"
        print(f"  {name:40s} {status:14s} {secs:7.1f}s")
        failed += rc != 0
    artifacts = sorted(p for p in REPO_ROOT.glob("BENCH_*.json")
                       if p.name != "BENCH_summary.json")
    artifact_data = {}
    mismatches = []
    if artifacts:
        print("artifacts:")
        for a in artifacts:
            try:
                artifact_data[a.name] = json.loads(a.read_text())
                keys = ", ".join(sorted(artifact_data[a.name])[:6])
            except (OSError, ValueError):
                keys = "<unreadable>"
            print(f"  {a.name}: {keys}")
        speedups = [(name, data["speedup"], data.get("workload", ""))
                    for name, data in artifact_data.items()
                    if isinstance(data.get("speedup"), (int, float))]
        if speedups:
            print("speedups:")
            for name, sp, workload in speedups:
                print(f"  {name:28s} {sp:6.2f}x  {workload}")
        # every perf bench must leave the simulation bit-identical; an
        # artifact saying otherwise fails the run even if its own
        # assertions were too loose to catch it
        mismatches = [name for name, data in artifact_data.items()
                      if data.get("bit_identical") is False]
        for name in mismatches:
            print(f"  BIT-IDENTITY MISMATCH in {name}", file=sys.stderr)
        failed += len(mismatches)

    summary = {
        "quick": args.quick,
        "patterns": args.patterns,
        "bit_identity_failures": mismatches,
        "benches": [{"name": name, "ok": rc == 0, "seconds": round(secs, 2)}
                    for name, rc, secs in results],
        "artifacts": {
            # every top-level scalar is a headline number; nested tables
            # (per-workload breakdowns, decline counters) stay in the
            # per-bench artifact files
            name: {k: v for k, v in data.items()
                   if isinstance(v, (str, int, float, bool))}
            for name, data in artifact_data.items()
        },
    }
    out = REPO_ROOT / "BENCH_summary.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out.name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
