"""Ablation A4 — Backend detail vs simulation speed (extends Table 2).

"Running time of an application in the COMPASS environment depends heavily
on the complexity of the backend models" (§2). Sweep the detail axis —
1-level cache / flat memory, 2-level + bus MESI, 2-level + CC-NUMA
directory, software DSM — on one fixed workload and report both host cost
(events/second) and what the extra detail buys (simulated cycle estimates
differ because more contention is modeled).
"""

import time

import pytest

from repro import Engine, complex_backend, simple_backend
from repro.apps.minidb import MiniDb, TpcdDriver, tpcd_catalog
from repro.harness import render_table


def _once(cfg):
    eng = Engine(cfg)
    db = MiniDb(eng, tpcd_catalog(scale=0.0002), pool_frames=32)
    db.setup()
    drv = TpcdDriver(db, nagents=2, io="read", rows_work=200)
    drv.spawn_q1(eng)
    t0 = time.perf_counter()
    stats = eng.run()
    return time.perf_counter() - t0, eng.events_processed, stats.end_cycle


def run_cfg(label, cfg, repeats=5):
    # best-of-N wall time: this ablation measures host cost, and single
    # runs on a shared box are noisy
    walls = []
    for _ in range(repeats):
        wall, events, cycles = _once(cfg)
        walls.append(wall)
    wall = min(walls)
    return {
        "label": label,
        "wall": wall,
        "events": events,
        "eps": events / wall,
        "cycles": cycles,
    }


def test_ablation_backend_detail(benchmark):
    def experiment():
        return [
            run_cfg("simple (L1, flat)", simple_backend(num_cpus=2)),
            run_cfg("complex/mesi bus",
                    complex_backend(num_cpus=2, coherence="mesi")),
            run_cfg("complex/directory",
                    complex_backend(num_cpus=2, num_nodes=2)),
            run_cfg("complex/dsm",
                    complex_backend(num_cpus=2, num_nodes=2,
                                    coherence="dsm")),
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    base = rows[0]
    print(render_table(
        ("backend", "host s", "events/s", "rel. speed", "simulated cycles"),
        [(r["label"], f"{r['wall']:.2f}", f"{r['eps']:,.0f}",
          f"{r['eps'] / base['eps']:.2f}x", r["cycles"]) for r in rows],
        title="\nA4 — backend detail vs simulation speed:"))

    benchmark.extra_info.update(
        simple_eps=base["eps"],
        directory_eps=rows[2]["eps"])
    # the full CC-NUMA backend is clearly slower than the simple one; the
    # other detailed backends must at least not be faster beyond host noise
    assert rows[2]["eps"] < base["eps"] * 0.95
    for r in rows[1:]:
        assert r["eps"] < base["eps"] * 1.30
    # the detailed models observe more contention: simulated time grows
    assert rows[2]["cycles"] >= base["cycles"]
