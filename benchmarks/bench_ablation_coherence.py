"""Ablation A3 — Coherence protocols / target architectures (paper §5).

COMPASS was used to study "CC-NUMA, COMA and software DSM multiprocessors".
The architecture choice matters exactly where sharing is fine-grained:

* **ocean stencil** — neighbour rows cross worker partitions and barriers
  synchronise every sweep: page-granular software DSM thrashes (pages
  ping-pong between writers), hardware coherence shrugs;
* **private scan** — embarrassingly parallel per-CPU regions: every
  protocol converges because there is nothing to share;
* **OLTP** (observation row, no assertion) — end-to-end transaction time is
  dominated by disk waits and user work, so the memory architecture washes
  out of the total; this is itself a finding the paper's studies target.
"""

import pytest

from repro import Engine, complex_backend
from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
from repro.apps.splash import spawn_kernel
from repro.harness import render_table

PROTOCOLS = ("mesi", "directory", "coma", "dsm")


def private_scan_app(index, nbytes=64 * 1024):
    """Each worker streams over its own private region."""
    base = 0x0100_0000 + index * 0x0100_0000

    def app(proc):
        for rep in range(2):
            yield from proc.touch(base, nbytes, write=(rep == 1),
                                  stride=64, work_per_line=6)
            yield from proc.barrier(77, 4)
        yield from proc.exit(0)
    return app


def run_stencil(coherence):
    eng = Engine(complex_backend(num_cpus=4, coherence=coherence))
    procs = spawn_kernel(eng, "ocean", 4, n=48, iters=2)
    stats = eng.run()
    assert all(p.exit_status == 0 for p in procs)
    return stats.end_cycle


def run_private(coherence):
    eng = Engine(complex_backend(num_cpus=4, coherence=coherence))
    procs = [eng.spawn(f"s{i}", private_scan_app(i)) for i in range(4)]
    stats = eng.run()
    assert all(p.exit_status == 0 for p in procs)
    return stats.end_cycle


def run_oltp(coherence):
    eng = Engine(complex_backend(num_cpus=4, coherence=coherence))
    db = MiniDb(eng, tpcc_catalog(1, 0.008), pool_frames=32)
    db.setup()
    drv = TpccDriver(db, nagents=4, tx_per_agent=4, seed=7,
                     think_cycles=5_000, user_work=60_000)
    drv.spawn_agents(eng)
    stats = eng.run()
    return stats.end_cycle


def test_ablation_coherence_protocols(benchmark):
    def experiment():
        return {p: (run_stencil(p), run_private(p), run_oltp(p))
                for p in PROTOCOLS}

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    base = res["directory"]
    print(render_table(
        ("protocol", "stencil", "vs dir", "private scan", "vs dir",
         "OLTP", "vs dir"),
        [(p,
          res[p][0], f"{res[p][0] / base[0]:.2f}x",
          res[p][1], f"{res[p][1] / base[1]:.2f}x",
          res[p][2], f"{res[p][2] / base[2]:.2f}x") for p in PROTOCOLS],
        title="\nA3 — target architecture comparison (4 CPUs, cycles):"))

    dsm_sten = res["dsm"][0] / base[0]
    dsm_priv = res["dsm"][1] / base[1]
    dsm_oltp = res["dsm"][2] / base[2]
    print(f"  DSM penalty: stencil {dsm_sten:.1f}x, private {dsm_priv:.2f}x,"
          f" OLTP (disk-bound) {dsm_oltp:.2f}x")
    benchmark.extra_info.update(dsm_stencil=dsm_sten, dsm_private=dsm_priv,
                                dsm_oltp=dsm_oltp)

    # software DSM collapses under fine-grained sharing...
    assert dsm_sten > 3.0, "DSM must thrash on the cross-partition stencil"
    # ...but matches hardware coherence when nothing is shared
    assert dsm_priv < 1.5, "DSM should amortise on private data"
    assert dsm_sten > 2.0 * dsm_priv
    # hardware protocols stay within a narrow band of each other
    for p in ("mesi", "coma"):
        assert 0.5 < res[p][0] / base[0] < 2.0
        assert 0.5 < res[p][1] / base[1] < 2.0
    # the I/O-bound OLTP total is architecture-insensitive (observation)
    assert 0.9 < dsm_oltp < 1.3
