#!/usr/bin/env python
"""Checkpoint/restore smoke gate: resume is bit-identical and fast.

Crashes a TPC-C run after an autosave, resumes from the checkpoint, and
fails unless the resumed run reproduces the uninterrupted run exactly
(event stream, final stats, fault-fire counts). Also times the restore
fast-forward — which answers every historical memory access from the
reply log instead of re-simulating the cache hierarchy — against
re-running the simulation to the same event count: the fast-forward must
win, or checkpointing buys nothing over rerunning.

The ``--baseline`` / ``--crash`` / ``--resume`` modes split the gate
across *separate interpreter processes* (CI runs them under different
``PYTHONHASHSEED`` values): a checkpoint written by one process must
resume bit-identically in another, which is the way checkpoints are
actually used.

Usage::

    python benchmarks/bench_checkpoint.py --smoke   # CI gate, exit 1 on fail
    pytest benchmarks/bench_checkpoint.py           # same checks as a test

    # cross-process gate (each line may run in a different process):
    python benchmarks/bench_checkpoint.py --baseline fp.json
    python benchmarks/bench_checkpoint.py --crash ck.pkl
    python benchmarks/bench_checkpoint.py --resume ck.pkl --expect fp.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (Engine, FaultPlan, FaultRule, SimulatedCrash,   # noqa: E402
                   complex_backend, load_checkpoint, resume)
from repro.core.frontend import SimProcess                          # noqa: E402

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))

PLAN = FaultPlan(rules=(
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
), seed=1998)


def build(path=None, interval=0):
    from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=2, faults=PLAN,
                                 checkpoint_path=path,
                                 checkpoint_interval=interval))
    db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16, seed=3)
    db.setup()
    tx = 4 if QUICK else 8
    drv = TpccDriver(db, nagents=4, tx_per_agent=tx, seed=3,
                     think_cycles=5_000, user_work=20_000)
    drv.spawn_agents(eng)
    return eng


def _fingerprint(eng, stats):
    return (
        stats.end_cycle,
        eng.events_processed,
        tuple((c.user, c.kernel, c.interrupt, c.idle, c.ctx_switch)
              for c in stats.cpu),
        tuple(sorted(stats.syscall_cycles.items())),
        tuple(sorted(stats.syscall_counts.items())),
        tuple(sorted(eng.faults.stats.fired.items())),
        eng.faults.stats.draws,
    )


def smoke() -> dict:
    report = {"workload": "tpcc", "quick": QUICK, "failures": []}

    # 1. uninterrupted baseline, checkpointing off: the ground truth
    eng0 = build()
    fp0 = _fingerprint(eng0, eng0.run())
    report["events_total"] = eng0.events_processed
    report["end_cycle"] = fp0[0]

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ck.pkl")
        interval = 2_000

        # 2. crash mid-run after the Nth autosave (deep enough into the run
        #    that the fast-forward timing is not noise)
        eng1 = build(path, interval)
        eng1._ckpt.crash_after_saves = 3 if QUICK else 10
        try:
            eng1.run()
            report["failures"].append("crash_after_saves never fired")
            return report
        except SimulatedCrash:
            pass
        ckpt_events = load_checkpoint(path)["events_processed"]
        report["events_at_checkpoint"] = ckpt_events

        # 3. restore (timed: log-replay fast-forward, no backend work),
        #    then finish and compare against the uninterrupted run
        t0 = time.perf_counter()
        eng2, _ = resume(path, lambda: build(path, interval), finish=False)
        t_restore = time.perf_counter() - t0
        fp2 = _fingerprint(eng2, eng2._ckpt.finish(eng2))
        report["bit_identical"] = fp2 == fp0
        if not report["bit_identical"]:
            report["failures"].append(
                f"resumed run diverged from uninterrupted run:\n"
                f"  resumed:  {fp2}\n  baseline: {fp0}")

    # 4. re-simulate to the same event count (what you'd do without a
    #    checkpoint) and compare wall time
    t0 = time.perf_counter()
    eng3 = build()
    eng3.run(max_events=ckpt_events)
    t_rerun = time.perf_counter() - t0
    if eng3.events_processed != ckpt_events:
        report["failures"].append(
            f"rerun stopped at {eng3.events_processed} events, "
            f"expected {ckpt_events}")

    report["t_restore_s"] = round(t_restore, 4)
    report["t_rerun_s"] = round(t_rerun, 4)
    report["speedup"] = round(t_rerun / t_restore, 2) if t_restore else None
    if report["speedup"] is not None and report["speedup"] <= 1.0:
        report["failures"].append(
            f"restore fast-forward ({t_restore:.3f}s) is not faster than "
            f"re-simulating {ckpt_events} events ({t_rerun:.3f}s)")
    return report


def test_checkpoint_smoke():
    report = smoke()
    assert not report["failures"], report["failures"]
    assert report["bit_identical"]


CROSS_INTERVAL = 2_000


def _jsonable(fp):
    return json.loads(json.dumps(fp))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="run the in-process CI crash/resume gate")
    ap.add_argument("--baseline", metavar="FP_JSON",
                    help="run uninterrupted, write the fingerprint here")
    ap.add_argument("--crash", metavar="CKPT",
                    help="run with autosaves to CKPT, crash after the 3rd")
    ap.add_argument("--resume", metavar="CKPT",
                    help="resume from CKPT and finish the run")
    ap.add_argument("--expect", metavar="FP_JSON",
                    help="with --resume: fingerprint file to match")
    args = ap.parse_args(argv)

    if args.baseline:
        eng = build()
        fp = _fingerprint(eng, eng.run())
        Path(args.baseline).write_text(json.dumps(fp) + "\n")
        print(f"baseline: {eng.events_processed} events, "
              f"end cycle {fp[0]} -> {args.baseline}")
        return 0

    if args.crash:
        eng = build(args.crash, CROSS_INTERVAL)
        eng._ckpt.crash_after_saves = 3
        try:
            eng.run()
        except SimulatedCrash as e:
            print(f"crashed as planned: {e}")
            return 0
        print("crash_after_saves never fired", file=sys.stderr)
        return 1

    if args.resume:
        eng, stats = resume(args.resume,
                            lambda: build(args.resume, CROSS_INTERVAL))
        fp = _jsonable(_fingerprint(eng, stats))
        if args.expect:
            want = json.loads(Path(args.expect).read_text())
            if fp != want:
                print(f"resumed run diverged from baseline:\n"
                      f"  resumed:  {fp}\n  baseline: {want}",
                      file=sys.stderr)
                return 1
            print("cross-process resume bit-identical")
        else:
            print(json.dumps(fp))
        return 0

    report = smoke()
    out = REPO_ROOT / "BENCH_checkpoint.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if report["failures"]:
        print("CHECKPOINT SMOKE FAILED:", file=sys.stderr)
        for f in report["failures"]:
            print(" -", f, file=sys.stderr)
        return 1
    print(f"checkpoint smoke ok: resume bit-identical, fast-forward "
          f"{report['speedup']}x faster than re-simulating")
    return 0


if __name__ == "__main__":
    sys.exit(main())
