"""Basic-block translation cache speedup — compiled closures vs interpreter.

The translation layer (``src/repro/isa/translate.py``) compiles each basic
block to a specialized closure: opcode dispatch, operand decode, timing
accumulation and memory-reference collection fused into straight-line code.
Results are bit-identical (tests/test_translate_equivalence.py); this bench
measures what that buys on a compute-heavy block mix — the frontend-bound
regime where the interpreter's per-instruction ``elif`` chain dominates.

Three measurements:

* **raw** instructions/sec — the Table 2 raw-baseline loop, interpreted vs
  translated (the headline number, asserted >= 2.5x);
* **instrumented** instructions/sec — the event-generating coroutine driven
  by a trivial reply loop (batched mode), isolating frontend cost from the
  backend;
* **engine** wall-clock of a full simulation with ISA frontends on the
  complex backend (reported; backend work bounds this one).

Writes ``BENCH_translate.json`` at the repo root with throughputs, speedups
and translation-cache hit statistics. ``COMPASS_BENCH_QUICK=1`` shrinks the
workload and relaxes the assertion (fixed setup costs dominate short runs).
"""

import json
import os
import time
from pathlib import Path

from repro import Engine, complex_backend
from repro.core.frontend import SimProcess
from repro.harness import render_table, translate_summary
from repro.isa import Interpreter, Machine, assemble
from repro.isa.memory import DataMemory
from repro.isa.translate import cache_stats, clear_code_cache

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))
ITERS = 20_000 if QUICK else 120_000
ENGINE_ITERS = 4_000 if QUICK else 20_000
MIN_SPEEDUP = 2.0 if QUICK else 2.5
ROUNDS = 2 if QUICK else 3
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_translate.json"

#: compute-heavy block mix: ~10:2 ALU/branch-to-memory ratio across several
#: blocks and a call — the instruction profile where dispatch dominates
MIX = """
entry:
    li r10, 0x100000
    li r1, 0
    li r2, {iters}
    li r5, 1
loop:
    add r5, r5, r1
    xor r6, r5, r2
    and r7, r6, r5
    sub r7, r7, r1
    muli r8, r1, 3
    cmp r9, r7, r8
    add r5, r5, r9
    mod r6, r5, r2
    bl mixin
    storex r6, r10, r12, 4
    load r7, r10, 64, 4
    addi r1, r1, 1
    blt r1, r2, loop
    mov r3, r5
    halt
mixin:
    andi r12, r6, 1020
    or r13, r7, r5
    ret
"""


def _program(iters):
    return assemble(MIX.format(iters=iters), "translate_mix")


def _machine():
    dm = DataMemory()
    dm.map_segment(0x100000, 4096)
    return Machine(dm)


def _time_raw(translate):
    prog = _program(ITERS)
    m = _machine()
    t0 = time.perf_counter()
    Interpreter(prog, m).run_raw(translate=translate)
    return time.perf_counter() - t0, m.instret


def _time_instrumented(translate):
    prog = _program(ITERS)
    m = _machine()
    gen = Interpreter(prog, m).run(batched=True, translate=translate)
    t0 = time.perf_counter()
    try:
        evt = gen.send(None)
        while True:
            evt = gen.send(0)
    except StopIteration:
        pass
    return time.perf_counter() - t0, m.instret


def _time_engine(translate):
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=2, translate=translate))
    for i in range(2):
        dm = DataMemory()
        dm.map_segment(0x100000, 4096)
        eng.spawn_interpreter(
            f"w{i}",
            Interpreter(_program(ENGINE_ITERS), Machine(dm)))
    t0 = time.perf_counter()
    stats = eng.run()
    return time.perf_counter() - t0, stats.end_cycle, eng


def _best(fn):
    """Interleaved best-of so a host hiccup in either arm cannot fake (or
    hide) the speedup."""
    best = {}
    for _ in range(ROUNDS):
        for tr in (True, False):
            sample = fn(tr)
            prev = best.get(tr)
            if prev is None or sample[0] < prev[0]:
                best[tr] = sample
    return best[True], best[False]


def test_translate_speedup(benchmark):
    clear_code_cache()

    def experiment():
        raw = _best(_time_raw)
        instr = _best(_time_instrumented)
        eng = _best(_time_engine)
        return raw, instr, eng

    (raw_on, raw_off), (in_on, in_off), (eng_on, eng_off) = \
        benchmark.pedantic(experiment, rounds=1, iterations=1)

    # the optimisation must not change the simulation
    assert eng_on[1] == eng_off[1], "end_cycle diverged"

    raw_ips_on = raw_on[1] / raw_on[0]
    raw_ips_off = raw_off[1] / raw_off[0]
    in_ips_on = in_on[1] / in_on[0]
    in_ips_off = in_off[1] / in_off[0]
    speedup_raw = raw_off[0] / raw_on[0]
    speedup_instr = in_off[0] / in_on[0]
    speedup_engine = eng_off[0] / eng_on[0]
    tstats = cache_stats()
    summary = translate_summary(eng_on[2])

    rows = [
        ("raw translated", f"{raw_on[0]:.3f}", f"{raw_ips_on:,.0f}"),
        ("raw interpreted", f"{raw_off[0]:.3f}", f"{raw_ips_off:,.0f}"),
        ("instrumented translated", f"{in_on[0]:.3f}", f"{in_ips_on:,.0f}"),
        ("instrumented interpreted", f"{in_off[0]:.3f}", f"{in_ips_off:,.0f}"),
        ("engine translated", f"{eng_on[0]:.3f}", "-"),
        ("engine interpreted", f"{eng_off[0]:.3f}", "-"),
    ]
    print(render_table(
        ("configuration", "host seconds", "instr/s"),
        rows, title="\nTranslation-cache speedup (compute-heavy mix):"))
    print(f"  speedup: raw {speedup_raw:.2f}x  instrumented "
          f"{speedup_instr:.2f}x  engine {speedup_engine:.2f}x")
    print(f"  cache: {tstats['programs']} programs / {tstats['blocks']} "
          f"blocks translated, code hits {tstats['code_hits']} / misses "
          f"{tstats['code_misses']} (hit rate "
          f"{summary['code_hit_rate']:.3f})")

    payload = {
        "workload": f"compute-heavy mix, {raw_on[1]:,} instructions",
        "quick": QUICK,
        "instructions": raw_on[1],
        "raw_seconds_translated": raw_on[0],
        "raw_seconds_interpreted": raw_off[0],
        "raw_instr_per_sec_translated": raw_ips_on,
        "raw_instr_per_sec_interpreted": raw_ips_off,
        "instr_seconds_translated": in_on[0],
        "instr_seconds_interpreted": in_off[0],
        "instr_per_sec_translated": in_ips_on,
        "instr_per_sec_interpreted": in_ips_off,
        "engine_seconds_translated": eng_on[0],
        "engine_seconds_interpreted": eng_off[0],
        "speedup": speedup_raw,
        "speedup_instrumented": speedup_instr,
        "speedup_engine": speedup_engine,
        "translate_cache": tstats,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(speedup=speedup_raw,
                                speedup_instrumented=speedup_instr)
    assert speedup_raw >= MIN_SPEEDUP, \
        f"translated raw loop must be >= {MIN_SPEEDUP}x faster " \
        f"(got {speedup_raw:.2f}x)"
    assert speedup_instr >= MIN_SPEEDUP, \
        f"translated instrumented loop must be >= {MIN_SPEEDUP}x faster " \
        f"(got {speedup_instr:.2f}x)"
