"""Checkpoint-based sampled simulation: speed vs accuracy.

``SimConfig.sampling`` alternates short detailed windows with long
functional fast-forward windows (vectorized cache warming, calibrated
constant latency, no protocol timing). Unlike the vec path this is
explicitly *approximate* — the point of this bench is to measure both
sides of the trade: wall-clock speedup over full detail, and the error it
introduces in end-of-run cycle count and L1 miss rate.

The workload is a multi-pass streaming scan over a 4 MiB buffer (larger
than the 512 KiB L2, alternating read and write passes, two memory
nodes) — a steady-state miss stream where the detailed model pays the
full coherence walk per line and sampling can honestly amortise it.
Execution-driven simulation bounds what sampling can buy: the
application's functional execution and event generation run at full
fidelity in *every* window, so workloads dominated by frontend work (e.g.
the TPC-D row predicates) cap out near 3x regardless of window split —
see EXPERIMENTS.md "Sampled simulation error bounds".

Writes ``BENCH_sampling.json`` at the repo root and asserts:
  * wall-clock speedup >= 5x over full detail (>= 2x under
    ``COMPASS_BENCH_QUICK=1``, where the run is too short to amortise
    setup), and
  * cycle-count relative error <= 2% and L1 miss-rate absolute error
    <= 2 percentage points (both modes).
"""

import json
import os
import time
from pathlib import Path

from repro import Engine, SamplingConfig, complex_backend
from repro.core.frontend import SimProcess
from repro.harness import render_table, sampling_summary

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))
BASE = 0x0001_0000
NBYTES = 4 * 1024 * 1024
STRIDE = 32
PASSES = 2 if QUICK else 6
MIN_SPEEDUP = 2.0 if QUICK else 5.0
#: documented error bounds (EXPERIMENTS.md): cycle count relative, L1
#: miss rate absolute
MAX_CYCLE_ERR = 0.02
MAX_MISS_ERR = 0.02
SAMPLING = SamplingConfig(detail_events=2000, ff_events=248000)
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sampling.json"


def _stream_app(proc):
    for p in range(PASSES):
        yield from proc.touch(BASE, NBYTES, write=(p % 2 == 1),
                              stride=STRIDE)
    return 0


def _run_once(sampled):
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=1, num_nodes=2,
                                 coherence="directory", fastpath=True,
                                 sampling=SAMPLING if sampled else None))
    eng.spawn("stream", _stream_app)
    t0 = time.perf_counter()
    stats = eng.run()
    return time.perf_counter() - t0, eng, stats


def _l1_miss_rate(eng):
    cs = eng.memsys.cache_summary()
    hits = sum(v[0] for v in cs["l1"].values())
    misses = sum(v[1] for v in cs["l1"].values())
    return misses / max(1, hits + misses)


def test_sampling_speedup_and_error(benchmark):
    def experiment():
        # interleave sampled/full and keep the best of each so a host
        # hiccup in either arm cannot fake (or hide) the speedup
        rounds = 2 if QUICK else 3
        best = {}
        for _ in range(rounds):
            for sampled in (True, False):
                secs, eng, stats = _run_once(sampled)
                prev = best.get(sampled)
                if prev is None or secs < prev[0]:
                    best[sampled] = (secs, eng, stats)
        return best[True], best[False]

    (s_s, s_eng, s_stats), (f_s, f_eng, f_stats) = \
        benchmark.pedantic(experiment, rounds=1, iterations=1)

    speedup = f_s / s_s
    cyc_err = abs(s_stats.end_cycle - f_stats.end_cycle) / f_stats.end_cycle
    miss_err = abs(_l1_miss_rate(s_eng) - _l1_miss_rate(f_eng))
    summary = sampling_summary(s_eng)
    rows = [
        ("sampled", f"{s_s:.3f}", f"{s_stats.end_cycle:,}"),
        ("full detail", f"{f_s:.3f}", f"{f_stats.end_cycle:,}"),
    ]
    print(render_table(
        ("configuration", "host seconds", "end cycle"),
        rows, title="\nSampled simulation (streaming scan, 2 nodes):"))
    print(f"  speedup: {speedup:.2f}x   cycle err: {cyc_err:.4f}   "
          f"L1 miss-rate err: {miss_err:.4f}")
    print(f"  windows: {summary['detail_windows']} detail / "
          f"{summary['ff_windows']} ff   ff refs: {summary['ff_refs']:,}")

    payload = {
        "workload": f"stream_scan nbytes={NBYTES} passes={PASSES}",
        "quick": QUICK,
        "sampling": {"detail_events": SAMPLING.detail_events,
                     "ff_events": SAMPLING.ff_events},
        "end_cycle_full": f_stats.end_cycle,
        "end_cycle_sampled": s_stats.end_cycle,
        "cycle_rel_err": cyc_err,
        "l1_miss_rate_abs_err": miss_err,
        "seconds_sampled": s_s,
        "seconds_full": f_s,
        "speedup": speedup,
        "windows": {"detail": summary["detail_windows"],
                    "ff": summary["ff_windows"]},
        "ff_refs": summary["ff_refs"],
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(speedup=speedup, cycle_rel_err=cyc_err)
    # accuracy first: the speedup is meaningless if the estimate is off
    assert cyc_err <= MAX_CYCLE_ERR, \
        f"cycle error {cyc_err:.4f} above bound {MAX_CYCLE_ERR}"
    assert miss_err <= MAX_MISS_ERR, \
        f"miss-rate error {miss_err:.4f} above bound {MAX_MISS_ERR}"
    assert speedup >= MIN_SPEEDUP, \
        f"sampling must be >= {MIN_SPEEDUP}x faster (got {speedup:.2f}x)"
