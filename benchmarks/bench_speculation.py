"""Optimistic speculation speedup — Time Warp windows past the rival horizon.

``SimConfig.speculate`` lets the batched hot loop run *past* the
conservative rival horizon behind a micro-checkpoint, validating after
the fact and rolling back the (rare) violations. Unlike the conservative
lookahead scan it does not pay a per-reference invisibility proof on the
hot path — the window runs first and one memoized frontier walk settles
it afterwards. Bit-identity with the strict schedule is pinned by
tests/test_speculation_equivalence.py; this bench measures what the
optimism buys on the configuration both layers target: a 4-CPU run where
every CPU streams over a private, L1-resident buffer, so the strict
path's tiny alternating batch windows are pure scheduling overhead.

Writes ``BENCH_speculation.json`` at the repo root with wall-clock
seconds and speedups for the three arms (strict serial interleaving,
conservative lookahead, optimistic speculation), a
``speculate_quantum`` sweep with commit/rollback rates on both the
private-heavy and a deliberately hostile *sharing* workload, and a
worker-tail row for the parallel engine. Asserts speculation is at
least 3x faster than the strict interleaving (1.5x under
``COMPASS_BENCH_QUICK=1``) and no slower than the lookahead arm.

Also runs standalone for CI::

    python benchmarks/bench_speculation.py --smoke

Smoke mode does a single small round, hard-fails if any arm is not
bit-identical or if speculation falls measurably behind lookahead, and
does not overwrite the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Engine, complex_backend                     # noqa: E402
from repro.core.frontend import SimProcess                    # noqa: E402
from repro.harness import render_table                        # noqa: E402

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))
NCPUS = 4
NBYTES = 8192           # per-CPU buffer: L1-resident, so warm passes stay hits
PASSES = 40 if QUICK else 150
MIN_SPEEDUP = 1.5 if QUICK else 3.0
#: host noise guard for the "no slower than lookahead" gate
LA_TOLERANCE = 0.90
SWEEP_QUANTA = (256, 1024, 4096, 16384)
OUT_PATH = REPO_ROOT / "BENCH_speculation.json"

ARMS = {
    "serial":    dict(speculate=False, lookahead=False),
    "lookahead": dict(speculate=False, lookahead=True),
    "speculate": dict(speculate=True),
}

#: worker program for the parallel tail row: re-scans a private 8 KiB buffer
HOT_PROG = """
    li r7, 0
    li r8, {passes}
    li r10, 0x100000
pass:
    li r1, 0
    li r2, 8192
loop:
    loadx r3, r10, r1, 4
    storex r3, r10, r1, 4
    addi r1, r1, 32
    blt r1, r2, loop
    addi r7, r7, 1
    blt r7, r8, pass
    li r3, 0
    halt
"""


def _run_once(cfg_kw, passes=PASSES, shared=False):
    """One 4-CPU run; returns (host seconds, engine, stats).

    ``shared=False`` is the private-heavy target configuration; with
    ``shared=True`` every CPU hammers the *same* buffer, so speculative
    windows constantly cross invalidation traffic — the hostile case
    that exercises rollback and the adaptive quantum.
    """
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=NCPUS, coherence="mesi",
                                 num_nodes=1, **cfg_kw))

    def make_private(base):
        def app(p):
            yield from p.touch(base, NBYTES, write=True, stride=32)
            for _ in range(passes):
                yield from p.touch(base, NBYTES, write=True, stride=32)
            yield from p.exit(0)
        return app

    def make_shared():
        def app(p):
            r = yield from p.call("shmget", 0xBEEF, NBYTES)
            r = yield from p.call("shmat", r.value, 0xB500_0000)
            base = r.value
            for _ in range(passes):
                yield from p.touch(base, NBYTES, write=True, stride=32)
            yield from p.exit(0)
        return app

    for c in range(NCPUS):
        eng.spawn(f"w{c}", make_shared() if shared
                  else make_private(0x1_0000 + c * 0x10_000))
    t0 = time.perf_counter()
    stats = eng.run()
    return time.perf_counter() - t0, eng, stats


def _fingerprint(eng, stats):
    return (stats.end_cycle, eng.events_processed,
            tuple(sorted(eng.memsys.cache_summary()["l1"].items())),
            dict(eng.memsys.cache_summary()["protocol"]))


def _measure(rounds, passes=PASSES):
    """Interleaved best-of-N for each arm so a host hiccup in any arm
    cannot fake (or hide) a speedup. Returns {arm: (secs, eng, stats)}."""
    best = {}
    for _ in range(rounds):
        for name, kw in ARMS.items():
            secs, eng, stats = _run_once(kw, passes)
            prev = best.get(name)
            if prev is None or secs < prev[0]:
                best[name] = (secs, eng, stats)
    return best


def _sweep_quantum(passes):
    """Commit/rollback behaviour across starting window sizes, on the
    target (private) and the hostile (sharing) workload.

    The sweep is timing-neutral by construction — the end cycle doubles
    as a correctness check across every knob value per workload.
    """
    rows = []
    for shared in (False, True):
        end_cycles = set()
        for q in SWEEP_QUANTA:
            secs, eng, stats = _run_once(
                dict(speculate=True, speculate_quantum=q), passes, shared)
            bs = eng.batch_stats
            settled = bs["sp_commits"] + bs["sp_rollbacks"]
            end_cycles.add(stats.end_cycle)
            rows.append({
                "workload": "sharing" if shared else "private",
                "quantum": q, "seconds": secs,
                "end_cycle": stats.end_cycle,
                "windows": bs["sp_windows"],
                "commits": bs["sp_commits"],
                "rollbacks": bs["sp_rollbacks"],
                "rollback_rate": (bs["sp_rollbacks"] / settled
                                  if settled else 0.0),
                "spec_refs": bs["sp_refs"],
            })
        assert len(end_cycles) == 1, \
            f"speculate_quantum changed the simulation: {sorted(end_cycles)}"
    return rows


def _worker_tail_row(passes):
    """ParallelEngine with speculative lease tails vs strict, 2 workers.

    The commit/rollback split here is wall-clock dependent (verdicts race
    real rival progress), so this row is observational — the simulated
    end cycle is still asserted identical.
    """
    from repro.host import ParallelEngine, WorkerSpec
    out = {}
    for spec in (True, False):
        SimProcess._next_pid[0] = 1
        eng = ParallelEngine(complex_backend(num_cpus=2, worker_lease=4,
                                             speculate=spec))
        with eng:
            for i in range(2):
                eng.spawn_worker(
                    WorkerSpec(f"w{i}", HOT_PROG.format(passes=passes)))
            t0 = time.perf_counter()
            stats = eng.run()
            secs = time.perf_counter() - t0
        bs = eng.batch_stats
        out[spec] = {"seconds": secs, "end_cycle": stats.end_cycle,
                     "windows": bs["sp_windows"],
                     "commits": bs["sp_commits"],
                     "rollbacks": bs["sp_rollbacks"],
                     "lease_refs": bs["lease_refs"]}
    assert out[True]["end_cycle"] == out[False]["end_cycle"], \
        "worker speculation changed the simulation"
    return {"spec_on": out[True], "spec_off": out[False]}


def _report(best, sweep=None, tails=None, write=True):
    fps = {name: _fingerprint(eng, stats)
           for name, (_, eng, stats) in best.items()}
    ref = fps["serial"]
    bit_identical = all(fp == ref for fp in fps.values())
    assert bit_identical, \
        "speculation changed the simulation:\n" + \
        "\n".join(f"  {n}: {fp}" for n, fp in fps.items())

    serial_s = best["serial"][0]
    speedups = {n: serial_s / s for n, (s, _, _) in best.items()}
    bs = best["speculate"][1].batch_stats
    settled = bs["sp_commits"] + bs["sp_rollbacks"]
    rollback_rate = bs["sp_rollbacks"] / settled if settled else 0.0

    print(render_table(
        ("configuration", "host seconds", "events/s", "speedup"),
        [(n, f"{s:.3f}", f"{eng.events_processed / s:,.0f}",
          f"{speedups[n]:.2f}x")
         for n, (s, eng, _) in best.items()],
        title="\nOptimistic-speculation speedup (4-CPU private-heavy):"))
    print(f"  windows: {bs['sp_windows']}   commits: {bs['sp_commits']}   "
          f"rollbacks: {bs['sp_rollbacks']}   "
          f"rollback rate: {rollback_rate:.1%}   "
          f"speculated refs: {bs['sp_refs']}")
    if sweep:
        print(render_table(
            ("workload", "quantum", "windows", "commits", "rollbacks",
             "rollback rate", "host s"),
            [(r["workload"], str(r["quantum"]), str(r["windows"]),
              str(r["commits"]), str(r["rollbacks"]),
              f"{r['rollback_rate']:.1%}", f"{r['seconds']:.3f}")
             for r in sweep],
            title="\nspeculate_quantum sweep:"))
    if tails:
        on, off = tails["spec_on"], tails["spec_off"]
        print(f"\nworker tails (2 workers): spec {on['seconds']:.3f}s "
              f"({on['windows']} windows, {on['commits']} commits) vs "
              f"strict leases {off['seconds']:.3f}s — identical end cycle "
              f"{on['end_cycle']}")

    payload = {
        "workload": f"private_heavy {NCPUS}cpu {NBYTES}B x{PASSES}",
        "quick": QUICK,
        "bit_identical": bit_identical,
        "end_cycle": best["speculate"][2].end_cycle,
        "events": best["speculate"][1].events_processed,
        "seconds": {n: s for n, (s, _, _) in best.items()},
        "speedup": speedups["speculate"],
        "speedup_lookahead": speedups["lookahead"],
        "sp_windows": bs["sp_windows"],
        "sp_commits": bs["sp_commits"],
        "sp_rollbacks": bs["sp_rollbacks"],
        "rollback_rate": rollback_rate,
        "sp_refs": bs["sp_refs"],
        "quantum_sweep": sweep or [],
        "worker_tails": tails or {},
    }
    if write:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return speedups, payload


def test_speculation_speedup(benchmark):
    best = benchmark.pedantic(
        lambda: _measure(2 if QUICK else 3), rounds=1, iterations=1)
    sweep = _sweep_quantum(passes=10 if QUICK else 40)
    tails = _worker_tail_row(passes=10 if QUICK else 40)
    speedups, payload = _report(best, sweep, tails)
    benchmark.extra_info.update(speedup=speedups["speculate"],
                                rollback_rate=payload["rollback_rate"])
    assert speedups["speculate"] >= MIN_SPEEDUP, \
        f"speculation must be >= {MIN_SPEEDUP}x over serial " \
        f"(got {speedups['speculate']:.2f}x)"
    assert speedups["speculate"] >= speedups["lookahead"] * LA_TOLERANCE, \
        f"speculation fell behind lookahead: " \
        f"{speedups['speculate']:.2f}x vs {speedups['lookahead']:.2f}x"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="single small round: verify bit-identity across "
                         "all three arms, report the speedups, skip the "
                         "JSON artifact")
    args = ap.parse_args(argv)
    if args.smoke:
        # best-of-2 at 40 passes: a single 20-pass round is dominated by
        # fixed per-window setup and too noisy for the relative gate
        best = _measure(rounds=2, passes=40)
        speedups, _ = _report(best, write=False)
        # smoke gates correctness (the _report identity assert) plus the
        # relative gate — speculation must not fall measurably behind the
        # conservative scan it replaces; the absolute floor needs the
        # full-size run (fixed setup costs dominate a tiny one)
        if speedups["speculate"] < speedups["lookahead"] * LA_TOLERANCE:
            print(f"FAIL: speculation {speedups['speculate']:.2f}x fell "
                  f"behind lookahead {speedups['lookahead']:.2f}x",
                  file=sys.stderr)
            return 1
        print(f"smoke ok: bit-identical, speculate "
              f"{speedups['speculate']:.2f}x vs lookahead "
              f"{speedups['lookahead']:.2f}x")
        return 0
    best = _measure(rounds=3)
    sweep = _sweep_quantum(passes=40)
    tails = _worker_tail_row(passes=40)
    speedups, _ = _report(best, sweep, tails)
    if speedups["speculate"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedups['speculate']:.2f}x < "
              f"{MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    if speedups["speculate"] < speedups["lookahead"] * LA_TOLERANCE:
        print(f"FAIL: speculation fell behind lookahead", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
