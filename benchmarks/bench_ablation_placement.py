"""Ablation A2 — NUMA page placement (paper §3.3.1).

Round-robin and block placement assign home nodes at page creation;
first-touch assigns them at first reference. For a partitioned stencil
(each worker owns a band of the grid), first-touch should localise the
band pages and cut remote reads.
"""

from dataclasses import replace

import pytest

from repro import Engine, complex_backend
from repro.apps.splash import spawn_kernel
from repro.harness import render_table


def run_placement(placement):
    cfg = complex_backend(num_cpus=4, num_nodes=4)
    cfg = replace(cfg, backend=replace(
        cfg.backend,
        memory=replace(cfg.backend.memory, placement=placement))).validate()
    eng = Engine(cfg)
    procs = spawn_kernel(eng, "ocean", 4, n=64, iters=2)
    stats = eng.run()
    assert all(p.exit_status == 0 for p in procs)
    pc = eng.memsys.protocol.counters
    local = pc.get("local_read", 0)
    remote = (pc.get("remote_read_2hop", 0) + pc.get("remote_dirty", 0)
              + pc.get("remote_dirty_3hop", 0))
    return {
        "placement": placement,
        "cycles": stats.end_cycle,
        "local": local,
        "remote": remote,
        "frac_local": local / max(1, local + remote),
    }


def test_ablation_page_placement(benchmark):
    def experiment():
        return [run_placement(p)
                for p in ("round_robin", "block", "first_touch")]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(render_table(
        ("placement", "cycles", "local reads", "remote reads", "local frac"),
        [(r["placement"], r["cycles"], r["local"], r["remote"],
          f"{r['frac_local']:.2f}") for r in rows],
        title="\nA2 — page placement on 4-node CC-NUMA (ocean 64x64):"))

    rr, blk, ft = rows
    benchmark.extra_info.update(
        first_touch_local=ft["frac_local"], round_robin_local=rr["frac_local"])
    assert ft["frac_local"] > rr["frac_local"], \
        "first-touch must localise the partitioned grid better than RR"
    assert ft["cycles"] <= rr["cycles"], \
        "better locality should not slow the kernel down"
