#!/usr/bin/env python
"""Durability-layer smoke gate: WAL cost, recovery speed, crash loop.

Measures the spool's append latency with and without fsync, the
recovery-scan throughput, and the journaling overhead the spool adds to
a supervised job run; then runs one full crash-recovery loop (SIGKILL
injected at a spool crash point, recover from the WAL, finish) and
fails unless the recovered fingerprint is bit-identical to an
undisturbed run.

Usage::

    python benchmarks/bench_spool.py --smoke    # CI gate, exit 1 on fail
    pytest benchmarks/bench_spool.py            # same checks as a test
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import CrashPointPlan, CrashRule                   # noqa: E402
from repro.service import (JobSpec, JobSpool, crash_recovery_loop,  # noqa: E402
                           final_fingerprints, run_matrix)

#: the journaled record shape the runner actually appends
SAMPLE = {"type": "attempt", "job": "bench", "state": "RETRYING",
          "retries_used": 1, "safe_pending": False, "resumes": 0,
          "preemptions": 0, "degraded": False,
          "record": {"attempt": 1, "outcome": "crashed", "detail": "x" * 40,
                     "events_processed": 4096, "wall_seconds": 0.25}}

SPEC = dict(workload="oltp", budget=4_500, checkpoint_interval=1_000,
            heartbeat_events=1_500, timeout=120.0, hang_timeout=60.0,
            max_retries=3, backoff=0.01, backoff_max=0.05)


def _bench_append(n: int, fsync: bool) -> float:
    """Median append latency in microseconds."""
    d = tempfile.mkdtemp(prefix="bench-spool-")
    try:
        spool = JobSpool(d, fsync=fsync)
        lat = []
        for _ in range(n):
            t0 = time.perf_counter()
            spool.append(SAMPLE)
            lat.append(time.perf_counter() - t0)
        spool.close()
        lat.sort()
        return lat[len(lat) // 2] * 1e6
    finally:
        shutil.rmtree(d, ignore_errors=True)


def _bench_recover(n: int) -> float:
    """Recovery-scan throughput in records per second."""
    d = tempfile.mkdtemp(prefix="bench-spool-")
    try:
        spool = JobSpool(d, fsync=False)
        for _ in range(n):
            spool.append(SAMPLE)
        spool.close()
        t0 = time.perf_counter()
        records = JobSpool(d).recover()
        dt = time.perf_counter() - t0
        assert len(records) == n
        return n / dt
    finally:
        shutil.rmtree(d, ignore_errors=True)


def _bench_runner_overhead() -> dict:
    """Wall-clock cost of journaling a real supervised run."""
    spec = JobSpec(name="bench", **SPEC)
    t0 = time.perf_counter()
    plain = run_matrix([spec], max_workers=1, poll=0.02)
    t_plain = time.perf_counter() - t0

    d = tempfile.mkdtemp(prefix="bench-spool-")
    try:
        t0 = time.perf_counter()
        spooled = run_matrix([spec], max_workers=1, poll=0.02,
                             spool_dir=os.path.join(d, "spool"),
                             workdir=os.path.join(d, "work"))
        t_spooled = time.perf_counter() - t0
    finally:
        shutil.rmtree(d, ignore_errors=True)
    assert (plain["bench"].result["fingerprint"]
            == spooled["bench"].result["fingerprint"])
    return {
        "plain_s": round(t_plain, 4),
        "spooled_s": round(t_spooled, 4),
        "overhead_pct": round(100.0 * (t_spooled - t_plain)
                              / max(t_plain, 1e-9), 2),
        "fingerprint": plain["bench"].result["fingerprint"],
    }


def smoke() -> dict:
    report: dict = {"failures": []}
    report["append_us_fsync"] = round(_bench_append(200, fsync=True), 2)
    report["append_us_nofsync"] = round(_bench_append(2_000, fsync=False), 2)
    report["recover_records_per_s"] = round(_bench_recover(2_000))

    runner = _bench_runner_overhead()
    report["runner"] = runner

    d = tempfile.mkdtemp(prefix="bench-spool-")
    try:
        plan = CrashPointPlan(rules=(
            CrashRule(site="spool:fsync", hit=4, action="kill"),), seed=1)
        records, rounds = crash_recovery_loop(
            [JobSpec(name="bench", **SPEC)], plan,
            spool_dir=os.path.join(d, "spool"),
            workdir=os.path.join(d, "work"),
            max_workers=1, poll=0.02)
    finally:
        shutil.rmtree(d, ignore_errors=True)
    report["crash_rounds"] = len(rounds)
    report["supervisor_crashed"] = bool(rounds and rounds[0]["crashed"])
    recovered_fp = final_fingerprints(records)["bench"]
    report["bit_identical"] = recovered_fp == runner["fingerprint"]
    if not report["supervisor_crashed"]:
        report["failures"].append(
            "the spool:fsync kill never fired — the crash loop gated "
            "nothing")
    if not report["bit_identical"]:
        report["failures"].append(
            "crashed-and-recovered fingerprint differs from the "
            "undisturbed run")
    if records["bench"]["state"] != "DONE":
        report["failures"].append(
            f"recovered job ended {records['bench']['state']}, want DONE")
    del runner["fingerprint"]          # keep the artifact summary-friendly
    return report


def _write_report(report) -> None:
    out = REPO_ROOT / "BENCH_spool.json"
    out.write_text(json.dumps(report, indent=2) + "\n")


def test_spool_smoke():
    report = smoke()
    _write_report(report)
    assert not report["failures"], report["failures"]
    assert report["bit_identical"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="run the CI durability gate")
    ap.parse_args(argv)

    report = smoke()
    _write_report(report)
    print(json.dumps(report, indent=2))
    if report["failures"]:
        print("SPOOL SMOKE FAILED:", file=sys.stderr)
        for f in report["failures"]:
            print(" -", f, file=sys.stderr)
        return 1
    print(f"spool smoke ok: append {report['append_us_fsync']}us fsync / "
          f"{report['append_us_nofsync']}us buffered, recovery "
          f"{report['recover_records_per_s']} rec/s, crash loop "
          f"bit-identical in {report['crash_rounds']} rounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
