"""Table 3 — Slowdown on a 4-way SMP host (paper §5).

The paper's numbers are only legible as an image, but the text states the
claim to reproduce: "COMPASS runs more than twice as fast on the SMP as on
the uniprocessor for the complex backend (after properly scaling the
execution times to the respective processor frequencies)". The mechanism
(§1): on a uniprocessor host every event costs a frontend↔backend process
context switch; on the SMP the processes sit on different CPUs and events
move through shared memory.

Two reproductions:

1. **Mechanism demonstration** — the real multi-process simulator
   (:class:`ParallelEngine`): frontends as OS processes, bit-identical
   simulated results, with the pipeline overlap measured directly. On a
   multi-core measurement host this shows the wall-clock gap; this
   container exposes a single core, so the measured gap is reported but
   not asserted.
2. **Host-cost model** — the Table 3 ratios computed from per-event costs
   measured on this host (frontend work, backend work, context-switch
   price), following the paper's own explanation of where the speedup
   comes from.
"""

import os

import pytest

from repro import Engine, complex_backend
from repro.harness import measure_slowdown, render_table
from repro.harness.hostmodel import (HostCosts, measure_context_switch,
                                     predict)
from repro.host import ParallelEngine, WorkerSpec
from repro.isa import Interpreter, Machine, assemble
from repro.isa.memory import DataMemory

#: the TPC-D-style scan kernel used as the Table 3 workload (ISA form so
#: the frontends can run as real processes)
SCAN = """
    li r1, 0
    li r2, 100000
    li r10, 0x100000
    li r6, 0
loop:
    loadx r3, r10, r1, 4
    mul r4, r3, r3
    add r4, r4, r3
    mul r5, r4, r4
    add r6, r6, r5
    xor r6, r6, r4
    addi r1, r1, 64
    blt r1, r2, loop
    li r3, 0
    halt
"""

NFRONTENDS = 4


def _run_parallel(host_cpus):
    import time
    eng = ParallelEngine(complex_backend(num_cpus=NFRONTENDS),
                         host_cpus=host_cpus)
    with eng:
        for i in range(NFRONTENDS):
            eng.spawn_worker(WorkerSpec(f"w{i}", SCAN))
        t0 = time.perf_counter()
        stats = eng.run()
        wall = time.perf_counter() - t0
    return stats.end_cycle, wall, eng.events_processed


def _component_costs(events):
    """Measure per-event frontend and backend host costs."""
    import time
    # frontend: raw interpretation per event site
    prog = assemble(SCAN, "m")
    dm = DataMemory()
    dm.map_segment(0x100000, 1 << 22)
    m = Machine(dm)
    t0 = time.perf_counter()
    Interpreter(prog, m).run_raw()
    t_fe_total = time.perf_counter() - t0
    n_events = 100000 // 64 + 1
    # backend: inline run minus the frontend share
    eng = Engine(complex_backend(num_cpus=NFRONTENDS))
    for i in range(NFRONTENDS):
        dmi = DataMemory()
        dmi.map_segment(0x100000, 1 << 22)
        eng.spawn_interpreter(
            f"w{i}", Interpreter(assemble(SCAN, f"w{i}"), Machine(dmi)))
    t0 = time.perf_counter()
    eng.run()
    inline_wall = time.perf_counter() - t0
    t_fe = t_fe_total / n_events
    t_be = max(1e-7, inline_wall / eng.events_processed - t_fe)
    return t_fe, t_be, eng.events_processed


def _dual_baseline_slowdown():
    """The ISA slowdown row quoted against *both* raw baselines — the
    generic interpreter loop and the translated closures (the honest
    analogue of COMPASS's direct-execution baseline, see
    harness/slowdown.py)."""
    def _machine():
        dm = DataMemory()
        dm.map_segment(0x100000, 1 << 22)
        return Machine(dm)

    def raw_interpreted():
        Interpreter(assemble(SCAN, "ri"), _machine()).run_raw()

    def raw_translated():
        Interpreter(assemble(SCAN, "rt"), _machine()).run_raw(translate=True)

    def sim():
        eng = Engine(complex_backend(num_cpus=1))
        eng.spawn_interpreter(
            "w0", Interpreter(assemble(SCAN, "w0"), _machine()))
        return eng.run()

    return measure_slowdown("Complex Backend", raw_interpreted, sim,
                            raw_translated_fn=raw_translated)


def test_table3_slowdown_smp(benchmark):
    def experiment():
        c1, w1, _e = _run_parallel(1)
        cn, wn, events = _run_parallel(None)   # all available CPUs
        assert c1 == cn, "host parallelism must not change simulated results"
        t_fe, t_be, ev = _component_costs(events)
        t_cs = measure_context_switch(500)
        return (w1, wn, events, HostCosts(t_fe=t_fe, t_be=t_be, t_cs=t_cs))

    w1, wn, events, costs = benchmark.pedantic(experiment, rounds=1,
                                               iterations=1)
    ncores = len(os.sched_getaffinity(0))
    raw_s = events * costs.t_fe                  # raw ≈ pure frontend work
    pred = predict("Complex Backend", events, raw_s, costs, host_cpus=4,
                   frontends=NFRONTENDS)

    print("\nTable 3 — Slowdown on 4-way SMP (reproduced):")
    print(f"  measurement host has {ncores} core(s)")
    print(render_table(
        ("", "uni host", "4-way SMP host", "SMP speedup"),
        [("measured (this host)", f"{w1:.2f}s", f"{wn:.2f}s",
          f"{w1 / wn:.2f}x" if wn else "-"),
         ("host-cost model", f"{pred.uni_seconds:.2f}s",
          f"{pred.smp_seconds:.2f}s", f"{pred.smp_speedup:.2f}x")]))
    print(f"  modeled slowdowns: uni {pred.uni_slowdown:.0f}x, "
          f"SMP {pred.smp_slowdown:.0f}x")
    print(f"  per-event costs: frontend {costs.t_fe * 1e6:.1f}µs, "
          f"backend {costs.t_be * 1e6:.1f}µs, "
          f"context switch {costs.t_cs * 1e6:.1f}µs")
    dual = _dual_baseline_slowdown()
    print(render_table(
        ("", "raw interp", "simulated", "slowdown",
         "raw translated", "slowdown"),
        [dual.row()],
        title="\n  Slowdown vs both raw baselines (1 frontend):"))
    assert dual.raw_translated_seconds < dual.raw_seconds, \
        "translated raw baseline should be the faster native mode"
    assert dual.slowdown_translated > dual.slowdown
    print("  paper claim: 'more than twice as fast on the SMP ... for the "
          "complex backend'")
    benchmark.extra_info.update(
        measured_speedup=(w1 / wn if wn else 0.0),
        modeled_speedup=pred.smp_speedup, host_cores=ncores)

    # shape assertion: the modeled 4-way speedup reproduces the >2x claim
    assert pred.smp_speedup > 2.0, (
        f"modeled SMP speedup {pred.smp_speedup:.2f}x — paper claims >2x")
    # and the parallel engine itself must be sound
    if ncores >= 4:
        assert w1 / wn > 1.2, "a multi-core host should show a real gap"
