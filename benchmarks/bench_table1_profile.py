"""Table 1 — User vs. OS time (paper §3).

Paper (4-way AIX/PowerPC SMP, CPU time excluding disk-wait idle):

    benchmark      user    OS      interrupt   kernel
    SPECWeb/Apache 14.9 %  85.1 %  37.8 %      47.3 %
    TPCD/DB2       81 %    19 %    8.6 %       10.4 %
    TPCC/DB2       79 %    21 %    14.6 %      6.4 %

plus: the web kernel time is dominated by TCP/IP calls (kwritev, kreadv,
select, connect, open, close, naccept, send) and the DB kernel time by
kwritev, kreadv, mmap, munmap, msync.

This bench regenerates the three rows on our scaled workloads and asserts
the qualitative shape: web serving is OS-dominated with heavy interrupt
time, both database workloads are user-dominated with ~10-35 % OS.
"""

import pytest

from repro.harness import profile_row, render_table, top_oscall_table

from workloads import build_tpcc_run, build_tpcd_run, build_web_run

PAPER = {
    "SPECWeb/Apache": (14.9, 85.1, 37.8, 47.3),
    "TPCD/DB2": (81.0, 19.0, 8.6, 10.4),
    "TPCC/DB2": (79.0, 21.0, 14.6, 6.4),
}


def _report(rows):
    table = render_table(
        ("benchmark", "user", "OS", "interrupt", "kernel",
         "paper(user/OS/int/kern)"),
        [r.as_tuple() + ("{}/{}/{}/{}".format(*PAPER[r.benchmark]),)
         for r in rows],
        title="\nTable 1 — User vs. OS time (reproduced):")
    print(table)


def test_table1_specweb_row(benchmark):
    def run():
        _eng, finish = build_web_run(nrequests=16)
        return finish()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    row = profile_row("SPECWeb/Apache", stats)
    _report([row])
    hot = [n for n, _p, _c in top_oscall_table(stats, 8)]
    print("  kernel time dominated by:", ", ".join(hot))
    benchmark.extra_info.update(user=row.user_pct, os=row.os_pct,
                                interrupt=row.interrupt_pct)
    # shape: OS-dominated, interrupts a large share (paper: 85.1 / 37.8)
    assert row.os_pct > 60.0
    assert 15.0 < row.interrupt_pct < 60.0
    assert set(hot[:3]) <= {"kreadv", "kwritev", "naccept", "send", "select"}


def test_table1_tpcd_row(benchmark):
    def run():
        _eng, _db, _drv, finish = build_tpcd_run(io="mmap")
        return finish()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    row = profile_row("TPCD/DB2", stats)
    _report([row])
    hot = [n for n, _p, _c in top_oscall_table(stats, 8)]
    print("  kernel time dominated by:", ", ".join(hot))
    benchmark.extra_info.update(user=row.user_pct, os=row.os_pct)
    # shape: user-dominated with a visible OS share (paper: 81 / 19)
    assert row.user_pct > 50.0
    assert 5.0 < row.os_pct < 50.0
    assert any(n in ("mmap", "msync", "__vm_fault", "kreadv") for n in hot[:4])


def test_table1_tpcc_row(benchmark):
    def run():
        _eng, _db, _drv, finish = build_tpcc_run()
        return finish()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    row = profile_row("TPCC/DB2", stats)
    _report([row])
    hot = [n for n, _p, _c in top_oscall_table(stats, 8)]
    print("  kernel time dominated by:", ", ".join(hot))
    benchmark.extra_info.update(user=row.user_pct, os=row.os_pct)
    # shape: user-dominated, OS ~10-35 % (paper: 79 / 21)
    assert row.user_pct > 60.0
    assert 5.0 < row.os_pct < 40.0
    assert set(hot[:2]) <= {"kreadv", "kwritev", "fsync"}


def test_table1_contrast_scientific(benchmark):
    """The motivating contrast (§1): a SPLASH-style kernel on the same
    machine spends almost no time in the OS."""
    from repro import Engine, complex_backend
    from repro.apps.splash import spawn_kernel

    def run():
        eng = Engine(complex_backend(num_cpus=4))
        spawn_kernel(eng, "ocean", 4, n=32, iters=3)
        return eng.run()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    row = profile_row("SPLASH/ocean", stats)
    print(f"\n  contrast: ocean kernel user={row.user_pct:.1f}% "
          f"OS={row.os_pct:.1f}% (scientific code, near-zero OS)")
    assert row.kernel_pct + row.interrupt_pct < 25.0
