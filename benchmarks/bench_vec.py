"""Vectorized batch memory path speedup.

The vec path (``SimConfig.vectorized``) classifies a whole EventBatch in
one numpy tag-compare against mirror copies of the L1 state and page
tables, and retires 100%-private-hit runs in bulk array ops instead of the
per-reference scalar loop. It is a pure host-side optimisation: simulated
results are bit-identical whether it is on or off (see
tests/test_vec_equivalence.py).

This bench measures what it buys on top of the scalar fast path, on the
same warm TPC-D Q1 scan bench_fastpath.py uses — the hit-dominated steady
state where the per-reference loop is the whole cost. Both arms run with
``fastpath=True``; the only difference is ``vectorized``.

Writes ``BENCH_vec.json`` at the repo root and asserts the vectorized
path is at least 2x faster than the scalar fast path (1.5x under
``COMPASS_BENCH_QUICK=1``, where fixed setup costs dominate short runs).
"""

import json
import os
import time
from pathlib import Path

from repro import Engine, complex_backend
from repro.apps.minidb import MiniDb, TpcdDriver, tpcd_catalog
from repro.core.frontend import SimProcess
from repro.harness import render_table, vec_summary

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))
#: 4 lineitem pages (16 KiB) — L1-resident, so warm passes stay hits
SCALE = 0.00004
#: longer than bench_fastpath's scan — the two arms here differ only in
#: the per-reference retire cost, so short runs are noise-dominated
PASSES = 30 if QUICK else 120
MIN_SPEEDUP = 1.5 if QUICK else 2.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_vec.json"


def _run_once(vectorized):
    """One warm TPC-D Q1 scan; returns (host seconds, engine, stats).

    Same workload shape as bench_fastpath._run_once: per-field predicate
    evaluation (stride 8 over 64-byte rows) re-scanning an L1-resident
    table fragment. Warm passes are uniform arithmetic streams, so the
    producer hint lets the vec path classify each batch filling once and
    replay the classification across re-fillings.
    """
    # identical pid numbering in both runs (selection tie-break input)
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=1, num_nodes=1, fastpath=True,
                                 vectorized=vectorized))
    cat = tpcd_catalog(scale=SCALE)
    db = MiniDb(eng, cat, pool_frames=128)
    db.setup()
    drv = TpcdDriver(db, nagents=1, io="read", scan_stride=8,
                     passes=PASSES)
    drv.spawn_q1(eng)
    t0 = time.perf_counter()
    stats = eng.run()
    secs = time.perf_counter() - t0
    assert drv.result is not None
    return secs, eng, stats


def test_vec_speedup(benchmark):
    def experiment():
        # interleave on/off samples and keep the best of each so a host
        # hiccup in either arm cannot fake (or hide) the speedup
        rounds = 2 if QUICK else 3
        best = {}
        for _ in range(rounds):
            for vec in (True, False):
                secs, eng, stats = _run_once(vec)
                prev = best.get(vec)
                if prev is None or secs < prev[0]:
                    best[vec] = (secs, eng, stats)
        return best[True], best[False]

    (on_s, on_eng, on_stats), (off_s, off_eng, off_stats) = \
        benchmark.pedantic(experiment, rounds=1, iterations=1)

    # the optimisation must not change the simulation
    assert on_stats.end_cycle == off_stats.end_cycle
    assert on_eng.events_processed == off_eng.events_processed

    speedup = off_s / on_s
    summary = vec_summary(on_eng)
    assert summary["vec_refs"] > 0, "vec path never engaged"
    rows = [
        ("vectorized on", f"{on_s:.3f}",
         f"{on_eng.events_processed / on_s:,.0f}"),
        ("vectorized off", f"{off_s:.3f}",
         f"{off_eng.events_processed / off_s:,.0f}"),
    ]
    print(render_table(
        ("configuration", "host seconds", "events/s"),
        rows, title="\nVectorized batch speedup (warm TPC-D scan):"))
    print(f"  speedup: {speedup:.2f}x   vec refs: {summary['vec_refs']:,} "
          f"in {summary['vec_batches']} runs   "
          f"rebuilds: {summary['vec_rebuilds']}   "
          f"declines: {summary['declines']}")

    payload = {
        "workload": f"tpcd_q1_scan scale={SCALE}",
        "quick": QUICK,
        "end_cycle": on_stats.end_cycle,
        "events": on_eng.events_processed,
        "seconds_on": on_s,
        "seconds_off": off_s,
        "events_per_sec_on": on_eng.events_processed / on_s,
        "events_per_sec_off": off_eng.events_processed / off_s,
        "speedup": speedup,
        "vec": summary,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(speedup=speedup,
                                vec_refs=summary["vec_refs"])
    assert speedup >= MIN_SPEEDUP, \
        f"vec path must be >= {MIN_SPEEDUP}x faster (got {speedup:.2f}x)"
