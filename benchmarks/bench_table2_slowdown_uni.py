"""Table 2 — Slowdown on uniprocessor (paper §5).

Paper (TPC-D query, 12 MB DB, 133 MHz PowerPC host):

                 Raw    Simple backend   Complex backend
    time (s)     52     16 149           34 841
    slowdown     1      310x             670x

Absolute slowdowns depend on host and frontend technology (ours is an
interpreted-Python simulator against a native-Python raw run); what must
reproduce is the *structure*: simulation is orders of magnitude slower than
raw execution, and the complex backend costs roughly 2x the simple backend
(paper: 670/310 = 2.16x).
"""

import pytest

from repro import Engine, complex_backend, simple_backend
from repro.apps.minidb import (MiniDb, TpcdDriver, q1_scan_raw,
                               q1_scan_raw_fast, tpcd_catalog)
from repro.harness import measure_slowdown, render_table

SCALE = 0.0004


def _sim(cfg):
    def run():
        eng = Engine(cfg)
        cat = tpcd_catalog(scale=SCALE)
        db = MiniDb(eng, cat, pool_frames=64)
        db.setup()
        drv = TpcdDriver(db, nagents=1, io="read")
        drv.spawn_q1(eng)
        stats = eng.run()
        assert drv.result == q1_scan_raw(eng.os_server.fs, cat)
        return stats
    return run


def _raw():
    """The raw run: the same query executed natively on the host (the
    numpy-vectorised scan stands in for the paper's uninstrumented native
    binary)."""
    eng = Engine(simple_backend(num_cpus=1))
    cat = tpcd_catalog(scale=SCALE)
    db = MiniDb(eng, cat, pool_frames=64)
    db.setup()
    fs = eng.os_server.fs

    def run():
        return q1_scan_raw_fast(fs, cat)
    return run


def _backend_only_cost(cfg):
    """Host seconds spent inside the backend memory system for one run —
    isolates the backend-complexity factor the paper's table varies."""
    import time
    eng = Engine(cfg)
    cat = tpcd_catalog(scale=SCALE)
    db = MiniDb(eng, cat, pool_frames=64)
    db.setup()
    drv = TpcdDriver(db, nagents=1, io="read")
    drv.spawn_q1(eng)
    ms = eng.memsys
    spent = [0.0]
    orig = ms.access

    def timed(*a, **kw):
        t0 = time.perf_counter()
        out = orig(*a, **kw)
        spent[0] += time.perf_counter() - t0
        return out

    ms.access = timed
    eng.run()
    return spent[0]


def test_table2_slowdown_uniprocessor(benchmark):
    raw = _raw()

    def experiment():
        import time
        from repro.harness.slowdown import SlowdownResult
        # the raw run is sub-millisecond: time it once (best of many) and
        # share the baseline across both rows so host jitter cannot flip
        # the comparison
        best_raw = min(
            (lambda t0=time.perf_counter(): (raw(), time.perf_counter() - t0)[1])()
            for _ in range(15))

        def timed(label, fn):
            t0 = time.perf_counter()
            stats = fn()
            return SlowdownResult(label, best_raw,
                                  time.perf_counter() - t0,
                                  stats.end_cycle, 0)

        simple = timed("Simple Backend", _sim(simple_backend(num_cpus=1)))
        cplx = timed("Complex Backend",
                     _sim(complex_backend(num_cpus=1, num_nodes=1)))
        return simple, cplx

    simple, cplx = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print(render_table(
        ("", "raw", "simulated", "slowdown", "paper"),
        [simple.row() + ("310x",), cplx.row() + ("670x",)],
        title="\nTable 2 — Slowdown on uniprocessor (reproduced):"))
    ratio = cplx.slowdown / simple.slowdown
    # best-of-3 per configuration: the probe times sub-second segments and
    # single samples jitter on a shared host
    be_simple = min(_backend_only_cost(simple_backend(num_cpus=1))
                    for _ in range(3))
    be_cplx = min(_backend_only_cost(complex_backend(num_cpus=1,
                                                     num_nodes=1))
                  for _ in range(3))
    be_ratio = be_cplx / be_simple if be_simple else 0.0
    print(f"  complex/simple total-slowdown ratio: {ratio:.2f}x "
          f"(paper: 670/310 = 2.16x)")
    print(f"  complex/simple backend-only cost ratio: {be_ratio:.2f}x "
          f"(isolates the factor the paper's table varies; our interpreted "
          f"frontend dilutes the total ratio — see EXPERIMENTS.md)")
    benchmark.extra_info.update(simple_slowdown=simple.slowdown,
                                complex_slowdown=cplx.slowdown,
                                ratio=ratio, backend_ratio=be_ratio)
    # shape assertions
    assert simple.slowdown > 100, "simulation must be orders slower than raw"
    assert cplx.sim_seconds > simple.sim_seconds, \
        "the complex backend must cost more host time than the simple one"
    assert be_ratio > 1.2, \
        "backend-only cost must show the complex-vs-simple gap"
