"""Shared workload builders for the benchmark harness.

The builders themselves moved to :mod:`repro.service.workloads` (the
control plane, golden fleet, and benches now share one registry); this
module re-exports them under their historical names. Each benchmark
regenerates one of the paper's tables (or an ablation) and prints the
reproduced rows next to the paper's numbers; workloads are scaled to keep
the full bench suite in minutes — EXPERIMENTS.md records a larger-scale
run.
"""

from __future__ import annotations

from repro.service.workloads import (build_tpcc_run, build_tpcd_run,
                                     build_web_run)

__all__ = ["build_web_run", "build_tpcd_run", "build_tpcc_run"]
