"""Shared workload builders for the benchmark harness.

Each benchmark regenerates one of the paper's tables (or an ablation) and
prints the reproduced rows next to the paper's numbers. Workloads are scaled
to keep the full bench suite in minutes; EXPERIMENTS.md records a
larger-scale run.
"""

from __future__ import annotations

import pytest

from repro import Engine, complex_backend, simple_backend
from repro.apps.minidb import (MiniDb, TpccDriver, TpcdDriver, tpcc_catalog,
                               tpcd_catalog)
from repro.apps.webserver import (TracePlayer, generate_fileset, make_trace,
                                  prefork_web_server)


def build_web_run(nrequests=20, nworkers=3, nclients=4, size_scale=0.25):
    """SPECWeb-like run ready to go: returns (engine, finisher)."""
    eng = Engine(complex_backend(num_cpus=4, coherence="mesi", num_nodes=1))
    fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=size_scale)
    trace = make_trace(fset, nrequests=nrequests, seed=3)
    workers, wstats = prefork_web_server(eng, nworkers=nworkers)
    player = TracePlayer(eng, trace, fset, nclients=nclients,
                         nworkers_to_quit=nworkers)
    player.start()

    def finish():
        stats = eng.run()
        assert player.completed == nrequests
        return stats

    return eng, finish


def build_tpcd_run(scale=0.0003, nagents=4, io="read", cfg=None,
                   pool_frames=64):
    eng = Engine(cfg if cfg is not None else complex_backend(num_cpus=4))
    cat = tpcd_catalog(scale=scale)
    db = MiniDb(eng, cat, pool_frames=pool_frames)
    db.setup()
    drv = TpcdDriver(db, nagents=nagents, io=io)
    drv.spawn_q1(eng)

    def finish():
        stats = eng.run()
        assert drv.result is not None
        return stats

    return eng, db, drv, finish


def build_tpcc_run(scale=0.01, nagents=4, tx=6, cfg=None, pool_frames=48,
                   seed=11):
    eng = Engine(cfg if cfg is not None else complex_backend(num_cpus=4))
    cat = tpcc_catalog(warehouses=1, scale=scale)
    db = MiniDb(eng, cat, pool_frames=pool_frames, seed=seed)
    db.setup()
    drv = TpccDriver(db, nagents=nagents, tx_per_agent=tx, seed=seed,
                     think_cycles=10_000)
    drv.spawn_agents(eng)

    def finish():
        stats = eng.run()
        assert drv.committed == nagents * tx
        return stats

    return eng, db, drv, finish
