"""Fast-path speedup — batched event pipeline + L1 filter.

The batched pipeline (EventBatch producers + the engine's tight consume
loop) and the L1 fast-path filter in the memory hierarchy are pure host-side
optimisations: simulated results are bit-identical (see
tests/test_fastpath_equivalence.py). This bench measures what they buy on
the paper's Table 2 workload — a TPC-D-like sequential scan on the complex
backend, the configuration where per-reference overhead dominates.

Writes ``BENCH_fastpath.json`` at the repo root with wall-clock seconds,
events/second throughput and the speedup factor; asserts the fast path is
at least 3x faster than the one-event-per-reference baseline.

Set ``COMPASS_BENCH_QUICK=1`` to run a smaller scan (useful in CI drivers;
the speedup assertion is relaxed there because fixed setup costs dominate
short runs).
"""

import json
import os
import time
from pathlib import Path

from repro import Engine, complex_backend
from repro.apps.minidb import MiniDb, TpcdDriver, tpcd_catalog
from repro.core.frontend import SimProcess
from repro.harness import fastpath_summary, render_table

QUICK = bool(os.environ.get("COMPASS_BENCH_QUICK"))
#: 4 lineitem pages (16 KiB) — L1-resident, so warm passes stay hits
SCALE = 0.00004
PASSES = 15 if QUICK else 60
MIN_SPEEDUP = 2.0 if QUICK else 3.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"


def _run_once(fastpath):
    """One warm TPC-D Q1 scan; returns (host seconds, engine, stats).

    Per-field predicate evaluation (stride 8 over 64-byte rows) with warm
    re-scan passes over an L1-resident table fragment — the hit-dominated
    steady state where the per-reference round trip dominates host time,
    i.e. the hot loop the fast path targets. (A cold out-of-cache scan is
    bounded by the full miss path, which both configurations share.)
    """
    # identical pid numbering in both runs (selection tie-break input)
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=1, num_nodes=1,
                                 fastpath=fastpath))
    cat = tpcd_catalog(scale=SCALE)
    db = MiniDb(eng, cat, pool_frames=128)
    db.setup()
    drv = TpcdDriver(db, nagents=1, io="read", scan_stride=8,
                     passes=PASSES)
    drv.spawn_q1(eng)
    t0 = time.perf_counter()
    stats = eng.run()
    secs = time.perf_counter() - t0
    assert drv.result is not None
    return secs, eng, stats


def test_fastpath_speedup(benchmark):
    def experiment():
        # interleave on/off samples and keep the best of each so a host
        # hiccup in either arm cannot fake (or hide) the speedup
        rounds = 2 if QUICK else 3
        best = {}
        for _ in range(rounds):
            for fp in (True, False):
                secs, eng, stats = _run_once(fp)
                prev = best.get(fp)
                if prev is None or secs < prev[0]:
                    best[fp] = (secs, eng, stats)
        return best[True], best[False]

    (on_s, on_eng, on_stats), (off_s, off_eng, off_stats) = \
        benchmark.pedantic(experiment, rounds=1, iterations=1)

    # the optimisation must not change the simulation
    assert on_stats.end_cycle == off_stats.end_cycle
    assert on_eng.events_processed == off_eng.events_processed

    speedup = off_s / on_s
    summary = fastpath_summary(on_eng)
    rows = [
        ("fastpath on", f"{on_s:.3f}",
         f"{on_eng.events_processed / on_s:,.0f}"),
        ("fastpath off", f"{off_s:.3f}",
         f"{off_eng.events_processed / off_s:,.0f}"),
    ]
    print(render_table(
        ("configuration", "host seconds", "events/s"),
        rows, title="\nFast-path speedup (TPC-D scan, complex backend):"))
    print(f"  speedup: {speedup:.2f}x   "
          f"L1 fast-hit rate: {summary['fast_hit_rate']:.3f}   "
          f"refs/batch: {summary['refs_per_batch']:.1f}")

    payload = {
        "workload": f"tpcd_q1_scan scale={SCALE}",
        "quick": QUICK,
        "end_cycle": on_stats.end_cycle,
        "events": on_eng.events_processed,
        "seconds_on": on_s,
        "seconds_off": off_s,
        "events_per_sec_on": on_eng.events_processed / on_s,
        "events_per_sec_off": off_eng.events_processed / off_s,
        "speedup": speedup,
        "fastpath": summary,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(speedup=speedup,
                                fast_hit_rate=summary["fast_hit_rate"])
    assert speedup >= MIN_SPEEDUP, \
        f"fast path must be >= {MIN_SPEEDUP}x faster (got {speedup:.2f}x)"
