"""Deterministic crash-point injection + the recovery acceptance gate.

Three layers, bottom up: the checkpoint generation fallback (corrupt the
newest autosave → the previous generation loads, with a quarantine
forensic record), the in-process crash-point machinery (Nth-hit rules,
once-only claims, env pickup), and the full supervisor-kill recovery
loop — every crash site, SIGKILL at the injected instant, recover from
the WAL spool, finish with a fingerprint bit-identical to an
undisturbed run.

The site × seed matrix defaults to one seed per site to keep tier-1
fast; ``COMPASS_CRASH_FULL=1`` (set by the CI crash-recovery job) runs
three seeds per site.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import (CheckpointCorruptError, CrashPointPlan, CrashRule,
                   SimulatedCrash, load_checkpoint)
from repro.checkpoint import generation_paths, write_checkpoint_file
from repro.checkpoint.manager import MAGIC as CKPT_MAGIC
from repro.core.errors import ConfigError
from repro.faults import crashpoints
from repro.service import (JobSpec, crash_recovery_loop, final_fingerprints,
                           run_matrix)

SEEDS = (1, 2, 3) if os.environ.get("COMPASS_CRASH_FULL") else (1,)

#: the supervised job the whole module crashes and recovers
SPEC = dict(workload="oltp", budget=4_500, checkpoint_interval=1_000,
            heartbeat_events=1_500, timeout=120.0, hang_timeout=60.0,
            max_retries=3, backoff=0.01, backoff_max=0.05)


def _ckpt(saves, events=100):
    return {"version": 2, "saves": saves, "events_processed": events,
            "payload": list(range(events % 7))}


class TestGenerationFallback:
    def _write_gens(self, tmp_path):
        base = str(tmp_path / "ck.pkl")
        g0, g1 = generation_paths(base)
        write_checkpoint_file(g1, _ckpt(saves=1, events=100))
        write_checkpoint_file(g0, _ckpt(saves=2, events=200))
        return base, g0, g1

    def test_newest_generation_wins(self, tmp_path):
        base, _g0, _g1 = self._write_gens(tmp_path)
        assert load_checkpoint(base)["saves"] == 2

    def test_corrupt_latest_falls_back_and_quarantines(self, tmp_path):
        base, g0, g1 = self._write_gens(tmp_path)
        blob = bytearray(open(g0, "rb").read())
        blob[-1] ^= 0xFF                      # flip a payload byte
        open(g0, "wb").write(bytes(blob))

        ck = load_checkpoint(base)
        assert ck["saves"] == 1               # fell back to the older gen
        assert os.path.exists(g0 + ".corrupt")
        assert not os.path.exists(g0)         # evidence moved aside
        record = json.loads(open(g0 + ".quarantine.json").read())
        assert record["quarantined"] == g0
        assert record["fallback"] == g1
        assert record["error"]["type"] == "CheckpointCorruptError"
        assert record["error"]["offset"] > 0

    def test_all_generations_corrupt_raises_structured(self, tmp_path):
        base, g0, g1 = self._write_gens(tmp_path)
        for g in (g0, g1):
            open(g, "r+b").write(b"XXXX")     # smash the magic
        with pytest.raises(CheckpointCorruptError) as ei:
            load_checkpoint(base)
        assert ei.value.offset == 0
        assert "magic" in ei.value.reason

    def test_truncation_never_leaks_raw_errors(self, tmp_path):
        """Cut a checkpoint at every plausible boundary: the structured
        error (or clean fallback) is the only acceptable outcome —
        no EOFError, no UnpicklingError, no struct.error."""
        base = str(tmp_path / "ck.pkl")
        g0, _ = generation_paths(base)
        write_checkpoint_file(g0, _ckpt(saves=1))
        blob = open(g0, "rb").read()
        cuts = sorted({0, 1, len(CKPT_MAGIC), len(CKPT_MAGIC) + 4,
                       len(CKPT_MAGIC) + 8, len(blob) // 2, len(blob) - 1})
        for cut in cuts:
            d = tmp_path / f"cut-{cut}"
            d.mkdir()
            dest = str(d / "ck.pkl")
            open(generation_paths(dest)[0], "wb").write(blob[:cut])
            with pytest.raises(CheckpointCorruptError) as ei:
                load_checkpoint(dest)
            assert ei.value.path == generation_paths(dest)[0]
            assert 0 <= ei.value.offset <= cut

    def test_explicit_path_stays_strict(self, tmp_path):
        """An explicit single-file path (the sampling .w<N> windows)
        never falls back to generations."""
        p = str(tmp_path / "win.w3")
        write_checkpoint_file(p, _ckpt(saves=9))
        assert load_checkpoint(p)["saves"] == 9
        open(p, "r+b").write(b"ZZZZ")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(p)


class TestCrashPointMachinery:
    def teardown_method(self):
        crashpoints.install(None)

    def test_fires_at_exactly_the_nth_hit(self):
        plan = CrashPointPlan(rules=(
            CrashRule(site="spool:append", hit=3, action="raise"),))
        crashpoints.install(plan)
        crashpoints.hit("spool:append")
        crashpoints.hit("spool:append")
        crashpoints.hit("spool:fsync")        # other sites don't count
        with pytest.raises(SimulatedCrash, match="spool:append"):
            crashpoints.hit("spool:append")

    def test_once_only_within_a_process(self):
        plan = CrashPointPlan(rules=(
            CrashRule(site="ckpt:post-fsync", hit=1, action="raise"),))
        crashpoints.install(plan)
        with pytest.raises(SimulatedCrash):
            crashpoints.hit("ckpt:post-fsync")
        crashpoints.hit("ckpt:post-fsync")    # spent: never re-fires

    def test_once_only_across_processes_via_state_dir(self, tmp_path):
        plan = CrashPointPlan(rules=(
            CrashRule(site="spool:fsync", hit=1, action="raise"),),
            state_dir=str(tmp_path))
        crashpoints.install(plan)
        with pytest.raises(SimulatedCrash):
            crashpoints.hit("spool:fsync")
        assert any(f.startswith("fired-") for f in os.listdir(tmp_path))
        # a "different process" (fresh injector, same state_dir) finds
        # the claim spent
        crashpoints.install(CrashPointPlan.from_dict(plan.to_dict()))
        crashpoints.hit("spool:fsync")

    def test_seeded_hit_range_is_deterministic(self):
        rule = CrashRule(site="spool:append", hit_range=(1, 10))
        draws = {rule.resolve_hit(seed, 0) for seed in range(20)}
        assert all(1 <= d <= 10 for d in draws)
        assert len(draws) > 3                 # the seed actually matters
        assert rule.resolve_hit(7, 0) == rule.resolve_hit(7, 0)

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown crash site"):
            CrashRule(site="spool:nope", hit=1).validate()
        with pytest.raises(ConfigError, match="exactly one"):
            CrashRule(site="spool:append").validate()

    def test_raise_during_checkpoint_write_keeps_old_generation(
            self, tmp_path):
        base = str(tmp_path / "ck.pkl")
        g0, g1 = generation_paths(base)
        write_checkpoint_file(g1, _ckpt(saves=1))
        crashpoints.install(CrashPointPlan(rules=(
            CrashRule(site="ckpt:pre-rename", hit=1, action="raise"),)))
        with pytest.raises(SimulatedCrash):
            write_checkpoint_file(g0, _ckpt(saves=2))
        crashpoints.install(None)
        assert os.path.exists(g0 + ".tmp")    # the torn write
        assert load_checkpoint(base)["saves"] == 1   # old gen still loads

    def test_env_pickup_in_fresh_process(self, tmp_path):
        plan = CrashPointPlan(rules=(
            CrashRule(site="spool:append", hit=1, action="raise"),), seed=5)
        env = dict(os.environ,
                   PYTHONPATH="src",
                   COMPASS_CRASH_POINTS=plan.to_json())
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.faults import crashpoints\n"
             "assert crashpoints.current() is not None\n"
             "try:\n"
             "    crashpoints.hit('spool:append')\n"
             "    print('NOFIRE')\n"
             "except Exception as e:\n"
             "    print(type(e).__name__)\n"],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        assert out.stdout.strip() == "SimulatedCrash", out.stderr


@pytest.fixture(scope="module")
def baseline_fingerprint():
    records = run_matrix([JobSpec(name="j", **SPEC)],
                         max_workers=1, poll=0.02)
    assert records["j"].state == "DONE"
    return records["j"].result["fingerprint"]


class TestCrashRecoveryLoop:
    """The acceptance gate: for every crash site and seed, SIGKILL at
    the injected instant — supervisor or job child, whichever holds the
    site — then recover from the spool and finish bit-identically."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("site", crashpoints.KNOWN_CRASH_SITES)
    def test_kill_recover_bit_identical(self, site, seed, tmp_path,
                                        baseline_fingerprint):
        state_dir = str(tmp_path / "crash-state")
        plan = CrashPointPlan(
            rules=(CrashRule(site=site, hit_range=(1, 4), action="kill"),),
            seed=seed, state_dir=state_dir, tag=f"{site}-{seed}")
        records, rounds = crash_recovery_loop(
            [JobSpec(name="j", **SPEC)], plan,
            spool_dir=str(tmp_path / "spool"),
            workdir=str(tmp_path / "work"),
            max_workers=1, poll=0.02)
        # the rule actually fired (otherwise this test proves nothing)
        assert any(f.startswith("fired-") for f in os.listdir(state_dir)), \
            (site, seed, rounds)
        assert records["j"]["state"] == "DONE", (rounds, records["j"])
        assert (final_fingerprints(records)["j"]
                == baseline_fingerprint), (site, seed)

    def test_clean_loop_without_plan(self, tmp_path):
        records, rounds = crash_recovery_loop(
            [JobSpec(name="j", **SPEC)],
            spool_dir=str(tmp_path / "spool"),
            workdir=str(tmp_path / "work"),
            max_workers=1, poll=0.02)
        assert len(rounds) == 1 and not rounds[0]["crashed"]
        assert records["j"]["state"] == "DONE"
