"""Memory-trace recorder and analyses."""

import pytest
from hypothesis import given, strategies as st

from repro import Engine, complex_backend
from repro.core.events import EvKind
from repro.traces import (MemTraceRecorder, footprint, miss_ratio_curve,
                          reuse_distances)


def traced_run(app, max_records=100_000):
    eng = Engine(complex_backend(num_cpus=2))
    rec = MemTraceRecorder.attach(eng, max_records=max_records)
    eng.spawn("t", app)
    eng.run()
    return eng, rec


def simple_app(proc):
    for i in range(10):
        yield from proc.store(0x10_000 + 32 * i)
    for i in range(10):
        yield from proc.load(0x10_000 + 32 * i)
    yield from proc.rmw(0x10_000)
    yield from proc.exit(0)


class TestRecorder:
    def test_records_all_memory_events(self):
        _eng, rec = traced_run(simple_app)
        kinds = [r[3] for r in rec.records]
        assert kinds.count(int(EvKind.WRITE)) >= 10
        assert kinds.count(int(EvKind.READ)) >= 10
        assert kinds.count(int(EvKind.RMW)) >= 1

    def test_cycles_nondecreasing(self):
        _eng, rec = traced_run(simple_app)
        cycles = [r[0] for r in rec.records]
        assert cycles == sorted(cycles)

    def test_latency_recorded(self):
        _eng, rec = traced_run(simple_app)
        assert all(r[6] >= 1 for r in rec.records)

    def test_cap_drops_excess(self):
        _eng, rec = traced_run(simple_app, max_records=5)
        assert len(rec) == 5
        assert rec.dropped > 0

    def test_roundtrip(self, tmp_path):
        _eng, rec = traced_run(simple_app)
        path = tmp_path / "t.memtrace"
        n = rec.save(path)
        back = MemTraceRecorder.load(path)
        assert len(back) == n
        assert [(r[0], r[3], r[4]) for r in back] == \
            [(r[0], r[3], r[4]) for r in rec.records]

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            MemTraceRecorder.load(path)


def mk(addrs, line=32):
    """Build minimal records for the analyses."""
    return [(i, 0, 1, 0, a, 4, 1, "u") for i, a in enumerate(addrs)]


class TestAnalyses:
    def test_footprint_counts_lines(self):
        recs = mk([0, 4, 32, 64, 64])
        fp = footprint(recs, line_size=32)
        assert fp["lines"] == 3
        assert fp["bytes"] == 96

    def test_footprint_spanning_access(self):
        recs = [(0, 0, 1, 0, 30, 8, 1, "u")]   # crosses a line boundary
        assert footprint(recs, line_size=32)["lines"] == 2

    def test_reuse_distance_basics(self):
        # A B A  -> A cold, B cold, A at stack distance 1
        recs = mk([0, 32, 0])
        assert reuse_distances(recs, 32) == [-1, -1, 1]

    def test_reuse_distance_immediate(self):
        recs = mk([0, 0])
        assert reuse_distances(recs, 32) == [-1, 0]

    def test_miss_ratio_monotone_in_size(self):
        import random
        rng = random.Random(5)
        recs = mk([rng.randrange(256) * 32 for _ in range(2000)])
        mrc = miss_ratio_curve(recs, 32, sizes=[8, 64, 512])
        assert mrc[8] >= mrc[64] >= mrc[512]

    def test_mrc_empty(self):
        assert miss_ratio_curve([], 32) == {}

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_reuse_distance_lru_equivalence(self, lines):
        """Cross-check: a reuse distance < S iff a size-S fully-associative
        LRU cache hits — validated against a direct LRU simulation."""
        from collections import OrderedDict
        recs = mk([l * 32 for l in lines])
        dists = reuse_distances(recs, 32)
        for S in (1, 2, 8):
            lru: "OrderedDict[int, None]" = OrderedDict()
            for i, l in enumerate(lines):
                hit = l in lru
                if hit:
                    lru.move_to_end(l)
                else:
                    lru[l] = None
                    if len(lru) > S:
                        lru.popitem(last=False)
                expected_hit = 0 <= dists[i] < S
                assert hit == expected_hit, (i, S, dists[i])
