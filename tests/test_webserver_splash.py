"""Web-server app and SPLASH kernel tests."""

import pytest

from repro import Engine, ProcState, complex_backend
from repro.apps.splash import spawn_kernel
from repro.apps.webserver import (TracePlayer, generate_fileset, make_trace,
                                  prefork_web_server)
from repro.apps.webserver.fileset import CLASS_BASE, FILES_PER_CLASS
from repro.apps.webserver.server import _parse_request, _response_header
from repro.traces import HttpRequest


def web_engine():
    return Engine(complex_backend(num_cpus=2, coherence="mesi", num_nodes=1))


class TestFileSet:
    def test_structure(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=2)
        assert len(fset.paths) == 2 * 4 * FILES_PER_CLASS
        for cls in range(4):
            assert len(fset.by_class[cls]) == 2 * FILES_PER_CLASS

    def test_sizes_match_classes(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1)
        for cls in range(4):
            for i, path in enumerate(sorted(fset.by_class[cls]), 1):
                assert fset.sizes[path] >= 64

    def test_files_exist_with_content(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.5)
        for path in fset.paths:
            node = eng.os_server.fs.lookup(path)
            assert node is not None and node.size == fset.sizes[path]

    def test_trace_weighted_and_deterministic(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1)
        t1 = make_trace(fset, 200, seed=5)
        t2 = make_trace(fset, 200, seed=5)
        assert t1 == t2
        # class 1 (50 %) should dominate class 3 (1 %)
        def cls_of(p):
            return int(p.path.split("class")[1][0])
        c1 = sum(1 for r in t1 if cls_of(r) == 1)
        c3 = sum(1 for r in t1 if cls_of(r) == 3)
        assert c1 > c3


class TestHttpPlumbing:
    def test_parse_request(self):
        assert _parse_request(b"GET /x HTTP/1.0\r\n\r\n") == "/x"
        assert _parse_request(b"POST /x HTTP/1.0\r\n\r\n") is None
        assert _parse_request(b"garbage") is None

    def test_response_header_fixed_size(self):
        from repro.apps.webserver import HEADER_BYTES
        h = _response_header(12345)
        assert len(h) == HEADER_BYTES
        assert b"12345" in h


class TestEndToEnd:
    def test_trace_served_completely(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.2)
        trace = make_trace(fset, 8, seed=1, think_mean_cycles=50_000)
        workers, wstats = prefork_web_server(eng, nworkers=2)
        player = TracePlayer(eng, trace, fset, nclients=2,
                             nworkers_to_quit=2)
        player.start()
        eng.run()
        assert player.completed == 8
        assert wstats["served"] >= 8
        assert all(w.state == ProcState.DONE for w in workers)

    def test_404_for_missing_file(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.2)
        trace = [HttpRequest(10, "/nonexistent")]
        workers, wstats = prefork_web_server(eng, nworkers=1)
        player = TracePlayer(eng, trace, fset, nclients=1,
                             nworkers_to_quit=1)
        player.start()
        eng.run()
        assert wstats.get("errors", 0) == 1

    def test_os_dominated_profile(self):
        """The paper's headline: web serving is >60 % OS time."""
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.2)
        trace = make_trace(fset, 10, seed=2)
        workers, _ = prefork_web_server(eng, nworkers=2)
        player = TracePlayer(eng, trace, fset, nclients=2,
                             nworkers_to_quit=2)
        player.start()
        stats = eng.run()
        b = stats.total_cpu().breakdown()
        assert b["os"] > 0.6
        assert stats.interrupt_cycles.get("eth:en0:rx", 0) > 0

    def test_response_time_recorded(self):
        eng = web_engine()
        fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.2)
        trace = make_trace(fset, 4, seed=3)
        prefork_web_server(eng, nworkers=1)
        player = TracePlayer(eng, trace, fset, nclients=1,
                             nworkers_to_quit=1)
        player.start()
        eng.run()
        assert len(player.response_cycles) >= 4
        assert player.mean_response_cycles() > 0


class TestSplash:
    @pytest.mark.parametrize("kind,kw", [
        ("lu", dict(n=16, block=4)),
        ("ocean", dict(n=16, iters=2)),
        ("radix", dict(nkeys=256)),
    ])
    def test_kernels_complete(self, kind, kw):
        eng = Engine(complex_backend(num_cpus=4))
        procs = spawn_kernel(eng, kind, 4, **kw)
        eng.run()
        assert all(p.exit_status == 0 for p in procs)

    def test_kernels_are_user_dominated(self):
        """The paper's premise: scientific codes spend ~no time in the OS."""
        eng = Engine(complex_backend(num_cpus=4))
        spawn_kernel(eng, "ocean", 4, n=32, iters=3)
        stats = eng.run()
        b = stats.total_cpu().breakdown()
        assert b["kernel"] + b["interrupt"] < 0.25

    def test_kernel_sharing_creates_coherence_traffic(self):
        eng = Engine(complex_backend(num_cpus=4))
        spawn_kernel(eng, "ocean", 4, n=24, iters=2)
        eng.run()
        pc = eng.memsys.protocol.counters
        assert pc.get("invalidation", 0) + pc.get("write_miss", 0) > 0

    def test_unknown_kernel_rejected(self):
        eng = Engine(complex_backend(num_cpus=2))
        with pytest.raises(ValueError):
            spawn_kernel(eng, "fft", 2)

    def test_lu_requires_divisible_block(self):
        with pytest.raises(ValueError):
            from repro.apps.splash import lu_workers
            lu_workers(2, n=10, block=4)
