"""Control-plane tests: adapter lifecycle, supervised job matrix, chaos
(SIGKILL mid-run + deterministic hang on retry -> checkpoint resume,
bit-identical), safe-mode degradation, structured failure records, and
preempt/resume."""

import json
import os

import pytest

from repro import FaultPlan, FaultRule, checkpoint_exists, complex_backend
from repro.service import (JobRunner, JobSpec, JobState, SimulatorAdapter,
                           run_matrix)
from repro.service.workloads import WORKLOADS, full_fingerprint

TIMING_PLAN = FaultPlan(rules=(
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
), seed=1998)


def _direct_fingerprint(workload, config=None, segment=None, **kw):
    """Run a description straight through the adapter (no subprocess)."""
    a = SimulatorAdapter()
    a.prepare(config=config, workload=workload, workload_kwargs=kw)
    a.run_to_completion(segment=segment)
    return a.collect()["fingerprint"]


# ---------------------------------------------------------------------------
# SimulatorAdapter
# ---------------------------------------------------------------------------

class TestSimulatorAdapter:
    def test_prepare_run_collect(self):
        a = SimulatorAdapter()
        eng = a.prepare(workload="dss")
        assert not a.running or eng.events_processed == 0
        a.run()
        out = a.collect()
        assert out["workload"] == "dss"
        assert out["events_processed"] > 0
        assert not out["running"]
        # the payload is JSON-plain and survives a round trip
        assert json.loads(json.dumps(out)) == out

    def test_matches_manual_build(self):
        """The adapter is the registry builders behind a lifecycle: same
        description, same fingerprint as building by hand."""
        from repro.core.frontend import SimProcess
        SimProcess.set_pid_counter(1)
        eng = WORKLOADS["oltp"](lambda **kw: complex_backend(**kw))
        manual = full_fingerprint(eng, eng.run())
        a = SimulatorAdapter()
        a.prepare(workload="oltp")
        a.run()
        assert a.fingerprint() == manual

    def test_bounded_runs_resume_where_they_stopped(self):
        a = SimulatorAdapter()
        a.prepare(workload="dss")
        a.run(budget=500)
        seen = a.engine.events_processed
        assert 0 < seen <= 500
        assert a.running
        a.run_to_completion(segment=500)
        assert not a.running
        assert a.engine.events_processed > seen

    def test_config_dict_faults_and_knobs(self):
        """Plain-dict configs (with the FaultPlan dict form) build the
        same simulation as live objects."""
        via_dict = _direct_fingerprint(
            "oltp", {"faults": TIMING_PLAN.to_dict(), "speculate": False})
        via_obj = _direct_fingerprint(
            "oltp", {"faults": TIMING_PLAN, "speculate": False})
        assert via_dict == via_obj

    def test_unknown_workload_refused(self):
        from repro.core.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown workload"):
            SimulatorAdapter().prepare(workload="nope")


# ---------------------------------------------------------------------------
# job matrix (happy path)
# ---------------------------------------------------------------------------

class TestJobMatrix:
    def test_matrix_runs_to_done(self, tmp_path):
        specs = [JobSpec(name=f"m-{w}", workload=w, heartbeat_events=1_500,
                         checkpoint_interval=1_500)
                 for w in ("dss", "splash")]
        recs = run_matrix(specs, workdir=str(tmp_path), max_workers=2)
        for w in ("dss", "splash"):
            rec = recs[f"m-{w}"]
            assert rec.state == JobState.DONE
            assert rec.history == ["PENDING", "RUNNING", "DONE"]
            assert rec.fingerprint == _direct_fingerprint(w, segment=1_500)
            assert json.loads(rec.to_json()) == rec.to_dict()

    def test_duplicate_names_refused(self):
        runner = JobRunner()
        runner.submit(JobSpec(name="x", workload="dss"))
        with pytest.raises(ValueError, match="duplicate"):
            runner.submit(JobSpec(name="x", workload="dss"))


# ---------------------------------------------------------------------------
# chaos: the acceptance scenario
# ---------------------------------------------------------------------------

def _chaos_spec(name, chaos, tmp_path, **kw):
    base = dict(workload="oltp", heartbeat_events=1_500,
                checkpoint_interval=1_500, max_retries=2, backoff=0.02,
                hang_timeout=0.75, timeout=120.0)
    base.update(kw)
    return JobSpec(name=name, chaos=chaos, **base)


class TestChaos:
    def test_chaos_kill_then_hang_resumes_bit_identical(self, tmp_path):
        """The acceptance gate: SIGKILL the job mid-run, then inject a
        deterministic hang on the first retry. The job must finish within
        its retry budget via checkpoint resume + backoff, bit-identical
        to an undisturbed job of the same spec."""
        undisturbed = run_matrix(
            [_chaos_spec("calm", {}, tmp_path)],
            workdir=str(tmp_path / "calm"))["calm"]
        assert undisturbed.state == JobState.DONE

        chaotic = run_matrix(
            [_chaos_spec("chaos", {"kill_at_events": 6_000,
                                   "kill_on_attempts": [1],
                                   "hang_on_attempts": [2]}, tmp_path)],
            workdir=str(tmp_path / "chaos"))["chaos"]

        assert chaotic.state == JobState.DONE
        outcomes = [a.outcome for a in chaotic.attempts]
        assert outcomes == ["crashed", "hung", "done"]
        # both failed attempts were followed by checkpoint resumes, not
        # restarts: the final attempt picked up past the kill point
        assert chaotic.resumes >= 1
        assert chaotic.attempts[-1].resumed_from_events >= 1_500
        # retry/backoff policy engaged and stayed within budget
        assert chaotic.history.count("RETRYING") == 2
        assert all(a.backoff_seconds > 0 for a in chaotic.attempts[1:])
        assert chaotic.fingerprint == undisturbed.fingerprint
        assert json.loads(chaotic.to_json()) == chaotic.to_dict()

    def test_retry_exhaustion_degrades_to_safe_mode(self, tmp_path):
        """Every optimistic attempt is killed; the job must degrade to
        the serial safe-mode attempt and still produce the canonical
        fingerprint (the optimistic knobs are bit-identical)."""
        undisturbed = run_matrix(
            [_chaos_spec("calm", {}, tmp_path, max_retries=1)],
            workdir=str(tmp_path / "calm"))["calm"]
        rec = run_matrix(
            [_chaos_spec("deg", {"kill_at_events": 4_000,
                                 "kill_on_attempts": [1, 2]}, tmp_path,
                         max_retries=1)],
            workdir=str(tmp_path / "deg"))["deg"]
        assert rec.state == JobState.DEGRADED
        assert rec.degraded
        assert [a.safe_mode for a in rec.attempts] == [False, False, True]
        assert rec.attempts[-1].outcome == "done"
        assert rec.fingerprint == undisturbed.fingerprint
        assert rec.history[-1] == "DEGRADED"

    def test_exhausted_job_fails_with_structured_record(self, tmp_path):
        """No fallback: the terminal record is FAILED, JSON-serializable,
        and carries the last structured error."""
        rec = run_matrix(
            [_chaos_spec("fail", {"crash_on_attempts": [1, 2]}, tmp_path,
                         max_retries=1, safe_mode_fallback=False,
                         checkpoint_interval=0)],
            workdir=str(tmp_path / "fail"))["fail"]
        assert rec.state == JobState.FAILED
        assert rec.error is not None
        assert rec.error["last_error"]["type"] == "RuntimeError"
        assert "chaos" in rec.error["last_error"]["message"]
        assert rec.error["retries_used"] == 2
        assert rec.fingerprint is None
        assert json.loads(rec.to_json()) == rec.to_dict()

    def test_timeout_enforced(self, tmp_path):
        rec = run_matrix(
            [JobSpec(name="slow", workload="oltp", timeout=0.01,
                     hang_timeout=30.0, max_retries=0,
                     safe_mode_fallback=False, checkpoint_interval=0)],
            workdir=str(tmp_path))["slow"]
        assert rec.state == JobState.FAILED
        assert rec.attempts[0].outcome == "timeout"


# ---------------------------------------------------------------------------
# preempt / resume
# ---------------------------------------------------------------------------

class TestPreemptResume:
    def test_preempt_resumes_from_autosave(self, tmp_path):
        undisturbed = run_matrix(
            [_chaos_spec("calm", {}, tmp_path)],
            workdir=str(tmp_path / "calm"))["calm"]

        runner = JobRunner(workdir=str(tmp_path / "pre"))
        runner.submit(_chaos_spec("pre", {}, tmp_path))
        for _ in range(2_000):
            runner.step(timeout=0.02)
            act = runner._active.get("pre")
            if act is not None and act.events >= 3_000:
                break
        else:
            pytest.fail("job never progressed to the preemption point")
        runner.preempt("pre")
        rec = runner.queue.get("pre")
        while rec.state != JobState.PREEMPTED:
            runner.step(timeout=0.02)
        assert rec.preemptions == 1
        assert checkpoint_exists(runner._ckpt_path("pre"))
        # held: the runner is idle until the caller resumes the job
        assert runner.run() == {"pre": rec}
        assert rec.state == JobState.PREEMPTED

        runner.resume("pre")
        runner.run()
        assert rec.state == JobState.DONE
        assert rec.resumes == 1
        assert rec.attempts[-1].resumed_from_events >= 1_500
        # a preemption consumed no retry budget
        assert "RETRYING" not in rec.history
        assert rec.fingerprint == undisturbed.fingerprint
