"""Instrumentor pass and trace-file tests."""

import pytest

from repro.core.errors import InstrumentationError
from repro.instrument import (exclude_regions, instrument_program,
                              rename_oscalls, report)
from repro.isa import Op, assemble
from repro.traces import HttpRequest, load_trace, save_trace


SRC = """
    li r1, 0
    li r2, 8
    li r10, 0x1000
loop:
    loadx r3, r10, r1, 4
    addi r3, r3, 1
    storex r3, r10, r1, 4
    addi r1, r1, 4
    blt r1, r2, loop
    syscall open, 2
    lock r5
    unlock r5
    halt
"""


class TestInstrument:
    def test_report_counts_sites(self):
        rep = report(assemble(SRC))
        assert rep.n_mem_sites == 2
        assert rep.n_oscall_sites == 1
        assert rep.n_sync_sites == 2
        assert rep.n_blocks >= 3
        assert rep.size_growth > 1.0

    def test_instrument_sets_block_costs(self):
        from repro.isa.timing import block_cost
        p = assemble(SRC)
        for b in p.blocks:
            b.cost = 0
        instrument_program(p)
        assert all(b.cost == block_cost(b.instrs) for b in p.blocks)
        assert sum(b.cost for b in p.blocks) > 0

    def test_exclude_region_wraps_simoff(self):
        p = assemble(SRC)
        exclude_regions(p, ["loop"])
        blk = p.block_of("loop")
        assert blk.instrs[0].op == Op.SIMOFF
        assert any(i.op == Op.SIMON for i in blk.instrs)
        # the SIMON precedes the terminating branch
        assert blk.instrs[-1].op == Op.BLT

    def test_exclude_unknown_label_raises(self):
        p = assemble(SRC)
        with pytest.raises(InstrumentationError):
            exclude_regions(p, ["nope"])

    def test_excluded_region_generates_no_events(self):
        from repro.isa import Interpreter, Machine
        from repro.isa.memory import DataMemory
        from repro.core.events import EvKind

        p = assemble(SRC)
        exclude_regions(p, ["loop"])
        dm = DataMemory()
        dm.map_segment(0x1000, 4096)
        gen = Interpreter(p, Machine(dm)).run()
        kinds = []
        try:
            e = next(gen)
            while True:
                kinds.append(e.kind)
                from repro.core.events import SyscallResult
                e = gen.send(SyscallResult(0) if e.kind == EvKind.SYSCALL
                             else 1)
        except StopIteration:
            pass
        assert EvKind.READ not in kinds and EvKind.WRITE not in kinds
        assert EvKind.SYSCALL in kinds   # outside the excluded region

    def test_rename_oscalls(self):
        p = assemble(SRC)
        rename_oscalls(p, {"open": "compass_open"})
        names = [i.a for b in p.blocks for i in b.instrs
                 if i.op == Op.SYSCALL]
        assert names == ["compass_open"]


class TestTraces:
    def test_roundtrip(self, tmp_path):
        reqs = [HttpRequest(100, "/a"), HttpRequest(0, "/b c")]
        path = tmp_path / "t.trace"
        assert save_trace(reqs, path) == 2
        back = load_trace(path)
        assert back == reqs

    def test_request_bytes_wire_format(self):
        r = HttpRequest(5, "/x")
        assert r.request_bytes() == b"GET /x HTTP/1.0\r\n\r\n"

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n10 /a\n")
        assert load_trace(path) == [HttpRequest(10, "/a")]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("justonefield\n")
        with pytest.raises(ValueError):
            load_trace(path)
