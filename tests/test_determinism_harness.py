"""Determinism guarantees and harness utilities."""

import pytest

from repro import Engine, FaultPlan, complex_backend
from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
from repro.apps.splash import spawn_kernel
from repro.core.frontend import SimProcess
from repro.harness import (ProfileRow, measure_slowdown, profile_row,
                           render_table, top_oscall_table)
from repro.service.workloads import WORKLOADS, fingerprint


def run_tpcc(seed):
    eng = Engine(complex_backend(num_cpus=2))
    db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16, seed=seed)
    db.setup()
    drv = TpccDriver(db, nagents=2, tx_per_agent=3, seed=seed,
                     think_cycles=5_000, user_work=20_000)
    drv.spawn_agents(eng)
    stats = eng.run()
    return stats.end_cycle, eng.events_processed, stats.total_cpu().busy


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert run_tpcc(3) == run_tpcc(3)

    def test_different_seeds_differ(self):
        assert run_tpcc(3) != run_tpcc(4)

    def test_splash_deterministic(self):
        def once():
            eng = Engine(complex_backend(num_cpus=4))
            spawn_kernel(eng, "radix", 4, nkeys=512)
            st = eng.run()
            return st.end_cycle, eng.events_processed
        assert once() == once()


# the canonical builders/fingerprints live in the service workload
# registry now; this module keeps the historical names the equivalence
# and checkpoint suites import
FAULT_OFF_WORKLOADS = dict(WORKLOADS)
_fingerprint = fingerprint


class TestFaultsOffBitIdentity:
    """``faults=None`` and an empty ``FaultPlan`` must be the *same*
    simulation: no RNG draws, no hooks, bit-identical statistics."""

    @pytest.mark.parametrize("name", sorted(FAULT_OFF_WORKLOADS))
    def test_empty_plan_is_no_plan(self, name):
        build = FAULT_OFF_WORKLOADS[name]

        def run(faults):
            SimProcess._next_pid[0] = 1
            eng = build(lambda **kw: complex_backend(faults=faults, **kw))
            stats = eng.run()
            return _fingerprint(eng, stats), eng

        fp_none, eng_none = run(None)
        fp_empty, eng_empty = run(FaultPlan())
        assert fp_none == fp_empty
        # disabled means *disabled*: nothing fired, nothing was drawn
        for eng in (eng_none, eng_empty):
            assert not eng.faults.enabled
            assert eng.faults.stats.draws == 0
            assert eng.faults.stats.total_fired == 0
            assert eng.stats.get("faults_injected") == 0


class TestProfileRow:
    def test_percentages_sum(self):
        eng = Engine(complex_backend(num_cpus=2))
        eng.os_server.fs.create("/f", b"x" * 8192)

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            yield from proc.call("kreadv", r.value, 0x100000, 8192)
            proc.compute(100_000)
            yield from proc.advance()
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        row = profile_row("x", stats)
        assert row.user_pct + row.os_pct == pytest.approx(100.0)
        assert row.os_pct == pytest.approx(
            row.interrupt_pct + row.kernel_pct)

    def test_empty_stats_profile(self):
        from repro.core.stats import StatsRegistry
        row = profile_row("empty", StatsRegistry(1))
        assert row.user_pct == 0.0

    def test_top_oscall_table(self):
        eng = Engine(complex_backend(num_cpus=1))
        eng.os_server.fs.create("/f", b"x" * 4096)

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            yield from proc.call("kreadv", r.value, 0x100000, 4096)
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        table = top_oscall_table(stats, 3)
        assert table and table[0][1] > 0
        names = [t[0] for t in table]
        assert "kreadv" in names


class TestSlowdown:
    def test_measure_slowdown(self):
        def raw():
            return sum(range(2000))

        def sim():
            eng = Engine(complex_backend(num_cpus=1))

            def app(proc):
                for _ in range(50):
                    yield from proc.store(0x10_000)
                yield from proc.exit(0)

            eng.spawn("a", app)
            return eng.run()

        res = measure_slowdown("t", raw, sim)
        assert res.raw_seconds > 0 and res.sim_seconds > 0
        assert res.slowdown == pytest.approx(
            res.sim_seconds / res.raw_seconds)
        assert res.simulated_cycles > 0
        # no translated baseline passed: not measured, row stays short
        assert res.raw_translated_seconds == 0.0
        assert res.slowdown_translated == 0.0
        assert len(res.row()) == 4

    def test_measure_slowdown_dual_baseline(self):
        def raw():
            return sum(range(2000))

        def raw_translated():
            return sum(range(500))

        def sim():
            eng = Engine(complex_backend(num_cpus=1))

            def app(proc):
                for _ in range(10):
                    yield from proc.store(0x10_000)
                yield from proc.exit(0)

            eng.spawn("a", app)
            return eng.run()

        res = measure_slowdown("t", raw, sim,
                               raw_translated_fn=raw_translated)
        assert res.raw_translated_seconds > 0
        assert res.slowdown_translated == pytest.approx(
            res.sim_seconds / res.raw_translated_seconds)
        # the translated baseline is faster, so its slowdown factor is larger
        assert len(res.row()) == 6


class TestRenderTable:
    def test_alignment(self):
        out = render_table(("a", "bbbb"), [(1, 2), (333, 4)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        out = render_table(("x",), [])
        assert "x" in out


class TestStatsRegistry:
    def test_counters(self):
        from repro.core.stats import StatsRegistry
        s = StatsRegistry(1)
        s.counter("foo").add(3)
        s.counter("foo").add(2, key="a")
        assert s.get("foo") == 5
        assert s.counters["foo"].by_key == {"a": 2}
        assert s.get("missing") == 0

    def test_snapshot_keys(self):
        from repro.core.stats import StatsRegistry
        s = StatsRegistry(2)
        s.cpu[0].user = 10
        snap = s.snapshot()
        assert {"end_cycle", "cpu", "counters",
                "top_syscalls"} <= set(snap)

    def test_breakdown_of_idle_cpu(self):
        from repro.core.stats import CpuTimeStats
        c = CpuTimeStats()
        assert c.breakdown()["os"] == 0.0
        c.user = 50
        c.kernel = 30
        c.interrupt = 20
        b = c.breakdown()
        assert b["user"] == pytest.approx(0.5)
        assert b["os"] == pytest.approx(0.5)
