"""Event vocabulary tests."""

from repro.core import events as ev


def test_memory_kinds_set():
    assert ev.EvKind.READ in ev.MEMORY_KINDS
    assert ev.EvKind.WRITE in ev.MEMORY_KINDS
    assert ev.EvKind.RMW in ev.MEMORY_KINDS
    assert ev.EvKind.SYSCALL not in ev.MEMORY_KINDS


def test_read_constructor():
    e = ev.read(0x1000, 8)
    assert e.kind == ev.EvKind.READ
    assert e.addr == 0x1000
    assert e.size == 8
    assert e.mode == "user"
    assert not e.kernel


def test_syscall_constructor_packs_args():
    e = ev.syscall("open", "/x", 2)
    assert e.kind == ev.EvKind.SYSCALL
    assert e.arg == ("open", ("/x", 2))


def test_barrier_constructor():
    e = ev.barrier(3, 4)
    assert e.arg == (3, 4)


def test_exit_event_status():
    assert ev.exit_event(7).arg == 7


def test_syscall_result_ok():
    assert ev.SyscallResult(5).ok
    assert not ev.SyscallResult(-1, ev.ENOENT).ok


def test_syscall_result_data_payload():
    r = ev.SyscallResult(3, data=b"abc")
    assert r.data == b"abc"


def test_errno_names_cover_values():
    assert ev.ERRNO_NAMES[ev.ENOENT] == "ENOENT"
    assert ev.ERRNO_NAMES[ev.EBADF] == "EBADF"


def test_event_defaults():
    e = ev.advance()
    assert e.addr == 0 and e.size == 0 and e.arg is None
    assert e.time == 0 and e.pid == -1


def test_event_batch_kind_protocol():
    b = ev.EventBatch()
    assert b.kind == ev.EvKind.BATCH
    assert b.arg is None
    assert b.n == 0 and b.cursor == 0 and b.total == 0


def test_event_batch_append_and_reset():
    b = ev.EventBatch()
    b.append(int(ev.EvKind.READ), 0x100, 4, 10)
    b.append(int(ev.EvKind.WRITE), 0x200, 8, 0)
    assert b.n == 2
    assert b.kinds == [0, 1]
    assert b.addrs == [0x100, 0x200]
    assert b.sizes == [4, 8]
    assert b.pendings == [10, 0]
    b.cursor = 1
    b.total = 99
    b.depth = 3
    b.reset()
    assert b.n == 0 and b.cursor == 0 and b.total == 0 and b.depth == 0
    assert not b.kinds and not b.addrs and not b.sizes and not b.pendings


def test_batch_pool_reuses_released_objects():
    ev._batch_pool.clear()
    b = ev.acquire_batch()
    b.append(0, 0x10, 4, 0)
    ev.release_batch(b)
    assert b.n == 0          # released batches come back clean
    again = ev.acquire_batch()
    assert again is b
    ev.release_batch(again)


def test_batch_pool_is_bounded():
    ev._batch_pool.clear()
    batches = [ev.acquire_batch() for _ in range(ev._BATCH_POOL_MAX + 8)]
    for b in batches:
        ev.release_batch(b)
    assert len(ev._batch_pool) == ev._BATCH_POOL_MAX


def test_batch_cap_is_sane():
    # BATCH_CAP bounds producer run-ahead; engine logic assumes >= 1
    assert ev.BATCH_CAP >= 1
