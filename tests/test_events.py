"""Event vocabulary tests."""

from repro.core import events as ev


def test_memory_kinds_set():
    assert ev.EvKind.READ in ev.MEMORY_KINDS
    assert ev.EvKind.WRITE in ev.MEMORY_KINDS
    assert ev.EvKind.RMW in ev.MEMORY_KINDS
    assert ev.EvKind.SYSCALL not in ev.MEMORY_KINDS


def test_read_constructor():
    e = ev.read(0x1000, 8)
    assert e.kind == ev.EvKind.READ
    assert e.addr == 0x1000
    assert e.size == 8
    assert e.mode == "user"
    assert not e.kernel


def test_syscall_constructor_packs_args():
    e = ev.syscall("open", "/x", 2)
    assert e.kind == ev.EvKind.SYSCALL
    assert e.arg == ("open", ("/x", 2))


def test_barrier_constructor():
    e = ev.barrier(3, 4)
    assert e.arg == (3, 4)


def test_exit_event_status():
    assert ev.exit_event(7).arg == 7


def test_syscall_result_ok():
    assert ev.SyscallResult(5).ok
    assert not ev.SyscallResult(-1, ev.ENOENT).ok


def test_syscall_result_data_payload():
    r = ev.SyscallResult(3, data=b"abc")
    assert r.data == b"abc"


def test_errno_names_cover_values():
    assert ev.ERRNO_NAMES[ev.ENOENT] == "ENOENT"
    assert ev.ERRNO_NAMES[ev.EBADF] == "EBADF"


def test_event_defaults():
    e = ev.advance()
    assert e.addr == 0 and e.size == 0 and e.arg is None
    assert e.time == 0 and e.pid == -1
