"""Simulated file system and buffer cache tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import OSError_
from repro.osim.buffercache import BufferCache
from repro.osim.filesystem import BLOCK_SIZE, FileSystem


class TestFileSystem:
    def test_create_and_read(self):
        fs = FileSystem()
        node = fs.create("/a/b", b"hello world")
        assert fs.read(node.ino, 0, 5) == b"hello"
        assert fs.read(node.ino, 6, 100) == b"world"

    def test_create_duplicate_rejected(self):
        fs = FileSystem()
        fs.create("/x")
        with pytest.raises(OSError_):
            fs.create("/x")

    def test_write_extends(self):
        fs = FileSystem()
        node = fs.create("/x")
        fs.write(node.ino, 10, b"abc")
        assert node.size == 13
        assert fs.read(node.ino, 0, 10) == b"\0" * 10

    def test_overwrite_in_place(self):
        fs = FileSystem()
        node = fs.create("/x", b"aaaa")
        fs.write(node.ino, 1, b"bb")
        assert bytes(node.data) == b"abba"

    def test_truncate_both_ways(self):
        fs = FileSystem()
        node = fs.create("/x", b"abcdef")
        fs.truncate(node.ino, 3)
        assert node.size == 3
        fs.truncate(node.ino, 6)
        assert bytes(node.data) == b"abc\0\0\0"

    def test_unlink(self):
        fs = FileSystem()
        node = fs.create("/x")
        fs.unlink("/x")
        assert not fs.exists("/x")
        with pytest.raises(OSError_):
            fs.inode(node.ino)

    def test_unlink_missing_raises(self):
        fs = FileSystem()
        with pytest.raises(OSError_):
            fs.unlink("/nope")

    def test_extents_do_not_overlap(self):
        fs = FileSystem()
        a = fs.create("/a", b"x" * 10_000)
        b = fs.create("/b", b"y" * 10_000)
        a_end = a.disk_base + a.nblocks() * BLOCK_SIZE
        assert b.disk_base >= a_end

    def test_disk_offset_sequential(self):
        fs = FileSystem()
        node = fs.create("/a", b"x" * (3 * BLOCK_SIZE))
        assert node.disk_offset(1) - node.disk_offset(0) == BLOCK_SIZE

    def test_paths_listing(self):
        fs = FileSystem()
        fs.create("/b")
        fs.create("/a")
        assert fs.paths() == ["/a", "/b"]

    def test_read_past_eof_empty(self):
        fs = FileSystem()
        node = fs.create("/x", b"ab")
        assert fs.read(node.ino, 5, 10) == b""


class TestBufferCache:
    def test_miss_then_hit(self):
        bc = BufferCache(nbufs=4)
        assert bc.lookup(1, 0) is None
        slot, ev = bc.install(1, 0)
        assert ev is None
        assert bc.lookup(1, 0) == slot
        assert bc.hits == 1 and bc.misses == 1

    def test_lru_eviction_order(self):
        bc = BufferCache(nbufs=2)
        bc.install(1, 0)
        bc.install(1, 1)
        bc.lookup(1, 0)
        _slot, ev = bc.install(1, 2)
        assert ev == (1, 1, False)
        assert bc.resident(1, 0) and not bc.resident(1, 1)

    def test_dirty_eviction_flagged(self):
        bc = BufferCache(nbufs=1)
        bc.install(1, 0)
        bc.mark_dirty(1, 0)
        _slot, ev = bc.install(1, 1)
        assert ev == (1, 0, True)
        assert bc.dirty_evictions == 1

    def test_install_existing_is_promote(self):
        bc = BufferCache(nbufs=2)
        s1, _ = bc.install(1, 0)
        s2, ev = bc.install(1, 0)
        assert s1 == s2 and ev is None
        assert bc.occupancy == 1

    def test_clean_clears_dirty(self):
        bc = BufferCache(nbufs=2)
        bc.install(1, 0)
        bc.mark_dirty(1, 0)
        assert bc.is_dirty(1, 0)
        bc.clean(1, 0)
        assert not bc.is_dirty(1, 0)

    def test_dirty_blocks_of_sorted(self):
        bc = BufferCache(nbufs=8)
        for blk in (3, 1, 2):
            bc.install(7, blk)
            bc.mark_dirty(7, blk)
        bc.install(9, 0)
        bc.mark_dirty(9, 0)
        assert bc.dirty_blocks_of(7) == [(7, 1), (7, 2), (7, 3)]

    def test_addresses_distinct_per_slot(self):
        bc = BufferCache(nbufs=4, bsize=4096)
        addrs = {bc.data_addr(i) for i in range(4)}
        assert len(addrs) == 4
        assert all(a % 4096 == 0 for a in addrs)

    def test_zero_bufs_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(nbufs=0)

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(1, 3), st.integers(0, 9)),
                    min_size=1, max_size=100))
    def test_occupancy_bounded_and_mru_resident(self, refs):
        bc = BufferCache(nbufs=4)
        last = None
        for ino, blk in refs:
            if bc.lookup(ino, blk) is None:
                bc.install(ino, blk)
            last = (ino, blk)
            assert bc.occupancy <= 4
            assert bc.resident(*last)
