"""OS-server registry, extensibility (§3.1) and Sys helper tests."""

import pytest

from repro import Engine, complex_backend
from repro.core import events as ev
from repro.core.errors import OSError_
from repro.osim import kmem
from repro.osim.server import (FdEntry, OSServer, Sys, SYSCALL_ENTRY_CYCLES,
                               syscall_handler)


class TestRegistry:
    def test_builtin_calls_registered(self, engine2):
        names = engine2.os_server.syscall_names()
        for n in ('open', 'close', 'kreadv', 'kwritev', 'statx', 'mmap',
                  'munmap', 'msync', 'socket', 'naccept', 'select', 'send',
                  'recv', 'connect', 'shmget', 'shmat', 'shmdt', 'getpid',
                  'nanosleep', 'sigaction', 'kill'):
            assert n in names

    def test_categories_valid(self, engine2):
        for name in engine2.os_server.syscall_names():
            cat, fn = engine2.os_server.lookup(name)
            assert cat in (1, 2) and callable(fn)

    def test_register_new_category2_service(self, engine2):
        """§3.1: 'When new OS services are to be supported, they can be
        added to the existing OS server'."""
        def sys_double(engine, proc, x):
            return ev.SyscallResult(2 * x), 50

        engine2.os_server.register("double", 2, sys_double)
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("double", 21)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["r"].value == 42

    def test_register_new_category1_service(self, engine2):
        def sys_touchk(sys: Sys, n: int):
            sys.entry()
            for i in range(n):
                yield from sys.k.store(kmem.PROC_TABLE + 64 * i)
            return sys.result(n)

        engine2.os_server.register("touchk", 1, sys_touchk)
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("touchk", 5)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        stats = engine2.run()
        assert out["r"].value == 5
        assert stats.syscall_cycles["touchk"] > 0

    def test_replace_existing_service(self, engine2):
        """Stub redirection (§4 step 3): a renamed/replacement service."""
        def fake_getpid(engine, proc):
            return ev.SyscallResult(-99), 10

        engine2.os_server.register("getpid", 2, fake_getpid)
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("getpid")
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["r"].value == -99

    def test_bad_category_rejected(self, engine2):
        with pytest.raises(OSError_):
            engine2.os_server.register("x", 3, lambda: None)


class TestFdTable:
    def test_alloc_starts_at_3(self, engine2):
        srv = engine2.os_server
        srv._fdtables.setdefault(99, {})
        fd = srv.fd_alloc(99, FdEntry("file", ino=1))
        assert fd == 3

    def test_alloc_fills_gaps(self, engine2):
        srv = engine2.os_server
        srv._fdtables.setdefault(99, {})
        a = srv.fd_alloc(99, FdEntry("file", ino=1))
        b = srv.fd_alloc(99, FdEntry("file", ino=2))
        srv.fd_close(99, a)
        c = srv.fd_alloc(99, FdEntry("file", ino=3))
        assert c == a

    def test_entry_lookup_and_close(self, engine2):
        srv = engine2.os_server
        srv._fdtables.setdefault(99, {})
        fd = srv.fd_alloc(99, FdEntry("socket", sid=7))
        assert srv.fd_entry(99, fd).sid == 7
        assert srv.fd_close(99, fd).sid == 7
        assert srv.fd_entry(99, fd) is None


class TestKmem:
    def test_regions_disjoint(self):
        spots = [kmem.buf_hdr_addr(0), kmem.buf_data_addr(0, 4096),
                 kmem.mbuf_addr(0), kmem.socket_cb_addr(0),
                 kmem.kstack_addr(0), kmem.file_entry_addr(0)]
        assert len(set(a >> 24 for a in spots)) == len(spots)

    def test_all_above_kernel_base(self):
        from repro.mem.pagetable import KERNEL_BASE
        for a in (kmem.buf_hdr_addr(10), kmem.buf_data_addr(3, 4096),
                  kmem.mbuf_addr(77), kmem.socket_cb_addr(5),
                  kmem.kstack_addr(2), kmem.file_entry_addr(123)):
            assert a >= KERNEL_BASE

    def test_slots_distinct(self):
        assert kmem.buf_hdr_addr(1) != kmem.buf_hdr_addr(2)
        assert kmem.kstack_addr(1) - kmem.kstack_addr(0) == kmem.KSTACK_SIZE


class TestSysContext:
    def test_entry_charges_pending(self, engine2):
        def app(proc):
            sys = engine2.os_server.context_for(proc.process)
            before = proc.process.clock.pending
            sys.entry()
            assert proc.process.clock.pending - before == SYSCALL_ENTRY_CYCLES
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()

    def test_copy_block_event_count(self, engine2):
        counted = {}

        def app(proc):
            sys = engine2.os_server.context_for(proc.process)
            before = engine2.events_processed
            yield from sys.copy_block(kmem.BUFCACHE_DATA, 0x100000, 1024)
            counted["n"] = None
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        # 1024/32-byte lines = 32 lines, read+write each = 64 memory events
        line = engine2.cfg.backend.l1.line_size
        assert engine2.stats.counters == engine2.stats.counters  # smoke
        assert 1024 // line * 2 <= engine2.events_processed
