"""Coherence protocol tests: MESI, directory, COMA, DSM — plus
cross-protocol invariants checked with hypothesis-generated traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import complex_backend, simple_backend
from repro.core.stats import StatsRegistry
from repro.mem.cache import LineState
from repro.mem.hierarchy import MemorySystem


def make_ms(coherence="directory", cpus=4, nodes=2):
    if coherence == "none":
        cfg = simple_backend(num_cpus=cpus)
    else:
        cfg = complex_backend(num_cpus=cpus, num_nodes=nodes,
                              coherence=coherence)
    ms = MemorySystem(cfg, StatsRegistry(cpus), minor_fault_cycles=0)
    for pid in (1,):
        ms.vmm.new_space(pid)
        ms.vmm.map_anon(pid, 0x10000, 1 << 26)
    return ms


def acc(ms, addr, write=False, cpu=0, now=0):
    lat, fault = ms.access(1, addr, 4, write, cpu, now)
    assert fault is None
    return lat


ALL_PROTOCOLS = ["none", "mesi", "directory", "coma", "dsm"]


@pytest.mark.parametrize("proto", ALL_PROTOCOLS)
def test_hit_faster_than_miss(proto):
    ms = make_ms(proto)
    cold = acc(ms, 0x20000)
    warm = acc(ms, 0x20000, now=1000)
    assert warm < cold


@pytest.mark.parametrize("proto", ["mesi", "directory", "coma", "dsm"])
def test_remote_write_invalidates_reader(proto):
    ms = make_ms(proto)
    acc(ms, 0x20000, cpu=0)
    l1_0 = ms.l1s[0]
    line = l1_0.line_of(ms.vmm.translate(1, 0x20000, False, 0)[0])
    assert l1_0.probe(line) is not None
    acc(ms, 0x20000, write=True, cpu=1, now=100)
    assert l1_0.probe(line) is None   # reader's copy dropped


def test_private_protocol_ignores_peers():
    ms = make_ms("none", cpus=2)
    acc(ms, 0x20000, cpu=0)
    paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
    line = ms.l1s[0].line_of(paddr)
    acc(ms, 0x20000, write=True, cpu=1, now=50)
    assert ms.l1s[0].probe(line) is not None   # by design: no snooping


class TestMesi:
    def test_first_reader_gets_exclusive(self):
        ms = make_ms("mesi", nodes=1)
        acc(ms, 0x20000, cpu=0)
        paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
        line = ms.l1s[0].line_of(paddr)
        assert ms.l2s[0].probe(line) == LineState.EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self):
        ms = make_ms("mesi", nodes=1)
        acc(ms, 0x20000, cpu=0)
        acc(ms, 0x20000, cpu=1, now=50)
        paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
        line = ms.l1s[0].line_of(paddr)
        assert ms.l2s[0].probe(line) == LineState.SHARED
        assert ms.l2s[1].probe(line) == LineState.SHARED

    def test_dirty_intervention_c2c(self):
        ms = make_ms("mesi", nodes=1)
        acc(ms, 0x20000, write=True, cpu=0)
        acc(ms, 0x20000, cpu=1, now=100)
        assert ms.protocol.counters.get("c2c_transfer", 0) >= 1

    def test_upgrade_counts(self):
        ms = make_ms("mesi", nodes=1)
        acc(ms, 0x20000, cpu=0)
        acc(ms, 0x20000, cpu=1, now=10)       # both SHARED now
        acc(ms, 0x20000, write=True, cpu=0, now=20)
        assert ms.protocol.counters.get("bus_upgrade", 0) == 1
        assert ms.protocol.counters.get("invalidation", 0) >= 1

    def test_bus_contention_grows_latency(self):
        ms = make_ms("mesi", nodes=1)
        # many simultaneous misses at the same cycle queue on the bus
        lats = [acc(ms, 0x20000 + 4096 * i, cpu=i % 4, now=0)
                for i in range(4)]
        assert lats[-1] > lats[0]


class TestDirectory:
    def test_dirty_remote_3hop_costlier_than_clean(self):
        ms = make_ms("directory", cpus=4, nodes=4)
        clean = acc(ms, 0x20000, cpu=0)
        acc(ms, 0x30000, write=True, cpu=3, now=10)
        dirty = acc(ms, 0x30000, cpu=0, now=10_000)
        assert dirty > 0 and clean > 0
        assert ms.protocol.owner_of  # introspection exists

    def test_sharer_tracking(self):
        ms = make_ms("directory")
        acc(ms, 0x20000, cpu=0)
        acc(ms, 0x20000, cpu=1, now=100)
        paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
        line = paddr >> 5
        assert ms.protocol.sharers_of(line) == {0, 1}

    def test_write_makes_single_owner(self):
        ms = make_ms("directory")
        acc(ms, 0x20000, cpu=0)
        acc(ms, 0x20000, cpu=1, now=10)
        acc(ms, 0x20000, write=True, cpu=2, now=1000)
        paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
        line = paddr >> 5
        assert ms.protocol.owner_of(line) == 2
        assert ms.protocol.sharers_of(line) == {2}

    def test_eviction_forgets_sharer(self):
        ms = make_ms("directory")
        acc(ms, 0x20000, cpu=0)
        paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
        line = paddr >> 5
        # flood page-offset-0 lines: physical frames allocate sequentially,
        # so the same page offset revisits the victim's set every
        # (n_sets*line/page) pages — enough pages guarantees eviction
        n = 0
        while ms.l2s[0].contains(line) and n < 2000:
            acc(ms, 0x100000 + n * 4096, cpu=0, now=100 + n)
            n += 1
        assert not ms.l2s[0].contains(line), "flood failed to evict"
        assert 0 not in ms.protocol.sharers_of(line)


class TestComa:
    def test_replication_makes_second_access_local(self):
        ms = make_ms("coma", cpus=4, nodes=2)
        # cpu2 (node1) reads a line homed on node0
        first = acc(ms, 0x20000, cpu=2)
        # evict it from cpu2's caches, then re-read: AM replica -> local
        paddr = ms.vmm.translate(1, 0x20000, False, 2)[0]
        line = paddr >> 5
        step = ms.l2s[2].n_sets * 32
        n = 0
        while ms.l2s[2].contains(line) and n < 64:
            acc(ms, 0x800000 + (n + 1) * step, cpu=2, now=1000 + n)
            n += 1
        again = acc(ms, 0x20000, cpu=2, now=100_000)
        assert again < first
        assert ms.protocol.counters.get("am_local_hit", 0) >= 1

    def test_write_invalidates_replicas(self):
        ms = make_ms("coma", cpus=4, nodes=2)
        acc(ms, 0x20000, cpu=0)
        acc(ms, 0x20000, cpu=2, now=100)
        paddr = ms.vmm.translate(1, 0x20000, False, 0)[0]
        line = paddr >> 5
        assert len(ms.protocol.holders_of(line)) == 2
        acc(ms, 0x20000, write=True, cpu=0, now=1000)
        assert ms.protocol.holders_of(line) == {0}


class TestDsm:
    def test_page_fetch_costs_software_handler(self):
        ms = make_ms("dsm", cpus=4, nodes=2)
        handler = ms.protocol.handler_cycles
        # cpu2 (node1) touches a page whose frame is on node0 (first-touch
        # by cpu0 first)
        acc(ms, 0x20000, cpu=0)
        lat = acc(ms, 0x20040, cpu=2, now=100)
        assert lat >= handler

    def test_same_page_second_line_cheap(self):
        ms = make_ms("dsm", cpus=4, nodes=2)
        acc(ms, 0x20000, cpu=0)
        acc(ms, 0x20040, cpu=2, now=100)       # page fetched to node1
        lat = acc(ms, 0x20080, cpu=2, now=10_000)
        assert lat < ms.protocol.handler_cycles

    def test_single_writer_invariant(self):
        ms = make_ms("dsm", cpus=4, nodes=2)
        acc(ms, 0x20000, write=True, cpu=0)
        acc(ms, 0x20000, write=True, cpu=2, now=50_000)
        paddr = ms.vmm.translate(1, 0x20000, False, 2)[0]
        page = paddr // 4096
        assert ms.protocol.owner_of_page(page) == 1   # cpu2 -> node1
        assert ms.protocol.holders_of_page(page) == {1}


# ---------------------------------------------------------------------------
# cross-protocol invariant: at most one MODIFIED copy of any line
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    proto=st.sampled_from(["mesi", "directory", "coma", "dsm"]),
    ops=st.lists(
        st.tuples(st.integers(0, 3),            # cpu
                  st.integers(0, 15),           # line index
                  st.booleans()),               # write?
        min_size=1, max_size=120),
)
def test_single_writer_multiple_reader(proto, ops):
    ms = make_ms(proto, cpus=4, nodes=1 if proto == "mesi" else 2)
    now = 0
    for cpu, idx, write in ops:
        addr = 0x20000 + idx * 32
        acc(ms, addr, write=write, cpu=cpu, now=now)
        now += 1000
        # invariant: any line is MODIFIED in at most one cache, and if
        # MODIFIED anywhere, no other cache holds it at all
        outer = ms.l2s if ms.l2s is not None else ms.l1s
        for check in range(16):
            line = (ms.vmm.translate(1, 0x20000 + check * 32, False, 0)[0]
                    >> 5)
            states = [c.probe(line) for c in outer]
            modified = [s for s in states if s == LineState.MODIFIED]
            present = [s for s in states if s is not None]
            if modified:
                assert len(present) == 1, (proto, check, states)
