"""Lock / barrier manager unit tests (engine integration lives in
test_engine_sync.py)."""

import pytest

from repro.core.errors import CompassError
from repro.core.frontend import SimProcess
from repro.core.sync import (BarrierManager, LockManager, lock_address,
                             SYNC_REGION_BASE)


def procs(n):
    return [SimProcess(f"p{i}") for i in range(n)]


class TestLockManager:
    def test_uncontended_acquire(self):
        lm = LockManager()
        p, = procs(1)
        assert lm.acquire(1, p)
        assert lm.holder_of(1) == p.pid

    def test_contended_queues_fifo(self):
        lm = LockManager()
        a, b, c = procs(3)
        assert lm.acquire(1, a)
        assert not lm.acquire(1, b)
        assert not lm.acquire(1, c)
        nxt = lm.release(1, a)
        assert nxt is b
        assert lm.holder_of(1) == b.pid
        assert lm.release(1, b) is c

    def test_release_not_held_raises(self):
        lm = LockManager()
        a, b = procs(2)
        lm.acquire(1, a)
        with pytest.raises(CompassError):
            lm.release(1, b)

    def test_release_never_acquired_raises(self):
        lm = LockManager()
        a, = procs(1)
        with pytest.raises(CompassError):
            lm.release(9, a)

    def test_independent_locks(self):
        lm = LockManager()
        a, b = procs(2)
        assert lm.acquire(1, a)
        assert lm.acquire(2, b)

    def test_stats(self):
        lm = LockManager()
        a, b = procs(2)
        lm.acquire(1, a)
        lm.acquire(1, b)
        acq, contended = lm.stats()[1]
        assert acq == 1 and contended == 1

    def test_lock_addresses_line_spaced(self):
        assert lock_address(0) == SYNC_REGION_BASE
        assert lock_address(1) - lock_address(0) >= 64


class TestBarrierManager:
    def test_last_arrival_releases(self):
        bm = BarrierManager()
        a, b, c = procs(3)
        assert bm.arrive(1, 3, a) is None
        assert bm.arrive(1, 3, b) is None
        released = bm.arrive(1, 3, c)
        assert released == [a, b]
        assert bm.episodes(1) == 1

    def test_reusable_across_episodes(self):
        bm = BarrierManager()
        a, b = procs(2)
        assert bm.arrive(1, 2, a) is None
        assert bm.arrive(1, 2, b) == [a]
        assert bm.arrive(1, 2, b) is None
        assert bm.arrive(1, 2, a) == [b]
        assert bm.episodes(1) == 2

    def test_count_one_releases_immediately(self):
        bm = BarrierManager()
        a, = procs(1)
        assert bm.arrive(5, 1, a) == []

    def test_overflow_raises(self):
        bm = BarrierManager()
        a, b = procs(2)
        bm.arrive(1, 1, a)
        # next arrival opens a new episode (count 1 releases immediately)
        assert bm.arrive(1, 1, b) == []

    def test_bad_count_raises(self):
        bm = BarrierManager()
        a, = procs(1)
        with pytest.raises(CompassError):
            bm.arrive(1, 0, a)

    def test_waiting_query(self):
        bm = BarrierManager()
        a, b = procs(2)
        bm.arrive(1, 3, a)
        bm.arrive(1, 3, b)
        assert bm.waiting(1) == 2
