"""Deterministic fault injection: plans, the injector, every wired site,
the engine watchdog, and structured no-progress diagnostics."""

import pytest

from repro import (DeadlockError, ConfigError, Engine, FaultPlan, FaultRule,
                   complex_backend)
from repro.core import events as ev
from repro.core.frontend import SimProcess
from repro.faults import FaultInjector


def _reset_pids():
    # pids feed the selection tie-break and address-space keys; comparison
    # runs must see identical numbering
    SimProcess._next_pid[0] = 1


# ---------------------------------------------------------------------------
# FaultPlan / FaultRule
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(rules=(
            FaultRule(site="syscall:kreadv", prob=0.1, errno="EINTR"),
            FaultRule(site="disk:latency", schedule=(3, 7),
                      extra_cycles=50_000, max_fires=2),
        ), seed=99)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_from_file(self, tmp_path):
        p = tmp_path / "plan.json"
        p.write_text('{"seed": 4, "rules": '
                     '[{"site": "fs:enospc", "prob": 0.5}]}')
        plan = FaultPlan.from_file(str(p))
        assert plan.seed == 4
        assert plan.rules[0].site == "fs:enospc"

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(rules=(FaultRule("fs:enospc", prob=1.0),)).empty

    def test_bad_json(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_json("{nope")
        with pytest.raises(ConfigError):
            FaultPlan.from_json("[1, 2]")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"seed": 0, "surprise": 1})
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(
                {"rules": [{"site": "fs:enospc", "probability": 1}]})

    @pytest.mark.parametrize("rule", [
        FaultRule(site="bogus:x", prob=0.5),          # unknown namespace
        FaultRule(site="fs:enospc", prob=1.5),        # prob out of range
        FaultRule(site="fs:enospc"),                  # can never fire
        FaultRule(site="fs:enospc", schedule=(0,)),   # 0-based schedule
        FaultRule(site="fs:enospc", prob=0.1, extra_cycles=-1),
        FaultRule(site="fs:enospc", prob=0.1, errno="ENOTANERRNO"),
    ])
    def test_invalid_rules(self, rule):
        with pytest.raises(ConfigError):
            rule.validate()

    def test_config_validates_plan(self):
        bad = FaultPlan(rules=(FaultRule(site="bogus:x", prob=1.0),))
        with pytest.raises(ConfigError):
            complex_backend(num_cpus=1, faults=bad)

    def test_config_validates_watchdog(self):
        with pytest.raises(ConfigError):
            complex_backend(num_cpus=1, watchdog_rounds=0)


# ---------------------------------------------------------------------------
# FaultInjector semantics
# ---------------------------------------------------------------------------

class TestInjector:
    def test_disabled_when_empty(self):
        inj = FaultInjector(FaultPlan())
        assert not inj.enabled
        assert inj.stats.draws == 0

    def test_schedule_fires_exact_visits(self):
        plan = FaultPlan(rules=(
            FaultRule(site="mem:degraded", schedule=(2, 4), extra_cycles=1),))
        inj = FaultInjector(plan)
        hits = [inj.check("mem:degraded") is not None for _ in range(5)]
        assert hits == [False, True, False, True, False]
        assert inj.stats.draws == 0   # schedule-only rules never draw

    def test_same_seed_same_decisions(self):
        plan = FaultPlan(rules=(
            FaultRule(site="disk:latency", prob=0.3, extra_cycles=5),),
            seed=42)
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan)
            runs.append([inj.check("disk:latency") is not None
                         for _ in range(200)])
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])

    def test_max_fires_cap(self):
        plan = FaultPlan(rules=(
            FaultRule(site="net:reset", prob=1.0, max_fires=2),))
        inj = FaultInjector(plan)
        fired = sum(inj.check("net:reset") is not None for _ in range(10))
        assert fired == 2

    def test_wildcard_site(self):
        plan = FaultPlan(rules=(
            FaultRule(site="syscall:*", prob=1.0, errno="EIO"),))
        inj = FaultInjector(plan)
        assert inj.check("syscall:kreadv") is not None
        assert inj.check("syscall:open") is not None
        assert inj.check("fs:enospc") is None
        assert inj.has_prefix("syscall:")
        assert inj.has_prefix("syscall:kwritev")
        assert not inj.has_prefix("mem:")

    def test_stats_summary(self):
        plan = FaultPlan(rules=(
            FaultRule(site="fs:enospc", schedule=(1,)),), seed=7)
        inj = FaultInjector(plan)
        inj.check("fs:enospc")
        s = inj.stats.summary()
        assert s["seed"] == 7
        assert s["fired"] == {"fs:enospc": 1}
        assert inj.stats.total_fired == 1
        assert inj.stats.distinct_sites == 1


# ---------------------------------------------------------------------------
# wired sites, end to end
# ---------------------------------------------------------------------------

class TestSyscallInjection:
    def _engine(self, plan):
        _reset_pids()
        eng = Engine(complex_backend(num_cpus=1, faults=plan))
        eng.os_server.fs.create("/f", b"y" * 4096)
        return eng

    def test_eintr_injected_and_retried(self):
        plan = FaultPlan(rules=(
            FaultRule(site="syscall:kreadv", schedule=(1,), errno="EINTR"),),
            seed=5)
        eng = self._engine(plan)
        results = []

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            r = yield from proc.call_retry("kreadv", r.value, 0x100000, 4096)
            results.append(r)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert results[0].ok and results[0].value == 4096
        assert eng.faults.stats.fired == {"syscall:kreadv": 1}
        assert eng.stats.get("faults_injected") == 1
        assert eng.stats.get("fault_plan_seed") == 5

    def test_errno_surfaces_without_retry(self):
        plan = FaultPlan(rules=(
            FaultRule(site="syscall:kreadv", schedule=(1,), errno="EIO"),))
        eng = self._engine(plan)
        results = []

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            r = yield from proc.call("kreadv", r.value, 0x100000, 4096)
            results.append(r)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert not results[0].ok
        assert results[0].errno == ev.EIO

    def test_aborted_syscall_charges_kernel_time(self):
        plan = FaultPlan(rules=(
            FaultRule(site="syscall:kreadv", schedule=(1,), errno="EINTR"),))
        eng = self._engine(plan)

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            yield from proc.call_retry("kreadv", r.value, 0x100000, 4096)
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        # the aborted attempt still burns kernel cycles and is counted
        assert stats.syscall_counts["kreadv"] == 2
        assert stats.cpu[0].kernel > 0

    def test_enospc_on_file_write(self):
        plan = FaultPlan(rules=(FaultRule(site="fs:enospc", schedule=(1,)),))
        eng = self._engine(plan)
        results = []

        def app(proc):
            r = yield from proc.call("open", "/f", 2)
            r = yield from proc.call("kwritev", r.value, 0x100000, 4096,
                                     b"z" * 4096)
            results.append(r)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert results[0].errno == ev.ENOSPC
        assert eng.faults.stats.fired == {"fs:enospc": 1}


class TestNetInjection:
    def test_connection_reset(self):
        plan = FaultPlan(rules=(FaultRule(site="net:reset", prob=1.0),),
                         seed=2)
        _reset_pids()
        eng = Engine(complex_backend(num_cpus=2, faults=plan))
        errors = []

        def server(proc):
            r = yield from proc.call("socket")
            sfd = r.value
            yield from proc.call("bind", sfd, 80)
            yield from proc.call("listen", sfd)
            r = yield from proc.call("naccept", sfd)
            cfd = r.value
            r = yield from proc.call("recv", cfd, 0x200000, 1024)
            errors.append(r.errno)
            yield from proc.call("close", cfd)
            yield from proc.call("close", sfd)
            yield from proc.exit(0)

        def client(proc):
            r = yield from proc.call("socket")
            fd = r.value
            while True:
                r = yield from proc.call("connect", fd, 80)
                if r.ok:
                    break
                proc.compute(20_000)
            r = yield from proc.call("send", fd, 0x100000, 64, b"x" * 64)
            errors.append(r.errno)
            yield from proc.call("close", fd)
            yield from proc.exit(0)

        eng.spawn("server", server)
        eng.spawn("client", client)
        eng.run()
        assert errors and all(e == ev.ECONNRESET for e in errors)
        assert eng.faults.stats.fired["net:reset"] >= 2


class TestTimingInjection:
    def _run_reads(self, plan, nbytes=64 * 1024):
        _reset_pids()
        eng = Engine(complex_backend(num_cpus=1, faults=plan))
        eng.os_server.fs.create("/big", b"d" * nbytes)

        def app(proc):
            r = yield from proc.call("open", "/big", 0)
            fd = r.value
            got = 0
            while got < nbytes:
                r = yield from proc.call("kreadv", fd, 0x100000, 8192)
                if r.value <= 0:
                    break
                got += r.value
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        return stats, eng

    def test_disk_latency_spike_slows_run(self):
        base, _ = self._run_reads(None)
        plan = FaultPlan(rules=(
            FaultRule(site="disk:latency", prob=1.0, extra_cycles=200_000),))
        slow, eng = self._run_reads(plan)
        assert eng.faults.stats.fired["disk:latency"] > 0
        assert eng.disk.fault_delay_cycles > 0
        assert slow.end_cycle > base.end_cycle + 100_000

    def test_disk_read_error_retries_and_completes(self):
        base, _ = self._run_reads(None)
        plan = FaultPlan(rules=(
            FaultRule(site="disk:read_error", schedule=(1,)),))
        slow, eng = self._run_reads(plan)
        assert eng.faults.stats.fired == {"disk:read_error": 1}
        # the retry adds a full extra disk service round-trip
        assert slow.end_cycle > base.end_cycle

    def _run_touch(self, plan, num_cpus=1):
        _reset_pids()
        eng = Engine(complex_backend(num_cpus=num_cpus, faults=plan))

        def app(proc):
            for i in range(256):
                yield from proc.load(0x100000 + i * 4096)
            yield from proc.exit(0)

        eng.spawn("a", app)
        return eng.run(), eng

    def test_degraded_memory_slows_misses(self):
        base, _ = self._run_touch(None)
        plan = FaultPlan(rules=(
            FaultRule(site="mem:degraded", prob=1.0, extra_cycles=500),))
        slow, eng = self._run_touch(plan)
        assert eng.faults.stats.fired["mem:degraded"] > 0
        assert slow.end_cycle > base.end_cycle + 256 * 400

    def test_degraded_link_slows_misses(self):
        base, _ = self._run_touch(None, num_cpus=4)
        plan = FaultPlan(rules=(
            FaultRule(site="link:degraded", prob=1.0, extra_cycles=200),))
        slow, eng = self._run_touch(plan, num_cpus=4)
        assert eng.faults.stats.fired["link:degraded"] > 0
        assert slow.end_cycle > base.end_cycle


class TestTcpDrop:
    def test_webserver_retransmits(self):
        from repro.apps.webserver import (TracePlayer, generate_fileset,
                                          make_trace, prefork_web_server)
        plan = FaultPlan(rules=(FaultRule(site="tcp:drop", prob=0.25),),
                         seed=11)
        _reset_pids()
        eng = Engine(complex_backend(num_cpus=4, coherence="mesi",
                                     num_nodes=1, faults=plan))
        fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.1)
        trace = make_trace(fset, nrequests=8, seed=3)
        prefork_web_server(eng, nworkers=2)
        player = TracePlayer(eng, trace, fset, nclients=2,
                             nworkers_to_quit=2)
        player.start()
        eng.run()
        assert player.completed == 8     # drops delay, never lose requests
        assert eng.os_server.net.retransmits > 0
        assert eng.faults.stats.fired["tcp:drop"] \
            == eng.os_server.net.retransmits


# ---------------------------------------------------------------------------
# watchdog + structured deadlock diagnostics
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_livelock_detected(self):
        eng = Engine(complex_backend(num_cpus=1, watchdog_rounds=300))

        def spinner(proc):
            while True:
                yield from proc.advance()

        eng.spawn("spin", spinner)
        with pytest.raises(DeadlockError) as ei:
            eng.run()
        assert "watchdog" in str(ei.value)
        assert "livelock" in str(ei.value)
        report = ei.value.report
        assert report is not None
        assert "watchdog" in report["reason"]
        assert report["processes"][0]["name"] == "spin"

    def test_deadlock_report_structure(self):
        eng = Engine(complex_backend(num_cpus=2))

        def holder(proc):
            yield from proc.lock(7)
            yield from proc.exit(0)    # exits without unlocking

        def waiter(proc):
            proc.compute(50_000)       # let the holder win the lock
            yield from proc.lock(7)
            yield from proc.exit(0)

        hp = eng.spawn("holder", holder)
        wp = eng.spawn("waiter", waiter)
        with pytest.raises(DeadlockError) as ei:
            eng.run()
        report = ei.value.report
        assert report is not None
        # lock/barrier ids are string keys: reports are JSON-plain so job
        # records can embed them verbatim
        assert "7" in report["locks"]
        assert report["locks"]["7"]["holder"] == hp.pid  # the exited holder
        assert report["locks"]["7"]["waiters"] == [wp.pid]
        states = {p["name"]: p["state"] for p in report["processes"]}
        assert states["waiter"] == "SYNCWAIT"
        assert "SYNCWAIT" in report["text"]
        assert "lock 7" in report["text"]
        assert report["recent_events"]


# ---------------------------------------------------------------------------
# same-plan reproducibility (acceptance: faulty runs are deterministic)
# ---------------------------------------------------------------------------

class TestFaultyRunDeterminism:
    def test_same_seed_same_faulty_run(self):
        from repro.apps.minidb import MiniDb, TpccDriver, tpcc_catalog
        plan = FaultPlan(rules=(
            FaultRule(site="syscall:kreadv", prob=0.05, errno="EINTR"),
            FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
            FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
        ), seed=1998)

        def once():
            _reset_pids()
            eng = Engine(complex_backend(num_cpus=2, faults=plan))
            db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16, seed=3)
            db.setup()
            drv = TpccDriver(db, nagents=2, tx_per_agent=3, seed=3,
                             think_cycles=5_000, user_work=20_000)
            drv.spawn_agents(eng)
            stats = eng.run()
            assert drv.committed == 6
            return (stats.end_cycle, eng.events_processed,
                    eng.faults.stats.summary(),
                    [(c.user, c.kernel, c.interrupt, c.idle)
                     for c in stats.cpu])

        a = once()
        b = once()
        assert a == b
        assert a[2]["total_fired"] > 0


# ---------------------------------------------------------------------------
# checkpoint support: injector state round-trips exactly
# ---------------------------------------------------------------------------

class TestInjectorRoundTrip:
    PLAN = FaultPlan(rules=(
        FaultRule(site="disk:latency", prob=0.5, extra_cycles=100),
        FaultRule(site="mem:degraded", prob=0.2, extra_cycles=10,
                  max_fires=3),
    ), seed=42)

    def _drive(self, inj, n=200):
        outcomes = []
        for i in range(n):
            site = "disk:latency" if i % 2 else "mem:degraded"
            rule = inj.check(site)
            outcomes.append(None if rule is None else rule.site)
        return outcomes

    def test_state_dict_load_state_exact_inverse(self):
        import pickle
        inj = FaultInjector(self.PLAN)
        self._drive(inj)
        before = inj.state_dict()
        # snapshot survives serialisation (it ends up inside a pickle file)
        frozen = pickle.loads(pickle.dumps(before))
        self._drive(inj, 50)          # move the live injector past the snap
        inj.load_state(frozen)
        assert inj.state_dict() == before
        assert inj.stats.draws == before["stats"]["draws"]
        assert dict(inj.stats.fired) == before["stats"]["fired"]

    def test_restored_rng_continues_identically(self):
        a = FaultInjector(self.PLAN)
        self._drive(a)
        snap = a.state_dict()
        tail_a = self._drive(a, 100)

        b = FaultInjector(self.PLAN)   # fresh injector, no history
        b.load_state(snap)
        tail_b = self._drive(b, 100)
        assert tail_b == tail_a
        assert b.state_dict() == a.state_dict()

    def test_shape_mismatch_rejected(self):
        from repro.core.errors import ReplayDivergence
        inj = FaultInjector(self.PLAN)
        snap = inj.state_dict()
        other = FaultInjector(FaultPlan(rules=(
            FaultRule(site="disk:latency", prob=0.5),), seed=42))
        with pytest.raises(ReplayDivergence, match="shape"):
            other.load_state(snap)


# ---------------------------------------------------------------------------
# barrier-deadlock diagnostics
# ---------------------------------------------------------------------------

class TestBarrierDeadlockReport:
    def test_barrier_report_structure(self):
        _reset_pids()
        eng = Engine(complex_backend(num_cpus=2))

        def joiner(proc):
            yield from proc.barrier(3, count=3)   # count=3, only 2 arrive
            yield from proc.exit(0)

        def deserter(proc):
            proc.compute(1_000)
            yield from proc.exit(0)               # never reaches the barrier

        p0 = eng.spawn("join0", joiner)
        p1 = eng.spawn("join1", joiner)
        eng.spawn("deserter", deserter)
        with pytest.raises(DeadlockError) as ei:
            eng.run()
        report = ei.value.report
        assert report is not None
        assert report["barriers"] == {"3": sorted([p0.pid, p1.pid])}
        states = {p["name"]: p["state"] for p in report["processes"]}
        assert states["join0"] == "SYNCWAIT"
        assert states["join1"] == "SYNCWAIT"
        assert "deserter" not in states          # DONE procs are elided
        assert "barrier 3" in report["text"]
        assert f"waiting={sorted([p0.pid, p1.pid])}" in report["text"]
        assert report["recent_events"]
