"""TCP/IP stack unit tests (functional layer, no engine)."""

import pytest

from repro.core.errors import OSError_
from repro.core.frontend import WaitToken
from repro.core.scheduler import GlobalScheduler
from repro.devices.ethernet import EthernetNic, Frame
from repro.core.config import EthernetConfig
from repro.core.clock import ClockDomain
from repro.osim.interrupts import InterruptController
from repro.core.communicator import CpuState
from repro.osim.tcpip import CLIENT, SERVER, TcpIpStack


@pytest.fixture
def stack():
    gs = GlobalScheduler()
    cpus = [CpuState(0)]
    intctl = InterruptController(cpus)
    nic = EthernetNic("en0", gs, intctl, EthernetConfig(), ClockDomain())
    st = TcpIpStack(nic)
    st._gs = gs          # keep the scheduler alive for draining
    return st


def drain(stack):
    gs = stack._gs
    while (t := gs.pop_due(1 << 60)) is not None:
        gs.run_task(t)
    # deliver interrupts by hand (no engine here)
    for cpu in stack.nic.intctl.cpus:
        for intr in list(cpu.irq_pending):
            for act in intr.actions:
                act()
        cpu.irq_pending.clear()


def listener(stack, port=80):
    sid = stack.socket(1)
    assert stack.bind(sid, port) == 0
    assert stack.listen(sid) == 0
    return sid


class TestLifecycle:
    def test_bind_conflict(self):
        pass

    def test_bind_duplicate_port(self, stack):
        listener(stack, 80)
        s2 = stack.socket(2)
        assert stack.bind(s2, 80) != 0

    def test_listen_requires_bind(self, stack):
        s = stack.socket(1)
        assert stack.listen(s) != 0

    def test_close_unknown_is_noop(self, stack):
        stack.close(9999)

    def test_refcounting(self, stack):
        sid = listener(stack)
        stack.addref(sid)
        stack.close(sid)
        assert stack.get(sid) is not None
        stack.close(sid)
        with pytest.raises(OSError_):
            stack.get(sid)


class TestRemoteClients:
    def test_syn_data_recv_roundtrip(self, stack):
        lsid = listener(stack)
        stack.client_connect(100, 80, 0)
        drain(stack)
        nsid = stack.pop_accept(lsid)
        assert nsid is not None
        stack.client_send(100, b"GET /", 0)
        drain(stack)
        assert stack.pop_recv(nsid, 100) == b"GET /"

    def test_recv_would_block_then_eof(self, stack):
        lsid = listener(stack)
        stack.client_connect(100, 80, 0)
        drain(stack)
        nsid = stack.pop_accept(lsid)
        assert stack.pop_recv(nsid, 10) is None
        stack.client_close(100, 0)
        drain(stack)
        assert stack.pop_recv(nsid, 10) == b""

    def test_syn_to_closed_port_dropped(self, stack):
        stack.client_connect(5, 9999, 0)
        drain(stack)
        assert stack.connection(5) is None

    def test_server_send_notifies_player(self, stack):
        got = []
        stack.on_server_send = lambda cid, n, payload: got.append((cid, n))
        lsid = listener(stack)
        stack.client_connect(7, 80, 0)
        drain(stack)
        nsid = stack.pop_accept(lsid)
        stack.send(nsid, 500, 0)
        drain(stack)
        assert got == [(7, 500)]

    def test_partial_recv_preserves_rest(self, stack):
        lsid = listener(stack)
        stack.client_connect(1, 80, 0)
        drain(stack)
        nsid = stack.pop_accept(lsid)
        stack.client_send(1, b"abcdef", 0)
        drain(stack)
        assert stack.pop_recv(nsid, 2) == b"ab"
        assert stack.pop_recv(nsid, 10) == b"cdef"


class TestLoopback:
    def test_connect_local_roundtrip(self, stack):
        lsid = listener(stack, 5000)
        csid = stack.connect_local(2, 5000)
        assert csid is not None
        ssid = stack.pop_accept(lsid)
        stack.send(csid, 3, 0, data=b"abc")
        assert stack.pop_recv(ssid, 10) == b"abc"
        stack.send(ssid, 2, 0, data=b"ok")
        assert stack.pop_recv(csid, 10) == b"ok"

    def test_connect_local_no_listener(self, stack):
        assert stack.connect_local(2, 1234) is None

    def test_close_signals_peer_eof(self, stack):
        lsid = listener(stack, 5000)
        csid = stack.connect_local(2, 5000)
        ssid = stack.pop_accept(lsid)
        stack.close(csid)
        assert stack.pop_recv(ssid, 10) == b""

    def test_waiters_woken_on_data(self, stack):
        lsid = listener(stack, 5000)
        csid = stack.connect_local(2, 5000)
        ssid = stack.pop_accept(lsid)
        tok = WaitToken("recv")
        stack.add_waiter(ssid, tok)
        stack.send(csid, 1, 0, data=b"x")
        assert tok.woken

    def test_accept_waiter_woken_on_syn(self, stack):
        lsid = listener(stack, 5000)
        tok = WaitToken("accept")
        stack.add_waiter(lsid, tok)
        stack.connect_local(2, 5000)
        assert tok.woken

    def test_readable_states(self, stack):
        lsid = listener(stack, 5000)
        assert not stack.get(lsid).readable()
        csid = stack.connect_local(2, 5000)
        assert stack.get(lsid).readable()     # pending accept
        ssid = stack.pop_accept(lsid)
        assert not stack.get(ssid).readable()
        stack.send(csid, 1, 0, data=b"x")
        assert stack.get(ssid).readable()
