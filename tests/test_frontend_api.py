"""Proc API and SimProcess frame-stack unit tests."""

import pytest

from repro.core import events as ev
from repro.core.errors import FrontendError
from repro.core.frontend import (FrontendClock, Proc, ProcState, SimProcess,
                                 WaitToken)


def drain(gen, replies=None):
    """Drive a generator collecting its yields."""
    out = []
    try:
        y = next(gen)
        i = 0
        while True:
            out.append(y)
            r = replies[i] if replies and i < len(replies) else 1
            i += 1
            y = gen.send(r)
    except StopIteration as s:
        return out, s.value


class TestProcMacros:
    def setup_method(self):
        self.proc = SimProcess("t")
        self.api = Proc(self.proc)

    def test_compute_accumulates_pending(self):
        self.api.compute(100)
        self.api.compute(50)
        assert self.proc.clock.pending == 150

    def test_negative_compute_rejected(self):
        with pytest.raises(FrontendError):
            self.api.compute(-1)

    def test_load_yields_read(self):
        events, lat = drain(self.api.load(0x100, 8))
        assert len(events) == 1
        e = events[0]
        assert e.kind == ev.EvKind.READ and e.addr == 0x100 and e.size == 8
        assert lat == 1

    def test_touch_strides(self):
        events, total = drain(self.api.touch(0x0, 200, stride=64))
        assert len(events) == 4            # ceil(200/64)
        assert [e.addr for e in events] == [0, 64, 128, 192]
        assert events[-1].size == 200 - 192

    def test_touch_write_kind(self):
        events, _ = drain(self.api.touch(0x0, 64, write=True))
        assert all(e.kind == ev.EvKind.WRITE for e in events)

    def test_touch_work_per_line_adds_pending(self):
        drain(self.api.touch(0x0, 128, stride=32, work_per_line=10))
        assert self.proc.clock.pending == 40

    def test_touch_zero_bytes(self):
        events, total = drain(self.api.touch(0x0, 0))
        assert events == [] and total == 0

    def test_sim_off_suppresses_everything(self):
        self.api.sim_off()
        events, lat = drain(self.api.load(0x100))
        assert events == [] and lat == 0
        events, _ = drain(self.api.touch(0x0, 4096))
        assert events == []
        self.api.compute(1000)
        assert self.proc.clock.pending == 0
        self.api.sim_on()
        events, _ = drain(self.api.load(0x100))
        assert len(events) == 1

    def test_call_packs_arguments(self):
        g = self.api.call("open", "/x", 2)
        e = next(g)
        assert e.kind == ev.EvKind.SYSCALL
        assert e.arg == ("open", ("/x", 2))
        with pytest.raises(StopIteration):
            g.send(ev.SyscallResult(3))

    def test_call_rejects_non_result_reply(self):
        g = self.api.call("open", "/x")
        next(g)
        with pytest.raises(FrontendError):
            g.send("not a result")

    def test_exit_emits_event(self):
        events, status = drain(self.api.exit(5))
        assert events[0].kind == ev.EvKind.EXIT
        assert status == 5


class TestFrameStack:
    def test_base_frame_once(self):
        p = SimProcess("t")
        p.base_frame(iter(()))
        with pytest.raises(FrontendError):
            p.base_frame(iter(()))

    def test_mode_tracks_frames(self):
        p = SimProcess("t")
        p.base_frame(iter(()))
        assert p.mode == "user" and not p.kernel_mode
        p.push_frame(iter(()), "kernel", ("syscall", ("x", 0)))
        assert p.mode == "kernel" and p.kernel_mode
        p.push_frame(iter(()), "interrupt", ("interrupt", (None, None, 0)))
        assert p.mode == "interrupt"
        kind, payload = p.pop_frame()
        assert kind == "interrupt"
        assert p.mode == "kernel"
        p.pop_frame()
        assert p.mode == "user"

    def test_wait_token_idempotent_wake(self):
        t = WaitToken("x")
        calls = []
        t.waker = lambda tok: calls.append(tok.value)
        t.wake(1)
        t.wake(2)
        assert calls == [1]
        assert t.value == 1

    def test_pid_allocation_monotone(self):
        a, b = SimProcess("a"), SimProcess("b")
        assert b.pid == a.pid + 1

    def test_clock_injection(self):
        clk = FrontendClock()
        p = SimProcess("t", clock=clk)
        Proc(p).compute(7)
        assert clk.pending == 7

    def test_initial_state(self):
        p = SimProcess("t")
        assert p.state == ProcState.NEW
        assert p.cpu == -1
        assert p.events_enabled
        assert p.intr_enabled
