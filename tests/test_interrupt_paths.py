"""Interrupt-controller unit tests and delivery-path edge cases."""

import pytest

from repro import Engine, complex_backend, simple_backend
from repro.core.communicator import CpuState
from repro.osim.interrupts import Interrupt, InterruptController


class TestController:
    def test_round_robin_routing(self):
        cpus = [CpuState(i) for i in range(3)]
        ic = InterruptController(cpus)
        targets = [ic.post(Interrupt("x", 10), 0) for _ in range(6)]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_cpu0_routing(self):
        cpus = [CpuState(i) for i in range(3)]
        ic = InterruptController(cpus, route="cpu0")
        assert [ic.post(Interrupt("x", 10), 0) for _ in range(3)] == [0, 0, 0]

    def test_explicit_cpu(self):
        cpus = [CpuState(i) for i in range(3)]
        ic = InterruptController(cpus)
        assert ic.post(Interrupt("x", 10), 0, cpu=2) == 2
        assert cpus[2].irq_requested

    def test_pending_for_drains(self):
        cpus = [CpuState(0)]
        ic = InterruptController(cpus)
        ic.post(Interrupt("a", 1), 0, cpu=0)
        ic.post(Interrupt("b", 1), 0, cpu=0)
        pend = ic.pending_for(0)
        assert [i.source for i in pend] == ["a", "b"]
        assert ic.pending_for(0) == []

    def test_handler_areas_stable_per_source(self):
        cpus = [CpuState(0)]
        ic = InterruptController(cpus)
        a1 = ic._area_of("disk")
        a2 = ic._area_of("eth")
        assert a1 != a2
        assert ic._area_of("disk") == a1

    def test_direct_service_runs_actions(self):
        cpus = [CpuState(0)]
        ic = InterruptController(cpus)
        hits = []
        intr = Interrupt("x", 500, actions=[lambda: hits.append(1)])
        assert ic.direct_service(intr) == 500
        assert hits == [1]

    def test_handler_frame_emits_kernel_refs_then_actions(self):
        from repro.core.frontend import FrontendClock
        cpus = [CpuState(0)]
        ic = InterruptController(cpus)
        hits = []
        clock = FrontendClock()
        intr = Interrupt("disk", 1000, actions=[lambda: hits.append(1)],
                         lines=4)
        gen = ic.handler_frame(intr, clock)
        events = list(gen)
        assert len(events) == 4
        assert all(e.addr >= 0xC000_0000 for e in events)
        assert hits == [1]                 # actions ran at generator end
        assert clock.pending >= 1000 - 4   # cycles spread over the lines


class TestDeliveryPaths:
    def test_masked_process_defers_interrupts(self):
        """A process with interrupts disabled leaves the flag pending."""
        eng = Engine(simple_backend(num_cpus=1))
        seen = {}

        def app(proc):
            proc.process.intr_enabled = False
            proc.compute(3_000_000)        # > 2 timer periods
            yield from proc.advance()
            seen["pending_while_masked"] = bool(
                eng.comm.cpus[0].irq_pending)
            proc.process.intr_enabled = True
            yield from proc.advance()
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert seen["pending_while_masked"]

    def test_interrupt_handler_pollutes_caches(self):
        """Busy-CPU delivery runs handler code through the caches (the
        fidelity reason for frame-based delivery)."""
        eng = Engine(complex_backend(num_cpus=1))
        eng.os_server.fs.create("/f", b"x" * 4096)
        misses_before = {}

        def io_app(proc):
            r = yield from proc.call("open", "/f", 0)
            yield from proc.call("kreadv", r.value, 0x100000, 4096)
            yield from proc.exit(0)

        def busy_app(proc):
            for _ in range(400):
                proc.compute(5_000)
                yield from proc.load(0x200000)
            yield from proc.exit(0)

        eng.spawn("io", io_app)
        eng.spawn("busy", busy_app)
        stats = eng.run()
        # the disk interrupt was taken (by whichever path) and charged
        assert stats.interrupt_counts.get("disk:hd0", 0) >= 1
        assert stats.total_cpu().interrupt > 0

    def test_interrupt_sources_accumulate_cycles(self):
        eng = Engine(complex_backend(num_cpus=2))
        eng.os_server.fs.create("/f", b"x" * 32768)

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            yield from proc.call("kreadv", r.value, 0x100000, 32768)
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        assert stats.interrupt_cycles.get("disk:hd0", 0) > 0

    def test_nested_interrupts_not_taken_in_handler(self):
        """While a handler frame runs (mode == interrupt), further pending
        interrupts wait for the next boundary."""
        eng = Engine(simple_backend(num_cpus=1))

        def app(proc):
            for _ in range(6):
                proc.compute(1_500_000)
                yield from proc.advance()
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        # all timer ticks eventually delivered exactly once each
        assert stats.interrupt_counts.get("timer", 0) == eng.timer.ticks
