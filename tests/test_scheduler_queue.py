"""Global event scheduler (task queue) tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SchedulerError
from repro.core.scheduler import GlobalScheduler


def test_schedule_and_pop_in_order():
    g = GlobalScheduler()
    fired = []
    g.schedule_at(30, fired.append, "c")
    g.schedule_at(10, fired.append, "a")
    g.schedule_at(20, fired.append, "b")
    while (t := g.pop_due(100)) is not None:
        g.run_task(t)
    assert fired == ["a", "b", "c"]
    assert g.now == 30


def test_ties_break_by_insertion_order():
    g = GlobalScheduler()
    fired = []
    for tag in "xyz":
        g.schedule_at(5, fired.append, tag)
    while (t := g.pop_due(10)) is not None:
        g.run_task(t)
    assert fired == ["x", "y", "z"]


def test_pop_due_respects_horizon():
    g = GlobalScheduler()
    g.schedule_at(50, lambda: None)
    assert g.pop_due(49) is None
    assert g.pop_due(50) is not None


def test_cannot_schedule_in_the_past():
    g = GlobalScheduler()
    g.advance_to(100)
    with pytest.raises(SchedulerError):
        g.schedule_at(99, lambda: None)


def test_negative_delay_rejected():
    g = GlobalScheduler()
    with pytest.raises(SchedulerError):
        g.schedule_after(-1, lambda: None)


def test_cancellation_skips_task():
    g = GlobalScheduler()
    fired = []
    t1 = g.schedule_at(10, fired.append, 1)
    g.schedule_at(20, fired.append, 2)
    t1.cancel()
    while (t := g.pop_due(100)) is not None:
        g.run_task(t)
    assert fired == [2]


def test_next_time_skips_cancelled_head():
    g = GlobalScheduler()
    t1 = g.schedule_at(10, lambda: None)
    g.schedule_at(20, lambda: None)
    t1.cancel()
    assert g.next_time() == 20


def test_tasks_can_spawn_tasks():
    g = GlobalScheduler()
    fired = []

    def parent():
        fired.append("parent")
        g.schedule_after(5, lambda: fired.append("child"))

    g.schedule_at(10, parent)
    while (t := g.pop_due(1000)) is not None:
        g.run_task(t)
    assert fired == ["parent", "child"]
    assert g.now == 15


def test_advance_to_never_goes_backwards():
    g = GlobalScheduler()
    g.advance_to(100)
    g.advance_to(50)
    assert g.now == 100


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=60))
def test_dispatch_order_is_sorted(times):
    g = GlobalScheduler()
    out = []
    for t in times:
        g.schedule_at(t, out.append, t)
    while (task := g.pop_due(1 << 60)) is not None:
        g.run_task(task)
    assert out == sorted(times)
    assert g.dispatched == len(times)
