"""Golden-output regression fleet (Nyuzi ``test_harness.py`` style).

Every scenario — workload x protocol x engine knobs x fault plan — runs
through the :class:`SimulatorAdapter` and its stats fingerprint is diffed
against the committed golden under ``tests/golden/``. A mismatch means a
change altered *simulated results*, not just speed; that is a regression
unless the goldens are deliberately regenerated::

    COMPASS_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py

Scenarios with a ``golden`` alias share another scenario's file: the
strict-knob arms (speculation/lookahead/vectorized/fastpath off) must be
*bit-identical* to the default arms, so pointing them at the same golden
re-proves the equivalence contracts on every CI run.
"""

import json
import os
from pathlib import Path

import pytest

from repro import FaultPlan, FaultRule
from repro.core.jsonable import to_jsonable
from repro.service import SimulatorAdapter

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
UPDATE = os.environ.get("COMPASS_UPDATE_GOLDEN") == "1"

TIMING_PLAN = FaultPlan(rules=(
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
    FaultRule(site="link:degraded", prob=0.001, extra_cycles=50),
), seed=1998)

ERRNO_PLAN = FaultPlan(rules=(
    FaultRule(site="syscall:kreadv", prob=0.05, errno="EINTR"),
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
), seed=7)

#: every optimistic/perf knob off — bit-identical to the defaults by
#: contract, so these arms share the default arms' goldens
STRICT = {"speculate": False, "lookahead": False, "vectorized": False,
          "fastpath": False}

#: the fleet: name, workload, config dict, optional golden alias
SCENARIOS = [
    # OLTP (TPC-C): default knobs, strict knobs, both fault plans
    {"name": "oltp-directory", "workload": "oltp", "config": {}},
    {"name": "oltp-directory-strict", "workload": "oltp",
     "config": dict(STRICT), "golden": "oltp-directory"},
    {"name": "oltp-timing-faults", "workload": "oltp",
     "config": {"faults": TIMING_PLAN.to_dict()}},
    {"name": "oltp-errno-faults", "workload": "oltp",
     "config": {"faults": ERRNO_PLAN.to_dict()}},
    # DSS (TPC-D Q1): directory and COMA protocols, strict arm
    {"name": "dss-directory", "workload": "dss", "config": {}},
    {"name": "dss-directory-strict", "workload": "dss",
     "config": dict(STRICT), "golden": "dss-directory"},
    {"name": "dss-coma", "workload": "dss",
     "config": {"coherence": "coma"}},
    # webserver: MESI bus snooping (its pinned protocol), with faults
    {"name": "webserver-mesi", "workload": "webserver", "config": {}},
    {"name": "webserver-mesi-faults", "workload": "webserver",
     "config": {"faults": TIMING_PLAN.to_dict()}},
    # SPLASH radix: directory and page-based DSM, strict arm
    {"name": "splash-directory", "workload": "splash", "config": {}},
    {"name": "splash-directory-strict", "workload": "splash",
     "config": dict(STRICT), "golden": "splash-directory"},
    {"name": "splash-dsm", "workload": "splash",
     "config": {"coherence": "dsm"}},
    # sampled simulation: approximate vs full detail, but deterministic —
    # it gets its own golden
    {"name": "dss-sampling", "workload": "dss",
     "config": {"sampling": {"detail_events": 1_000, "ff_events": 2_000}}},
]

#: component names for fingerprint-diff messages, in tuple order
FP_FIELDS = ("end_cycle", "events_processed", "cpu_times", "syscall_cycles",
             "syscall_counts", "interrupt_counts", "faults_fired",
             "fault_draws", "l1_caches", "protocol", "minor_faults",
             "major_faults")


def _golden_path(scenario) -> Path:
    return GOLDEN_DIR / f"{scenario.get('golden', scenario['name'])}.json"


def _run_scenario(scenario) -> list:
    adapter = SimulatorAdapter()
    adapter.prepare(config=dict(scenario["config"]),
                    workload=scenario["workload"])
    adapter.run()
    return to_jsonable(adapter.fingerprint())


def _diff(expected, actual) -> str:
    lines = []
    for field, want, got in zip(FP_FIELDS, expected, actual):
        if want != got:
            lines.append(f"  {field}: golden={want!r} actual={got!r}")
    return "\n".join(lines) or "  (fingerprint lengths differ)"


@pytest.mark.parametrize("scenario", SCENARIOS,
                         ids=[s["name"] for s in SCENARIOS])
def test_golden(scenario):
    path = _golden_path(scenario)
    actual = _run_scenario(scenario)
    if UPDATE:
        if "golden" in scenario:
            # alias arms never write; they must agree with their source
            expected = json.loads(path.read_text())["fingerprint"]
            assert actual == expected, (
                f"{scenario['name']} diverged from its bit-identity "
                f"source {scenario['golden']}:\n{_diff(expected, actual)}")
            return
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(to_jsonable({
            "scenario": scenario["name"],
            "workload": scenario["workload"],
            "config": scenario["config"],
            "fingerprint": actual,
        }), indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"no golden for {scenario['name']} ({path.name}); generate "
            f"with COMPASS_UPDATE_GOLDEN=1")
    expected = json.loads(path.read_text())["fingerprint"]
    assert actual == expected, (
        f"{scenario['name']} no longer matches {path.name} — simulated "
        f"results changed:\n{_diff(expected, actual)}")


def test_no_stale_goldens():
    """Every committed golden file belongs to a live scenario."""
    live = {_golden_path(s).name for s in SCENARIOS}
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk <= live, f"stale goldens: {sorted(on_disk - live)}"


def test_alias_arms_share_golden_files():
    """The strict arms point at the default arms' files — the bit-identity
    contract is part of the fleet's shape, not an accident."""
    aliased = [s for s in SCENARIOS if "golden" in s]
    assert aliased, "fleet lost its bit-identity arms"
    names = {s["name"] for s in SCENARIOS}
    for s in aliased:
        assert s["golden"] in names
