"""Communicator / CPU-states tests: registration and min-time selection."""

import pytest

from repro.core import events as ev
from repro.core.communicator import Communicator, CpuState
from repro.core.errors import CommunicatorError
from repro.core.frontend import ProcState, SimProcess


def proc_with_event(name, t):
    p = SimProcess(name)
    p.state = ProcState.RUNNING
    e = ev.advance()
    e.time = t
    p.port_event = e
    return p


def test_register_rejects_duplicates():
    c = Communicator(1)
    p = SimProcess("a")
    c.register(p)
    with pytest.raises(CommunicatorError):
        c.register(p)


def test_zero_cpus_rejected():
    with pytest.raises(CommunicatorError):
        Communicator(0)


def test_select_min_time():
    c = Communicator(2)
    a = proc_with_event("a", 50)
    b = proc_with_event("b", 20)
    for p in (a, b):
        c.register(p)
        c.mark_running(p)
    assert c.select() is b


def test_select_tie_breaks_by_pid():
    c = Communicator(2)
    a = proc_with_event("a", 10)
    b = proc_with_event("b", 10)
    for p in (a, b):
        c.register(p)
        c.mark_running(p)
    assert c.select() is (a if a.pid < b.pid else b)


def test_select_skips_empty_ports():
    c = Communicator(2)
    a = proc_with_event("a", 10)
    b = proc_with_event("b", 5)
    b.port_event = None
    for p in (a, b):
        c.register(p)
        c.mark_running(p)
    assert c.select() is a


def test_select_none_when_no_ports():
    c = Communicator(1)
    assert c.select() is None


def test_mark_not_running_removes_from_scan():
    c = Communicator(1)
    a = proc_with_event("a", 1)
    c.register(a)
    c.mark_running(a)
    c.mark_not_running(a)
    assert c.select() is None
    c.mark_not_running(a)   # idempotent


def test_next_event_time():
    c = Communicator(2)
    a = proc_with_event("a", 30)
    b = proc_with_event("b", 7)
    for p in (a, b):
        c.register(p)
        c.mark_running(p)
    assert c.next_event_time() == 7


def test_duplicate_mark_running_is_idempotent():
    # regression: the scan set used to be a list, so double mark_running
    # could enter a process twice and skew selection / running()
    c = Communicator(2)
    a = proc_with_event("a", 10)
    c.register(a)
    c.mark_running(a)
    c.mark_running(a)
    assert c.running() == [a]
    c.mark_not_running(a)
    assert c.running() == []
    assert c.select() is None


def test_batch_horizon_none_without_rival():
    c = Communicator(2)
    a = proc_with_event("a", 10)
    c.register(a)
    c.mark_running(a)
    assert c.batch_horizon(a) is None
    best, hz = c.select_horizon()
    assert best is a and hz is None


def test_batch_horizon_tie_break_directions():
    # winner has the smaller pid: it also wins the tie at t2, so the
    # horizon extends one cycle past the rival's timestamp
    c = Communicator(2)
    a = proc_with_event("a", 10)     # lower pid
    b = proc_with_event("b", 40)
    for p in (a, b):
        c.register(p)
        c.mark_running(p)
    assert a.pid < b.pid
    assert c.select() is a
    assert c.batch_horizon(a) == 41
    # winner has the larger pid: it loses the tie, horizon is exactly t2
    a.port_event.time = 40
    b.port_event.time = 10
    assert c.select() is b
    assert c.batch_horizon(b) == 40


def test_batch_horizon_uses_second_best_rival():
    c = Communicator(3)
    a = proc_with_event("a", 5)
    b = proc_with_event("b", 90)
    d = proc_with_event("d", 30)
    for p in (a, b, d):
        c.register(p)
        c.mark_running(p)
    best, hz = c.select_horizon()
    assert best is a
    assert hz == 31          # d is the binding rival, a wins the tie


def test_select_tie_break_with_horizon_active():
    # equal event times resolve by pid whether or not a horizon is computed
    c = Communicator(2)
    a = proc_with_event("a", 25)
    b = proc_with_event("b", 25)
    for p in (a, b):
        c.register(p)
        c.mark_running(p)
    lo, hi = (a, b) if a.pid < b.pid else (b, a)
    best, hz = c.select_horizon()
    assert best is lo
    assert hz == 25 + 1      # lo also wins future ties at t == 25
    assert c.batch_horizon(hi) == 25   # hi would lose the tie


def test_cpu_state_irq_flag():
    s = CpuState(0)
    assert not s.irq_requested
    s.irq_pending.append(object())
    assert s.irq_requested


def test_cpu_of_requires_binding():
    c = Communicator(1)
    p = SimProcess("a")
    c.register(p)
    with pytest.raises(CommunicatorError):
        c.cpu_of(p)
    p.cpu = 0
    assert c.cpu_of(p).index == 0
