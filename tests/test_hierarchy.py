"""Memory-system integration tests (translation + caches + protocol)."""

import pytest

from repro.core.config import complex_backend, simple_backend
from repro.core.stats import StatsRegistry
from repro.mem.cache import LineState
from repro.mem.hierarchy import MemorySystem


def make(cfg=None, minor=400):
    cfg = cfg or complex_backend(num_cpus=2)
    ms = MemorySystem(cfg, StatsRegistry(cfg.num_cpus),
                      minor_fault_cycles=minor)
    ms.vmm.new_space(1)
    ms.vmm.map_anon(1, 0x10000, 1 << 24)
    return ms


def test_minor_fault_charged_once():
    ms = make()
    lat1, _ = ms.access(1, 0x20000, 4, False, 0, 0)
    # same page, new line, far enough in the future that no resource
    # occupancy from the first access lingers
    lat2, _ = ms.access(1, 0x20040, 4, False, 0, 10_000)
    assert lat1 - lat2 >= 400 - 60  # first access paid the fault


def test_l1_hit_is_l1_latency():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    lat, _ = ms.access(1, 0x20000, 4, False, 0, 50)
    assert lat == ms.l1s[0].cfg.latency


def test_l2_hit_between_l1_and_miss():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    # evict from tiny L1 by touching many lines in the same set family
    for n in range(1, 40):
        ms.access(1, 0x20000 + n * 32 * ms.l1s[0].n_sets, 4, False, 0, n)
    # if the line left L1 but not L2, latency == l1+l2
    line = ms.vmm.translate(1, 0x20000, False, 0)[0] >> 5
    if not ms.l1s[0].contains(line) and ms.l2s[0].contains(line):
        lat, _ = ms.access(1, 0x20000, 4, False, 0, 1000)
        assert lat == ms.l1s[0].cfg.latency + ms.l2s[0].cfg.latency


def test_write_after_read_upgrades():
    ms = make(complex_backend(num_cpus=2))
    ms.access(1, 0x20000, 4, False, 0, 0)
    ms.access(1, 0x20000, 4, False, 1, 10)   # now SHARED in both
    ms.access(1, 0x20000, 4, True, 0, 1000)
    line = ms.vmm.translate(1, 0x20000, False, 0)[0] >> 5
    assert ms.l1s[0].probe(line) == LineState.MODIFIED
    assert ms.l1s[1].probe(line) is None


def test_multi_line_access_touches_all_lines():
    ms = make()
    # a 100-byte access spanning 4 lines
    ms.access(1, 0x20010, 100, False, 0, 0)
    paddr = ms.vmm.translate(1, 0x20010, False, 0)[0]
    first = paddr >> 5
    for ln in range(first, ((paddr + 99) >> 5) + 1):
        assert ms.l1s[0].contains(ln)


def test_atomic_adds_penalty():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    plain, _ = ms.access(1, 0x20000, 4, False, 0, 100)
    atomic, _ = ms.access(1, 0x20000, 4, False, 0, 200, atomic=True)
    assert atomic == plain + 4


def test_simple_backend_has_no_l2():
    ms = make(simple_backend(num_cpus=1))
    assert ms.l2s is None
    ms.access(1, 0x20000, 4, True, 0, 0)
    line = ms.vmm.translate(1, 0x20000, False, 0)[0] >> 5
    assert ms.l1s[0].probe(line) == LineState.MODIFIED


def test_major_fault_reported_not_charged():
    ms = make()
    ms.vmm.map_file(1, 0x9000000, 8192, file_key=5)
    lat, fault = ms.access(1, 0x9000000, 4, False, 0, 0)
    assert fault is not None and lat == 0
    ms.vmm.install_file_page(5, 0, 0)
    lat, fault = ms.access(1, 0x9000000, 4, False, 0, 10)
    assert fault is None and lat > 0


def test_cache_summary_shape():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    s = ms.cache_summary()
    assert "l1" in s and "l2" in s and "protocol" in s
    assert s["minor_faults"] == 1


def test_kernel_addresses_translate():
    ms = make()
    lat, fault = ms.access(1, 0xC100_0000, 4, True, 0, 0)
    assert fault is None and lat > 0
