"""Memory-system integration tests (translation + caches + protocol)."""

import pytest

from repro.core.config import complex_backend, simple_backend
from repro.core.stats import StatsRegistry
from repro.mem.cache import LineState
from repro.mem.hierarchy import MemorySystem


def make(cfg=None, minor=400):
    cfg = cfg or complex_backend(num_cpus=2)
    ms = MemorySystem(cfg, StatsRegistry(cfg.num_cpus),
                      minor_fault_cycles=minor)
    ms.vmm.new_space(1)
    ms.vmm.map_anon(1, 0x10000, 1 << 24)
    return ms


def test_minor_fault_charged_once():
    ms = make()
    lat1, _ = ms.access(1, 0x20000, 4, False, 0, 0)
    # same page, new line, far enough in the future that no resource
    # occupancy from the first access lingers
    lat2, _ = ms.access(1, 0x20040, 4, False, 0, 10_000)
    assert lat1 - lat2 >= 400 - 60  # first access paid the fault


def test_l1_hit_is_l1_latency():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    lat, _ = ms.access(1, 0x20000, 4, False, 0, 50)
    assert lat == ms.l1s[0].cfg.latency


def test_l2_hit_between_l1_and_miss():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    # evict from tiny L1 by touching many lines in the same set family
    for n in range(1, 40):
        ms.access(1, 0x20000 + n * 32 * ms.l1s[0].n_sets, 4, False, 0, n)
    # if the line left L1 but not L2, latency == l1+l2
    line = ms.vmm.translate(1, 0x20000, False, 0)[0] >> 5
    if not ms.l1s[0].contains(line) and ms.l2s[0].contains(line):
        lat, _ = ms.access(1, 0x20000, 4, False, 0, 1000)
        assert lat == ms.l1s[0].cfg.latency + ms.l2s[0].cfg.latency


def test_write_after_read_upgrades():
    ms = make(complex_backend(num_cpus=2))
    ms.access(1, 0x20000, 4, False, 0, 0)
    ms.access(1, 0x20000, 4, False, 1, 10)   # now SHARED in both
    ms.access(1, 0x20000, 4, True, 0, 1000)
    line = ms.vmm.translate(1, 0x20000, False, 0)[0] >> 5
    assert ms.l1s[0].probe(line) == LineState.MODIFIED
    assert ms.l1s[1].probe(line) is None


def test_multi_line_access_touches_all_lines():
    ms = make()
    # a 100-byte access spanning 4 lines
    ms.access(1, 0x20010, 100, False, 0, 0)
    paddr = ms.vmm.translate(1, 0x20010, False, 0)[0]
    first = paddr >> 5
    for ln in range(first, ((paddr + 99) >> 5) + 1):
        assert ms.l1s[0].contains(ln)


def test_atomic_adds_penalty():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    plain, _ = ms.access(1, 0x20000, 4, False, 0, 100)
    atomic, _ = ms.access(1, 0x20000, 4, False, 0, 200, atomic=True)
    assert atomic == plain + 4


def test_simple_backend_has_no_l2():
    ms = make(simple_backend(num_cpus=1))
    assert ms.l2s is None
    ms.access(1, 0x20000, 4, True, 0, 0)
    line = ms.vmm.translate(1, 0x20000, False, 0)[0] >> 5
    assert ms.l1s[0].probe(line) == LineState.MODIFIED


def test_major_fault_reported_not_charged():
    ms = make()
    ms.vmm.map_file(1, 0x9000000, 8192, file_key=5)
    lat, fault = ms.access(1, 0x9000000, 4, False, 0, 0)
    assert fault is not None and lat == 0
    ms.vmm.install_file_page(5, 0, 0)
    lat, fault = ms.access(1, 0x9000000, 4, False, 0, 10)
    assert fault is None and lat > 0


def test_cache_summary_shape():
    ms = make()
    ms.access(1, 0x20000, 4, False, 0, 0)
    s = ms.cache_summary()
    assert "l1" in s and "l2" in s and "protocol" in s
    assert s["minor_faults"] == 1


def test_kernel_addresses_translate():
    ms = make()
    lat, fault = ms.access(1, 0xC100_0000, 4, True, 0, 0)
    assert fault is None and lat > 0


# ---------------------------------------------------------------------------
# access_run edge cases feeding the vector path
# ---------------------------------------------------------------------------

def _per_ref_mirror(ms, kinds, addrs, sizes, pends, t, cpu=0, pid=1):
    """The engine's per-reference loop with no horizon/limit cuts —
    the ground truth access_run must replay."""
    added = 0
    for j, k in enumerate(kinds):
        if j:
            t += pends[j]
        lat, major = ms.access(pid, addrs[j], sizes[j], k != 0, cpu, t,
                               atomic=(k == 2))
        assert major is None
        added += lat
        t += lat
    return added, t


def _straddle_refs(start=0x20F00):
    """A run crossing two 4 KiB page boundaries: per-page state (TLB
    snapshot rows, minor-fault accounting) changes mid-run, and one
    reference straddles the boundary itself (two lines, two pages)."""
    kinds, addrs, sizes, pends = [], [], [], []
    a = start
    for j in range(40):
        kinds.append((0, 1, 0, 2)[j % 4])
        addrs.append(a)
        # every 8th reference spans the line it starts in and the next
        sizes.append(40 if j % 8 == 7 else 4)
        pends.append(3 if j else 0)
        a += 0x60  # 1.5 lines -> crosses 0x21000 and 0x22000 mid-run
    return kinds, addrs, sizes, pends


@pytest.mark.parametrize("vec", [True, False])
def test_access_run_zero_length_and_zero_limit(vec):
    ms = make(complex_backend(num_cpus=2, vectorized=vec))
    kinds, addrs, sizes, pends = _straddle_refs()
    n = len(kinds)
    # i >= n: nothing to consume, state untouched
    assert ms.access_run(1, 0, kinds, addrs, sizes, pends,
                         n, n, 500, 64, 1 << 60) == (0, n, 500, 0, None, 0)
    assert ms.access_run(1, 0, [], [], [], [], 0, 0, 500, 64,
                         1 << 60) == (0, 0, 500, 0, None, 0)
    # limit exhausted before the first reference
    assert ms.access_run(1, 0, kinds, addrs, sizes, pends,
                         0, n, 500, 0, 1 << 60) == (0, 0, 500, 0, None, 0)
    assert ms.accesses == 0


@pytest.mark.parametrize("vec", [True, False])
def test_access_run_page_straddle_matches_per_ref(vec):
    cfg = complex_backend(num_cpus=2, vectorized=vec)
    ms_run, ms_ref = make(cfg), make(cfg)
    kinds, addrs, sizes, pends = _straddle_refs()
    n = len(kinds)
    want_added, want_t = _per_ref_mirror(ms_ref, kinds, addrs, sizes,
                                         pends, 500)
    consumed, i, t, added, major, ext = ms_run.access_run(
        1, 0, kinds, addrs, sizes, pends, 0, n, 500, n, 1 << 60)
    assert (consumed, i, major, ext) == (n, n, None, 0)
    assert (added, t) == (want_added, want_t)
    assert ms_run.cache_summary() == ms_ref.cache_summary()
    # a second, warm pass must agree too (vec path can now accept)
    want_added, want_t = _per_ref_mirror(ms_ref, kinds, addrs, sizes,
                                         pends, want_t + 1_000)
    consumed, i, t, added, major, ext = ms_run.access_run(
        1, 0, kinds, addrs, sizes, pends, 0, n, t + 1_000, n, 1 << 60)
    assert (consumed, added, t) == (n, want_added, want_t)
    assert ms_run.cache_summary() == ms_ref.cache_summary()


@pytest.mark.parametrize("vec", [True, False])
def test_access_run_mixed_tapped_untapped(vec):
    """Installing a tracing tap (an instance rebinding of ``access``)
    between runs must flip access_run to the per-reference stream for
    exactly the tapped runs, with no effect on the simulated totals."""
    cfg = complex_backend(num_cpus=2, vectorized=vec)
    ms_run, ms_ref = make(cfg), make(cfg)
    kinds, addrs, sizes, pends = _straddle_refs()
    n = len(kinds)

    t = 500
    tref = 500
    seen = []
    for phase in ("untapped", "tapped", "untapped-again"):
        if phase == "tapped":
            real = ms_run.access

            def tap(pid, vaddr, size, write, cpu, now, atomic=False):
                seen.append((pid, vaddr, size, write, atomic))
                return real(pid, vaddr, size, write, cpu, now,
                            atomic=atomic)

            ms_run.access = tap
        elif phase == "untapped-again":
            del ms_run.access
        want_added, want_t = _per_ref_mirror(ms_ref, kinds, addrs, sizes,
                                             pends, tref)
        consumed, _, t2, added, major, _ = ms_run.access_run(
            1, 0, kinds, addrs, sizes, pends, 0, n, t, n, 1 << 60)
        assert (consumed, major) == (n, None)
        assert (added, t2) == (want_added, want_t)
        if phase == "tapped":
            # the tap observed every reference of its run, in order
            assert [(v, s) for _, v, s, _, _ in seen] == \
                list(zip(addrs, sizes))
        t = t2 + 1_000
        tref = want_t + 1_000
    assert ms_run.cache_summary() == ms_ref.cache_summary()
    assert len(seen) == n
