"""Checkpoint-based sampled simulation: determinism, error bounds, windows.

Sampling (``SimConfig.sampling``) is the one speed layer that is *not*
bit-identical: fast-forward windows charge a calibrated constant latency
instead of walking the timing models. The contract tested here is the one
EXPERIMENTS.md documents:

  * a sampled run is exactly as deterministic as a full one (same config
    -> same cycle count, same stats, every time);
  * on the streaming workload class the error vs full detail stays inside
    the documented bounds (cycle count <= 2% relative, L1 miss rate
    <= 2 percentage points absolute);
  * with ``checkpoint_windows`` on, each fast-forward -> detail
    transition leaves a loadable ``.w<N>`` snapshot.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro import (ConfigError, Engine, SamplingConfig, complex_backend,
                   load_checkpoint)
from repro.core.frontend import SimProcess
from repro.harness import sampling_summary

BASE = 0x0001_0000


def _stream_app(nbytes, passes):
    def app(proc):
        for p in range(passes):
            yield from proc.touch(BASE, nbytes, write=(p % 2 == 1),
                                  stride=32)
        return 0
    return app


def _run_stream(sampling, nbytes=1 << 20, passes=4, **cfg_kw):
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=1, num_nodes=2, fastpath=True,
                                 sampling=sampling, **cfg_kw))
    eng.spawn("stream", _stream_app(nbytes, passes))
    stats = eng.run()
    return eng, stats


def _l1_miss_rate(eng):
    cs = eng.memsys.cache_summary()
    hits = sum(v[0] for v in cs["l1"].values())
    misses = sum(v[1] for v in cs["l1"].values())
    return misses / max(1, hits + misses)


# ---------------------------------------------------------------------------
# configuration validation
# ---------------------------------------------------------------------------

def test_sampling_config_validation():
    SamplingConfig().validate()  # defaults are legal
    with pytest.raises(ConfigError):
        SamplingConfig(detail_events=0).validate()
    with pytest.raises(ConfigError):
        SamplingConfig(ff_events=-1).validate()
    with pytest.raises(ConfigError):
        SamplingConfig(ff_latency=-0.5).validate()


def test_checkpoint_windows_requires_checkpointing():
    with pytest.raises(ConfigError):
        complex_backend(sampling=SamplingConfig(checkpoint_windows=True))


# ---------------------------------------------------------------------------
# determinism and window accounting
# ---------------------------------------------------------------------------

def test_sampled_run_is_deterministic():
    sc = SamplingConfig(detail_events=2_000, ff_events=18_000)
    eng1, st1 = _run_stream(sc)
    eng2, st2 = _run_stream(sc)
    assert st1.end_cycle == st2.end_cycle
    assert eng1.events_processed == eng2.events_processed
    assert eng1.memsys.cache_summary() == eng2.memsys.cache_summary()
    assert sampling_summary(eng1) == sampling_summary(eng2)


def test_sampling_summary_accounting():
    sc = SamplingConfig(detail_events=2_000, ff_events=18_000)
    eng, _ = _run_stream(sc)
    s = sampling_summary(eng)
    assert s["enabled"]
    assert s["ff_windows"] >= 1
    assert s["detail_windows"] == s["ff_windows"] + 1 or \
        s["detail_windows"] == s["ff_windows"]
    assert s["ff_refs"] > 0
    assert s["detail_refs"] > 0
    # calibrated latencies come from real detail windows, so they are
    # positive once the stream is miss-dominated
    assert all(lat > 0 for lat in s["ff_latencies"])
    # sampling off: no controller, no ff refs
    eng_off, _ = _run_stream(None)
    assert sampling_summary(eng_off) == {"enabled": False}
    assert eng_off.memsys.ff_refs == 0


def test_ff_events_zero_never_fast_forwards():
    sc = SamplingConfig(detail_events=2_000, ff_events=0)
    eng, st = _run_stream(sc)
    eng_full, st_full = _run_stream(None)
    # degenerate schedule: all detail — must be *identical* to unsampled
    assert st.end_cycle == st_full.end_cycle
    assert eng.memsys.ff_refs == 0
    assert eng.memsys.cache_summary() == eng_full.memsys.cache_summary()


# ---------------------------------------------------------------------------
# error bounds (the documented contract; see EXPERIMENTS.md)
# ---------------------------------------------------------------------------

def test_sampling_error_within_documented_bounds():
    sc = SamplingConfig(detail_events=2_000, ff_events=18_000)
    eng_s, st_s = _run_stream(sc)
    eng_f, st_f = _run_stream(None)
    cyc_err = abs(st_s.end_cycle - st_f.end_cycle) / st_f.end_cycle
    miss_err = abs(_l1_miss_rate(eng_s) - _l1_miss_rate(eng_f))
    assert cyc_err <= 0.02, f"cycle error {cyc_err:.4f} > 2%"
    assert miss_err <= 0.02, f"miss-rate error {miss_err:.4f} > 2pp"
    # the sampled run must actually have fast-forwarded most references
    assert eng_s.memsys.ff_refs > eng_s.memsys.accesses // 2


def test_explicit_ff_latency_skips_calibration():
    # with a user-pinned latency the controller never needs a preceding
    # detail window mean; the schedule still alternates
    sc = SamplingConfig(detail_events=2_000, ff_events=18_000,
                        ff_latency=9.0)
    eng, _ = _run_stream(sc)
    s = sampling_summary(eng)
    assert s["ff_refs"] > 0
    assert all(lat == 9.0 for lat in s["ff_latencies"])


# ---------------------------------------------------------------------------
# checkpoint windows
# ---------------------------------------------------------------------------

def test_checkpoint_windows_snapshots(tmp_path):
    path = str(tmp_path / "run.ckpt")
    sc = SamplingConfig(detail_events=2_000, ff_events=18_000,
                        checkpoint_windows=True)
    eng, _ = _run_stream(sc, checkpoint_path=path,
                         checkpoint_interval=1 << 60)
    s = sampling_summary(eng)
    snaps = sorted(glob.glob(path + ".w*"))
    # one snapshot per completed ff -> detail transition
    assert len(snaps) == s["detail_windows"] - 1 >= 1
    for p in snaps:
        ckpt = load_checkpoint(p)
        assert ckpt["version"]
        assert os.path.getsize(p) > 0
