"""Tests for the cycle/time conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.clock import ClockDomain, DEFAULT_CLOCK


def test_default_frequency_is_133mhz():
    assert DEFAULT_CLOCK.freq_hz == 133_000_000


def test_cycle_ns():
    c = ClockDomain(100_000_000)
    assert c.cycle_ns == pytest.approx(10.0)


def test_ns_to_cycles_rounds_up():
    c = ClockDomain(100_000_000)
    assert c.ns_to_cycles(10.0) == 1
    assert c.ns_to_cycles(10.1) == 2
    assert c.ns_to_cycles(0) == 0


def test_us_ms_s_conversions_consistent():
    c = ClockDomain(133_000_000)
    assert c.us_to_cycles(1) == c.ns_to_cycles(1000)
    assert c.ms_to_cycles(1) == c.us_to_cycles(1000)
    assert c.s_to_cycles(1) == 133_000_000


def test_cycles_to_seconds_roundtrip():
    c = ClockDomain(133_000_000)
    assert c.cycles_to_s(133_000_000) == pytest.approx(1.0)
    assert c.cycles_to_ns(1) == pytest.approx(1e9 / 133e6)


def test_bytes_at_rate():
    c = ClockDomain(100_000_000)
    # 100 MB at 100 MB/s = 1 s = 1e8 cycles
    assert c.bytes_at_rate(100_000_000, 100e6) == 100_000_000


def test_bytes_at_rate_rejects_bad_rate():
    with pytest.raises(ValueError):
        ClockDomain().bytes_at_rate(10, 0)


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        ClockDomain().ns_to_cycles(-1)


def test_zero_frequency_rejected():
    with pytest.raises(ValueError):
        ClockDomain(0)


@given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
def test_ns_to_cycles_never_undershoots(ns):
    """Rounding up means reconstructed time >= requested time."""
    c = ClockDomain(133_000_000)
    cycles = c.ns_to_cycles(ns)
    assert c.cycles_to_ns(cycles) >= ns - 1e-3


@given(st.integers(min_value=0, max_value=1 << 48))
def test_cycles_seconds_roundtrip_monotone(cycles):
    c = ClockDomain(133_000_000)
    assert c.s_to_cycles(c.cycles_to_s(cycles)) >= cycles
