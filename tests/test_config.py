"""Configuration validation tests."""

import pytest

from repro.core.config import (BackendConfig, CacheConfig, MemoryConfig,
                               OSConfig, SimConfig, complex_backend,
                               simple_backend, with_os)
from repro.core.errors import ConfigError


class TestCacheConfig:
    def test_defaults_valid(self):
        CacheConfig().validate()

    def test_n_sets(self):
        c = CacheConfig(size=32 * 1024, line_size=32, assoc=4)
        assert c.n_sets == 256

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_size=48).validate()

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1000, line_size=64).validate()

    def test_rejects_assoc_not_dividing(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line_size=32, assoc=5).validate()

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(latency=-1).validate()


class TestMemoryConfig:
    def test_rejects_bad_placement(self):
        with pytest.raises(ConfigError):
            MemoryConfig(placement="random").validate()

    def test_rejects_non_pow2_page(self):
        with pytest.raises(ConfigError):
            MemoryConfig(page_size=3000).validate()

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            MemoryConfig(num_nodes=0).validate()


class TestBackendConfig:
    def test_simple_needs_no_l2(self):
        BackendConfig(detail="simple", l2=None, coherence="none").validate()

    def test_complex_requires_l2(self):
        with pytest.raises(ConfigError):
            BackendConfig(detail="complex", l2=None).validate()

    def test_line_sizes_must_match(self):
        with pytest.raises(ConfigError):
            BackendConfig(
                l1=CacheConfig(line_size=32),
                l2=CacheConfig(line_size=64)).validate()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            BackendConfig(coherence="mosi").validate()


class TestFactories:
    def test_simple_backend_shape(self):
        cfg = simple_backend(num_cpus=2)
        assert cfg.backend.detail == "simple"
        assert cfg.backend.l2 is None
        assert cfg.backend.coherence == "none"
        assert cfg.num_cpus == 2

    def test_complex_backend_defaults(self):
        cfg = complex_backend(num_cpus=4)
        assert cfg.backend.detail == "complex"
        assert cfg.backend.l2 is not None
        assert cfg.backend.memory.num_nodes == 2

    def test_complex_backend_mesi_forces_one_node(self):
        cfg = complex_backend(num_cpus=4, coherence="mesi")
        assert cfg.backend.memory.num_nodes == 1

    def test_mesi_multinode_rejected(self):
        cfg = complex_backend(num_cpus=4)
        from dataclasses import replace
        bad = replace(cfg, backend=replace(cfg.backend, coherence="mesi"))
        with pytest.raises(ConfigError):
            bad.validate()

    def test_with_os_replaces_only_os(self):
        cfg = complex_backend(num_cpus=2)
        cfg2 = with_os(cfg, scheduler="affinity", preemptive=True)
        assert cfg2.os.scheduler == "affinity"
        assert cfg2.os.preemptive
        assert cfg2.backend is cfg.backend

    def test_zero_cpus_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(num_cpus=0).validate()

    def test_os_config_validation(self):
        with pytest.raises(ConfigError):
            OSConfig(scheduler="lottery").validate()
        with pytest.raises(ConfigError):
            OSConfig(quantum=0).validate()
