"""Bit-identity of the vectorized batch memory path.

The vec path (``SimConfig.vectorized``) mirrors the L1 tag/state arrays
and page tables in numpy, classifies whole EventBatch runs in one
vectorized membership test, and retires 100%-private-hit runs in bulk
array ops. Like the scalar fast path it is a pure host-side optimisation:
simulated cycle counts, cache statistics, CPU time buckets and the memory
trace must be *exactly* those of the scalar loop on every workload class
the paper studies (OLTP, DSS, webserver, SPLASH kernel) — tapped and
untapped, composed with conservative lookahead windows and with
ParallelEngine worker leases.
"""

from __future__ import annotations

import pytest

from repro import Engine, complex_backend
from repro.core.frontend import SimProcess
from repro.host import ParallelEngine, WorkerSpec

from tests.test_fastpath_equivalence import (BATCHING_WORKLOADS, WORKLOADS,
                                             _run, _snapshot)
from tests.test_lookahead_equivalence import (HOT_PROG, _private_heavy,
                                              _run_inline)
from tests.test_lookahead_equivalence import _snapshot as _la_snapshot


#: batching workloads whose steady state is hit-dominated enough for the
#: accept-based backoff to admit vec runs; OLTP's small-pool miss stream
#: stays in cooldown (by design — misses are scalar-path work)
VEC_ENGAGING_WORKLOADS = frozenset({"dss", "webserver"})


# ---------------------------------------------------------------------------
# tapped runs: the memtrace tap forces the per-reference loop, so the vec
# path must stand down and change nothing (trace included in the compare)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_vec_tapped_bit_identical(name):
    build = WORKLOADS[name]
    snap_on, eng_on = _run(build, fastpath=True, vectorized=True)
    snap_off, eng_off = _run(build, fastpath=True, vectorized=False)
    assert snap_on == snap_off
    # the scalar arm must never construct the mirror
    assert eng_off.memsys._vec is None
    assert eng_off.memsys.vec_refs == 0


# ---------------------------------------------------------------------------
# untapped runs: the inlined hot loop, where the vec path actually engages
# ---------------------------------------------------------------------------

def _run_untapped(build, **cfg):
    SimProcess._next_pid[0] = 1
    eng, finish = build(**cfg)
    stats = finish()
    snap = _snapshot(eng, stats, rec=None)
    del snap["trace"]
    return snap, eng


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_vec_untapped_bit_identical(name):
    build = WORKLOADS[name]
    snap_on, eng_on = _run_untapped(build, fastpath=True, vectorized=True)
    snap_off, eng_off = _run_untapped(build, fastpath=True, vectorized=False)
    assert snap_on == snap_off
    assert eng_off.memsys.vec_refs == 0
    if name in VEC_ENGAGING_WORKLOADS:
        # the vec arm must have retired real work through the mirror
        assert eng_on.memsys.vec_refs > 0
        assert eng_on.memsys.vec_batches > 0
    elif name in BATCHING_WORKLOADS:
        # miss-heavy tiny runs keep the classifier in accept-based
        # backoff; the vec arm must still have *considered* the batches
        assert eng_on.memsys._vec.declines["cool"] > 0


def test_vec_off_in_config_disables_mirror():
    eng = Engine(complex_backend(num_cpus=1, vectorized=False))
    assert eng.memsys._vec is None
    eng2 = Engine(complex_backend(num_cpus=1, fastpath=False))
    # the vec path rides on the batched fast path; without it there is
    # nothing to vectorize
    assert eng2.memsys._vec is None


# ---------------------------------------------------------------------------
# composition with conservative lookahead windows
# ---------------------------------------------------------------------------

def test_vec_under_lookahead_bit_identical():
    snap_on, eng_on = _run_inline(_private_heavy, lookahead=True,
                                  vectorized=True)
    snap_off, eng_off = _run_inline(_private_heavy, lookahead=True,
                                    vectorized=False)
    assert snap_on == snap_off
    # both mechanisms engaged in the vec arm
    assert eng_on.memsys.vec_refs > 0
    assert eng_on.batch_stats["la_refs"] > 0


# ---------------------------------------------------------------------------
# composition with ParallelEngine worker leases
# ---------------------------------------------------------------------------

def _run_parallel(vectorized, nworkers=1, **cfg_kw):
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=max(nworkers, 1),
                                         vectorized=vectorized, **cfg_kw))
    with eng:
        for i in range(nworkers):
            eng.spawn_worker(WorkerSpec(f"w{i}", HOT_PROG))
        stats = eng.run()
    return _la_snapshot(eng, stats), eng


def test_vec_under_worker_leases_bit_identical():
    snap_on, eng_on = _run_parallel(True, worker_lease=4)
    snap_off, _ = _run_parallel(False, worker_lease=4)
    assert snap_on == snap_off
    assert eng_on.batch_stats["lease_refs"] > 0
