"""Process-scheduler unit tests (§3.3.2)."""

import pytest

from repro.core.errors import SchedulerError
from repro.core.frontend import ProcState, SimProcess
from repro.osim.schedulers import ProcessScheduler


def procs(n):
    return [SimProcess(f"p{i}") for i in range(n)]


def test_admit_assigns_free_cpu():
    s = ProcessScheduler(2)
    a, b, c = procs(3)
    assert s.admit(a) == (a, 0)
    assert s.admit(b) == (b, 1)
    assert s.admit(c) is None
    assert c.state == ProcState.READY
    assert s.ready_count() == 1


def test_release_hands_cpu_to_waiter():
    s = ProcessScheduler(1)
    a, b = procs(2)
    s.admit(a)
    s.admit(b)
    nxt = s.release_cpu(a)
    assert nxt == (b, 0)
    assert a.cpu == -1 and b.cpu == 0


def test_release_with_empty_queue_frees_cpu():
    s = ProcessScheduler(1)
    a, = procs(1)
    s.admit(a)
    assert s.release_cpu(a) is None
    assert s.free_cpus() == [0]


def test_release_requires_holding():
    s = ProcessScheduler(1)
    a, b = procs(2)
    s.admit(a)
    with pytest.raises(SchedulerError):
        s.release_cpu(b)


def test_fcfs_ignores_history():
    s = ProcessScheduler(2, "fcfs")
    a, = procs(1)
    a.cpu_history = [1]
    assert s.admit(a) == (a, 0)     # first available, not the historical one


def test_affinity_prefers_last_cpu():
    s = ProcessScheduler(2, "affinity")
    a, = procs(1)
    a.cpu_history = [1]
    assert s.admit(a) == (a, 1)
    assert s.affinity_hits == 1


def test_affinity_falls_back_to_used_cpu():
    s = ProcessScheduler(3, "affinity")
    a, b = procs(2)
    a.cpu_history = [2, 1]
    s.on_cpu[1] = 999               # last-used busy
    assert s.admit(a) == (a, 2)


def test_affinity_same_node_fallback():
    s = ProcessScheduler(4, "affinity", cpu_node=[0, 0, 1, 1])
    a, = procs(1)
    a.cpu_history = [2]
    s.on_cpu[2] = 999
    # cpu3 shares node 1 with the historical cpu2
    assert s.admit(a) == (a, 3)


def test_preempt_rotates_with_waiters():
    s = ProcessScheduler(1)
    a, b = procs(2)
    s.admit(a)
    s.admit(b)
    disp = s.preempt(a)
    assert disp == (b, 0)
    assert a.state == ProcState.READY
    assert s.preemptions == 1
    # a is at the tail now
    assert s.release_cpu(b) == (a, 0)


def test_preempt_noop_without_waiters():
    s = ProcessScheduler(1)
    a, = procs(1)
    s.admit(a)
    assert s.preempt(a) is None
    assert a.cpu == 0


def test_double_bind_rejected():
    s = ProcessScheduler(1)
    a, b = procs(2)
    s.admit(a)
    with pytest.raises(SchedulerError):
        s._bind(b, 0)


def test_remove_from_ready_queue():
    s = ProcessScheduler(1)
    a, b = procs(2)
    s.admit(a)
    s.admit(b)
    s.remove(b)
    assert s.release_cpu(a) is None


def test_unknown_policy_rejected():
    with pytest.raises(SchedulerError):
        ProcessScheduler(1, "rr")


def test_cpu_history_recorded_once_per_stint():
    s = ProcessScheduler(2, "affinity")
    a, = procs(1)
    s.admit(a)
    s.release_cpu(a)
    s.admit(a)
    assert a.cpu_history == [0]      # same cpu, no duplicate entry
