"""Engine-level synchronisation: locks, barriers, contention accounting."""

import pytest

from repro import Engine, complex_backend, simple_backend


def test_lock_mutual_exclusion(engine2):
    """Critical sections never overlap in simulated time."""
    intervals = []

    def app(proc):
        for _ in range(5):
            yield from proc.lock(1)
            start = proc.process.vtime
            proc.compute(1000)
            yield from proc.advance()
            intervals.append((start, proc.process.vtime))
            yield from proc.unlock(1)
            proc.compute(500)
        yield from proc.exit(0)

    engine2.spawn("a", app)
    engine2.spawn("b", app)
    engine2.run()
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1, f"overlap: ({s1},{e1}) vs ({s2},..)"


def test_lock_contention_counted(engine2):
    def app(proc):
        for _ in range(10):
            yield from proc.lock(3)
            proc.compute(5000)
            yield from proc.advance()
            yield from proc.unlock(3)
        yield from proc.exit(0)

    engine2.spawn("a", app)
    engine2.spawn("b", app)
    stats = engine2.run()
    assert stats.get("lock_contention") > 0
    acq, contended = engine2.locks.stats()[3]
    assert acq == 20


def test_contended_lock_releases_cpu():
    """A lock waiter gives its CPU to ready work (blocking-lock model):
    holder and waiter run on the two CPUs; when the waiter blocks, the
    bystander (queued third) gets the waiter's CPU."""
    eng = Engine(simple_backend(num_cpus=2))
    order = []

    def holder(proc):
        yield from proc.lock(1)
        proc.compute(1_000_000)
        yield from proc.advance()
        yield from proc.unlock(1)
        order.append("holder")
        yield from proc.exit(0)

    def waiter(proc):
        proc.compute(100)          # starts just after holder takes the lock
        yield from proc.lock(1)
        yield from proc.unlock(1)
        order.append("waiter")
        yield from proc.exit(0)

    def bystander(proc):
        proc.compute(1000)
        yield from proc.advance()
        order.append("bystander")
        yield from proc.exit(0)

    eng.spawn("h", holder)
    eng.spawn("w", waiter)
    eng.spawn("b", bystander)
    eng.run()
    assert order.index("bystander") < order.index("waiter")


def test_barrier_releases_all_at_last_arrival(engine4):
    times = {}

    def make(name, work):
        def app(proc):
            proc.compute(work)
            yield from proc.barrier(5, 3)
            times[name] = proc.process.vtime
            yield from proc.exit(0)
        return app

    engine4.spawn("fast", make("fast", 100))
    engine4.spawn("mid", make("mid", 10_000))
    engine4.spawn("slow", make("slow", 1_000_000))
    engine4.run()
    assert times["fast"] >= 1_000_000
    assert times["mid"] >= 1_000_000


def test_barrier_multiple_episodes(engine2):
    counts = []

    def app(proc):
        for i in range(4):
            proc.compute(100 * (1 + proc.process.pid))
            yield from proc.barrier(2, 2)
            counts.append(i)
        yield from proc.exit(0)

    engine2.spawn("a", app)
    engine2.spawn("b", app)
    engine2.run()
    assert engine2.barriers.episodes(2) == 4
    assert sorted(counts) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_lock_traffic_hits_coherence(engine2):
    """Lock acquisition generates RMW traffic on the lock line."""
    def app(proc):
        for _ in range(10):
            yield from proc.lock(7)
            yield from proc.unlock(7)
        yield from proc.exit(0)

    engine2.spawn("a", app)
    engine2.spawn("b", app)
    engine2.run()
    counters = engine2.memsys.protocol.counters
    assert counters.get("write_miss", 0) + counters.get("invalidation", 0) > 0


def test_fifo_lock_ordering(engine4):
    """Waiters acquire in arrival order."""
    grants = []

    def make(name, delay):
        def app(proc):
            proc.compute(delay)
            yield from proc.lock(9)
            grants.append(name)
            proc.compute(500_000)
            yield from proc.advance()
            yield from proc.unlock(9)
            yield from proc.exit(0)
        return app

    engine4.spawn("first", make("first", 10))
    engine4.spawn("second", make("second", 2000))
    engine4.spawn("third", make("third", 4000))
    engine4.run()
    assert grants == ["first", "second", "third"]
