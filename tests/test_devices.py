"""Device model tests: disk, ethernet, interval timer."""

import pytest

from repro.core.clock import ClockDomain
from repro.core.communicator import CpuState
from repro.core.config import DiskConfig, EthernetConfig
from repro.core.errors import DeviceError
from repro.core.scheduler import GlobalScheduler
from repro.devices.clock import IntervalTimer
from repro.devices.disk import Disk, DiskRequest
from repro.devices.ethernet import EthernetNic, Frame
from repro.osim.interrupts import InterruptController


@pytest.fixture
def env():
    gs = GlobalScheduler()
    cpus = [CpuState(0), CpuState(1)]
    intctl = InterruptController(cpus)
    return gs, cpus, intctl


def drain(gs):
    while (t := gs.pop_due(1 << 60)) is not None:
        gs.run_task(t)


class TestDisk:
    def test_service_time_components(self, env):
        gs, _cpus, intctl = env
        d = Disk("hd0", gs, intctl, DiskConfig(), ClockDomain())
        req = DiskRequest(10 << 20, 4096, False)
        cycles = d.service_cycles(req)
        # 8 ms seek + ~4.2 ms rotation + transfer + controller at 133 MHz
        assert cycles > ClockDomain().ms_to_cycles(10)

    def test_sequential_requests_cheaper(self, env):
        gs, _cpus, intctl = env
        d = Disk("hd0", gs, intctl, DiskConfig(), ClockDomain())
        r1 = DiskRequest(0, 4096, False)
        d.submit(r1, 0)
        near = d.service_cycles(DiskRequest(4096, 4096, False))
        far = d.service_cycles(DiskRequest(500 << 20, 4096, False))
        assert near < far

    def test_fifo_queueing(self, env):
        gs, _cpus, intctl = env
        d = Disk("hd0", gs, intctl, DiskConfig(), ClockDomain())
        t1 = d.submit(DiskRequest(0, 4096, False), 0)
        t2 = d.submit(DiskRequest(0, 4096, False), 0)
        assert t2 > t1
        assert d.queue_cycles > 0

    def test_completion_interrupt_runs_actions(self, env):
        gs, cpus, intctl = env
        d = Disk("hd0", gs, intctl, DiskConfig(), ClockDomain())
        done = []
        req = DiskRequest(0, 4096, False)
        req.actions.append(lambda: done.append(1))
        d.submit(req, 0)
        drain(gs)
        # interrupt is pending on some CPU; deliver by hand
        for c in cpus:
            for intr in c.irq_pending:
                for a in intr.actions:
                    a()
        assert done == [1]

    def test_bytes_accounted(self, env):
        gs, _cpus, intctl = env
        d = Disk("hd0", gs, intctl, DiskConfig(), ClockDomain())
        d.submit(DiskRequest(0, 4096, False), 0)
        d.submit(DiskRequest(0, 8192, True), 0)
        assert d.read_bytes == 4096 and d.write_bytes == 8192

    def test_bad_size_rejected(self):
        with pytest.raises(DeviceError):
            DiskRequest(0, 0, False)


class TestEthernet:
    def test_deliver_schedules_rx_interrupt(self, env):
        gs, cpus, intctl = env
        nic = EthernetNic("en0", gs, intctl, EthernetConfig(), ClockDomain())
        got = []
        nic.on_receive = lambda f: got.append(f.nbytes)
        nic.deliver(Frame(500, ("data", 1, b"x")), 0)
        drain(gs)
        for c in cpus:
            for intr in c.irq_pending:
                for a in intr.actions:
                    a()
        assert got == [500]
        assert nic.rx_frames == 1

    def test_wire_serialises_frames(self, env):
        gs, _cpus, intctl = env
        nic = EthernetNic("en0", gs, intctl, EthernetConfig(), ClockDomain())
        t1 = nic.deliver(Frame(1500), 0)
        t2 = nic.deliver(Frame(1500), 0)
        assert t2 > t1

    def test_transmit_splits_at_mtu(self, env):
        gs, _cpus, intctl = env
        nic = EthernetNic("en0", gs, intctl, EthernetConfig(mtu=1500),
                          ClockDomain())
        nic.transmit(4000, 0)
        assert nic.tx_frames == 3

    def test_transmit_completion_callback(self, env):
        gs, cpus, intctl = env
        nic = EthernetNic("en0", gs, intctl, EthernetConfig(), ClockDomain())
        done = []
        nic.transmit(100, 0, on_done=lambda: done.append(1))
        drain(gs)
        for c in cpus:
            for intr in c.irq_pending:
                for a in intr.actions:
                    a()
        assert done == [1]

    def test_bandwidth_shapes_latency(self, env):
        gs, _cpus, intctl = env
        slow = EthernetNic("s", gs, intctl,
                           EthernetConfig(bandwidth_mb_s=1.25), ClockDomain())
        fast = EthernetNic("f", gs, intctl,
                           EthernetConfig(bandwidth_mb_s=12.5), ClockDomain())
        assert slow._wire_cycles(1500) > fast._wire_cycles(1500)

    def test_bad_frame_rejected(self):
        with pytest.raises(DeviceError):
            Frame(0)


class TestIntervalTimer:
    def test_ticks_periodically(self, env):
        gs, cpus, intctl = env
        t = IntervalTimer(gs, intctl, interval=1000, handler_cycles=50,
                          num_cpus=2)
        t.start()
        for _ in range(3):
            task = gs.pop_due(10_000)
            gs.run_task(task)
        assert t.ticks == 3
        assert intctl.posted == 6      # one per CPU per tick

    def test_stop_halts_ticks(self, env):
        gs, _cpus, intctl = env
        t = IntervalTimer(gs, intctl, 1000, 50, 1)
        t.start()
        gs.run_task(gs.pop_due(10_000))
        t.stop()
        task = gs.pop_due(10_000)
        if task:
            gs.run_task(task)
        assert t.ticks == 1

    def test_on_tick_callbacks_delivered(self, env):
        gs, cpus, intctl = env
        seen = []
        t = IntervalTimer(gs, intctl, 1000, 50, 1)
        t.on_tick.append(lambda cpu, now: seen.append((cpu, now)))
        t.start()
        gs.run_task(gs.pop_due(10_000))
        for intr in cpus[0].irq_pending:
            for a in intr.actions:
                a()
        assert seen == [(0, 1000)]

    def test_bad_interval(self, env):
        gs, _cpus, intctl = env
        with pytest.raises(ValueError):
            IntervalTimer(gs, intctl, 0, 50, 1)
