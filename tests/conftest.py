"""Shared fixtures for the COMPASS reproduction test suite."""

from __future__ import annotations

import pytest

from repro import Engine, complex_backend, simple_backend
from repro.core.stats import StatsRegistry


@pytest.fixture
def engine1():
    """A single-CPU simple-backend engine."""
    return Engine(simple_backend(num_cpus=1))


@pytest.fixture
def engine2():
    """A 2-CPU complex-backend engine."""
    return Engine(complex_backend(num_cpus=2))


@pytest.fixture
def engine4():
    """A 4-CPU complex-backend (CC-NUMA) engine."""
    return Engine(complex_backend(num_cpus=4))


def run_app(engine: Engine, *apps, **kw):
    """Spawn each app and run to completion; returns (procs, stats)."""
    procs = [engine.spawn(f"t{i}", app) for i, app in enumerate(apps)]
    stats = engine.run(**kw)
    return procs, stats


@pytest.fixture
def runner():
    return run_app
