"""Bit-identity of the conservative lookahead windows (both layers).

Layer 1 (inline engine): the batched hot loop may drain references past the
strict rival horizon, but only references satisfying the L1 fast-path
full-hit predicate — which touch nothing outside the issuer's private
state, so any interleaving of them commutes with the strict order.

Layer 2 (ParallelEngine): a worker in steady fire-and-forget state may be
granted a lease to time its own references against a snapshot of its L1
state, bounded by the earliest cycle anything else can act at all.

Both are gated by ``SimConfig.lookahead`` and must produce *exactly* the
simulated cycle counts, cache statistics, CPU time buckets and fault-fire
counts of the strict path — with and without fault plans, and composed
with checkpoint/restore and worker crash/replay.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import (Engine, FaultPlan, FaultRule, SimulatedCrash,
                   checkpoint_exists,
                   complex_backend, resume)
from repro.core.frontend import SimProcess
from repro.host import ParallelEngine, WorkerSpec
from repro.mem.hierarchy import MemorySystem

from tests.test_determinism_harness import FAULT_OFF_WORKLOADS, _fingerprint

#: timing-only plan that fires in every workload (mirrors the checkpoint
#: suite's plan: no errno faults, so all workloads complete unchanged)
TIMING_PLAN = FaultPlan(rules=(
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
    FaultRule(site="link:degraded", prob=0.001, extra_cycles=50),
), seed=1998)

#: ISA program that re-scans a private L1-resident buffer — the
#: fast-path-dominated steady state where worker leases engage
HOT_PROG = """
    li r7, 0
    li r8, 40
    li r10, 0x100000
pass:
    li r1, 0
    li r2, 8192
loop:
    loadx r3, r10, r1, 4
    storex r3, r10, r1, 4
    addi r1, r1, 32
    blt r1, r2, loop
    addi r7, r7, 1
    blt r7, r8, pass
    li r3, 0
    halt
"""


def _snapshot(eng, stats):
    """Fingerprint + the full memory-side picture (cache hit/miss/eviction
    counters and per-protocol coherence traffic)."""
    return _fingerprint(eng, stats) + (
        tuple(sorted(eng.memsys.cache_summary()["l1"].items())),
        dict(eng.memsys.cache_summary()["protocol"]),
        eng.memsys.vmm.minor_faults,
        eng.memsys.vmm.major_faults,
    )


def _run_inline(build, faults=None, **cfg_kw):
    # this suite isolates the *conservative* lookahead layers; the
    # optimistic speculation layer (on by default, tested in
    # test_speculation_equivalence.py) would shadow them
    cfg_kw.setdefault("speculate", False)
    SimProcess._next_pid[0] = 1
    eng = build(lambda **kw: complex_backend(faults=faults, **cfg_kw, **kw))
    stats = eng.run()
    return _snapshot(eng, stats), eng


# ---------------------------------------------------------------------------
# Layer 1: inline engine windows
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(FAULT_OFF_WORKLOADS))
def test_lookahead_bit_identical(name):
    build = FAULT_OFF_WORKLOADS[name]
    snap_on, eng_on = _run_inline(build, lookahead=True)
    snap_off, eng_off = _run_inline(build, lookahead=False)
    assert snap_on == snap_off
    # the strict run must never grant a window
    assert eng_off.batch_stats["la_windows"] == 0
    assert eng_off.batch_stats["la_refs"] == 0


@pytest.mark.parametrize("name", sorted(FAULT_OFF_WORKLOADS))
def test_lookahead_bit_identical_under_faults(name):
    build = FAULT_OFF_WORKLOADS[name]
    snap_on, eng_on = _run_inline(build, faults=TIMING_PLAN, lookahead=True)
    snap_off, _ = _run_inline(build, faults=TIMING_PLAN, lookahead=False)
    assert snap_on == snap_off
    assert eng_on.faults.stats.draws > 0


def _private_heavy(cfg):
    """4 CPUs, each re-touching a private L1-resident buffer: the
    invisible-reference steady state the lookahead windows target."""
    eng = Engine(cfg(num_cpus=4, coherence="mesi", num_nodes=1))

    def make_app(base):
        def app(p):
            yield from p.touch(base, 8192, write=True, stride=32)
            for _ in range(30):
                yield from p.touch(base, 8192, write=True, stride=32,
                                   work_per_line=2)
            yield from p.exit(0)
        return app

    for c in range(4):
        eng.spawn(f"w{c}", make_app(0x1_0000 + c * 0x10_000))
    return eng


def test_lookahead_drains_past_horizon():
    """On a private-heavy workload the windows must actually engage —
    references are consumed beyond the strict rival cut — while staying
    bit-identical and using far fewer batch dispatches."""
    snap_on, eng_on = _run_inline(_private_heavy, lookahead=True)
    snap_off, eng_off = _run_inline(_private_heavy, lookahead=False)
    assert snap_on == snap_off
    bs_on = eng_on.batch_stats
    assert bs_on["la_windows"] > 0
    assert bs_on["la_refs"] > 0
    assert bs_on["batches"] < eng_off.batch_stats["batches"]


def test_lookahead_cycles_auto_derivation():
    """lookahead_cycles=0 derives the window scan budget from the
    protocol's cheapest cross-CPU interaction."""
    eng = Engine(complex_backend(num_cpus=2))
    mrl = eng.memsys.min_remote_latency()
    assert mrl >= 1
    assert eng._lookahead_cycles == max(64 * mrl, 4096)
    eng2 = Engine(complex_backend(num_cpus=2, lookahead_cycles=777))
    assert eng2._lookahead_cycles == 777


@pytest.mark.parametrize("coherence", ["mesi", "none", "directory",
                                       "coma", "dsm"])
def test_min_remote_latency_all_protocols(coherence):
    eng = Engine(complex_backend(num_cpus=2, num_nodes=2,
                                 coherence=coherence))
    assert eng.memsys.min_remote_latency() >= 1


# ---------------------------------------------------------------------------
# Layer 1 x checkpointing
# ---------------------------------------------------------------------------

def test_lookahead_never_granted_while_recording(tmp_path):
    """An active checkpoint recorder wraps the memory system; the reply
    log needs the strict per-reference stream, so the engine must not
    grant windows — and the result must still match the lookahead-off
    checkpointed run bit-for-bit."""
    build = FAULT_OFF_WORKLOADS["oltp"]
    path = str(tmp_path / "ck.pkl")

    def run(lookahead):
        SimProcess._next_pid[0] = 1
        eng = build(lambda **kw: complex_backend(
            checkpoint_path=path, checkpoint_interval=2_000,
            lookahead=lookahead, **kw))
        stats = eng.run()
        return _snapshot(eng, stats), eng

    snap_on, eng_on = run(True)
    snap_off, _ = run(False)
    assert snap_on == snap_off
    assert eng_on._ckpt.saves > 0
    assert eng_on.batch_stats["la_refs"] == 0
    # and both match the plain (no recorder) lookahead-on run
    plain, _ = _run_inline(build, lookahead=True)
    assert plain == snap_on


def test_checkpoint_resume_with_lookahead_on(tmp_path):
    """Crash + resume with lookahead enabled reproduces the uninterrupted
    lookahead-off run: replayed stretches never grant windows (the replay
    wrapper needs the strict stream) and post-replay stretches resume the
    recorder, which also denies — lookahead is timing-neutral, so the
    checkpointed runs stay bit-identical anyway."""
    build = FAULT_OFF_WORKLOADS["dss"]
    baseline, _ = _run_inline(build, lookahead=False)
    path = str(tmp_path / "ck.pkl")

    def factory(**kw):
        return complex_backend(checkpoint_path=path,
                               checkpoint_interval=1_500,
                               lookahead=True, **kw)

    SimProcess._next_pid[0] = 1
    eng = build(factory)
    eng._ckpt.crash_after_saves = 2
    with pytest.raises(SimulatedCrash):
        eng.run()
    assert checkpoint_exists(path)
    eng2, stats2 = resume(path, lambda: build(factory))
    assert _snapshot(eng2, stats2) == baseline


# ---------------------------------------------------------------------------
# Layer 2: worker leases (ParallelEngine)
# ---------------------------------------------------------------------------

def _run_parallel(nworkers=1, prog=HOT_PROG, **cfg_kw):
    cfg_kw.setdefault("speculate", False)
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=max(nworkers, 1),
                                         **cfg_kw))
    with eng:
        for i in range(nworkers):
            eng.spawn_worker(WorkerSpec(f"w{i}", prog))
        stats = eng.run()
    return _snapshot(eng, stats), eng


def _run_inline_isa(nworkers=1, prog=HOT_PROG, **cfg_kw):
    from repro.isa import Interpreter, Machine, assemble
    from repro.isa.memory import DataMemory
    cfg_kw.setdefault("speculate", False)
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=max(nworkers, 1), **cfg_kw))
    for i in range(nworkers):
        dm = DataMemory()
        dm.map_segment(0x100000, 1 << 22)
        eng.spawn_interpreter(
            f"w{i}", Interpreter(assemble(prog, f"w{i}"), Machine(dm)))
    stats = eng.run()
    return _snapshot(eng, stats), eng


def test_worker_lease_matches_inline_and_strict():
    snap_lease, eng_lease = _run_parallel(1, worker_lease=4)
    snap_strict, eng_strict = _run_parallel(1, worker_lease=0)
    snap_inline, _ = _run_inline_isa(1)
    assert snap_lease == snap_strict == snap_inline
    assert eng_lease.batch_stats["lease_refs"] > 0
    assert eng_strict.batch_stats["leases"] == 0


def test_worker_lease_multi_worker_identity():
    """With rival workers the windows shrink to the rival bounds (often
    to nothing) — grant or deny, the results must not move."""
    snap_lease, eng_lease = _run_parallel(3, worker_lease=2)
    snap_strict, _ = _run_parallel(3, worker_lease=0)
    assert snap_lease == snap_strict
    bs = eng_lease.batch_stats
    assert bs["leases"] + bs["lease_denied"] > 0


def test_worker_batch_knob_is_timing_neutral():
    """SimConfig.worker_batch only changes host-side message grouping."""
    snap16, _ = _run_parallel(2, worker_batch=16, worker_lease=0)
    snap64, _ = _run_parallel(2, worker_batch=64, worker_lease=0)
    snap128, _ = _run_parallel(2, worker_batch=128, worker_lease=4)
    assert snap16 == snap64 == snap128


def _kill_child(w, timeout=5.0):
    deadline = time.time() + timeout
    while not w.conn.poll() and time.time() < deadline:
        time.sleep(0.01)
    os.kill(w.process.pid, signal.SIGKILL)
    w.process.join()


def test_worker_killed_after_grant_replays_lease(monkeypatch):
    """SIGKILL the worker right after its first lease grant is computed:
    the supervisor relaunches it, answers the re-sent lease request from
    the recorded reply log (same grant, same snapshot, same drain), and
    the run completes bit-identically to an undisturbed one."""
    baseline, _ = _run_parallel(1, worker_lease=2)

    killed = []
    orig = ParallelEngine._lease_decision

    def killing_decision(self, w):
        enc = orig(self, w)
        if enc[0] == "lg" and not killed:
            killed.append(True)
            try:
                os.kill(w.process.pid, signal.SIGKILL)
                w.process.join(timeout=5)
            except (OSError, ValueError):
                pass
        return enc

    monkeypatch.setattr(ParallelEngine, "_lease_decision", killing_decision)
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=1, worker_lease=2))
    eng.worker_backoff = 0.01
    with eng:
        p = eng.spawn_worker(WorkerSpec("w0", HOT_PROG))
        stats = eng.run()
    assert killed
    assert eng._workers[p.pid].restarts >= 1
    assert _snapshot(eng, stats) == baseline


def test_worker_killed_after_pretimed_apply_replays(monkeypatch):
    """SIGKILL the worker right after its first pre-timed result was
    consumed: the replay must regenerate and then *discard* the already
    applied drain (it is inside the consumed prefix) instead of applying
    it twice."""
    baseline, _ = _run_parallel(1, worker_lease=2)

    killed = []
    orig = ParallelEngine._apply_pretimed

    def killing_apply(self, w, msg):
        orig(self, w, msg)
        if not killed:
            killed.append(True)
            try:
                os.kill(w.process.pid, signal.SIGKILL)
                w.process.join(timeout=5)
            except (OSError, ValueError):
                pass

    monkeypatch.setattr(ParallelEngine, "_apply_pretimed", killing_apply)
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=1, worker_lease=2))
    eng.worker_backoff = 0.01
    with eng:
        p = eng.spawn_worker(WorkerSpec("w0", HOT_PROG))
        stats = eng.run()
    assert killed
    assert eng._workers[p.pid].restarts >= 1
    assert _snapshot(eng, stats) == baseline


def test_parallel_checkpoint_denies_leases(tmp_path):
    """An active checkpoint manager needs the strict per-reference stream
    (the reply log), so lease requests are denied — and the checkpointed
    run still matches the lease-off one."""
    path = str(tmp_path / "ck.pkl")
    snap_ck, eng_ck = _run_parallel(1, worker_lease=4,
                                    checkpoint_path=path,
                                    checkpoint_interval=2_000)
    snap_off, _ = _run_parallel(1, worker_lease=0)
    assert eng_ck.batch_stats["leases"] == 0
    assert snap_ck == snap_off


def test_lease_denied_under_bounded_stepping():
    """run(max_events=...) is used for incremental stepping; a lease
    could overshoot the stop point, so it must be denied."""
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=1, worker_lease=1,
                                         worker_batch=8))
    with eng:
        eng.spawn_worker(WorkerSpec("w0", HOT_PROG))
        while eng._live > 0:
            eng.run(max_events=500)
        stats = eng.stats
    assert eng.batch_stats["leases"] == 0
    snap_strict, _ = _run_parallel(1, worker_lease=0)
    assert _snapshot(eng, stats) == snap_strict
