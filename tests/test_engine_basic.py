"""Engine behaviour: event processing, time accounting, interleaving."""

import pytest

from repro import (DeadlockError, Engine, ProcState, complex_backend,
                   simple_backend)


def test_single_process_runs_to_completion(engine1):
    def app(proc):
        proc.compute(100)
        yield from proc.store(0x10_000)
        yield from proc.exit(0)

    p = engine1.spawn("a", app)
    stats = engine1.run()
    assert p.state == ProcState.DONE
    assert p.exit_status == 0
    assert stats.end_cycle > 100


def test_compute_advances_time_exactly(engine1):
    marks = {}

    def app(proc):
        proc.compute(12345)
        yield from proc.advance()
        marks["t"] = proc.process.vtime
        yield from proc.exit(0)

    engine1.spawn("a", app)
    engine1.run()
    # vtime = ctx switch + 12345
    assert marks["t"] == engine1.cfg.os.ctx_switch_cycles + 12345


def test_memory_latency_added_to_vtime(engine1):
    lats = []

    def app(proc):
        lats.append((yield from proc.load(0x10_000)))
        lats.append((yield from proc.load(0x10_000)))
        yield from proc.exit(0)

    engine1.spawn("a", app)
    engine1.run()
    assert lats[0] > lats[1] == engine1.cfg.backend.l1.latency


def test_interleaving_is_time_ordered(engine2):
    """The min-execution-time rule: the slow process's events are processed
    before the fast process's later events."""
    order = []

    def make(name, step):
        def app(proc):
            for i in range(5):
                proc.compute(step)
                yield from proc.advance()
                order.append((name, proc.process.vtime))
            yield from proc.exit(0)
        return app

    engine2.spawn("fast", make("fast", 10))
    engine2.spawn("slow", make("slow", 1000))
    engine2.run()
    times = [t for _n, t in order]
    # ADVANCE events were globally processed in nondecreasing time order
    assert times == sorted(times)


def test_more_processes_than_cpus_all_finish():
    eng = Engine(simple_backend(num_cpus=2))

    def app(proc):
        for _ in range(3):
            yield from proc.store(0x10_000)
            r = yield from proc.call("nanosleep", 10_000)
            assert r.ok
        yield from proc.exit(0)

    procs = [eng.spawn(f"p{i}", app) for i in range(5)]
    eng.run()
    assert all(p.state == ProcState.DONE for p in procs)


def test_exit_status_propagates(engine1):
    def app(proc):
        yield from proc.exit(42)

    p = engine1.spawn("a", app)
    engine1.run()
    assert p.exit_status == 42


def test_deadlock_detected():
    eng = Engine(simple_backend(num_cpus=1))

    def app(proc):
        yield from proc.lock(1)
        yield from proc.lock(1)   # self-deadlock: relock without release
        yield from proc.exit(0)

    eng.spawn("a", app)
    eng._deadlock_window = 2_000_000   # fail fast in the test
    with pytest.raises(DeadlockError):
        eng.run()


def test_run_until_bound(engine1):
    def app(proc):
        for _ in range(100):
            proc.compute(1000)
            yield from proc.advance()
        yield from proc.exit(0)

    p = engine1.spawn("a", app)
    engine1.run(until=5000)
    assert p.state != ProcState.DONE
    assert engine1.gsched.now <= 6000
    engine1.run()
    assert p.state == ProcState.DONE


def test_max_events_bound(engine1):
    def app(proc):
        for _ in range(50):
            yield from proc.advance()
        yield from proc.exit(0)

    engine1.spawn("a", app)
    engine1.run(max_events=10)
    assert engine1.events_processed == 10


def test_user_time_charged(engine1):
    def app(proc):
        proc.compute(50_000)
        yield from proc.advance()
        yield from proc.exit(0)

    engine1.spawn("a", app)
    stats = engine1.run()
    assert stats.cpu[0].user >= 50_000


def test_unknown_syscall_returns_enosys(engine1):
    from repro.core.events import ENOSYS
    res = {}

    def app(proc):
        r = yield from proc.call("no_such_call")
        res["r"] = r
        yield from proc.exit(0)

    engine1.spawn("a", app)
    engine1.run()
    assert res["r"].errno == ENOSYS


def test_spawn_via_syscall(engine2):
    done = []

    def child(proc):
        proc.compute(10)
        yield from proc.advance()
        done.append(proc.process.pid)
        yield from proc.exit(0)

    def parent(proc):
        r = yield from proc.call("spawn", "kid", child)
        assert r.ok and r.value > 0
        r = yield from proc.call("waitpid", r.value)
        assert r.ok
        yield from proc.exit(0)

    engine2.spawn("parent", parent)
    engine2.run()
    assert len(done) == 1


def test_sim_onoff_switch_suppresses_cost(engine1):
    """The §5 instrumentation switch: OFF regions contribute no time."""
    times = {}

    def app(proc):
        proc.sim_off()
        proc.compute(1_000_000)          # invisible
        lat = yield from proc.load(0x10_000)
        assert lat == 0
        proc.sim_on()
        proc.compute(100)
        yield from proc.advance()
        times["t"] = proc.process.vtime
        yield from proc.exit(0)

    engine1.spawn("a", app)
    engine1.run()
    assert times["t"] < 50_000
