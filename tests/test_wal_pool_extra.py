"""WAL, buffer-pool internals and extra minidb coverage."""

import pytest

from repro import Engine, complex_backend
from repro.apps.minidb import (MiniDb, TpcdDriver, WriteAheadLog,
                               tpcd_catalog)
from repro.apps.minidb.bufferpool import BufferPool
from repro.apps.minidb.catalog import LINEITEM
from repro.apps.minidb.layout import PAGE_SIZE


@pytest.fixture
def db_engine():
    eng = Engine(complex_backend(num_cpus=2))
    cat = tpcd_catalog(scale=0.0001)
    db = MiniDb(eng, cat, pool_frames=8)
    db.setup()
    return eng, db


class TestWal:
    def test_append_and_commit_forces_disk(self, db_engine):
        eng, db = db_engine

        def app(proc):
            yield from db.agent_init(proc)
            fd = db.fd(proc.process.pid, "__wal")
            before = eng.disk.write_bytes
            yield from db.wal.append_and_commit(proc, fd, nrecords=3)
            assert eng.disk.write_bytes > before
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert db.wal.appended == 3
        assert db.wal.commits == 1

    def test_unsynced_append_defers_disk(self, db_engine):
        eng, db = db_engine

        def app(proc):
            yield from db.agent_init(proc)
            fd = db.fd(proc.process.pid, "__wal")
            before = eng.disk.write_bytes
            yield from db.wal.append_and_commit(proc, fd, nrecords=1,
                                                sync=False)
            assert eng.disk.write_bytes == before   # delayed write
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert db.wal.commits == 0

    def test_log_grows_in_fs(self, db_engine):
        eng, db = db_engine

        def app(proc):
            yield from db.agent_init(proc)
            fd = db.fd(proc.process.pid, "__wal")
            yield from db.wal.append_and_commit(proc, fd, nrecords=2)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        node = eng.os_server.fs.lookup(db.wal.path)
        assert node.size == 2 * db.wal.record_bytes

    def test_serialised_by_log_lock(self, db_engine):
        """Two agents appending concurrently: record count is exact."""
        eng, db = db_engine

        def app(proc):
            yield from db.agent_init(proc)
            fd = db.fd(proc.process.pid, "__wal")
            for _ in range(4):
                yield from db.wal.append_and_commit(proc, fd, nrecords=1)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.spawn("b", app)
        eng.run()
        assert db.wal.appended == 8
        node = eng.os_server.fs.lookup(db.wal.path)
        assert node.size == 8 * db.wal.record_bytes


class TestBufferPool:
    def test_frame_addresses_page_aligned(self):
        pool = BufferPool(0xB800_0000, 4)
        addrs = [pool.frame_addr(i) for i in range(4)]
        assert len(set(addrs)) == 4
        assert all(a % PAGE_SIZE == 0 for a in addrs)
        assert pool.shm_bytes == 4 * PAGE_SIZE

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0xB800_0000, 0)

    def test_dirty_writeback_on_eviction(self, db_engine):
        eng, db = db_engine
        written = []
        orig = db.write_page_out

        def spy(proc, table, pageno, addr, page):
            written.append((table, pageno))
            return orig(proc, table, pageno, addr, page)

        db.write_page_out = spy

        def app(proc):
            yield from db.agent_init(proc)
            # dirty one page, then flood the 8-frame pool
            yield from db.pool.get_page(proc, db, "lineitem", 0, LINEITEM,
                                        for_write=True)
            for pg in range(1, 10):
                yield from db.pool.get_page(proc, db, "lineitem", pg,
                                            LINEITEM)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert ("lineitem", 0) in written

    def test_flush_all_cleans(self, db_engine):
        eng, db = db_engine
        out = {}

        def app(proc):
            yield from db.agent_init(proc)
            for pg in range(3):
                yield from db.pool.get_page(proc, db, "lineitem", pg,
                                            LINEITEM, for_write=True)
            out["flushed"] = yield from db.pool.flush_all(proc, db)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert out["flushed"] == 3
        assert not any(db.pool.dirty)

    def test_updates_persist_through_eviction(self, db_engine):
        """Functional durability: an updated record survives pool eviction
        and re-read (writeback wrote real bytes)."""
        eng, db = db_engine
        out = {}

        def app(proc):
            yield from db.agent_init(proc)
            rec, page, slot = yield from db.get_record(
                proc, "lineitem", 0, for_write=True)
            rec["l_quantity"] = 4242
            page.put_record(slot, rec)
            # force eviction of page 0
            for pg in range(1, 10):
                yield from db.pool.get_page(proc, db, "lineitem", pg,
                                            LINEITEM)
            rec2, _p, _s = yield from db.get_record(proc, "lineitem", 0)
            out["qty"] = rec2["l_quantity"]
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert out["qty"] == 4242
