"""Forensic reports must be JSON-plain: control-plane job records embed
``DeadlockError.report`` / ``HostError.report`` verbatim and persist them
with ``json.dumps``, so every payload must survive a dump/load round trip
unchanged (satellite: JSON-serializable diagnostics)."""

import json
import os
import signal
import time

import pytest

from repro import complex_backend
from repro.core.engine import Engine
from repro.core.errors import DeadlockError, HostError
from repro.core.jsonable import to_jsonable
from repro.host import ParallelEngine, WorkerSpec

SLEEPY = """
    li r3, 50000
    syscall nanosleep, 1
    li r3, 0
    halt
"""


def _roundtrips(payload):
    """dumps never raises and loads(dumps(x)) == x."""
    encoded = json.dumps(payload)
    return json.loads(encoded) == payload


class TestToJsonable:
    def test_plain_values_pass_through(self):
        payload = {"a": 1, "b": [1.5, None, True, "s"]}
        assert to_jsonable(payload) == payload

    def test_everything_becomes_json_plain(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        raw = {
            7: ("tuple", Opaque()),
            "bytes": b"\x00\xff",
            "set": {3, 1, 2},
            "nan": float("nan"),
            "inf": float("inf"),
        }
        out = to_jsonable(raw)
        assert _roundtrips(out)
        assert out["7"] == ["tuple", "<opaque>"]
        assert out["bytes"] == {"__bytes__": "00ff"}
        assert out["set"] == [1, 2, 3]
        assert out["nan"] == "nan"
        assert out["inf"] == "inf"

    def test_self_referential_payload_terminates(self):
        loop = {}
        loop["me"] = loop
        assert _roundtrips(to_jsonable(loop))


class TestDeadlockReportRoundTrip:
    def test_lock_deadlock_report(self):
        eng = Engine(complex_backend(num_cpus=2))

        def holder(proc):
            yield from proc.lock(9)
            yield from proc.exit(0)     # exits without unlocking

        def waiter(proc):
            proc.compute(50_000)        # let the holder win the lock
            yield from proc.lock(9)
            yield from proc.exit(0)

        eng.spawn("holder", holder)
        wp = eng.spawn("waiter", waiter)
        with pytest.raises(DeadlockError) as ei:
            eng.run()
        report = ei.value.report
        assert _roundtrips(report)
        # the converted report is still structurally useful, not a repr blob
        assert report["locks"]["9"]["waiters"] == [wp.pid]
        assert isinstance(report["recent_events"][0], list)

    def test_watchdog_report(self):
        eng = Engine(complex_backend(num_cpus=1, watchdog_rounds=300))

        def spinner(proc):
            while True:
                yield from proc.advance()

        eng.spawn("spin", spinner)
        with pytest.raises(DeadlockError) as ei:
            eng.run()
        assert _roundtrips(ei.value.report)


class TestDurabilityForensicRoundTrip:
    """PR 9 forensic records — spool torn-tail quarantines, checkpoint
    quarantines, structured corruption errors, crash plans — are all
    JSON-plain: they are written with ``json.dump`` at quarantine time
    and parsed by fleet tooling."""

    def test_spool_quarantine_record(self, tmp_path):
        from repro.service.spool import JobSpool
        spool = JobSpool(str(tmp_path))
        for i in range(4):
            spool.append({"i": i})
        spool.close()
        seg = spool.segment_path(spool._seg_index)
        with open(seg, "r+b") as f:
            f.truncate(os.path.getsize(seg) - 3)     # torn tail
        fresh = JobSpool(str(tmp_path))
        fresh.recover()
        assert len(fresh.quarantines) == 1
        assert _roundtrips(fresh.quarantines[0])
        on_disk = json.load(open(seg + ".quarantine.json"))
        assert on_disk == fresh.quarantines[0]

    def test_checkpoint_quarantine_record(self, tmp_path):
        from repro.checkpoint import quarantine_checkpoint
        from repro.core.errors import CheckpointCorruptError
        path = str(tmp_path / "ck.pkl.g0")
        open(path, "wb").write(b"garbage")
        err = CheckpointCorruptError(path, 0, "bad magic b'garb'")
        record = quarantine_checkpoint(path, err, fallback="ck.pkl.g1")
        assert _roundtrips(record)
        assert json.load(open(path + ".quarantine.json")) == record

    def test_corrupt_error_to_record(self):
        from repro.core.errors import (CheckpointCorruptError,
                                       SpoolCorruptError)
        for cls in (CheckpointCorruptError, SpoolCorruptError):
            rec = cls("/tmp/x", 42, "crc mismatch").to_record()
            assert _roundtrips(rec)
            assert rec["type"] == cls.__name__
            assert rec["offset"] == 42

    def test_crash_plan_round_trip(self):
        from repro import CrashPointPlan, CrashRule
        plan = CrashPointPlan(rules=(
            CrashRule(site="spool:append", hit=3),
            CrashRule(site="ckpt:pre-rename", hit_range=(1, 4),
                      action="raise"),
        ), seed=11, tag="t")
        assert _roundtrips(plan.to_dict())
        assert CrashPointPlan.from_json(plan.to_json()) == plan


class TestHostForensicRoundTrip:
    def test_worker_death_report(self):
        """Kill a worker with no restart budget: the forensic report —
        including the raw ``last_messages`` pipe tuples — is JSON-plain."""
        eng = ParallelEngine(complex_backend(num_cpus=1))
        eng.max_worker_restarts = 0
        with eng:
            eng.spawn_worker(WorkerSpec("victim", SLEEPY))
            w = next(iter(eng._workers.values()))
            deadline = time.time() + 5.0
            while not w.conn.poll() and time.time() < deadline:
                time.sleep(0.01)
            os.kill(w.process.pid, signal.SIGKILL)
            w.process.join()
            with pytest.raises(HostError) as ei:
                eng.run()
        report = ei.value.report
        assert _roundtrips(report)
        assert report["worker"] == "victim"
        # pipe messages were tuples of mixed payloads; now lists
        assert all(isinstance(m, list) for m in report["last_messages"])
