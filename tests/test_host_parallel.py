"""Host-parallel engine tests: determinism vs inline mode, syscalls,
locks across worker processes, host model."""

import pytest

from repro import Engine, complex_backend, simple_backend
from repro.harness.hostmodel import HostCosts, measure_context_switch, predict
from repro.host import ParallelEngine, WorkerSpec
from repro.isa import Interpreter, Machine, assemble
from repro.isa.memory import DataMemory

SCAN = """
    li r1, 0
    li r2, 20000
    li r10, 0x100000
    li r6, 0
loop:
    loadx r3, r10, r1, 4
    mul r4, r3, r3
    add r6, r6, r4
    addi r1, r1, 64
    blt r1, r2, loop
    li r3, 0
    halt
"""

SYS = """
    syscall getpid, 0
    mov r5, r3
    li r1, 0
    li r10, 0x100000
    storex r5, r10, r1, 4
    li r3, 0
    halt
"""

LOCKY = """
    li r5, 1
    li r1, 0
    li r2, 10
    li r10, 0x100000
loop:
    lock r5
    loadx r3, r10, r1, 4
    addi r3, r3, 1
    storex r3, r10, r1, 4
    unlock r5
    addi r1, r1, 1
    blt r1, r2, loop
    li r3, 0
    halt
"""


def run_inline(progs, cpus=2):
    eng = Engine(complex_backend(num_cpus=cpus))
    for i, src in enumerate(progs):
        dm = DataMemory()
        dm.map_segment(0x100000, 1 << 22)
        eng.spawn_interpreter(f"w{i}", Interpreter(assemble(src, f"w{i}"),
                                                   Machine(dm)))
    st = eng.run()
    return st.end_cycle, eng.events_processed, st


def run_parallel(progs, cpus=2):
    eng = ParallelEngine(complex_backend(num_cpus=cpus))
    with eng:
        for i, src in enumerate(progs):
            eng.spawn_worker(WorkerSpec(f"w{i}", src))
        st = eng.run()
    return st.end_cycle, eng.events_processed, st


def test_parallel_matches_inline_single():
    ci, ei, _ = run_inline([SCAN])
    cp, ep, _ = run_parallel([SCAN])
    assert (ci, ei) == (cp, ep)


def test_parallel_matches_inline_multi():
    ci, ei, _ = run_inline([SCAN, SCAN, SCAN], cpus=3)
    cp, ep, _ = run_parallel([SCAN, SCAN, SCAN], cpus=3)
    assert (ci, ei) == (cp, ep)


def test_parallel_syscalls_work():
    eng = ParallelEngine(complex_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("w", SYS))
        eng.run()
    assert p.exit_status == 0


def test_parallel_locks_across_workers():
    ci, ei, sti = run_inline([LOCKY, LOCKY], cpus=2)
    cp, ep, stp = run_parallel([LOCKY, LOCKY], cpus=2)
    assert ci == cp
    assert sti.get("lock_contention") == stp.get("lock_contention")


def test_parallel_time_breakdown_matches_inline():
    _, _, sti = run_inline([SCAN, SCAN], cpus=2)
    _, _, stp = run_parallel([SCAN, SCAN], cpus=2)
    assert sti.total_cpu().user == stp.total_cpu().user
    assert sti.total_cpu().kernel == stp.total_cpu().kernel


def test_shutdown_idempotent():
    eng = ParallelEngine(simple_backend(num_cpus=1))
    eng.spawn_worker(WorkerSpec("w", SCAN))
    eng.run()
    eng.shutdown()
    eng.shutdown()


def test_worker_spec_defaults():
    ws = WorkerSpec("x", SCAN)
    assert ws.segments and ws.regs == {}


class TestHostModel:
    def test_context_switch_measured_positive(self):
        t = measure_context_switch(iterations=200)
        assert 0 < t < 0.01

    def test_prediction_shapes(self):
        costs = HostCosts(t_fe=20e-6, t_be=10e-6, t_cs=30e-6)
        p = predict("complex", events=1000, raw_seconds=0.001, costs=costs,
                    host_cpus=4, frontends=4)
        assert p.uni_seconds > p.smp_seconds
        assert p.smp_speedup > 2        # the Table 3 claim with these costs
        assert p.uni_slowdown > p.smp_slowdown

    def test_single_cpu_host_no_speedup_from_frontends(self):
        costs = HostCosts(t_fe=10e-6, t_be=10e-6, t_cs=20e-6)
        p2 = predict("x", 1000, 0.001, costs, host_cpus=2, frontends=4)
        p8 = predict("x", 1000, 0.001, costs, host_cpus=8, frontends=4)
        assert p8.smp_seconds <= p2.smp_seconds
