"""Bit-identity of the optimistic (Time Warp-style) speculation layer.

``SimConfig.speculate`` lets the engine consume references *past* the
conservative rival horizon behind a micro-checkpoint, validating after the
fact and rolling back on a horizon violation; ``ParallelEngine`` workers
likewise pre-time an optimistic tail past their lease window and the
backend commits or rolls it back at fold time. Both layers must produce
*exactly* the simulated cycle counts, cache statistics, CPU time buckets
and fault-fire counts of the strict conservative schedule — with and
without fault plans, under memory taps, composed with checkpoint
crash/resume, across worker SIGKILLs mid-speculation, and under bounded
max_events stepping.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro import (Engine, SimulatedCrash, checkpoint_exists,
                   complex_backend, resume)
from repro.core.config import ConfigError, SimConfig
from repro.core.frontend import SimProcess
from repro.host import ParallelEngine, WorkerSpec
from repro.traces.memtrace import MemTraceRecorder

from tests.test_determinism_harness import FAULT_OFF_WORKLOADS
from tests.test_lookahead_equivalence import (HOT_PROG, TIMING_PLAN,
                                              _private_heavy, _snapshot)


def _run(build, faults=None, **cfg_kw):
    SimProcess._next_pid[0] = 1
    eng = build(lambda **kw: complex_backend(faults=faults, **cfg_kw, **kw))
    stats = eng.run()
    return _snapshot(eng, stats), eng


#: the strict oracle: no speculation, no lookahead — the paper's
#: conservative basic-block-granular schedule
STRICT = dict(speculate=False, lookahead=False)


# ---------------------------------------------------------------------------
# inline engine: speculation on == strict, on every workload class
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(FAULT_OFF_WORKLOADS))
def test_speculation_bit_identical(name):
    build = FAULT_OFF_WORKLOADS[name]
    snap_on, eng_on = _run(build, speculate=True)
    snap_off, eng_off = _run(build, **STRICT)
    assert snap_on == snap_off
    # the strict run must never open a window
    assert eng_off.batch_stats["sp_windows"] == 0
    assert eng_off.batch_stats["sp_refs"] == 0


@pytest.mark.parametrize("name", sorted(FAULT_OFF_WORKLOADS))
def test_speculation_bit_identical_under_faults(name):
    build = FAULT_OFF_WORKLOADS[name]
    snap_on, eng_on = _run(build, faults=TIMING_PLAN, speculate=True)
    snap_off, _ = _run(build, faults=TIMING_PLAN, **STRICT)
    assert snap_on == snap_off
    assert eng_on.faults.stats.draws > 0


def test_speculation_denied_under_memory_tap():
    """A memtrace tap needs the strict per-reference stream; speculation
    must stand down — and the tapped runs (including the traces) must
    still match."""
    build = FAULT_OFF_WORKLOADS["oltp"]

    def run(**cfg_kw):
        SimProcess._next_pid[0] = 1
        eng = build(lambda **kw: complex_backend(**cfg_kw, **kw))
        rec = MemTraceRecorder.attach(eng, max_records=2_000_000)
        stats = eng.run()
        assert rec.dropped == 0
        return _snapshot(eng, stats) + (tuple(rec.records),), eng

    snap_on, eng_on = run(speculate=True)
    snap_off, _ = run(**STRICT)
    assert snap_on == snap_off
    assert eng_on.batch_stats["sp_windows"] == 0


def test_speculation_engages_and_commits():
    """On the private-heavy workload the windows must actually open and
    commit past the rival horizon — while staying bit-identical and using
    no more batch dispatches than conservative lookahead."""
    snap_on, eng_on = _run(_private_heavy, speculate=True)
    snap_off, eng_off = _run(_private_heavy, **STRICT)
    snap_la, eng_la = _run(_private_heavy, speculate=False, lookahead=True)
    assert snap_on == snap_off == snap_la
    bs = eng_on.batch_stats
    assert bs["sp_windows"] > 0
    assert bs["sp_commits"] > 0
    assert bs["sp_refs"] > 0
    assert bs["batches"] < eng_off.batch_stats["batches"]
    assert bs["batches"] <= eng_la.batch_stats["batches"]
    # speculation supersedes the conservative scan when both are on
    assert bs["la_windows"] == 0


def test_speculation_rollback_restores_bit_identity():
    """Force every validation to fail: all windows roll back, and the
    results still match the strict schedule exactly (rollback must be a
    perfect undo)."""
    from repro.core.communicator import Communicator

    SimProcess._next_pid[0] = 1
    eng = _private_heavy(lambda **kw: complex_backend(speculate=True, **kw))
    orig = Communicator.speculation_bound

    def always_violate(self, winner, strict, cap, bound_fn):
        orig(self, winner, strict, cap, bound_fn)   # exercise the walk
        return strict
    eng.comm.speculation_bound = always_violate.__get__(eng.comm)
    # keep speculating even after consecutive rollbacks
    eng._spec_max_rollbacks = 0
    stats = eng.run()
    snap = _snapshot(eng, stats)
    snap_off, _ = _run(_private_heavy, **STRICT)
    assert snap == snap_off
    bs = eng.batch_stats
    assert bs["sp_rollbacks"] > 0
    assert bs["sp_commits"] == 0


def test_adaptive_quantum_and_stand_down():
    """The quantum stays within its adaptive bounds, and a run capped at
    one consecutive rollback stands down permanently — without affecting
    the simulated results."""
    snap_on, eng_on = _run(_private_heavy, speculate=True)
    assert (eng_on._spec_quantum_min <= eng_on._spec_quantum
            <= eng_on._spec_quantum_max)
    bs = eng_on.batch_stats
    assert bs["sp_commits"] + bs["sp_rollbacks"] <= bs["sp_windows"]

    snap_capped, eng_capped = _run(_private_heavy, speculate=True,
                                   speculate_max_rollbacks=1)
    assert snap_capped == snap_on
    if eng_capped.batch_stats["sp_rollbacks"]:
        assert not eng_capped._spec_on


def test_speculate_quantum_knob():
    """An explicit quantum is honoured as the starting window size."""
    SimProcess._next_pid[0] = 1
    eng = Engine(complex_backend(num_cpus=2, speculate=True,
                                 speculate_quantum=512))
    assert eng._spec_quantum == 512
    snap_q, _ = _run(_private_heavy, speculate=True, speculate_quantum=512)
    snap_off, _ = _run(_private_heavy, **STRICT)
    assert snap_q == snap_off


def test_config_validation():
    with pytest.raises(ConfigError):
        SimConfig(num_cpus=1, speculate_quantum=-1).validate()
    with pytest.raises(ConfigError):
        SimConfig(num_cpus=1, speculate_max_rollbacks=-1).validate()


# ---------------------------------------------------------------------------
# x checkpointing
# ---------------------------------------------------------------------------

def test_speculation_denied_while_recording(tmp_path):
    """An active checkpoint recorder wraps the memory system; the reply
    log needs the strict per-reference stream, so no windows may open —
    and the checkpointed result matches both the speculate-off
    checkpointed run and the plain speculate-on run."""
    build = FAULT_OFF_WORKLOADS["oltp"]
    path = str(tmp_path / "ck.pkl")

    def run(speculate):
        SimProcess._next_pid[0] = 1
        eng = build(lambda **kw: complex_backend(
            checkpoint_path=path, checkpoint_interval=2_000,
            speculate=speculate, **kw))
        stats = eng.run()
        return _snapshot(eng, stats), eng

    snap_on, eng_on = run(True)
    snap_off, _ = run(False)
    assert snap_on == snap_off
    assert eng_on._ckpt.saves > 0
    assert eng_on.batch_stats["sp_windows"] == 0
    plain, _ = _run(build, speculate=True)
    assert plain == snap_on


def test_checkpoint_resume_with_speculation_on(tmp_path):
    """Crash + resume with speculation enabled reproduces the
    uninterrupted strict run: replayed and recorded stretches deny
    windows, and speculation is timing-neutral anyway."""
    build = FAULT_OFF_WORKLOADS["dss"]
    baseline, _ = _run(build, **STRICT)
    path = str(tmp_path / "ck.pkl")

    def factory(**kw):
        return complex_backend(checkpoint_path=path,
                               checkpoint_interval=1_500,
                               speculate=True, **kw)

    SimProcess._next_pid[0] = 1
    eng = build(factory)
    eng._ckpt.crash_after_saves = 2
    with pytest.raises(SimulatedCrash):
        eng.run()
    assert checkpoint_exists(path)
    eng2, stats2 = resume(path, lambda: build(factory))
    assert _snapshot(eng2, stats2) == baseline


# ---------------------------------------------------------------------------
# ParallelEngine: worker-side speculative tails
# ---------------------------------------------------------------------------

def _run_parallel(nworkers=1, prog=HOT_PROG, **cfg_kw):
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=max(nworkers, 1),
                                         **cfg_kw))
    with eng:
        for i in range(nworkers):
            eng.spawn_worker(WorkerSpec(f"w{i}", prog))
        stats = eng.run()
    return _snapshot(eng, stats), eng


def test_worker_speculation_matches_strict():
    """Speculative tails engage on rival-bound-stalled workers and the
    results match both the conservative-lease and no-lease runs.
    (The commit/rollback split — and through the adaptive quantum the
    exact window count — is wall-clock dependent; the *results* are
    not, which is the whole point.)"""
    snap_spec, eng_spec = _run_parallel(2, worker_lease=2, speculate=True)
    snap_cons, _ = _run_parallel(2, worker_lease=2, speculate=False)
    snap_none, _ = _run_parallel(2, worker_lease=0, speculate=False)
    assert snap_spec == snap_cons == snap_none
    bs = eng_spec.batch_stats
    assert bs["sp_windows"] > 0
    assert bs["sp_commits"] + bs["sp_rollbacks"] == bs["sp_windows"]


def test_worker_speculation_multi_worker_identity():
    snap_spec, _ = _run_parallel(3, worker_lease=2, speculate=True)
    snap_none, _ = _run_parallel(3, worker_lease=0, speculate=False)
    assert snap_spec == snap_none


def test_worker_killed_mid_speculation(monkeypatch):
    """SIGKILL the worker right after its first speculative fold: the
    supervisor relaunches it, the re-drained tail blocks on the replayed
    "pr" and gets the *recorded* verdict back, and the run completes
    bit-identically to an undisturbed one."""
    baseline, _ = _run_parallel(2, worker_lease=2, speculate=True)

    killed = []
    orig = ParallelEngine._apply_pretimed

    def killing_apply(self, w, msg):
        orig(self, w, msg)
        if msg[8] is not None and not killed:
            killed.append(True)
            try:
                os.kill(w.process.pid, signal.SIGKILL)
                w.process.join(timeout=5)
            except (OSError, ValueError):
                pass

    monkeypatch.setattr(ParallelEngine, "_apply_pretimed", killing_apply)
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=2, worker_lease=2,
                                         speculate=True))
    eng.worker_backoff = 0.01
    with eng:
        procs = [eng.spawn_worker(WorkerSpec(f"w{i}", HOT_PROG))
                 for i in range(2)]
        stats = eng.run()
    assert killed
    assert any(eng._workers[p.pid].restarts >= 1 for p in procs)
    assert _snapshot(eng, stats) == baseline


def test_worker_killed_between_tail_and_verdict(monkeypatch):
    """SIGKILL the worker while it is *blocked on the verdict*: the
    verdict send hits a dead pipe, the supervisor restarts, and replay
    re-answers the re-sent "pr" from the recorded verdict log."""
    baseline, _ = _run_parallel(2, worker_lease=2, speculate=True)

    killed = []
    orig = ParallelEngine._spec_verdict

    def killing_verdict(self, p, end2):
        ok = orig(self, p, end2)
        if not killed:
            killed.append(True)
            w = self._workers.get(p.pid)
            try:
                os.kill(w.process.pid, signal.SIGKILL)
                w.process.join(timeout=5)
            except (OSError, ValueError):
                pass
        return ok

    monkeypatch.setattr(ParallelEngine, "_spec_verdict", killing_verdict)
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=2, worker_lease=2,
                                         speculate=True))
    eng.worker_backoff = 0.01
    with eng:
        procs = [eng.spawn_worker(WorkerSpec(f"w{i}", HOT_PROG))
                 for i in range(2)]
        stats = eng.run()
    assert killed
    assert any(eng._workers[p.pid].restarts >= 1 for p in procs)
    assert _snapshot(eng, stats) == baseline


def test_parallel_checkpoint_denies_speculation(tmp_path):
    path = str(tmp_path / "ck.pkl")
    snap_ck, eng_ck = _run_parallel(1, worker_lease=4, speculate=True,
                                    checkpoint_path=path,
                                    checkpoint_interval=2_000)
    snap_off, _ = _run_parallel(1, worker_lease=0, speculate=False)
    assert eng_ck.batch_stats["sp_windows"] == 0
    assert eng_ck.batch_stats["leases"] == 0
    assert snap_ck == snap_off


def test_speculation_denied_under_bounded_stepping():
    """run(max_events=...) needs the strict stream; leases (and with
    them tails) must be denied."""
    SimProcess._next_pid[0] = 1
    eng = ParallelEngine(complex_backend(num_cpus=1, worker_lease=1,
                                         worker_batch=8, speculate=True))
    with eng:
        eng.spawn_worker(WorkerSpec("w0", HOT_PROG))
        while eng._live > 0:
            eng.run(max_events=500)
        stats = eng.stats
    assert eng.batch_stats["sp_windows"] == 0
    assert eng.batch_stats["leases"] == 0
    snap_strict, _ = _run_parallel(1, worker_lease=0, speculate=False)
    assert _snapshot(eng, stats) == snap_strict
