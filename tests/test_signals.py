"""Signal delivery and the §4.1 non-augmented wrapper."""

import pytest

from repro import Engine, complex_backend
from repro.core.events import EINVAL
from repro.osim.signals import SIGUSR1, SIGUSR2, SignalManager


def test_manager_install_post_pending():
    m = SignalManager()
    m.install(1, SIGUSR1, lambda p, s: None)
    assert m.post(1, SIGUSR1)
    assert m.has_pending(1)
    assert m.pending_for(1) == SIGUSR1
    assert m.pending_for(1) is None


def test_post_without_handler_dropped():
    m = SignalManager()
    assert not m.post(1, SIGUSR1)
    assert m.dropped == 1
    assert not m.has_pending(1)


def test_uninstall():
    m = SignalManager()
    m.install(1, SIGUSR1, lambda p, s: None)
    m.uninstall(1, SIGUSR1)
    assert not m.post(1, SIGUSR1)


def test_clear_on_exit():
    m = SignalManager()
    m.install(1, SIGUSR1, lambda p, s: None)
    m.post(1, SIGUSR1)
    m.clear(1)
    assert not m.has_pending(1)


class TestEngineDelivery:
    def _run(self, handler, nsignals=1):
        eng = Engine(complex_backend(num_cpus=2))
        log = []
        holder = {}

        def receiver(proc):
            yield from proc.call("sigaction", SIGUSR1, handler)
            for _ in range(30):
                proc.compute(10_000)
                yield from proc.advance()
            log.append(("done", proc.process.vtime))
            yield from proc.exit(0)

        def sender(proc):
            yield from proc.call("nanosleep", 40_000)
            for _ in range(nsignals):
                r = yield from proc.call("kill", holder["pid"], SIGUSR1)
                assert r.ok
            yield from proc.exit(0)

        rp = eng.spawn("recv", receiver)
        holder["pid"] = rp.pid
        eng.spawn("send", sender)
        eng.run()
        return eng, log

    def test_handler_runs_once(self):
        hits = []

        def handler(api, signo):
            hits.append(signo)
            yield from api.advance()     # suppressed

        eng, log = self._run(handler)
        assert hits == [SIGUSR1]
        assert eng.signals.delivered == 1

    def test_handler_generates_no_time(self):
        def handler(api, signo):
            api.compute(10**9)           # would dominate if charged
            yield from api.load(0x10_000)

        eng, log = self._run(handler)
        done = [e for e in log if e[0] == "done"][0]
        assert done[1] < 10**7

    def test_plain_function_handler_allowed(self):
        hits = []

        def handler(api, signo):        # not a generator
            hits.append(signo)

        eng, _log = self._run(handler)
        assert hits == [SIGUSR1]

    def test_multiple_signals_queue(self):
        hits = []

        def handler(api, signo):
            hits.append(signo)

        eng, _log = self._run(handler, nsignals=3)
        assert hits == [SIGUSR1] * 3

    def test_kill_unknown_pid(self):
        eng = Engine(complex_backend(num_cpus=1))
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("kill", 424242, SIGUSR1)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert out["r"].errno == EINVAL

    def test_kill_without_handler_einval(self):
        eng = Engine(complex_backend(num_cpus=2))
        out = {}
        holder = {}

        def receiver(proc):
            for _ in range(10):
                proc.compute(10_000)
                yield from proc.advance()
            yield from proc.exit(0)

        def sender(proc):
            out["r"] = yield from proc.call("kill", holder["pid"], SIGUSR2)
            yield from proc.exit(0)

        rp = eng.spawn("r", receiver)
        holder["pid"] = rp.pid
        eng.spawn("s", sender)
        eng.run()
        assert out["r"].errno == EINVAL

    def test_sigaction_bad_signo(self):
        eng = Engine(complex_backend(num_cpus=1))
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("sigaction", 0, lambda a, s: None)
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.run()
        assert out["r"].errno == EINVAL

    def test_events_enabled_restored_after_handler(self):
        state = {}

        def handler(api, signo):
            state["inside"] = api.process.events_enabled

        eng = Engine(complex_backend(num_cpus=2))
        holder = {}

        def receiver(proc):
            yield from proc.call("sigaction", SIGUSR1, handler)
            for _ in range(20):
                proc.compute(5_000)
                yield from proc.advance()
            state["after"] = proc.process.events_enabled
            yield from proc.exit(0)

        def sender(proc):
            yield from proc.call("nanosleep", 30_000)
            yield from proc.call("kill", holder["pid"], SIGUSR1)
            yield from proc.exit(0)

        rp = eng.spawn("r", receiver)
        holder["pid"] = rp.pid
        eng.spawn("s", sender)
        eng.run()
        assert state["inside"] is False
        assert state["after"] is True
