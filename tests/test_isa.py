"""Virtual ISA tests: assembler, programs, timing, interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrontendError, InstrumentationError
from repro.core.events import EvKind, SyscallResult
from repro.isa import (Instr, Machine, Op, Program, assemble, block_cost,
                       cost_of, Interpreter)
from repro.isa.instructions import BLOCK_ENDERS, MEM_OPS
from repro.isa.memory import DataMemory


def drive(prog, mem=None, reply=1):
    """Run an instrumented program collecting its events."""
    m = Machine(mem if mem is not None else DataMemory())
    gen = Interpreter(prog, m).run()
    events = []
    try:
        evt = next(gen)
        while True:
            events.append(evt)
            if evt.kind == EvKind.SYSCALL:
                evt = gen.send(SyscallResult(42))
            else:
                evt = gen.send(reply)
    except StopIteration as s:
        return events, s.value, m


class TestAssembler:
    def test_basic_program(self):
        p = assemble("li r1, 5\nhalt")
        assert p.n_instrs == 2
        assert p.blocks[0].label == "__start"

    def test_labels_resolve(self):
        p = assemble("""
            li r1, 0
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """)
        blt = p.block_of("top").instrs[-1]
        assert blt.op == Op.BLT
        assert blt.c == p.labels["top"]

    def test_undefined_label_raises(self):
        with pytest.raises(InstrumentationError):
            assemble("b nowhere\nhalt")

    def test_duplicate_label_raises(self):
        with pytest.raises(InstrumentationError):
            assemble("x:\nnop\nx:\nhalt")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(InstrumentationError):
            assemble("frobnicate r1\nhalt")

    def test_register_out_of_range(self):
        with pytest.raises(InstrumentationError):
            assemble("li r32, 1\nhalt")

    def test_comments_and_blank_lines(self):
        p = assemble("""
            ; comment
            li r1, 1   # trailing
            halt
        """)
        assert p.n_instrs == 2

    def test_hex_immediates(self):
        p = assemble("li r1, 0x10\nhalt")
        assert p.blocks[0].instrs[0].b == 16

    def test_blocks_split_after_branches(self):
        p = assemble("""
            li r1, 0
            b skip
            nop
        skip:
            halt
        """)
        # __start(li,b) | auto(nop) | skip(halt)
        assert len(p.blocks) == 3

    def test_empty_program_rejected(self):
        with pytest.raises(InstrumentationError):
            assemble("; nothing here")

    def test_syscall_syntax(self):
        p = assemble("syscall getpid, 0\nhalt")
        ins = p.blocks[0].instrs[0]
        assert ins.op == Op.SYSCALL and ins.a == "getpid" and ins.b == 0


class TestTiming:
    def test_simple_ops_single_cycle(self):
        assert cost_of(Instr(Op.ADD)) == 1
        assert cost_of(Instr(Op.LI)) == 1

    def test_mul_div_latencies(self):
        assert cost_of(Instr(Op.MUL)) == 4
        assert cost_of(Instr(Op.DIV)) == 20

    def test_fp_latencies(self):
        assert cost_of(Instr(Op.FADD)) == 3
        assert cost_of(Instr(Op.FDIV)) == 18

    def test_block_cost_is_sum(self):
        instrs = [Instr(Op.ADD), Instr(Op.MUL), Instr(Op.LOAD)]
        assert block_cost(instrs) == 1 + 4 + 1

    def test_every_opcode_has_a_cost(self):
        from repro.isa.timing import COSTS
        for op in Op:
            assert op in COSTS, op


class TestInterpreter:
    def test_arithmetic(self):
        p = assemble("""
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            halt
        """)
        _ev, rc, m = drive(p)
        assert m.regs[3] == 42

    def test_loop_and_memory(self):
        p = assemble("""
            li r1, 0
            li r2, 16
            li r10, 0x1000
        loop:
            storex r1, r10, r1, 4
            addi r1, r1, 4
            blt r1, r2, loop
            li r3, 0
            halt
        """)
        dm = DataMemory()
        dm.map_segment(0x1000, 4096)
        events, rc, m = drive(p, dm)
        stores = [e for e in events if e.kind == EvKind.WRITE]
        assert len(stores) == 4
        assert dm.load(0x1004) == 4

    def test_call_and_return(self):
        p = assemble("""
            li r1, 1
            bl fn
            addi r1, r1, 100
            halt
        fn:
            addi r1, r1, 10
            ret
        """)
        _ev, _rc, m = drive(p)
        assert m.regs[1] == 111

    def test_ret_without_call_raises(self):
        p = assemble("ret")
        with pytest.raises(FrontendError):
            drive(p)

    def test_syscall_result_lands_in_r3_r4(self):
        p = assemble("""
            syscall getpid, 0
            halt
        """)
        events, _rc, m = drive(p)
        assert m.regs[3] == 42 and m.regs[4] == 0
        assert events[0].kind == EvKind.SYSCALL

    def test_simoff_suppresses_events_and_time(self):
        body = """
            li r10, 0x1000
            {sw}
            load r1, r10, 0, 4
            store r1, r10, 4, 4
            simon
            load r2, r10, 0, 4
            halt
        """
        dm1 = DataMemory(); dm1.map_segment(0x1000, 64)
        on, _, m_on = drive(assemble(body.format(sw="nop")), dm1)
        dm2 = DataMemory(); dm2.map_segment(0x1000, 64)
        off, _, m_off = drive(assemble(body.format(sw="simoff")), dm2)
        assert len(off) == len(on) - 2
        # functional behaviour unchanged
        assert m_off.regs[2] == m_on.regs[2]

    def test_lwarx_stwcx_success(self):
        p = assemble("""
            li r10, 0x1000
            li r1, 9
            lwarx r2, r10
            mov r2, r1
            stwcx r2, r10
            halt
        """)
        dm = DataMemory(); dm.map_segment(0x1000, 64)
        _ev, _rc, m = drive(p, dm)
        assert m.regs[2] == 1          # store-conditional succeeded
        assert dm.load(0x1000) == 9

    def test_raw_and_instrumented_agree(self):
        src = """
            li r1, 0
            li r2, 100
            li r4, 0
        loop:
            add r4, r4, r1
            addi r1, r1, 1
            blt r1, r2, loop
            mov r3, r4
            halt
        """
        m1 = Machine()
        rc1 = Interpreter(assemble(src), m1).run_raw()
        _ev, rc2, m2 = drive(assemble(src))
        assert rc1 == rc2 == sum(range(100))
        assert m1.instret == m2.instret

    def test_instrumented_pending_counts_block_costs(self):
        p = assemble("""
            li r1, 1
            li r2, 2
            add r3, r1, r2
            halt
        """)
        _ev, _rc, m = drive(p)
        assert m.pending == 3   # 3 single-cycle instrs + free halt

    def test_max_instrs_guard(self):
        p = assemble("""
        spin:
            b spin
        """)
        with pytest.raises(FrontendError):
            Interpreter(p, Machine()).run_raw(max_instrs=1000)


class TestDataMemory:
    def test_unmapped_access_raises(self):
        from repro.core.errors import MemoryError_
        dm = DataMemory()
        with pytest.raises(MemoryError_):
            dm.load(0x5000)

    def test_overlap_rejected(self):
        from repro.core.errors import MemoryError_
        dm = DataMemory()
        dm.map_segment(0x1000, 0x1000)
        with pytest.raises(MemoryError_):
            dm.map_segment(0x1800, 0x1000)

    def test_shared_store_sees_peer_writes(self):
        dm1 = DataMemory("a")
        dm2 = DataMemory("b")
        store = dm1.map_segment(0x1000, 256)
        dm2.map_segment(0x4000, 256, store)
        dm1.store(0x1010, 99)
        assert dm2.load(0x4010) == 99

    def test_unmap(self):
        from repro.core.errors import MemoryError_
        dm = DataMemory()
        dm.map_segment(0x1000, 256)
        dm.unmap_segment(0x1000)
        with pytest.raises(MemoryError_):
            dm.load(0x1000)

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 1 << 30)),
                    max_size=40))
    def test_last_write_wins(self, writes):
        dm = DataMemory()
        dm.map_segment(0, 256)
        expect = {}
        for off, val in writes:
            dm.store(off, val)
            expect[off] = val
        for off, val in expect.items():
            assert dm.load(off) == val
