"""Virtual ISA tests: assembler, programs, timing, interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrontendError, InstrumentationError
from repro.core.events import EvKind, SyscallResult
from repro.isa import (Instr, Machine, Op, Program, assemble, block_cost,
                       cost_of, Interpreter)
from repro.isa.instructions import BLOCK_ENDERS, MEM_OPS
from repro.isa.memory import DataMemory


def drive(prog, mem=None, reply=1):
    """Run an instrumented program collecting its events."""
    m = Machine(mem if mem is not None else DataMemory())
    gen = Interpreter(prog, m).run()
    events = []
    try:
        evt = next(gen)
        while True:
            events.append(evt)
            if evt.kind == EvKind.SYSCALL:
                evt = gen.send(SyscallResult(42))
            else:
                evt = gen.send(reply)
    except StopIteration as s:
        return events, s.value, m


class TestAssembler:
    def test_basic_program(self):
        p = assemble("li r1, 5\nhalt")
        assert p.n_instrs == 2
        assert p.blocks[0].label == "__start"

    def test_labels_resolve(self):
        p = assemble("""
            li r1, 0
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """)
        blt = p.block_of("top").instrs[-1]
        assert blt.op == Op.BLT
        assert blt.c == p.labels["top"]

    def test_undefined_label_raises(self):
        with pytest.raises(InstrumentationError):
            assemble("b nowhere\nhalt")

    def test_duplicate_label_raises(self):
        with pytest.raises(InstrumentationError):
            assemble("x:\nnop\nx:\nhalt")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(InstrumentationError):
            assemble("frobnicate r1\nhalt")

    def test_register_out_of_range(self):
        with pytest.raises(InstrumentationError):
            assemble("li r32, 1\nhalt")

    def test_comments_and_blank_lines(self):
        p = assemble("""
            ; comment
            li r1, 1   # trailing
            halt
        """)
        assert p.n_instrs == 2

    def test_hex_immediates(self):
        p = assemble("li r1, 0x10\nhalt")
        assert p.blocks[0].instrs[0].b == 16

    def test_blocks_split_after_branches(self):
        p = assemble("""
            li r1, 0
            b skip
            nop
        skip:
            halt
        """)
        # __start(li,b) | auto(nop) | skip(halt)
        assert len(p.blocks) == 3

    def test_empty_program_rejected(self):
        with pytest.raises(InstrumentationError):
            assemble("; nothing here")

    def test_syscall_syntax(self):
        p = assemble("syscall getpid, 0\nhalt")
        ins = p.blocks[0].instrs[0]
        assert ins.op == Op.SYSCALL and ins.a == "getpid" and ins.b == 0


class TestTiming:
    def test_simple_ops_single_cycle(self):
        assert cost_of(Instr(Op.ADD)) == 1
        assert cost_of(Instr(Op.LI)) == 1

    def test_mul_div_latencies(self):
        assert cost_of(Instr(Op.MUL)) == 4
        assert cost_of(Instr(Op.DIV)) == 20

    def test_fp_latencies(self):
        assert cost_of(Instr(Op.FADD)) == 3
        assert cost_of(Instr(Op.FDIV)) == 18

    def test_block_cost_is_sum(self):
        instrs = [Instr(Op.ADD), Instr(Op.MUL), Instr(Op.LOAD)]
        assert block_cost(instrs) == 1 + 4 + 1

    def test_every_opcode_has_a_cost(self):
        from repro.isa.timing import COSTS
        for op in Op:
            assert op in COSTS, op


class TestInterpreter:
    def test_arithmetic(self):
        p = assemble("""
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            halt
        """)
        _ev, rc, m = drive(p)
        assert m.regs[3] == 42

    def test_loop_and_memory(self):
        p = assemble("""
            li r1, 0
            li r2, 16
            li r10, 0x1000
        loop:
            storex r1, r10, r1, 4
            addi r1, r1, 4
            blt r1, r2, loop
            li r3, 0
            halt
        """)
        dm = DataMemory()
        dm.map_segment(0x1000, 4096)
        events, rc, m = drive(p, dm)
        stores = [e for e in events if e.kind == EvKind.WRITE]
        assert len(stores) == 4
        assert dm.load(0x1004) == 4

    def test_call_and_return(self):
        p = assemble("""
            li r1, 1
            bl fn
            addi r1, r1, 100
            halt
        fn:
            addi r1, r1, 10
            ret
        """)
        _ev, _rc, m = drive(p)
        assert m.regs[1] == 111

    def test_ret_without_call_raises(self):
        p = assemble("ret")
        with pytest.raises(FrontendError):
            drive(p)

    def test_syscall_result_lands_in_r3_r4(self):
        p = assemble("""
            syscall getpid, 0
            halt
        """)
        events, _rc, m = drive(p)
        assert m.regs[3] == 42 and m.regs[4] == 0
        assert events[0].kind == EvKind.SYSCALL

    def test_simoff_suppresses_events_and_time(self):
        body = """
            li r10, 0x1000
            {sw}
            load r1, r10, 0, 4
            store r1, r10, 4, 4
            simon
            load r2, r10, 0, 4
            halt
        """
        dm1 = DataMemory(); dm1.map_segment(0x1000, 64)
        on, _, m_on = drive(assemble(body.format(sw="nop")), dm1)
        dm2 = DataMemory(); dm2.map_segment(0x1000, 64)
        off, _, m_off = drive(assemble(body.format(sw="simoff")), dm2)
        assert len(off) == len(on) - 2
        # functional behaviour unchanged
        assert m_off.regs[2] == m_on.regs[2]

    def test_lwarx_stwcx_success(self):
        p = assemble("""
            li r10, 0x1000
            li r1, 9
            lwarx r2, r10
            mov r2, r1
            stwcx r2, r10
            halt
        """)
        dm = DataMemory(); dm.map_segment(0x1000, 64)
        _ev, _rc, m = drive(p, dm)
        assert m.regs[2] == 1          # store-conditional succeeded
        assert dm.load(0x1000) == 9

    def test_raw_and_instrumented_agree(self):
        src = """
            li r1, 0
            li r2, 100
            li r4, 0
        loop:
            add r4, r4, r1
            addi r1, r1, 1
            blt r1, r2, loop
            mov r3, r4
            halt
        """
        m1 = Machine()
        rc1 = Interpreter(assemble(src), m1).run_raw()
        _ev, rc2, m2 = drive(assemble(src))
        assert rc1 == rc2 == sum(range(100))
        assert m1.instret == m2.instret

    def test_instrumented_pending_counts_block_costs(self):
        p = assemble("""
            li r1, 1
            li r2, 2
            add r3, r1, r2
            halt
        """)
        _ev, _rc, m = drive(p)
        assert m.pending == 3   # 3 single-cycle instrs + free halt

    def test_max_instrs_guard(self):
        p = assemble("""
        spin:
            b spin
        """)
        with pytest.raises(FrontendError):
            Interpreter(p, Machine()).run_raw(max_instrs=1000)


#: per-opcode exercise programs: every Op must run through both the raw and
#: the instrumented loop (and, via translate=True, through the translated
#: closures). Conditional branches cover both the taken and fall-through arm.
OP_PROGRAMS = {
    Op.ADD: "li r1, 2\nli r2, 3\nadd r3, r1, r2\nhalt",
    Op.SUB: "li r1, 9\nli r2, 3\nsub r3, r1, r2\nhalt",
    Op.MUL: "li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt",
    Op.DIV: "li r1, 7\nli r2, 2\ndiv r3, r1, r2\ndiv r4, r1, r0\nhalt",
    Op.MOD: "li r1, 7\nli r2, 4\nmod r3, r1, r2\nmod r4, r1, r0\nhalt",
    Op.AND: "li r1, 12\nli r2, 10\nand r3, r1, r2\nhalt",
    Op.OR: "li r1, 12\nli r2, 10\nor r3, r1, r2\nhalt",
    Op.XOR: "li r1, 12\nli r2, 10\nxor r3, r1, r2\nhalt",
    Op.SHL: "li r1, 3\nli r2, 4\nshl r3, r1, r2\nhalt",
    Op.SHR: "li r1, 48\nli r2, 4\nshr r3, r1, r2\nhalt",
    Op.ADDI: "li r1, 5\naddi r3, r1, 37\nhalt",
    Op.MULI: "li r1, 6\nmuli r3, r1, 7\nhalt",
    Op.ANDI: "li r1, 0x1ff\nandi r3, r1, 0xff\nhalt",
    Op.LI: "li r3, 42\nhalt",
    Op.MOV: "li r1, 42\nmov r3, r1\nhalt",
    Op.CMP: "li r1, 5\nli r2, 9\ncmp r3, r1, r2\ncmp r4, r2, r1\n"
            "cmp r5, r1, r1\nhalt",
    Op.FADD: "li r1, 2\nli r2, 3\nfadd r3, r1, r2\nhalt",
    Op.FSUB: "li r1, 2\nli r2, 3\nfsub r3, r1, r2\nhalt",
    Op.FMUL: "li r1, 2\nli r2, 3\nfmul r3, r1, r2\nhalt",
    Op.FDIV: "li r1, 3\nli r2, 2\nfdiv r3, r1, r2\nfdiv r4, r1, r0\nhalt",
    Op.FMA: "li r1, 2\nli r2, 3\nli r3, 10\nfma r3, r1, r2\nhalt",
    Op.LOAD: "li r10, 0x1000\nli r1, 7\nstore r1, r10, 8, 4\n"
             "load r3, r10, 8, 4\nhalt",
    Op.STORE: "li r10, 0x1000\nli r1, 7\nstore r1, r10, 12, 8\nhalt",
    Op.LOADX: "li r10, 0x1000\nli r1, 16\nli r2, 5\nstorex r2, r10, r1, 4\n"
              "loadx r3, r10, r1, 4\nhalt",
    Op.STOREX: "li r10, 0x1000\nli r1, 16\nli r2, 5\n"
               "storex r2, r10, r1, 4\nhalt",
    Op.LWARX: "li r10, 0x1000\nlwarx r3, r10\nhalt",
    Op.STWCX: "li r10, 0x1000\nli r11, 0x1004\nli r1, 9\nlwarx r2, r10\n"
              "stwcx r1, r10\nlwarx r2, r10\nstwcx r1, r11\nhalt",
    Op.B: "b over\nli r3, 1\nover:\nli r3, 42\nhalt",
    Op.BEQ: "li r1, 5\nli r2, 5\nbeq r1, r2, t\nhalt\nt:\nli r3, 1\n"
            "beq r1, r0, u\nli r4, 2\nu:\nhalt",
    Op.BNE: "li r1, 5\nli r2, 6\nbne r1, r2, t\nhalt\nt:\nli r3, 1\n"
            "bne r1, r1, u\nli r4, 2\nu:\nhalt",
    Op.BLT: "li r1, 5\nli r2, 6\nblt r1, r2, t\nhalt\nt:\nli r3, 1\n"
            "blt r2, r1, u\nli r4, 2\nu:\nhalt",
    Op.BGE: "li r1, 6\nli r2, 5\nbge r1, r2, t\nhalt\nt:\nli r3, 1\n"
            "bge r2, r1, u\nli r4, 2\nu:\nhalt",
    Op.BNZ: "li r1, 1\nbnz r1, t\nhalt\nt:\nli r3, 1\nbnz r0, u\n"
            "li r4, 2\nu:\nhalt",
    Op.BZ: "li r1, 0\nbz r1, t\nhalt\nt:\nli r3, 1\nbz r2, u\n"
           "li r4, 2\nu:\nhalt",
    Op.BL: "bl fn\nli r3, 42\nhalt\nfn:\nli r4, 7\nret",
    Op.RET: "bl fn\nhalt\nfn:\nli r3, 42\nret",
    Op.LOCK: "li r1, 3\nlock r1\nunlock r1\nhalt",
    Op.UNLOCK: "li r1, 3\nlock r1\nunlock r1\nhalt",
    Op.BARRIER: "li r1, 1\nli r2, 1\nbarrier r1, r2\nhalt",
    Op.SYSCALL: "syscall getpid, 0\nhalt",
    Op.HALT: "li r3, 42\nhalt",
    Op.NOP: "nop\nli r3, 42\nhalt",
    Op.SIMON: "simoff\nli r10, 0x1000\nload r1, r10, 0, 4\nsimon\n"
              "load r2, r10, 0, 4\nhalt",
    Op.SIMOFF: "simoff\nli r10, 0x1000\nstore r0, r10, 0, 4\nsimon\nhalt",
}


class TestOpcodeCoverage:
    """Every opcode runs through both loops, interpreted and translated."""

    def test_table_is_complete(self):
        assert set(OP_PROGRAMS) == set(Op)

    @staticmethod
    def _fresh():
        dm = DataMemory()
        dm.map_segment(0x1000, 4096)
        return Machine(dm), dm

    @classmethod
    def _raw(cls, prog, translate):
        m, dm = cls._fresh()
        rc = Interpreter(prog, m).run_raw(translate=translate)
        return (rc, list(m.regs), m.instret, m.halted,
                {k: v for _b, _s, st in dm._segs for k, v in st.data.items()})

    @classmethod
    def _instrumented(cls, prog, translate, batched):
        m, dm = cls._fresh()
        gen = Interpreter(prog, m).run(batched=batched, translate=translate)
        stream = []
        try:
            evt = gen.send(None)
            while True:
                if hasattr(evt, "kinds"):       # EventBatch
                    stream.append(("b", tuple(evt.kinds), tuple(evt.addrs),
                                   tuple(evt.sizes), tuple(evt.pendings)))
                    reply = 0
                else:
                    stream.append((int(evt.kind), evt.addr, evt.size,
                                   evt.arg))
                    reply = (SyscallResult(42)
                             if evt.kind == EvKind.SYSCALL else 1)
                evt = gen.send(reply)
        except StopIteration as si:
            return (stream, si.value, list(m.regs), m.instret, m.pending)

    @pytest.mark.parametrize("op", sorted(OP_PROGRAMS, key=lambda o: o.value),
                             ids=lambda o: o.name)
    def test_raw_and_instrumented_interpreted_vs_translated(self, op):
        src = OP_PROGRAMS[op]
        # static sanity: the snippet really contains the opcode under test
        assert any(i.op == op
                   for b in assemble(src).blocks for i in b.instrs), op
        prog_i = assemble(src, "op_i")
        prog_t = assemble(src, "op_t")
        assert self._raw(prog_i, False) == self._raw(prog_t, True)
        for batched in (False, True):
            got_i = self._instrumented(prog_i, False, batched)
            got_t = self._instrumented(prog_t, True, batched)
            assert got_i == got_t, (op, batched)


class TestDataMemory:
    def test_unmapped_access_raises(self):
        from repro.core.errors import MemoryError_
        dm = DataMemory()
        with pytest.raises(MemoryError_):
            dm.load(0x5000)

    def test_overlap_rejected(self):
        from repro.core.errors import MemoryError_
        dm = DataMemory()
        dm.map_segment(0x1000, 0x1000)
        with pytest.raises(MemoryError_):
            dm.map_segment(0x1800, 0x1000)

    def test_shared_store_sees_peer_writes(self):
        dm1 = DataMemory("a")
        dm2 = DataMemory("b")
        store = dm1.map_segment(0x1000, 256)
        dm2.map_segment(0x4000, 256, store)
        dm1.store(0x1010, 99)
        assert dm2.load(0x4010) == 99

    def test_unmap(self):
        from repro.core.errors import MemoryError_
        dm = DataMemory()
        dm.map_segment(0x1000, 256)
        dm.unmap_segment(0x1000)
        with pytest.raises(MemoryError_):
            dm.load(0x1000)

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 1 << 30)),
                    max_size=40))
    def test_last_write_wins(self, writes):
        dm = DataMemory()
        dm.map_segment(0, 256)
        expect = {}
        for off, val in writes:
            dm.store(off, val)
            expect[off] = val
        for off, val in expect.items():
            assert dm.load(off) == val
