"""Bit-identity of the batched pipeline + L1 fast-path filter.

The fast path (SimConfig.fastpath) is a pure host-side optimisation: batched
event delivery and the L1 filter must produce *exactly* the simulated cycle
counts, cache statistics, CPU time buckets and memory trace of the
one-event-per-reference path, on every workload class the paper studies
(OLTP, DSS, webserver, SPLASH kernel).
"""

from __future__ import annotations

import pytest

from repro import Engine, complex_backend
from repro.apps.minidb import (MiniDb, TpccDriver, TpcdDriver, tpcc_catalog,
                               tpcd_catalog)
from repro.apps.splash import spawn_kernel
from repro.apps.webserver import (TracePlayer, generate_fileset, make_trace,
                                  prefork_web_server)
from repro.core.frontend import SimProcess
from repro.harness import fastpath_summary
from repro.traces.memtrace import MemTraceRecorder


# ---------------------------------------------------------------------------
# workload builders — each returns (engine, finish) for one fastpath setting
# ---------------------------------------------------------------------------

def build_oltp(**cfg):
    eng = Engine(complex_backend(num_cpus=2, **cfg))
    db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16, seed=3)
    db.setup()
    drv = TpccDriver(db, nagents=2, tx_per_agent=3, seed=3,
                     think_cycles=5_000, user_work=20_000)
    drv.spawn_agents(eng)

    def finish():
        stats = eng.run()
        assert drv.committed == 6
        return stats

    return eng, finish


def build_dss(**cfg):
    eng = Engine(complex_backend(num_cpus=2, **cfg))
    cat = tpcd_catalog(scale=0.0001)
    db = MiniDb(eng, cat, pool_frames=16)
    db.setup()
    drv = TpcdDriver(db, nagents=2, io="read", rows_work=50)
    drv.spawn_q1(eng)

    def finish():
        stats = eng.run()
        assert drv.result is not None
        return stats

    return eng, finish


def build_web(**cfg):
    eng = Engine(complex_backend(num_cpus=4, coherence="mesi", num_nodes=1,
                                 **cfg))
    fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=0.1)
    trace = make_trace(fset, nrequests=8, seed=3)
    prefork_web_server(eng, nworkers=2)
    player = TracePlayer(eng, trace, fset, nclients=2, nworkers_to_quit=2)
    player.start()

    def finish():
        stats = eng.run()
        assert player.completed == 8
        return stats

    return eng, finish


def build_splash(**cfg):
    eng = Engine(complex_backend(num_cpus=4, **cfg))
    spawn_kernel(eng, "radix", 4, nkeys=512)
    return eng, eng.run


WORKLOADS = {
    "oltp": build_oltp,
    "dss": build_dss,
    "webserver": build_web,
    "splash": build_splash,
}


def _snapshot(eng, stats, rec):
    return {
        "end_cycle": stats.end_cycle,
        "events": eng.events_processed,
        "caches": eng.memsys.cache_summary(),
        "cpu": [(c.user, c.kernel, c.interrupt, c.idle, c.ctx_switch)
                for c in stats.cpu],
        "trace": rec.records if rec is not None else None,
    }


def _run(build, **cfg):
    # pids feed the selection tie-break and address-space keys; both runs
    # must see identical numbering
    SimProcess._next_pid[0] = 1
    eng, finish = build(**cfg)
    rec = MemTraceRecorder.attach(eng, max_records=2_000_000)
    stats = finish()
    assert rec.dropped == 0
    return _snapshot(eng, stats, rec), eng


#: workloads whose producers emit EventBatches (touch / copy_block /
#: interpreter runs); SPLASH kernels yield one Proc-API reference at a
#: time, so only the L1 filter applies there
BATCHING_WORKLOADS = frozenset({"oltp", "dss", "webserver"})


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fastpath_bit_identical(name):
    build = WORKLOADS[name]
    snap_on, eng_on = _run(build, fastpath=True)
    snap_off, eng_off = _run(build, fastpath=False)
    assert snap_on == snap_off
    # the fast run actually exercised the mechanisms...
    assert eng_on.memsys.fast_hits > 0
    if name in BATCHING_WORKLOADS:
        assert eng_on.batch_stats["refs"] > 0
        assert eng_on.batch_stats["batches"] > 0
    # ...and the reference run stayed on the per-event path
    assert eng_off.batch_stats["refs"] == 0
    assert eng_off.memsys.fast_hits == 0


@pytest.mark.parametrize("name", sorted(BATCHING_WORKLOADS))
def test_fastpath_untapped_inline_loop_identical(name):
    """Without a memtrace tap, access_run inlines the L1 filter (the
    hottest loop); that branch must be bit-identical too."""
    build = WORKLOADS[name]

    def run(fastpath):
        SimProcess._next_pid[0] = 1
        eng, finish = build(fastpath=fastpath)
        stats = finish()
        snap = _snapshot(eng, stats, rec=None)
        del snap["trace"]
        return snap, eng

    snap_on, eng_on = run(True)
    snap_off, _ = run(False)
    assert snap_on == snap_off
    assert eng_on.memsys.fast_hits > 0
    assert eng_on.batch_stats["refs"] > 0


def test_fastpath_summary_shape():
    snap, eng = _run(build_dss, fastpath=True)
    del snap
    s = fastpath_summary(eng)
    assert s["fast_hits"] > 0
    assert 0.0 < s["fast_hit_rate"] <= 1.0
    assert s["batch_refs"] == eng.batch_stats["refs"]
    assert s["refs_per_batch"] > 1.0
    assert s["events_processed"] == eng.events_processed
