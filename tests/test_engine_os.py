"""Engine + OS integration: interrupts, preemption, OS server pairing,
blocking protocol, time attribution."""

import pytest

from repro import Engine, ProcState, complex_backend, simple_backend, with_os


class TestOsServerPairing:
    def test_threads_pair_and_unpair(self, engine2):
        def app(proc):
            yield from proc.advance()
            yield from proc.exit(0)

        p = engine2.spawn("a", app)
        th = p.os_thread
        assert th.state == "paired" and th.proc is p
        engine2.run()
        assert th.state == "single" and th.proc is None

    def test_threads_recycled(self, engine2):
        def app(proc):
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        n_threads = len(engine2.os_server.threads)
        engine2.spawn("b", app)
        engine2.run()
        assert len(engine2.os_server.threads) == n_threads   # reused

    def test_exit_closes_stray_sockets(self, engine2):
        def app(proc):
            yield from proc.call("socket")
            yield from proc.exit(0)   # leaks the fd on purpose

        engine2.spawn("a", app)
        before = engine2.os_server.net.socket_count()
        engine2.run()
        assert engine2.os_server.net.socket_count() < before + 1

    def test_kernel_events_hit_kernel_addresses(self, engine2):
        """Category-1 service code references kernel space: kernel-space
        minor faults appear after a syscall-heavy run."""
        def app(proc):
            r = yield from proc.call("open", "/x", 0x100)
            yield from proc.call("kwritev", r.value, 0x100000, 4096,
                                 b"a" * 4096)
            yield from proc.call("close", r.value)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        stats = engine2.run()
        assert stats.total_cpu().kernel > 0
        assert stats.syscall_cycles["kwritev"] > 0


class TestInterrupts:
    def test_timer_interrupts_fire(self):
        eng = Engine(simple_backend(num_cpus=1))

        def app(proc):
            for _ in range(4):
                # long compute stretches crossing several timer periods
                proc.compute(2_000_000)
                yield from proc.advance()
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        assert stats.interrupt_counts.get("timer", 0) >= 4
        assert stats.cpu[0].interrupt > 0

    def test_interrupt_delivered_at_event_boundary(self):
        """The §3.2 mechanism: a busy frontend takes the interrupt when it
        next sends an event, with bounded delay."""
        eng = Engine(simple_backend(num_cpus=1))
        seen = {}

        def app(proc):
            proc.compute(3_000_000)   # > 2 timer periods without events
            yield from proc.advance()
            seen["t"] = eng.gsched.now
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        # the pending tick was delivered (as handler frames or idle service)
        assert stats.interrupt_counts.get("timer", 0) >= 1

    def test_idle_cpu_services_interrupts(self):
        """With every process blocked, device completions must still be
        delivered (the idle-loop path)."""
        eng = Engine(complex_backend(num_cpus=2))
        eng.os_server.fs.create("/f", b"x" * 4096)

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            r = yield from proc.call("kreadv", r.value, 0x100000, 4096)
            assert r.value == 4096
            yield from proc.exit(0)

        p = eng.spawn("a", app)
        eng.run()
        assert p.exit_status == 0
        assert eng.stats.interrupt_counts.get("disk:hd0", 0) >= 1

    def test_interrupt_time_attributed(self, engine2):
        engine2.os_server.fs.create("/f", b"x" * 65536)

        def app(proc):
            r = yield from proc.call("open", "/f", 0)
            yield from proc.call("kreadv", r.value, 0x100000, 65536)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        stats = engine2.run()
        assert stats.cpu[0].interrupt + stats.cpu[1].interrupt > 0


class TestPreemption:
    def test_preemptive_scheduler_rotates(self):
        cfg = with_os(simple_backend(num_cpus=1), preemptive=True,
                      quantum=500_000)
        eng = Engine(cfg)
        finished = []

        def app(name):
            def body(proc):
                for _ in range(20):
                    proc.compute(200_000)
                    yield from proc.advance()
                finished.append(name)
                yield from proc.exit(0)
            return body

        eng.spawn("a", app("a"))
        eng.spawn("b", app("b"))
        eng.run()
        assert eng.procsched.preemptions > 0
        assert sorted(finished) == ["a", "b"]

    def test_no_preemption_without_flag(self):
        cfg = with_os(simple_backend(num_cpus=1), preemptive=False)
        eng = Engine(cfg)

        def app(proc):
            for _ in range(10):
                proc.compute(300_000)
                yield from proc.advance()
            yield from proc.exit(0)

        eng.spawn("a", app)
        eng.spawn("b", app)
        eng.run()
        assert eng.procsched.preemptions == 0

    def test_sched_yield(self):
        eng = Engine(simple_backend(num_cpus=1))
        order = []

        def polite(proc):
            for _ in range(3):
                proc.compute(1000)
                yield from proc.advance()
                yield from proc.call("sched_yield")
            order.append("polite")
            yield from proc.exit(0)

        def other(proc):
            proc.compute(1000)
            yield from proc.advance()
            order.append("other")
            yield from proc.exit(0)

        eng.spawn("p", polite)
        eng.spawn("o", other)
        eng.run()
        assert order[0] == "other"   # yield let the waiter in


class TestBlockingProtocol:
    def test_cpu_released_while_blocked(self):
        """§3.3.3: a blocking OS call frees the processor for ready work."""
        eng = Engine(complex_backend(num_cpus=1))
        eng.os_server.fs.create("/big", b"x" * 131072)
        marks = []

        def io_proc(proc):
            r = yield from proc.call("open", "/big", 0)
            yield from proc.call("kreadv", r.value, 0x100000, 131072)
            marks.append("io-done")
            yield from proc.exit(0)

        def cpu_proc(proc):
            for _ in range(5):
                proc.compute(50_000)
                yield from proc.advance()
            marks.append("cpu-done")
            yield from proc.exit(0)

        eng.spawn("io", io_proc)
        eng.spawn("cpu", cpu_proc)
        eng.run()
        assert marks[0] == "cpu-done"   # ran while io was disk-blocked

    def test_idle_accounted_when_all_blocked(self):
        eng = Engine(complex_backend(num_cpus=2))

        def app(proc):
            yield from proc.call("nanosleep", 10_000_000)
            yield from proc.exit(0)

        eng.spawn("a", app)
        stats = eng.run()
        total_idle = sum(c.idle for c in stats.cpu)
        assert total_idle > 5_000_000
