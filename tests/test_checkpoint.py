"""Deterministic checkpoint/restore: crash mid-run, resume bit-identically."""

import os
import pickle

import pytest

from repro import (CheckpointError, Engine, FaultPlan, FaultRule,
                   checkpoint_exists,
                   SamplingConfig, SimulatedCrash, complex_backend,
                   load_checkpoint, resume)
from repro.checkpoint import RecordingMemory
from repro.checkpoint.log import ReplayMemory
from repro.core.errors import ReplayDivergence
from repro.core.frontend import SimProcess
from repro.mem.hierarchy import MemorySystem

from tests.test_determinism_harness import FAULT_OFF_WORKLOADS, _fingerprint

#: timing-only fault plan that injects in every workload (no errno faults,
#: so OLTP/DSS/web/SPLASH all run to completion unchanged)
TIMING_PLAN = FaultPlan(rules=(
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
    FaultRule(site="link:degraded", prob=0.001, extra_cycles=50),
), seed=1998)

#: OLTP-only plan with an errno fault in the mix (kreadv retries)
ERRNO_PLAN = FaultPlan(rules=(
    FaultRule(site="syscall:kreadv", prob=0.05, errno="EINTR"),
    FaultRule(site="disk:latency", prob=0.2, extra_cycles=40_000),
    FaultRule(site="mem:degraded", prob=0.001, extra_cycles=300),
), seed=7)


def _cfg_factory(path, interval, faults):
    def cfg(**kw):
        return complex_backend(faults=faults, checkpoint_path=path,
                               checkpoint_interval=interval, **kw)
    return cfg


def _full_fingerprint(eng, stats):
    return _fingerprint(eng, stats) + (
        tuple(sorted(eng.faults.stats.fired.items())),
        eng.faults.stats.draws,
        tuple(sorted(eng.memsys.cache_summary()["l1"].items())),
        dict(eng.memsys.cache_summary()["protocol"]),
        eng.memsys.vmm.minor_faults,
        eng.memsys.vmm.major_faults,
    )


def _run_plain(build, faults):
    SimProcess._next_pid[0] = 1
    eng = build(_cfg_factory(None, 0, faults))
    stats = eng.run()
    return _full_fingerprint(eng, stats)


class TestCrashResumeBitIdentity:
    """The acceptance gate: checkpoint -> kill -> restore produces the
    event stream, final stats, and fault-fire counts of an uninterrupted
    run, on every workload, with a fault plan active."""

    @pytest.mark.parametrize("name", sorted(FAULT_OFF_WORKLOADS))
    def test_interrupted_equals_uninterrupted(self, name, tmp_path):
        build = FAULT_OFF_WORKLOADS[name]
        path = str(tmp_path / "ck.pkl")
        baseline = _run_plain(build, TIMING_PLAN)

        factory = _cfg_factory(path, 1_500, TIMING_PLAN)
        SimProcess._next_pid[0] = 1
        eng = build(factory)
        eng._ckpt.crash_after_saves = 2
        with pytest.raises(SimulatedCrash):
            eng.run()
        assert checkpoint_exists(path)

        eng2, stats2 = resume(path, lambda: build(factory))
        assert _full_fingerprint(eng2, stats2) == baseline

    def test_errno_faults_survive_resume(self, tmp_path):
        build = FAULT_OFF_WORKLOADS["oltp"]
        path = str(tmp_path / "ck.pkl")
        baseline = _run_plain(build, ERRNO_PLAN)

        factory = _cfg_factory(path, 2_000, ERRNO_PLAN)
        SimProcess._next_pid[0] = 1
        eng = build(factory)
        eng._ckpt.crash_after_saves = 3
        with pytest.raises(SimulatedCrash):
            eng.run()
        eng2, stats2 = resume(path, lambda: build(factory))
        assert _full_fingerprint(eng2, stats2) == baseline

    def test_second_generation_crash(self, tmp_path):
        """Crash the *resumed* run and resume again: the checkpoint after
        a restore must be as complete as one from an unbroken run."""
        build = FAULT_OFF_WORKLOADS["oltp"]
        path = str(tmp_path / "ck.pkl")
        baseline = _run_plain(build, TIMING_PLAN)

        factory = _cfg_factory(path, 1_500, TIMING_PLAN)
        SimProcess._next_pid[0] = 1
        eng = build(factory)
        eng._ckpt.crash_after_saves = 1
        with pytest.raises(SimulatedCrash):
            eng.run()

        def rebuild():
            e = build(factory)
            e._ckpt.crash_after_saves = 2     # crash again, further along
            return e

        with pytest.raises(SimulatedCrash):
            resume(path, rebuild)

        eng3, stats3 = resume(path, lambda: build(factory))
        assert _full_fingerprint(eng3, stats3) == baseline


class TestSegmentedRuns:
    def test_resume_across_multiple_run_calls(self, tmp_path):
        """run(max_events=...) segments replay with their original bounds."""
        build = FAULT_OFF_WORKLOADS["oltp"]

        def run_segmented(eng):
            stats = eng.stats
            while True:
                stats = eng.run(max_events=4_000)
                if eng._live <= 0:
                    return stats

        SimProcess._next_pid[0] = 1
        eng0 = build(_cfg_factory(None, 0, TIMING_PLAN))
        baseline = _full_fingerprint(eng0, run_segmented(eng0))

        path = str(tmp_path / "ck.pkl")
        factory = _cfg_factory(path, 1_500, TIMING_PLAN)
        SimProcess._next_pid[0] = 1
        eng = build(factory)
        eng._ckpt.crash_after_saves = 4
        with pytest.raises(SimulatedCrash):
            run_segmented(eng)

        eng2, _ = resume(path, lambda: build(factory), finish=True)
        stats2 = run_segmented(eng2) if eng2._live > 0 else eng2.stats
        assert _full_fingerprint(eng2, stats2) == baseline


class TestZeroCostWhenOff:
    def test_no_manager_no_wrapper(self):
        SimProcess._next_pid[0] = 1
        eng = FAULT_OFF_WORKLOADS["oltp"](_cfg_factory(None, 0, None))
        assert eng._ckpt is None
        assert type(eng.memsys) is MemorySystem

    def test_recording_is_bit_identical(self, tmp_path):
        build = FAULT_OFF_WORKLOADS["oltp"]
        baseline = _run_plain(build, TIMING_PLAN)
        path = str(tmp_path / "ck.pkl")
        SimProcess._next_pid[0] = 1
        eng = build(_cfg_factory(path, 2_000, TIMING_PLAN))
        assert type(eng.memsys) is RecordingMemory
        stats = eng.run()
        assert _full_fingerprint(eng, stats) == baseline
        assert eng._ckpt.saves > 0


class TestFingerprints:
    def test_config_mismatch_refused(self, tmp_path):
        build = FAULT_OFF_WORKLOADS["oltp"]
        path = str(tmp_path / "ck.pkl")
        factory = _cfg_factory(path, 1_500, TIMING_PLAN)
        SimProcess._next_pid[0] = 1
        eng = build(factory)
        eng._ckpt.crash_after_saves = 1
        with pytest.raises(SimulatedCrash):
            eng.run()
        other = _cfg_factory(path, 1_500, None)   # different fault plan
        with pytest.raises(CheckpointError, match="configuration"):
            resume(path, lambda: build(other))

    def test_workload_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        factory = _cfg_factory(path, 1_500, TIMING_PLAN)
        SimProcess._next_pid[0] = 1
        eng = FAULT_OFF_WORKLOADS["oltp"](factory)
        eng._ckpt.crash_after_saves = 1
        with pytest.raises(SimulatedCrash):
            eng.run()
        with pytest.raises(CheckpointError, match="workload"):
            # same SimConfig shape, different process set
            resume(path, lambda: FAULT_OFF_WORKLOADS["dss"](factory))

    def test_not_a_checkpoint(self, tmp_path):
        path = str(tmp_path / "junk.pkl")
        with open(path, "wb") as f:
            pickle.dump([1, 2, 3], f)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_atomic_autosave_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        factory = _cfg_factory(path, 1_500, TIMING_PLAN)
        SimProcess._next_pid[0] = 1
        eng = FAULT_OFF_WORKLOADS["oltp"](factory)
        eng.run()
        assert checkpoint_exists(path)
        # autosaves rotate generations; no bare file and no stale temps
        assert not os.path.exists(path)
        assert not any(f.endswith(".tmp") for f in os.listdir(path.rsplit(
            "/", 1)[0]))
        ck = load_checkpoint(path)
        assert ck["version"] == 2
        assert ck["events_processed"] > 0
        # both generations exist after >= 2 autosaves and load_checkpoint
        # picks the newer one
        from repro.checkpoint import generation_paths
        gens = [g for g in generation_paths(path) if os.path.exists(g)]
        assert len(gens) == 2
        assert ck["saves"] == eng._ckpt.saves


class TestReplayMemory:
    def test_over_consumption_raises(self):
        class _FakeReal:
            pass
        rm = ReplayMemory(_FakeReal(), {1: [10, 20]})
        assert rm.access(1, 0x100, 4, False, 0, 0) == (10, None)
        assert rm.access(1, 0x104, 4, False, 0, 10) == (20, None)
        with pytest.raises(ReplayDivergence):
            rm.access(1, 0x108, 4, False, 0, 30)

    def test_check_exhausted(self):
        class _FakeReal:
            pass
        rm = ReplayMemory(_FakeReal(), {1: [10, 20]})
        rm.access(1, 0x100, 4, False, 0, 0)
        with pytest.raises(ReplayDivergence):
            rm.check_exhausted()


class TestParallelResume:
    """ParallelEngine checkpoints resume by respawning fresh workers and
    replaying their (deterministic) event streams against the reply log."""

    PROG = """
        li r1, 0
        li r2, 12000
        li r10, 0x100000
        li r6, 0
    loop:
        loadx r3, r10, r1, 4
        mul r4, r3, r3
        add r6, r6, r4
        addi r1, r1, 64
        blt r1, r2, loop
        syscall getpid, 0
        li r3, 0
        halt
    """

    def _build(self, path, interval):
        from repro.host import ParallelEngine, WorkerSpec
        cfg = complex_backend(num_cpus=2, faults=TIMING_PLAN,
                              checkpoint_path=path,
                              checkpoint_interval=interval)
        eng = ParallelEngine(cfg)
        for i in range(2):
            eng.spawn_worker(WorkerSpec(f"w{i}", self.PROG))
        return eng

    def test_parallel_crash_resume(self, tmp_path):
        SimProcess._next_pid[0] = 1
        eng0 = self._build(None, 0)
        with eng0:
            stats0 = eng0.run()
        baseline = _fingerprint(eng0, stats0)

        path = str(tmp_path / "ck.pkl")
        SimProcess._next_pid[0] = 1
        eng1 = self._build(path, 100)
        eng1._ckpt.crash_after_saves = 1
        try:
            with pytest.raises(SimulatedCrash):
                eng1.run()
        finally:
            eng1.shutdown()

        eng2, stats2 = resume(path, lambda: self._build(path, 100))
        try:
            assert _fingerprint(eng2, stats2) == baseline
        finally:
            eng2.shutdown()


class TestSamplingSpeculationResume:
    """``sampling`` and ``speculate`` enabled *together* (previously only
    covered separately): the sampled schedule must survive a crash and
    resume even when the kill lands inside a fast-forward window, and the
    speculate knob must not perturb a sampled run."""

    #: short detail windows, long ff windows: autosaves at an 800-event
    #: cadence land the second save (event 1600) inside the first ff
    #: window (events 1000-3500)
    SC = SamplingConfig(detail_events=1_000, ff_events=2_500)

    def _factory(self, path, interval):
        def cfg(**kw):
            return complex_backend(sampling=self.SC, speculate=True,
                                   lookahead=True, checkpoint_path=path,
                                   checkpoint_interval=interval, **kw)
        return cfg

    def test_kill_during_ff_window_resumes(self, tmp_path):
        build = FAULT_OFF_WORKLOADS["splash"]    # multi-CPU: rivals exist
        path = str(tmp_path / "ck.pkl")

        SimProcess._next_pid[0] = 1
        eng0 = build(self._factory(str(tmp_path / "base.pkl"), 800))
        baseline = _full_fingerprint(eng0, eng0.run())

        SimProcess._next_pid[0] = 1
        eng = build(self._factory(path, 800))
        eng._ckpt.crash_after_saves = 2
        with pytest.raises(SimulatedCrash):
            eng.run()
        # the hard case: the kill interrupted a fast-forward window, so
        # the resume must reconstruct the window schedule and the
        # calibrated ff latency mid-flight
        assert eng.memsys.ff_active
        eng2, stats2 = resume(path, lambda: build(self._factory(path, 800)))
        assert _full_fingerprint(eng2, stats2) == baseline

    def test_speculate_knob_invisible_in_sampled_runs(self):
        """Without checkpointing, speculation is live in detail windows
        and stands down during ff — either way the sampled result must
        be bit-identical to the speculate-off schedule."""
        def run(speculate):
            SimProcess._next_pid[0] = 1
            eng = FAULT_OFF_WORKLOADS["splash"](
                lambda **kw: complex_backend(sampling=self.SC,
                                             speculate=speculate, **kw))
            return _full_fingerprint(eng, eng.run())

        assert run(True) == run(False)


class TestComponentRoundTrips:
    """state_dict()/load_state() are exact inverses on live engine state."""

    COMPONENTS = ("gsched", "locks", "barriers", "procsched",
                  "intctl", "timer", "disk", "nic", "os_server", "stats")

    def test_mid_run_round_trip(self):
        SimProcess._next_pid[0] = 1
        eng = FAULT_OFF_WORKLOADS["oltp"](_cfg_factory(None, 0, TIMING_PLAN))
        eng.run(max_events=3_000)
        needs_procs = {"locks", "barriers", "procsched"}
        for name in self.COMPONENTS:
            comp = getattr(eng, name)
            before = comp.state_dict()
            frozen = pickle.loads(pickle.dumps(before))
            if name in needs_procs:
                comp.load_state(frozen, procs=eng.comm.processes)
            else:
                comp.load_state(frozen)
            assert comp.state_dict() == before, name
        for cpu in eng.comm.cpus:   # Communicator itself is verify-only
            before = cpu.state_dict()
            cpu.load_state(pickle.loads(pickle.dumps(before)))
            assert cpu.state_dict() == before
        ms = eng.memsys
        before = ms.state_dict()
        ms.load_state(pickle.loads(pickle.dumps(before)))
        assert ms.state_dict() == before
