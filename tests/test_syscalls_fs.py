"""File-system syscall integration tests (through the full engine)."""

import pytest

from repro import Engine, complex_backend
from repro.core.events import EBADF, ENOENT, EMFILE


BUF = 0x0100_0000


def run(engine, body):
    """Run one app generator through the engine; returns its locals dict."""
    out = {}

    def app(proc):
        yield from body(proc, out)
        yield from proc.exit(0)

    p = engine.spawn("t", app)
    engine.run()
    assert p.exit_status == 0
    return out


class TestOpenClose:
    def test_open_missing_enoent(self, engine2):
        def body(proc, out):
            out["r"] = yield from proc.call("open", "/missing", 0)
        out = run(engine2, body)
        assert out["r"].errno == ENOENT

    def test_open_creat_close(self, engine2):
        def body(proc, out):
            r = yield from proc.call("open", "/f", 0x100)
            out["fd"] = r.value
            out["c"] = yield from proc.call("close", r.value)
        out = run(engine2, body)
        assert out["fd"] >= 3 and out["c"].ok
        assert engine2.os_server.fs.exists("/f")

    def test_close_bad_fd(self, engine2):
        def body(proc, out):
            out["r"] = yield from proc.call("close", 77)
        assert run(engine2, body)["r"].errno == EBADF

    def test_fd_exhaustion(self):
        from repro import with_os
        eng = Engine(with_os(complex_backend(num_cpus=1), max_fds=4))

        def body(proc, out):
            fds = []
            for i in range(6):
                r = yield from proc.call("open", f"/f{i}", 0x100)
                fds.append(r)
            out["fds"] = fds
        out = run(eng, body)
        assert any(r.errno == EMFILE for r in out["fds"])

    def test_open_trunc(self, engine2):
        engine2.os_server.fs.create("/t", b"data")

        def body(proc, out):
            r = yield from proc.call("open", "/t", 0x200)   # O_TRUNC
            yield from proc.call("close", r.value)
        run(engine2, body)
        assert engine2.os_server.fs.lookup("/t").size == 0


class TestReadWrite:
    def test_write_then_read_roundtrip(self, engine2):
        def body(proc, out):
            r = yield from proc.call("open", "/d", 0x100)
            fd = r.value
            yield from proc.call("kwritev", fd, BUF, 10_000, b"z" * 10_000)
            yield from proc.call("lseek", fd, 0, 0)
            out["rd"] = yield from proc.call("kreadv", fd, BUF, 10_000)
        out = run(engine2, body)
        assert out["rd"].value == 10_000
        assert out["rd"].data == b"z" * 10_000

    def test_read_at_eof_zero(self, engine2):
        engine2.os_server.fs.create("/e", b"ab")

        def body(proc, out):
            r = yield from proc.call("open", "/e", 0)
            yield from proc.call("lseek", r.value, 2, 0)
            out["rd"] = yield from proc.call("kreadv", r.value, BUF, 10)
        assert run(engine2, body)["rd"].value == 0

    def test_offset_advances(self, engine2):
        engine2.os_server.fs.create("/o", bytes(range(100)))

        def body(proc, out):
            r = yield from proc.call("open", "/o", 0)
            a = yield from proc.call("kreadv", r.value, BUF, 10)
            b = yield from proc.call("kreadv", r.value, BUF, 10)
            out["a"], out["b"] = a.data, b.data
        out = run(engine2, body)
        assert out["a"] == bytes(range(10))
        assert out["b"] == bytes(range(10, 20))

    def test_lseek_whence(self, engine2):
        engine2.os_server.fs.create("/s", b"0123456789")

        def body(proc, out):
            r = yield from proc.call("open", "/s", 0)
            fd = r.value
            out["set"] = (yield from proc.call("lseek", fd, 4, 0)).value
            out["cur"] = (yield from proc.call("lseek", fd, 2, 1)).value
            out["end"] = (yield from proc.call("lseek", fd, -1, 2)).value
        out = run(engine2, body)
        assert (out["set"], out["cur"], out["end"]) == (4, 6, 9)

    def test_read_blocks_on_disk_and_charges_kernel(self, engine2):
        engine2.os_server.fs.create("/big", b"q" * 65536)

        def body(proc, out):
            r = yield from proc.call("open", "/big", 0)
            out["rd"] = yield from proc.call("kreadv", r.value, BUF, 65536)
        out = run(engine2, body)
        assert out["rd"].value == 65536
        assert engine2.disk.requests > 0
        assert engine2.stats.total_cpu().kernel > 0
        assert engine2.stats.interrupt_counts.get("disk:hd0", 0) > 0

    def test_second_read_hits_buffer_cache(self, engine2):
        engine2.os_server.fs.create("/c", b"q" * 8192)

        def body(proc, out):
            r = yield from proc.call("open", "/c", 0)
            fd = r.value
            yield from proc.call("kreadv", fd, BUF, 8192)
            before = engine2.disk.requests
            yield from proc.call("lseek", fd, 0, 0)
            yield from proc.call("kreadv", fd, BUF, 8192)
            out["extra_io"] = engine2.disk.requests - before
        assert run(engine2, body)["extra_io"] == 0


class TestSyncCalls:
    def test_fsync_forces_dirty_blocks(self, engine2):
        def body(proc, out):
            r = yield from proc.call("open", "/w", 0x100)
            fd = r.value
            yield from proc.call("kwritev", fd, BUF, 8192, b"x" * 8192)
            before = engine2.disk.write_bytes
            r = yield from proc.call("fsync", fd)
            out["ok"] = r.ok
            out["wrote"] = engine2.disk.write_bytes - before
        out = run(engine2, body)
        assert out["ok"] and out["wrote"] >= 8192

    def test_fsync_clean_file_free(self, engine2):
        engine2.os_server.fs.create("/clean", b"abc")

        def body(proc, out):
            r = yield from proc.call("open", "/clean", 0)
            out["r"] = yield from proc.call("fsync", r.value)
        assert run(engine2, body)["r"].ok

    def test_statx(self, engine2):
        engine2.os_server.fs.create("/st", b"12345")

        def body(proc, out):
            out["r"] = yield from proc.call("statx", "/st")
        r = run(engine2, body)["r"]
        assert r.ok and r.data["size"] == 5

    def test_unlink(self, engine2):
        engine2.os_server.fs.create("/u", b"")

        def body(proc, out):
            out["r"] = yield from proc.call("unlink", "/u")
        assert run(engine2, body)["r"].ok
        assert not engine2.os_server.fs.exists("/u")

    def test_ftruncate(self, engine2):
        engine2.os_server.fs.create("/tr", b"123456")

        def body(proc, out):
            r = yield from proc.call("open", "/tr", 2)
            out["r"] = yield from proc.call("ftruncate", r.value, 2)
        assert run(engine2, body)["r"].ok
        assert engine2.os_server.fs.lookup("/tr").size == 2


class TestMmapFamily:
    def test_mmap_touch_msync_munmap(self, engine2):
        engine2.os_server.fs.create("/map", b"m" * 16384)

        def body(proc, out):
            r = yield from proc.call("open", "/map", 2)
            fd = r.value
            r = yield from proc.call("mmap", fd, 16384)
            out["base"] = r.value
            assert r.ok
            for pg in range(4):
                yield from proc.load(r.value + pg * 4096)
            out["ms"] = yield from proc.call("msync", r.value, 16384, 1)
            out["mu"] = yield from proc.call("munmap", r.value)
        out = run(engine2, body)
        assert out["ms"].value == 4      # 4 resident pages written
        assert out["mu"].ok
        assert engine2.memsys.vmm.major_faults == 4

    def test_mmap_bad_fd(self, engine2):
        def body(proc, out):
            out["r"] = yield from proc.call("mmap", 55, 4096)
        assert run(engine2, body)["r"].errno == EBADF

    def test_munmap_unknown_einval(self, engine2):
        from repro.core.events import EINVAL

        def body(proc, out):
            out["r"] = yield from proc.call("munmap", 0xB0000000)
        assert run(engine2, body)["r"].errno == EINVAL

    def test_msync_untouched_pages_skipped(self, engine2):
        engine2.os_server.fs.create("/m2", b"m" * 16384)

        def body(proc, out):
            r = yield from proc.call("open", "/m2", 2)
            r = yield from proc.call("mmap", r.value, 16384)
            yield from proc.load(r.value)      # touch only page 0
            out["ms"] = yield from proc.call("msync", r.value, 16384, 1)
        assert run(engine2, body)["ms"].value == 1
