"""Property tests for the speculation micro-checkpoint slice.

:class:`~repro.checkpoint.MicroCheckpoint` claims an exact, in-place
round-trip of one CPU's speculation-visible state: the L1 line-state
dict, the per-set LRU orders, the inclusive-L2 mirror, the commutative
hit/access counters, the vec-path counters and the global clock's
high-water mark — and *nothing else*. These tests pin every clause of
that contract directly against a standalone :class:`MemorySystem`,
including that the FaultInjector (and its checkpoint record/replay
FIFOs) is never perturbed by a capture/rollback cycle.
"""

from __future__ import annotations

import pytest

from repro import FaultPlan, FaultRule
from repro.checkpoint import MicroCheckpoint, SpecOverlay
from repro.core.config import complex_backend
from repro.core.stats import StatsRegistry
from repro.faults.injector import FaultInjector
from repro.mem.hierarchy import MemorySystem


class _Clock:
    def __init__(self, now=0):
        self.now = now


def make_ms(**kw):
    cfg = complex_backend(num_cpus=2, **kw)
    ms = MemorySystem(cfg, StatsRegistry(cfg.num_cpus))
    ms.vmm.new_space(1)
    ms.vmm.map_anon(1, 0x10000, 1 << 24)
    return ms


def _warm(ms, cpu, n=8, base=0x20000, stride=64):
    """Read ``n`` lines into EXCLUSIVE on ``cpu``; returns (addrs, now)."""
    now = 0
    addrs = [base + i * stride for i in range(n)]
    for a in addrs:
        lat, fault = ms.access(1, a, 4, False, cpu, now)
        assert fault is None
        now += lat
    return addrs, now


def _slice(ms, cpu, clock):
    """Everything MicroCheckpoint promises to restore, deep-copied."""
    return (dict(ms._l1_states[cpu]),
            [list(s) for s in ms._l1_sets[cpu]],
            dict(ms._l2_states[cpu]) if ms._l2_states is not None else None,
            ms.l1s[cpu].hits, ms.accesses, ms.fast_hits,
            (ms.vec_batches, ms.vec_refs, ms.vec_fallbacks, ms.vec_rebuilds),
            clock.now)


def test_roundtrip_exact():
    """Capture -> mutate (E->M flips, LRU reorder, counters, clock) ->
    rollback returns the slice bit-for-bit."""
    ms = make_ms()
    addrs, now = _warm(ms, 0)
    clk = _Clock(now)
    before = _slice(ms, 0, clk)
    mck = MicroCheckpoint(ms, 0, clk)

    # writes flip EXCLUSIVE -> MODIFIED and reorder the LRU lists;
    # reversed order maximises the reordering
    for a in reversed(addrs):
        lat, fault = ms.access(1, a, 4, True, 0, clk.now)
        assert fault is None
        clk.now += lat
    assert _slice(ms, 0, clk) != before   # the window really mutated it

    mck.rollback()
    assert _slice(ms, 0, clk) == before


def test_rollback_preserves_container_identity():
    """The hot loops hold direct references to the dict and the LRU
    lists, so rollback must restore *in place*."""
    ms = make_ms()
    addrs, now = _warm(ms, 0)
    clk = _Clock(now)
    states_id = id(ms._l1_states[0])
    set_ids = [id(s) for s in ms._l1_sets[0]]
    l2_id = id(ms._l2_states[0]) if ms._l2_states is not None else None
    version = ms.l1s[0].version

    mck = MicroCheckpoint(ms, 0, clk)
    for a in addrs:
        lat, _ = ms.access(1, a, 4, True, 0, clk.now)
        clk.now += lat
    mck.rollback()

    assert id(ms._l1_states[0]) == states_id
    assert [id(s) for s in ms._l1_sets[0]] == set_ids
    if l2_id is not None:
        assert id(ms._l2_states[0]) == l2_id
    # the version bump is what invalidates version-keyed memos
    assert ms.l1s[0].version == version + 1
    if ms._vec is not None:
        assert ms._vec._cache_versions[0] == -1


def test_rollback_is_idempotent():
    ms = make_ms()
    addrs, now = _warm(ms, 0)
    clk = _Clock(now)
    mck = MicroCheckpoint(ms, 0, clk)
    for a in addrs:
        lat, _ = ms.access(1, a, 4, True, 0, clk.now)
        clk.now += lat
    mck.rollback()
    snap = _slice(ms, 0, clk)
    mck.rollback()
    assert _slice(ms, 0, clk) == snap


def test_other_cpu_slice_untouched():
    """Rollback is confined to its CPU: a rival's slice mutated after the
    capture stays mutated."""
    ms = make_ms()
    addrs0, now = _warm(ms, 0)
    clk = _Clock(now)
    mck = MicroCheckpoint(ms, 0, clk)
    addrs1, _ = _warm(ms, 1, base=0x80000)
    rival = (dict(ms._l1_states[1]), [list(s) for s in ms._l1_sets[1]])
    mck.rollback()
    assert dict(ms._l1_states[1]) == rival[0]
    assert [list(s) for s in ms._l1_sets[1]] == rival[1]


def test_fault_injector_fifos_untouched():
    """A speculative window consumes only fast-path hits, which never
    reach a fault site: the injector's counters, RNG stream and — while
    a checkpoint is recording — its outcome FIFOs must come through a
    capture/mutate/rollback cycle untouched, so replay stays aligned."""
    plan = FaultPlan(rules=(
        FaultRule(site="mem:degraded", prob=0.5, extra_cycles=300),
    ), seed=7)
    ms = make_ms()
    inj = FaultInjector(plan)
    ms.fault_extra = inj.mem_extra
    rec_log = {}
    inj.begin_recording(rec_log)

    addrs, now = _warm(ms, 0)           # misses: these DO visit the site
    baseline = inj.state_dict()
    fifo_lens = {k: len(v) for k, v in rec_log.items()}
    assert inj.stats.draws > 0          # the site is live

    clk = _Clock(now)
    mck = MicroCheckpoint(ms, 0, clk)
    for a in reversed(addrs):           # hits: must not touch the site
        lat, _ = ms.access(1, a, 4, True, 0, clk.now)
        clk.now += lat
    mck.rollback()

    assert inj.state_dict() == baseline
    assert {k: len(v) for k, v in rec_log.items()} == fifo_lens

    # ...and the post-rollback miss stream draws exactly as a control
    # injector that never saw the window
    ctl = FaultInjector(plan)
    ctl_log = {}
    ctl.begin_recording(ctl_log)
    ms2 = make_ms()
    ctl_ms = ms2
    ctl_ms.fault_extra = ctl.mem_extra
    _warm(ctl_ms, 0)
    extra = [inj.mem_extra() for _ in range(16)]
    extra_ctl = [ctl.mem_extra() for _ in range(16)]
    assert extra == extra_ctl
    assert rec_log == ctl_log


def test_capture_is_cheap_no_pickling():
    """The capture is plain dict/list copies — its cost scales with the
    resident L1 line count, not the machine; trivially, capturing an
    idle CPU's slice copies empty containers."""
    ms = make_ms()
    clk = _Clock(0)
    mck = MicroCheckpoint(ms, 1, clk)
    assert mck._states == {}
    assert all(s == [] for s in mck._sets)


# ---------------------------------------------------------------------------
# SpecOverlay (worker-side counterpart)
# ---------------------------------------------------------------------------

def test_overlay_copy_on_touch():
    base = [[10, 11], [20], []]
    ov = SpecOverlay()
    s = ov.set_list(0, base)
    assert s == [10, 11] and s is not base[0]
    s.append(12)
    assert base[0] == [10, 11]          # committed mirror never written
    assert ov.set_list(0, base) is s    # stable private copy


def test_overlay_payload_shape():
    ov = SpecOverlay()
    ov.states[5] = 3
    ov.states[2] = 3
    ov.set_list(1, [[9], [5, 2]])
    ov.n_mem, ov.n_adv, ov.n_lines, ov.last_issue = 4, 1, 2, 777
    n_mem, n_adv, n_lines, advance, last_issue, sets, flips = ov.payload(42)
    assert (n_mem, n_adv, n_lines, advance, last_issue) == (4, 1, 2, 42, 777)
    assert flips == [2, 5]              # sorted for deterministic folds
    assert sets == {1: [5, 2]}
