"""The WAL job spool: framing round trips, rotation, compaction, and —
the point of the exercise — recovery from torn and corrupted segments.
Torn tails (a crash mid-append) must truncate cleanly with a quarantine
forensic record; interior damage to synced history must raise a
structured :class:`SpoolCorruptError`, never silently drop records."""

import json
import os
import random
import struct

import pytest

from repro import JobRunner, JobSpec, JobState, SpoolCorruptError
from repro.core.framing import HEADER_SIZE
from repro.service.spool import MAGIC, JobSpool


def _fill(spool, n, start=0):
    for i in range(start, start + n):
        spool.append({"type": "t", "i": i, "payload": "x" * (i % 7)})


def _read_all(spool_dir, **kw):
    return JobSpool(spool_dir, **kw).recover()


def _frame_boundaries(path):
    """Byte offsets of every frame boundary in one segment (starting at
    the end of the magic), by walking the length headers."""
    bounds = []
    size = os.path.getsize(path)
    with open(path, "rb") as f:
        f.seek(len(MAGIC))
        while f.tell() < size:
            bounds.append(f.tell())
            length, _crc = struct.unpack("<II", f.read(HEADER_SIZE))
            f.seek(length, os.SEEK_CUR)
        bounds.append(size)
    return bounds


class TestSpoolBasics:
    def test_append_recover_round_trip(self, tmp_path):
        spool = JobSpool(str(tmp_path))
        _fill(spool, 20)
        spool.close()
        records = _read_all(str(tmp_path))
        assert [r["i"] for r in records] == list(range(20))

    def test_fresh_instance_never_appends_to_old_segment(self, tmp_path):
        a = JobSpool(str(tmp_path))
        _fill(a, 3)
        a.close()
        b = JobSpool(str(tmp_path))
        _fill(b, 2, start=3)
        b.close()
        assert len(b.segment_indices()) == 2
        assert [r["i"] for r in _read_all(str(tmp_path))] == list(range(5))

    def test_rotation_by_segment_bytes(self, tmp_path):
        spool = JobSpool(str(tmp_path), segment_bytes=256)
        _fill(spool, 40)
        spool.close()
        assert len(spool.segment_indices()) > 1
        assert [r["i"] for r in _read_all(str(tmp_path))] == list(range(40))

    def test_compaction_unlinks_history(self, tmp_path):
        spool = JobSpool(str(tmp_path), segment_bytes=256)
        _fill(spool, 40)
        spool.compact([{"type": "snapshot", "live": True}])
        assert spool.segment_indices() == [spool._seg_index]
        spool.close()
        records = _read_all(str(tmp_path))
        assert records == [{"type": "snapshot", "live": True}]

    def test_maybe_compact_by_record_count(self, tmp_path):
        spool = JobSpool(str(tmp_path), compact_every=10)
        _fill(spool, 9)
        assert not spool.maybe_compact(lambda: [{"s": 1}])
        _fill(spool, 1, start=9)
        assert spool.maybe_compact(lambda: [{"s": 1}])
        spool.close()
        assert _read_all(str(tmp_path)) == [{"s": 1}]

    def test_recover_sweeps_stale_tmp(self, tmp_path):
        spool = JobSpool(str(tmp_path))
        _fill(spool, 2)
        spool.close()
        junk = tmp_path / "spool-00000009.wal.tmp"
        junk.write_bytes(b"half-written")
        _read_all(str(tmp_path))
        assert not junk.exists()


class TestTornTail:
    """Truncate the live segment at *every* byte boundary a crash could
    leave behind; recovery must return exactly the intact prefix and
    quarantine the cut bytes with a forensic record."""

    N = 8

    def _build(self, tmp_path):
        spool = JobSpool(str(tmp_path / "spool"))
        _fill(spool, self.N)
        spool.close()
        seg = spool.segment_path(spool._seg_index)
        return seg, _frame_boundaries(seg)

    def test_every_record_boundary(self, tmp_path):
        seg, bounds = self._build(tmp_path)
        blob = open(seg, "rb").read()
        for k, cut in enumerate(bounds):
            d = tmp_path / f"cut-{cut}"
            d.mkdir()
            p = d / os.path.basename(seg)
            p.write_bytes(blob[:cut])
            records = _read_all(str(d))
            assert [r["i"] for r in records] == list(range(k)), cut

    def test_mid_frame_cuts_truncate_to_prefix(self, tmp_path):
        seg, bounds = self._build(tmp_path)
        blob = open(seg, "rb").read()
        for k in range(len(bounds) - 1):
            for cut in (bounds[k] + 3,                  # inside the header
                        bounds[k] + HEADER_SIZE + 1):   # inside the payload
                d = tmp_path / f"cut-{cut}"
                d.mkdir()
                p = d / os.path.basename(seg)
                p.write_bytes(blob[:cut])
                spool = JobSpool(str(d))
                records = spool.recover()
                assert [r["i"] for r in records] == list(range(k)), cut
                # the tear is quarantined with a forensic record
                assert len(spool.quarantines) == 1
                q = spool.quarantines[0]
                assert os.path.getsize(q["moved_to"]) == q["discarded_bytes"]
                forensic = json.loads(
                    open(str(p) + ".quarantine.json").read())
                assert forensic["error"]["type"] == "SpoolCorruptError"
                assert forensic["error"]["offset"] == bounds[k]
                # ...and a second scan is clean: the truncation stuck
                again = JobSpool(str(d))
                assert [r["i"] for r in again.recover()] == list(range(k))
                assert again.quarantines == []

    def test_torn_magic_removes_empty_segment(self, tmp_path):
        seg, _ = self._build(tmp_path)
        torn = tmp_path / "torn"
        torn.mkdir()
        (torn / os.path.basename(seg)).write_bytes(MAGIC[:2])
        spool = JobSpool(str(torn))
        assert spool.recover() == []
        assert not (torn / os.path.basename(seg)).exists()
        assert len(spool.quarantines) == 1


class TestInteriorCorruption:
    def _corrupt(self, tmp_path, offset_fn, n=8):
        spool = JobSpool(str(tmp_path / "spool"))
        _fill(spool, n)
        spool.close()
        seg = spool.segment_path(spool._seg_index)
        blob = bytearray(open(seg, "rb").read())
        off = offset_fn(_frame_boundaries(seg))
        blob[off] ^= 0x40
        open(seg, "wb").write(bytes(blob))
        return str(tmp_path / "spool"), seg

    def test_bit_flip_in_synced_history_raises(self, tmp_path):
        # flip a payload byte of the FIRST record: valid frames follow,
        # so this is interior corruption, not a torn tail
        d, seg = self._corrupt(
            tmp_path, lambda b: b[0] + HEADER_SIZE + 1)
        with pytest.raises(SpoolCorruptError) as ei:
            _read_all(d)
        assert ei.value.path == seg
        assert "valid records follow" in str(ei.value)
        assert ei.value.to_record()["offset"] >= 0

    def test_bit_flip_in_last_record_is_a_torn_tail(self, tmp_path):
        d, _seg = self._corrupt(
            tmp_path, lambda b: b[-2] + HEADER_SIZE + 1)
        records = _read_all(d)
        assert [r["i"] for r in records] == list(range(7))

    def test_corrupt_non_last_segment_raises(self, tmp_path):
        spool = JobSpool(str(tmp_path), segment_bytes=256)
        _fill(spool, 40)
        spool.close()
        first = spool.segment_path(spool.segment_indices()[0])
        blob = bytearray(open(first, "rb").read())
        blob[-3] ^= 0x01        # even the tail of an OLD segment is synced
        open(first, "wb").write(bytes(blob))
        with pytest.raises(SpoolCorruptError):
            _read_all(str(tmp_path))

    def test_random_bit_flip_fuzz(self, tmp_path):
        """Any single bit flip either truncates to a valid prefix or
        raises SpoolCorruptError — never a raw struct/json error, never
        a wrong record."""
        rng = random.Random(1234)
        spool = JobSpool(str(tmp_path / "seed"))
        _fill(spool, 10)
        spool.close()
        seg = spool.segment_path(spool._seg_index)
        blob = open(seg, "rb").read()
        truth = [r["i"] for r in _read_all(str(tmp_path / "seed"))]
        for trial in range(30):
            off = rng.randrange(len(blob))
            bit = 1 << rng.randrange(8)
            d = tmp_path / f"fuzz-{trial}"
            d.mkdir()
            mutated = bytearray(blob)
            mutated[off] ^= bit
            (d / os.path.basename(seg)).write_bytes(bytes(mutated))
            try:
                records = JobSpool(str(d)).recover()
            except SpoolCorruptError:
                continue
            got = [r.get("i") for r in records]
            assert got == truth[:len(got)], (trial, off, bit)


class TestRunnerJournal:
    SPEC = dict(workload="oltp", budget=3000, checkpoint_interval=0,
                timeout=60.0, max_retries=0, safe_mode_fallback=False)

    def test_journal_and_recover_finished_matrix(self, tmp_path):
        spool_dir = str(tmp_path / "spool")
        runner = JobRunner(spool_dir=spool_dir,
                           workdir=str(tmp_path / "work"),
                           max_workers=2, poll=0.02)
        runner.submit(JobSpec(name="j1", **self.SPEC))
        runner.submit(JobSpec(name="j2", **self.SPEC))
        records = runner.run()
        runner._spool.close()
        assert all(r.state == JobState.DONE for r in records.values())

        recovered = JobRunner.recover(spool_dir)
        assert recovered.workdir == runner.workdir
        for name, rec in records.items():
            got = recovered.queue.get(name)
            assert got.to_dict() == rec.to_dict()   # bit-identical record
        recovered._spool.close()

    def test_fresh_runner_refuses_populated_spool(self, tmp_path):
        spool_dir = str(tmp_path / "spool")
        spool = JobSpool(spool_dir)
        spool.append({"type": "meta", "workdir": "/nope"})
        spool.close()
        with pytest.raises(ValueError, match="recover"):
            JobRunner(spool_dir=spool_dir)

    def test_orphaned_running_job_is_reaped(self, tmp_path):
        """A journal that ends with a launch record (supervisor died
        mid-attempt) recovers to RETRYING with an 'orphaned' attempt and
        no retry budget charged."""
        spool_dir = str(tmp_path / "spool")
        spec = JobSpec(name="orphan", **self.SPEC)
        spool = JobSpool(spool_dir)
        spool.append({"type": "meta", "workdir": str(tmp_path / "work")})
        spool.append({"type": "submit", "spec": spec.to_dict()})
        spool.append({"type": "launch", "job": "orphan", "attempt": 1,
                      "safe_mode": False, "pid": None})
        spool.close()
        runner = JobRunner.recover(spool_dir)
        rec = runner.queue.get("orphan")
        assert rec.state == JobState.RETRYING
        assert rec.attempts[-1].outcome == "orphaned"
        assert runner._retries_used.get("orphan", 0) == 0
        assert runner._next_launch["orphan"] == 2
        # the journaled reap survives another recovery
        runner._spool.close()
        again = JobRunner.recover(spool_dir)
        assert again.queue.get("orphan").attempts[-1].outcome == "orphaned"
        again._spool.close()
