"""ParallelEngine edge cases: tiny programs, mixed workloads, many workers,
mixed inline + parallel frontends, and worker supervision (crash, kill,
restart-with-replay, forensic reports)."""

import os
import signal
import time

import pytest

from repro import complex_backend, simple_backend
from repro.core.errors import HostError
from repro.host import ParallelEngine, WorkerSpec

TRIVIAL = """
    li r3, 7
    halt
"""

ONE_REF = """
    li r10, 0x100000
    li r1, 1
    storex r1, r10, r1, 4
    li r3, 0
    halt
"""

SLEEPY = """
    li r3, 50000
    syscall nanosleep, 1
    li r3, 0
    halt
"""


def test_trivial_program_exits_with_status():
    eng = ParallelEngine(simple_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("t", TRIVIAL))
        eng.run()
    assert p.exit_status == 7


def test_single_reference_program():
    eng = ParallelEngine(simple_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("t", ONE_REF))
        eng.run()
    assert p.exit_status == 0
    assert eng.events_processed >= 1


def test_blocking_syscall_from_worker():
    eng = ParallelEngine(complex_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("t", SLEEPY))
        stats = eng.run()
    assert p.exit_status == 0
    assert stats.end_cycle >= 50_000


def test_more_workers_than_cpus():
    eng = ParallelEngine(simple_backend(num_cpus=2))
    with eng:
        procs = [eng.spawn_worker(WorkerSpec(f"w{i}", ONE_REF))
                 for i in range(5)]
        eng.run()
    assert all(p.exit_status == 0 for p in procs)


def test_mixed_inline_and_parallel_frontends():
    """Parallel workers and ordinary coroutine frontends coexist."""
    eng = ParallelEngine(complex_backend(num_cpus=2))
    done = []

    def inline_app(proc):
        for _ in range(20):
            proc.compute(500)
            yield from proc.store(0x30_000)
        done.append("inline")
        yield from proc.exit(0)

    with eng:
        w = eng.spawn_worker(WorkerSpec("w", ONE_REF))
        eng.spawn("inline", inline_app)
        eng.run()
    assert w.exit_status == 0
    assert done == ["inline"]


def _kill_worker_child(w, timeout=5.0):
    """Wait until the worker has sent something, then SIGKILL it."""
    deadline = time.time() + timeout
    while not w.conn.poll() and time.time() < deadline:
        time.sleep(0.01)
    os.kill(w.process.pid, signal.SIGKILL)
    w.process.join()


def test_worker_killed_mid_run_is_restarted():
    """SIGKILL a worker blocked in a syscall: the supervisor relaunches it,
    replays the consumed prefix, and the run completes bit-normally."""
    eng = ParallelEngine(complex_backend(num_cpus=1))
    eng.worker_backoff = 0.01
    with eng:
        p = eng.spawn_worker(WorkerSpec("victim", SLEEPY))
        w = eng._workers[p.pid]
        _kill_worker_child(w)
        stats = eng.run()
    assert p.exit_status == 0
    assert stats.end_cycle >= 50_000
    assert w.restarts >= 1
    assert stats.get("worker_restarts") >= 1


def test_worker_death_with_no_restarts_is_forensic():
    eng = ParallelEngine(complex_backend(num_cpus=1))
    eng.max_worker_restarts = 0
    with eng:
        p = eng.spawn_worker(WorkerSpec("victim", SLEEPY))
        w = eng._workers[p.pid]
        _kill_worker_child(w)
        with pytest.raises(HostError) as ei:
            eng.run()
    assert "forensic" in str(ei.value)
    assert "victim" in str(ei.value)
    report = ei.value.report
    assert report is not None
    assert report["worker"] == "victim"
    assert report["restarts"] == 0
    assert report["max_restarts"] == 0


def test_worker_crash_message_exhausts_restarts():
    """A deterministic in-worker failure crashes every relaunch; the final
    HostError carries the worker's own crash reason."""
    eng = ParallelEngine(simple_backend(num_cpus=1))
    eng.max_worker_restarts = 1
    eng.worker_backoff = 0.01
    with eng:
        eng.spawn_worker(WorkerSpec("crasher", "not a real instruction"))
        with pytest.raises(HostError) as ei:
            eng.run()
    msg = str(ei.value)
    assert "forensic" in msg
    assert "crashed" in msg
    assert ei.value.report["restarts"] == 1


def test_shutdown_tolerates_dead_and_never_started_workers():
    """shutdown() must not raise for workers that already died or whose
    process object was never started (satellite: shutdown hardening)."""
    eng = ParallelEngine(simple_backend(num_cpus=1))
    p = eng.spawn_worker(WorkerSpec("t", TRIVIAL))
    w = eng._workers[p.pid]
    # already-dead child
    os.kill(w.process.pid, signal.SIGKILL)
    w.process.join()
    # never-started process object
    import multiprocessing as mp
    w2 = type(w)(WorkerSpec("ghost", TRIVIAL))
    w2.process = mp.get_context("fork").Process(target=lambda: None)
    eng._workers[-1] = w2
    eng.shutdown()
    eng.shutdown()   # idempotent


def test_custom_segments_and_registers():
    prog = """
        li r10, 0x400000
        load r3, r10, 0, 4
        add r3, r3, r7
        halt
    """
    eng = ParallelEngine(simple_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec(
            "t", prog, segments=[(0x400000, 4096)], regs={7: 35}))
        eng.run()
    assert p.exit_status == 35   # 0 (fresh memory) + 35
