"""ParallelEngine edge cases: tiny programs, mixed workloads, many workers,
mixed inline + parallel frontends."""

import pytest

from repro import complex_backend, simple_backend
from repro.host import ParallelEngine, WorkerSpec

TRIVIAL = """
    li r3, 7
    halt
"""

ONE_REF = """
    li r10, 0x100000
    li r1, 1
    storex r1, r10, r1, 4
    li r3, 0
    halt
"""

SLEEPY = """
    li r3, 50000
    syscall nanosleep, 1
    li r3, 0
    halt
"""


def test_trivial_program_exits_with_status():
    eng = ParallelEngine(simple_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("t", TRIVIAL))
        eng.run()
    assert p.exit_status == 7


def test_single_reference_program():
    eng = ParallelEngine(simple_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("t", ONE_REF))
        eng.run()
    assert p.exit_status == 0
    assert eng.events_processed >= 1


def test_blocking_syscall_from_worker():
    eng = ParallelEngine(complex_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec("t", SLEEPY))
        stats = eng.run()
    assert p.exit_status == 0
    assert stats.end_cycle >= 50_000


def test_more_workers_than_cpus():
    eng = ParallelEngine(simple_backend(num_cpus=2))
    with eng:
        procs = [eng.spawn_worker(WorkerSpec(f"w{i}", ONE_REF))
                 for i in range(5)]
        eng.run()
    assert all(p.exit_status == 0 for p in procs)


def test_mixed_inline_and_parallel_frontends():
    """Parallel workers and ordinary coroutine frontends coexist."""
    eng = ParallelEngine(complex_backend(num_cpus=2))
    done = []

    def inline_app(proc):
        for _ in range(20):
            proc.compute(500)
            yield from proc.store(0x30_000)
        done.append("inline")
        yield from proc.exit(0)

    with eng:
        w = eng.spawn_worker(WorkerSpec("w", ONE_REF))
        eng.spawn("inline", inline_app)
        eng.run()
    assert w.exit_status == 0
    assert done == ["inline"]


def test_custom_segments_and_registers():
    prog = """
        li r10, 0x400000
        load r3, r10, 0, 4
        add r3, r3, r7
        halt
    """
    eng = ParallelEngine(simple_backend(num_cpus=1))
    with eng:
        p = eng.spawn_worker(WorkerSpec(
            "t", prog, segments=[(0x400000, 4096)], regs={7: 35}))
        eng.run()
    assert p.exit_status == 35   # 0 (fresh memory) + 35
