"""Occupancy-resource and mesh-network tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.bus import OccupancyResource
from repro.mem.network import MeshNetwork


class TestOccupancy:
    def test_uncontended_latency_is_service(self):
        r = OccupancyResource("bus", 8)
        assert r.occupy(100) == 8
        assert r.busy_until == 108

    def test_back_to_back_queues(self):
        r = OccupancyResource("bus", 8)
        assert r.occupy(0) == 8
        assert r.occupy(0) == 16       # waits behind the first
        assert r.occupy(0) == 24
        assert r.wait_cycles == 8 + 16

    def test_gap_resets_queue(self):
        r = OccupancyResource("bus", 8)
        r.occupy(0)
        assert r.occupy(100) == 8

    def test_service_override(self):
        r = OccupancyResource("x", 8)
        assert r.occupy(0, service=3) == 3

    def test_utilisation(self):
        r = OccupancyResource("x", 10)
        r.occupy(0)
        r.occupy(50)
        assert r.utilisation(100) == pytest.approx(0.2)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            OccupancyResource("x", -1)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    def test_busy_until_monotone(self, arrivals):
        r = OccupancyResource("x", 5)
        prev = 0
        for t in sorted(arrivals):
            r.occupy(t)
            assert r.busy_until >= prev
            prev = r.busy_until


class TestMesh:
    def test_single_node_free(self):
        n = MeshNetwork(1, 20)
        assert n.hops(0, 0) == 0
        assert n.transfer(0, 0, 0) == 0

    def test_hops_manhattan(self):
        n = MeshNetwork(4, 20)   # 2x2 mesh
        assert n.hops(0, 3) == 2
        assert n.hops(0, 1) == 1
        assert n.hops(2, 1) == 2

    def test_route_connects_endpoints(self):
        n = MeshNetwork(9, 10)   # 3x3
        route = n.route(0, 8)
        assert route[0][0] == 0 and route[-1][1] == 8
        assert len(route) == n.hops(0, 8)
        for (a, b), (c, d) in zip(route, route[1:]):
            assert b == c

    def test_transfer_latency_scales_with_hops(self):
        n = MeshNetwork(4, 20)
        one = n.transfer(0, 1, 0)
        two = n.transfer(0, 3, 10_000)
        assert two > one

    def test_contention_on_shared_link(self):
        n = MeshNetwork(2, 20)
        a = n.transfer(0, 1, 0)
        b = n.transfer(0, 1, 0)
        assert b > a            # second message queues on the link

    def test_message_and_hop_counters(self):
        n = MeshNetwork(4, 5)
        n.transfer(0, 3, 0)
        assert n.messages == 1
        assert n.total_hops == 2

    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            MeshNetwork(0, 5)

    @given(st.integers(1, 16), st.data())
    def test_hops_symmetric(self, nnodes, data):
        n = MeshNetwork(nnodes, 10)
        a = data.draw(st.integers(0, nnodes - 1))
        b = data.draw(st.integers(0, nnodes - 1))
        assert n.hops(a, b) == n.hops(b, a)
        assert (n.hops(a, b) == 0) == (a == b)
