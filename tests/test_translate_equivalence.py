"""Bit-identity of the basic-block translation cache.

Translation (SimConfig.translate / Interpreter.run(translate=True)) is a
pure host-side optimisation: the compiled per-block closures must produce
*exactly* the interpreter's behaviour — same registers, memory, instret,
event streams (including batch boundaries and pending-cycle stamps), same
simulated cycles and stats — on engine workloads, host-parallel workers and
seeded random programs.
"""

from __future__ import annotations

import random

import pytest

from repro import Engine, complex_backend
from repro.core import events as ev
from repro.core.frontend import SimProcess
from repro.harness import translate_summary
from repro.host import ParallelEngine, WorkerSpec
from repro.isa import (BasicBlock, Instr, Interpreter, Machine, Op, Program,
                       assemble, translate)
from repro.isa.memory import DataMemory
from repro.traces.memtrace import MemTraceRecorder

from .test_fastpath_equivalence import WORKLOADS, _run, _snapshot


# ---------------------------------------------------------------------------
# paper workloads: the translate flag must not perturb any simulation path
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workloads_bit_identical(name):
    snap_on, _ = _run(WORKLOADS[name], translate=True)
    snap_off, _ = _run(WORKLOADS[name], translate=False)
    assert snap_on == snap_off


# ---------------------------------------------------------------------------
# ISA-interpreter engine workload — the path translation actually rewrites
# ---------------------------------------------------------------------------

#: two instrumented frontends: shared-lock increments, a SIMOFF stretch,
#: a syscall, atomics, and a closing barrier — every translated event kind
ISA_KERNEL = """
    li r10, 0x100000
    li r1, 0
    li r2, 2000
    syscall getpid, 0
    mov r9, r3
loop:
    loadx r3, r10, r1, 4
    addi r3, r3, 1
    mul r4, r3, r3
    storex r3, r10, r1, 4
    add r6, r6, r4
    addi r1, r1, 4
    blt r1, r2, loop
    simoff
    li r1, 0
off:
    loadx r3, r10, r1, 4
    add r6, r6, r3
    addi r1, r1, 4
    blt r1, r2, off
    simon
    lock r5
    addi r6, r6, 1
    unlock r5
    addi r11, r10, 64
    lwarx r3, r11
    addi r3, r3, 1
    stwcx r3, r11
    li r7, 1
    li r8, 2
    barrier r7, r8
    li r3, 0
    halt
"""


def build_isa(**cfg):
    eng = Engine(complex_backend(num_cpus=2, **cfg))
    for i in range(2):
        dm = DataMemory()
        dm.map_segment(0x100000, 1 << 22)
        eng.spawn_interpreter(
            f"w{i}", Interpreter(assemble(ISA_KERNEL, f"w{i}"), Machine(dm)))
    return eng, eng.run


@pytest.mark.parametrize("fastpath", [True, False])
def test_isa_engine_bit_identical_tapped(fastpath):
    snap_on, eng_on = _run(build_isa, translate=True, fastpath=fastpath)
    snap_off, _ = _run(build_isa, translate=False, fastpath=fastpath)
    assert snap_on == snap_off
    assert eng_on._frontend_translate


@pytest.mark.parametrize("fastpath", [True, False])
def test_isa_engine_bit_identical_untapped(fastpath):
    def run(tr):
        SimProcess._next_pid[0] = 1
        eng, finish = build_isa(translate=tr, fastpath=fastpath)
        snap = _snapshot(eng, finish(), rec=None)
        del snap["trace"]
        return snap

    assert run(True) == run(False)


def test_parallel_workers_bit_identical():
    def run(tr):
        SimProcess._next_pid[0] = 1
        eng = ParallelEngine(complex_backend(num_cpus=2, translate=tr))
        with eng:
            for i in range(2):
                eng.spawn_worker(WorkerSpec(f"w{i}", ISA_KERNEL))
            st = eng.run()
        return st.end_cycle, eng.events_processed, st.total_cpu().user

    assert run(True) == run(False)


# ---------------------------------------------------------------------------
# differential fuzzing: seeded random programs, all three execution modes
# ---------------------------------------------------------------------------

_BASE = 4096
_INT = (1, 2, 3, 4, 5, 6)         # integer value registers
_FLT = (12, 13, 14)               # float value registers (FDIV taints them)


def _random_body(rng: random.Random, n: int) -> list:
    """Straight-line instruction mix. Integer and float registers are kept
    disjoint (a float reaching ``&``/addressing would TypeError in both
    implementations, but the fuzz wants *successful* runs); MUL/SHL results
    are masked so values stay bounded across loops."""
    out = []
    for _ in range(n):
        kind = rng.choice(("alu", "alu", "imm", "shift", "fpu",
                           "mem", "mem", "atomic", "sync", "sim"))
        d, a, b = (rng.choice(_INT) for _ in range(3))
        if kind == "alu":
            op = rng.choice(("add", "sub", "mul", "div", "mod",
                             "and", "or", "xor", "cmp"))
            out.append(f"{op} r{d}, r{a}, r{b}")
            if op == "mul":
                out.append(f"andi r{d}, r{d}, 0xffffffff")
        elif kind == "imm":
            op = rng.choice(("addi", "muli", "andi", "li", "mov"))
            if op == "li":
                out.append(f"li r{d}, {rng.randint(-64, 1024)}")
            elif op == "mov":
                out.append(f"mov r{d}, r{a}")
            else:
                out.append(f"{op} r{d}, r{a}, {rng.randint(0, 255)}")
                if op == "muli":
                    out.append(f"andi r{d}, r{d}, 0xffffffff")
        elif kind == "shift":
            out.append(f"andi r9, r{a}, 31")
            out.append(f"{rng.choice(('shl', 'shr'))} r{d}, r{b}, r9")
            out.append(f"andi r{d}, r{d}, 0xffffffff")
        elif kind == "fpu":
            op = rng.choice(("fadd", "fsub", "fmul", "fdiv", "fma"))
            fd, fa, fb = (rng.choice(_FLT) for _ in range(3))
            out.append(f"{op} r{fd}, r{fa}, r{fb}")
        elif kind == "mem":
            off = rng.randrange(0, 1021, 4)
            sz = rng.choice((1, 4, 8))
            if rng.random() < 0.5:
                if rng.random() < 0.5:
                    out.append(f"load r{d}, r10, {off}, {sz}")
                else:
                    out.append(f"store r{a}, r10, {off}, {sz}")
            else:
                out.append(f"andi r9, r{a}, 1020")
                if rng.random() < 0.5:
                    out.append(f"loadx r{d}, r10, r9, {sz}")
                else:
                    out.append(f"storex r{b}, r10, r9, {sz}")
        elif kind == "atomic":
            out.append(f"addi r11, r10, {rng.randrange(0, 1021, 4)}")
            out.append(f"lwarx r{d}, r11")
            if rng.random() < 0.7:      # success path; else lost reservation
                out.append(f"addi r{d}, r{d}, 1")
            else:
                out.append(f"lwarx r{a}, r10")
            out.append(f"stwcx r{d}, r11")
        elif kind == "sync":
            which = rng.random()
            if which < 0.4:
                out.append(f"lock r{a}")
                out.append(f"unlock r{a}")
            elif which < 0.7:
                out.append(f"barrier r{a}, r{b}")
            else:
                out.append("syscall getpid, 0")
        else:   # sim: a SIMOFF stretch with references inside
            out.append("simoff")
            out.append(f"load r{d}, r10, {rng.randrange(0, 1021, 4)}, 4")
            out.append(f"add r{d}, r{d}, r{a}")
            out.append("simon")
    return out


def random_program(seed: int) -> str:
    """A seeded random program: forward-branching block chain (guaranteed
    termination), helper calls, one bounded counted loop, then HALT."""
    rng = random.Random(seed)
    nb = rng.randint(4, 8)
    nh = rng.randint(1, 3)
    lines = [f"    li r10, {_BASE}"]
    for r in _INT:
        lines.append(f"    li r{r}, {rng.randint(0, 4096)}")
    for r in _FLT:
        lines.append(f"    li r{r}, {rng.randint(1, 64)}")
    for i in range(nb):
        lines.append(f"b{i}:")
        lines += [f"    {ln}" for ln in _random_body(rng, rng.randint(2, 6))]
        tgt = f"b{rng.randint(i + 1, nb - 1)}" if i + 1 < nb else "fin"
        style = rng.random()
        if style < 0.25:
            pass                                    # fall through
        elif style < 0.45:
            lines.append(f"    b {tgt}")
        elif style < 0.75:
            cond = rng.choice(("beq", "bne", "blt", "bge"))
            a, b = rng.choice(_INT), rng.choice(_INT)
            lines.append(f"    {cond} r{a}, r{b}, {tgt}")
        else:
            lines.append(f"    bl h{rng.randrange(nh)}")
    lines.append("fin:")
    lines.append(f"    li r8, {rng.randint(3, 20)}")
    lines.append("floop:")
    lines += [f"    {ln}" for ln in _random_body(rng, rng.randint(1, 3))]
    lines.append("    addi r8, r8, -1")
    lines.append("    bnz r8, floop")
    lines.append("    mov r3, r1")
    lines.append("    halt")
    for k in range(nh):
        lines.append(f"h{k}:")
        lines += [f"    {ln}" for ln in _random_body(rng, rng.randint(1, 2))]
        lines.append("    ret")
    return "\n".join(lines)


def _fresh_machine():
    dm = DataMemory()
    dm.map_segment(_BASE, 4096)
    return Machine(dm), dm


def _mem_dump(dm):
    return {b: dict(st.data) for b, _s, st in dm._segs}


def _final_state(m, dm, rc):
    return (rc, list(m.regs), m.instret, m.pending, m.halted,
            m.reservation, list(m.stack), _mem_dump(dm))


def run_raw_mode(prog, tr):
    m, dm = _fresh_machine()
    rc = Interpreter(prog, m).run_raw(translate=tr)
    return _final_state(m, dm, rc)


def run_instrumented(prog, tr, batched):
    """Drive the coroutine with canned replies, recording every suspension
    (event fields or full batch contents, plus the pending counter)."""
    m, dm = _fresh_machine()
    gen = Interpreter(prog, m).run(batched=batched, translate=tr)
    stream = []
    try:
        evt = gen.send(None)
        while True:
            if isinstance(evt, ev.EventBatch):
                stream.append(("batch", tuple(evt.kinds), tuple(evt.addrs),
                               tuple(evt.sizes), tuple(evt.pendings),
                               m.pending))
                reply = evt.n
            else:
                stream.append((int(evt.kind), evt.addr, evt.size, evt.arg,
                               m.pending))
                reply = (ev.SyscallResult(42, 0)
                         if evt.kind == ev.EvKind.SYSCALL else 7)
            evt = gen.send(reply)
    except StopIteration as si:
        return stream, _final_state(m, dm, si.value)


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_differential(seed):
    prog_i = assemble(random_program(seed), f"fuzz{seed}")
    prog_t = assemble(random_program(seed), f"fuzz{seed}")
    assert run_raw_mode(prog_i, False) == run_raw_mode(prog_t, True)
    for batched in (False, True):
        si, fi = run_instrumented(prog_i, False, batched)
        st, ft = run_instrumented(prog_t, True, batched)
        assert fi == ft, f"final state diverged (batched={batched})"
        assert si == st, f"event stream diverged (batched={batched})"


def test_fuzz_streams_nontrivial():
    """The fuzz corpus must actually exercise batching and sync yields."""
    kinds = set()
    batches = 0
    for seed in range(12):
        prog = assemble(random_program(seed), f"fz{seed}")
        stream, _ = run_instrumented(prog, True, True)
        for item in stream:
            if item[0] == "batch":
                batches += 1
                kinds.update(item[1])
            else:
                kinds.add(item[0])
    assert batches > 0
    assert {0, 1, int(ev.EvKind.SYSCALL)} <= kinds


# ---------------------------------------------------------------------------
# structural edge cases
# ---------------------------------------------------------------------------

def test_dead_code_after_block_ender_ignored():
    """Hand-built blocks may carry unreachable instructions after the
    terminator; the interpreter breaks at the ender and so must the
    translation (including the instret count)."""
    prog = Program("dead")
    prog.add_block(BasicBlock("main", [
        Instr(Op.LI, 1, 5),
        Instr(Op.HALT),
        Instr(Op.LI, 1, 99),       # dead
        Instr(Op.LI, 2, 77),       # dead
    ]))
    prog.resolve()
    m1 = Machine()
    Interpreter(prog, m1).run_raw(translate=False)
    m2 = Machine()
    Interpreter(prog, m2).run_raw(translate=True)
    assert m1.regs[1] == m2.regs[1] == 5
    assert m1.regs[2] == m2.regs[2] == 0
    assert m1.instret == m2.instret == 2


def test_untranslatable_program_falls_back():
    """Operands the codegen cannot bake (here: an object immediate) must
    fall back to the interpreter transparently."""
    class Weird:
        pass

    prog = Program("weird")
    prog.add_block(BasicBlock("main", [
        Instr(Op.LI, 1, Weird()),
        Instr(Op.HALT),
    ]))
    prog.resolve()
    from repro.isa.translate import CACHE_STATS
    fb0 = CACHE_STATS["fallbacks"]
    m = Machine()
    rc = Interpreter(prog, m).run_raw(translate=True)
    assert rc == 0 and isinstance(m.regs[1], Weird)
    assert CACHE_STATS["fallbacks"] == fb0 + 1


def test_translation_cached_on_program():
    prog = assemble("li r1, 1\nhalt", "cacheme")
    tp1 = translate(prog)
    tp2 = translate(prog)
    assert tp1 is tp2
    assert tp1.nblocks == len(prog.blocks)


def test_ret_empty_stack_same_error():
    from repro.core.errors import FrontendError
    prog = assemble("ret", "retprog")
    msgs = []
    for tr in (False, True):
        with pytest.raises(FrontendError) as ei:
            Interpreter(prog, Machine()).run_raw(translate=tr)
        msgs.append(str(ei.value))
    assert msgs[0] == msgs[1]


def test_max_instrs_guard_translated():
    from repro.core.errors import FrontendError
    prog = assemble("spin:\n    b spin", "spinprog")
    with pytest.raises(FrontendError):
        Interpreter(prog, Machine()).run_raw(max_instrs=1000, translate=True)


def test_config_toggles_cleanly():
    on = complex_backend(num_cpus=1)
    off = complex_backend(num_cpus=1, translate=False)
    assert on.translate and not off.translate
    assert Engine(on)._frontend_translate
    assert not Engine(off)._frontend_translate


def test_translate_summary_shape():
    SimProcess._next_pid[0] = 1
    eng, finish = build_isa(translate=True)
    finish()
    s = translate_summary(eng)
    assert s["enabled"]
    assert s["programs"] >= 1
    assert s["blocks"] >= 1
    assert 0.0 <= s["code_hit_rate"] <= 1.0
    assert s["fallbacks"] >= 0
