"""Virtual memory manager tests (translation, shm, placement, faults)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import MemoryError_
from repro.mem.pagetable import KERNEL_BASE, PhysMem, Vmm
from repro.mem.placement import PagePlacement


def make_vmm(nodes=2, placement="first_touch", cpus=4):
    return Vmm(nodes, 1 << 24, 4096, placement, cpus)


class TestPhysMem:
    def test_alloc_from_node(self):
        pm = PhysMem(2, 1 << 20, 4096)
        ppn = pm.alloc(1)
        assert pm.home_node(ppn) == 1

    def test_spill_when_node_full(self):
        pm = PhysMem(2, 8192, 4096)   # 2 frames per node
        pm.alloc(0), pm.alloc(0)
        assert pm.home_node(pm.alloc(0)) == 1   # spilled

    def test_out_of_memory(self):
        pm = PhysMem(1, 4096, 4096)
        pm.alloc(0)
        with pytest.raises(MemoryError_):
            pm.alloc(0)


class TestPlacement:
    def test_first_touch_uses_accessor(self):
        p = PagePlacement("first_touch", 4)
        assert p.place(0, 10, 3) == 3

    def test_round_robin_cycles(self):
        p = PagePlacement("round_robin", 3)
        assert [p.place(i, 10, 0) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_block_contiguous_runs(self):
        p = PagePlacement("block", 2)
        homes = [p.place(i, 8, 0) for i in range(8)]
        assert homes == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_single_node_always_zero(self):
        for pol in ("first_touch", "round_robin", "block"):
            p = PagePlacement(pol, 1)
            assert p.place(5, 10, 0) == 0


class TestTranslation:
    def test_anon_first_touch_minor_fault(self):
        v = make_vmm()
        v.new_space(1)
        v.map_anon(1, 0x10000, 1 << 20)
        paddr, major, minor = v.translate(1, 0x10123, False, 0)
        assert major is None and minor
        assert paddr % 4096 == 0x123
        # second access: no fault, same frame
        paddr2, _, minor2 = v.translate(1, 0x10456, False, 0)
        assert not minor2
        assert paddr2 // 4096 == paddr // 4096

    def test_first_touch_places_near_cpu(self):
        v = make_vmm(nodes=2, cpus=4)
        v.new_space(1)
        v.map_anon(1, 0x10000, 1 << 20)
        paddr, _, _ = v.translate(1, 0x10000, False, 3)   # cpu3 -> node 1
        assert v.home_of_paddr(paddr) == 1

    def test_segfault_outside_vma(self):
        v = make_vmm()
        v.new_space(1)
        with pytest.raises(MemoryError_):
            v.translate(1, 0xDEAD000, False, 0)

    def test_kernel_space_shared_between_pids(self):
        v = make_vmm()
        v.new_space(1)
        v.new_space(2)
        k = KERNEL_BASE + 0x1234
        p1, _, _ = v.translate(1, k, True, 0)
        p2, _, m2 = v.translate(2, k, False, 1)
        assert p1 == p2 and not m2

    def test_overlapping_vma_rejected(self):
        v = make_vmm()
        v.new_space(1)
        v.map_anon(1, 0x10000, 0x10000)
        with pytest.raises(MemoryError_):
            v.map_anon(1, 0x18000, 0x10000)

    def test_vma_cannot_cross_kernel_base(self):
        v = make_vmm()
        v.new_space(1)
        with pytest.raises(MemoryError_):
            v.map_anon(1, KERNEL_BASE - 4096, 8192)

    def test_unmap_drops_translations(self):
        v = make_vmm()
        v.new_space(1)
        v.map_anon(1, 0x10000, 0x10000)
        v.translate(1, 0x10000, False, 0)
        v.unmap(1, 0x10000)
        with pytest.raises(MemoryError_):
            v.translate(1, 0x10000, False, 0)


class TestSharedMemory:
    def test_shmget_idempotent_by_key(self):
        v = make_vmm()
        assert v.shmget(42, 8192) == v.shmget(42, 8192)

    def test_shmat_shares_frames(self):
        v = make_vmm()
        v.new_space(1)
        v.new_space(2)
        shmid = v.shmget(1, 8192)
        v.shmat(1, shmid, 0x40000000)
        v.shmat(2, shmid, 0x50000000)
        p1, _, _ = v.translate(1, 0x40000100, True, 0)
        p2, _, _ = v.translate(2, 0x50000100, False, 1)
        assert p1 == p2

    def test_round_robin_homes_assigned_at_creation(self):
        v = make_vmm(placement="round_robin")
        shmid = v.shmget(9, 4096 * 4)
        seg = v.segment(shmid)
        assert all(p is not None for p in seg.pages)
        homes = [v.phys.home_node(p) for p in seg.pages]
        assert homes == [0, 1, 0, 1]

    def test_first_touch_homes_assigned_lazily(self):
        v = make_vmm(placement="first_touch")
        v.new_space(1)
        shmid = v.shmget(9, 4096 * 4)
        seg = v.segment(shmid)
        assert all(p is None for p in seg.pages)
        v.shmat(1, shmid, 0x40000000)
        v.translate(1, 0x40000000 + 4096, False, 3)   # cpu3 -> node1
        assert seg.pages[1] is not None
        assert v.phys.home_node(seg.pages[1]) == 1

    def test_nattach_tracking(self):
        v = make_vmm()
        v.new_space(1)
        shmid = v.shmget(5, 4096)
        v.shmat(1, shmid, 0x40000000)
        assert v.segment(shmid).nattach == 1
        v.shmdt(1, 0x40000000)
        assert v.segment(shmid).nattach == 0

    def test_access_past_segment_end(self):
        v = make_vmm()
        v.new_space(1)
        shmid = v.shmget(5, 4096)
        v.shmat(1, shmid, 0x40000000)
        with pytest.raises(MemoryError_):
            v.translate(1, 0x40000000 + 8192, False, 0)


class TestFileMappings:
    def test_major_fault_then_resident(self):
        v = make_vmm()
        v.new_space(1)
        v.map_file(1, 0x20000, 8192, file_key=77, offset=0)
        paddr, major, _ = v.translate(1, 0x20000, False, 0)
        assert major is not None and major.page_index == 0
        v.install_file_page(77, 0, 0)
        paddr, major, minor = v.translate(1, 0x20000, False, 0)
        assert major is None and minor
        # now cached in the page table
        _, _, minor2 = v.translate(1, 0x20000, False, 0)
        assert not minor2

    def test_file_offset_shifts_page_index(self):
        v = make_vmm()
        v.new_space(1)
        v.map_file(1, 0x20000, 8192, file_key=7, offset=3 * 4096)
        _, major, _ = v.translate(1, 0x20000 + 4096, False, 0)
        assert major.page_index == 4

    def test_file_pages_shared_between_processes(self):
        v = make_vmm()
        v.new_space(1)
        v.new_space(2)
        v.map_file(1, 0x20000, 4096, file_key=7)
        v.map_file(2, 0x30000, 4096, file_key=7)
        v.install_file_page(7, 0, 0)
        p1, _, _ = v.translate(1, 0x20000, False, 0)
        p2, _, _ = v.translate(2, 0x30000, False, 0)
        assert p1 == p2


@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans(),
                          st.integers(0, 3)), min_size=1, max_size=80))
def test_translation_stable_under_repetition(accesses):
    """Translating the same vaddr twice always yields the same paddr."""
    v = Vmm(2, 1 << 22, 4096, "first_touch", 4)
    v.new_space(1)
    v.map_anon(1, 0, 256 * 4096)
    seen = {}
    for page, write, cpu in accesses:
        vaddr = page * 4096 + 8
        paddr, major, _ = v.translate(1, vaddr, write, cpu)
        assert major is None
        if vaddr in seen:
            assert seen[vaddr] == paddr
        seen[vaddr] = paddr
