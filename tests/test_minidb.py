"""minidb tests: layout, catalog, buffer pool, WAL, OLTP and DSS."""

import pytest

from repro import Engine, ProcState, complex_backend
from repro.apps.minidb import (MiniDb, TpccDriver, TpcdDriver, load_table,
                               q1_scan_raw, q3_join_raw, tpcc_catalog,
                               tpcd_catalog)
from repro.apps.minidb.catalog import CUSTOMER, LINEITEM, load_catalog
from repro.apps.minidb.layout import (PAGE_SIZE, Page, Record, Schema,
                                      rid_to_page, table_pages)


class TestLayout:
    def test_record_roundtrip(self):
        s = Schema("t", (("a", 0), ("b", 4), ("c", 0)))
        vals = {"a": -5, "b": b"xy", "c": 1 << 40}
        data = Record.encode(s, vals)
        assert len(data) == s.record_size == 20
        back = Record.decode(s, data)
        assert back["a"] == -5 and back["c"] == 1 << 40
        assert back["b"] == b"xy\0\0"

    def test_field_truncation(self):
        s = Schema("t", (("b", 2),))
        assert Record.decode(s, Record.encode(s, {"b": b"abcdef"}))["b"] == b"ab"

    def test_page_record_slots(self):
        p = Page(CUSTOMER)
        p.put_record(0, {"c_id": 7, "c_balance": 100})
        p.put_record(1, {"c_id": 8})
        assert p.record(0)["c_id"] == 7
        assert p.record(1)["c_id"] == 8

    def test_page_bounds(self):
        p = Page(CUSTOMER)
        with pytest.raises(IndexError):
            p.record(CUSTOMER.records_per_page)

    def test_rid_mapping(self):
        rpp = CUSTOMER.records_per_page
        assert rid_to_page(CUSTOMER, 0) == (0, 0)
        assert rid_to_page(CUSTOMER, rpp) == (1, 0)
        assert rid_to_page(CUSTOMER, rpp + 3) == (1, 3)

    def test_table_pages(self):
        assert table_pages(CUSTOMER, 0) == 0
        assert table_pages(CUSTOMER, 1) == 1


class TestCatalog:
    def test_tpcc_tables_present(self):
        c = tpcc_catalog(1, 0.01)
        for t in ("warehouse", "district", "customer", "item", "stock",
                  "orders", "order_line"):
            assert t in c.tables

    def test_tpcd_scaling(self):
        small = tpcd_catalog(scale=0.0001)
        big = tpcd_catalog(scale=0.001)
        assert (big.tables["lineitem"].nrecords
                > small.tables["lineitem"].nrecords)

    def test_load_table_deterministic(self):
        from repro.osim.filesystem import FileSystem
        c = tpcd_catalog(scale=0.0001)
        fs1, fs2 = FileSystem(), FileSystem()
        load_table(fs1, c.tables["lineitem"], seed=3)
        load_table(fs2, c.tables["lineitem"], seed=3)
        a = fs1.lookup(c.tables["lineitem"].path).data
        b = fs2.lookup(c.tables["lineitem"].path).data
        assert bytes(a) == bytes(b)

    def test_load_catalog_populates_fs(self):
        from repro.osim.filesystem import FileSystem
        fs = FileSystem()
        c = tpcd_catalog(scale=0.0001)
        load_catalog(fs, c)
        for info in c.tables.values():
            assert fs.lookup(info.path).size == info.nbytes


@pytest.fixture
def tpcd_db():
    eng = Engine(complex_backend(num_cpus=2))
    cat = tpcd_catalog(scale=0.0001)
    db = MiniDb(eng, cat, pool_frames=16)
    db.setup()
    return eng, cat, db


class TestDss:
    def test_q1_read_matches_raw(self, tpcd_db):
        eng, cat, db = tpcd_db
        drv = TpcdDriver(db, nagents=2, io="read", rows_work=50)
        drv.spawn_q1(eng)
        eng.run()
        assert drv.result == q1_scan_raw(eng.os_server.fs, cat)

    def test_q1_mmap_matches_raw(self, tpcd_db):
        eng, cat, db = tpcd_db
        drv = TpcdDriver(db, nagents=2, io="mmap", rows_work=50)
        drv.spawn_q1(eng)
        eng.run()
        assert drv.result == q1_scan_raw(eng.os_server.fs, cat)
        assert eng.memsys.vmm.major_faults > 0         # mmap path faulted
        assert eng.stats.syscall_counts.get("msync", 0) == 2

    def test_q3_join_matches_raw(self, tpcd_db):
        eng, cat, db = tpcd_db
        drv = TpcdDriver(db, nagents=2)
        drv.spawn_q3(eng, segment=1)
        eng.run()
        raw = q3_join_raw(eng.os_server.fs, cat, segment=1)
        assert drv.join_result == raw
        assert raw["matched"] > 0

    def test_bad_io_mode(self, tpcd_db):
        _eng, _cat, db = tpcd_db
        with pytest.raises(ValueError):
            TpcdDriver(db, io="directio")


class TestOltp:
    def test_transactions_commit_and_persist(self):
        eng = Engine(complex_backend(num_cpus=2))
        db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16)
        db.setup()
        drv = TpccDriver(db, nagents=2, tx_per_agent=4, think_cycles=0,
                         user_work=10_000)
        drv.spawn_agents(eng)
        eng.run()
        assert drv.committed == 8
        assert drv.neworders + drv.payments == 8
        assert db.wal.commits == 8
        assert all(p.state == ProcState.DONE for p in drv.agents)

    def test_orders_inserted_grow_heap(self):
        eng = Engine(complex_backend(num_cpus=2))
        db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16)
        db.setup()
        base = db.next_rid["orders"]
        drv = TpccDriver(db, nagents=1, tx_per_agent=6, think_cycles=0,
                         neworder_fraction=1.0, user_work=0)
        drv.spawn_agents(eng)
        eng.run()
        assert db.next_rid["orders"] == base + 6

    def test_pool_eviction_under_pressure(self):
        eng = Engine(complex_backend(num_cpus=2))
        db = MiniDb(eng, tpcc_catalog(1, 0.02), pool_frames=4)
        db.setup()
        drv = TpccDriver(db, nagents=2, tx_per_agent=3, think_cycles=0,
                         user_work=0)
        drv.spawn_agents(eng)
        eng.run()
        assert db.pool.writebacks > 0
        assert db.pool.misses > db.pool.nframes

    def test_hot_row_contention(self):
        """District rows are TPC-C's hot spot: row locks must serialise."""
        eng = Engine(complex_backend(num_cpus=4))
        db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=16)
        db.setup()
        drv = TpccDriver(db, nagents=4, tx_per_agent=4, think_cycles=0,
                         neworder_fraction=1.0, user_work=0)
        drv.spawn_agents(eng)
        stats = eng.run()
        assert drv.committed == 16

    def test_run_raw_counts(self):
        eng = Engine(complex_backend(num_cpus=1))
        db = MiniDb(eng, tpcc_catalog(1, 0.005), pool_frames=8)
        db.setup()
        drv = TpccDriver(db, nagents=2, tx_per_agent=3)
        assert drv.run_raw() == 6

    def test_bad_fraction_rejected(self):
        eng = Engine(complex_backend(num_cpus=1))
        db = MiniDb(eng, tpcc_catalog(1, 0.005))
        with pytest.raises(ValueError):
            TpccDriver(db, neworder_fraction=1.5)


class TestBufferPoolShared:
    def test_frames_in_shared_segment(self):
        """Both agents' pool frames resolve to the same physical pages."""
        eng = Engine(complex_backend(num_cpus=2))
        cat = tpcd_catalog(scale=0.0001)
        db = MiniDb(eng, cat, pool_frames=8)
        db.setup()
        seen = {}

        def agent(name):
            def body(proc):
                yield from db.agent_init(proc)
                frame, _pg = yield from db.pool.get_page(
                    proc, db, "lineitem", 0, LINEITEM)
                seen[name] = (proc.process.pid, db.pool.frame_addr(frame))
                yield from proc.barrier(3, 2)
                yield from proc.exit(0)
            return body

        eng.spawn("a", agent("a"))
        eng.spawn("b", agent("b"))
        eng.run()
        (pid_a, addr_a), (pid_b, addr_b) = seen["a"], seen["b"]
        vmm = eng.memsys.vmm
        pa = vmm.translate(pid_a, addr_a, False, 0)[0]
        pb = vmm.translate(pid_b, addr_b, False, 1)[0]
        assert pa == pb

    def test_pool_hit_rate_reporting(self):
        eng = Engine(complex_backend(num_cpus=1))
        cat = tpcd_catalog(scale=0.0001)
        db = MiniDb(eng, cat, pool_frames=8)
        db.setup()

        def body(proc):
            yield from db.agent_init(proc)
            for _ in range(3):
                yield from db.pool.get_page(proc, db, "lineitem", 0, LINEITEM)
            yield from proc.exit(0)

        eng.spawn("a", body)
        eng.run()
        assert db.pool.hits == 2 and db.pool.misses == 1
