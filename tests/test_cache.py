"""Cache model tests, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.mem.cache import Cache, LineState


def small_cache(assoc=2, sets=4, line=32):
    return Cache("t", CacheConfig(size=assoc * sets * line,
                                  line_size=line, assoc=assoc))


def test_miss_then_hit():
    c = small_cache()
    assert c.lookup(5) is None
    c.insert(5, LineState.SHARED)
    assert c.lookup(5) == LineState.SHARED
    assert c.hits == 1 and c.misses == 1


def test_line_of_strips_offset():
    c = small_cache(line=32)
    assert c.line_of(0) == c.line_of(31)
    assert c.line_of(32) == c.line_of(0) + 1


def test_eviction_lru_order():
    c = small_cache(assoc=2, sets=1)
    c.insert(0, LineState.SHARED)
    c.insert(1, LineState.SHARED)
    c.lookup(0)                       # 0 becomes MRU
    victim = c.insert(2, LineState.SHARED)
    assert victim == (1, LineState.SHARED)
    assert c.contains(0) and c.contains(2) and not c.contains(1)


def test_dirty_eviction_counts_writeback():
    c = small_cache(assoc=1, sets=1)
    c.insert(0, LineState.MODIFIED)
    victim = c.insert(1, LineState.SHARED)
    assert victim == (0, LineState.MODIFIED)
    assert c.writebacks == 1


def test_insert_refill_updates_state_without_eviction():
    c = small_cache()
    c.insert(3, LineState.SHARED)
    assert c.insert(3, LineState.MODIFIED) is None
    assert c.probe(3) == LineState.MODIFIED
    assert c.occupancy() == 1


def test_invalidate():
    c = small_cache()
    c.insert(7, LineState.EXCLUSIVE)
    assert c.invalidate(7) == LineState.EXCLUSIVE
    assert c.invalidate(7) is None
    assert c.invalidations == 1


def test_probe_does_not_touch_stats_or_lru():
    c = small_cache(assoc=2, sets=1)
    c.insert(0, LineState.SHARED)
    c.insert(1, LineState.SHARED)
    c.probe(0)   # no MRU promotion
    victim = c.insert(2, LineState.SHARED)
    assert victim[0] == 0


def test_set_state_on_absent_line_is_noop():
    c = small_cache()
    c.set_state(9, LineState.MODIFIED)
    assert c.probe(9) is None


def test_flush_dirty():
    c = small_cache()
    c.insert(1, LineState.MODIFIED)
    c.insert(2, LineState.SHARED)
    dirty = c.flush_dirty()
    assert dirty == [1]
    assert c.probe(1) == LineState.SHARED


def test_miss_rate():
    c = small_cache()
    c.lookup(1)
    c.insert(1, LineState.SHARED)
    c.lookup(1)
    assert c.miss_rate() == pytest.approx(0.5)


def test_lines_map_to_distinct_sets():
    c = small_cache(assoc=1, sets=4)
    for line in range(4):
        c.insert(line, LineState.SHARED)
    assert c.occupancy() == 4   # no conflict between distinct sets


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=300))
def test_occupancy_never_exceeds_capacity(lines):
    c = small_cache(assoc=2, sets=4)
    for ln in lines:
        if c.lookup(ln) is None:
            c.insert(ln, LineState.SHARED)
        assert c.occupancy() <= 8
        for s in c._sets:
            assert len(s) <= 2


def test_set_mask_matches_geometry():
    assert small_cache(sets=4).set_mask == 3
    assert small_cache(sets=8).set_mask == 7
    # 3 sets (size = 3 * assoc * line) is legal and takes the modulo path
    assert small_cache(sets=3).set_mask == -1
    assert small_cache(sets=1).set_mask == 0


def test_set_index_mask_equals_modulo():
    """The pow2 mask fast path must index exactly like ``line % n_sets``."""
    c = small_cache(sets=8)
    for line in range(0, 200, 7):
        assert c._set_of(line) == line % c.n_sets


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=300))
def test_mask_and_modulo_paths_agree(lines):
    """On a pow2 geometry the mask fast path and the generic modulo fallback
    must be indistinguishable: same stats, same resident lines, same LRU."""
    fast = small_cache(assoc=2, sets=4)
    slow = small_cache(assoc=2, sets=4)
    assert fast.set_mask == 3
    slow.set_mask = -1          # force the generic `line % n_sets` path
    for ln in lines:
        for c in (fast, slow):
            if c.lookup(ln) is None:
                c.insert(ln, LineState.SHARED)
    assert (fast.hits, fast.misses, fast.evictions, fast.writebacks) == \
           (slow.hits, slow.misses, slow.evictions, slow.writebacks)
    assert fast._states == slow._states
    assert fast._sets == slow._sets


def test_non_pow2_set_count_maps_by_modulo():
    c = small_cache(assoc=1, sets=3)
    for line in (0, 3, 6):       # all map to set 0 under modulo-3
        c.insert(line, LineState.SHARED)
    assert c.occupancy() == 1    # each fill evicted the previous one
    assert c.evictions == 2
    assert c.contains(6)


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=200))
def test_most_recent_assoc_lines_of_a_set_always_hit(lines):
    """LRU invariant: the last `assoc` distinct lines mapping to one set are
    always resident."""
    assoc, sets = 2, 4
    c = small_cache(assoc=assoc, sets=sets)
    recent = {s: [] for s in range(sets)}
    for ln in lines:
        if c.lookup(ln) is None:
            c.insert(ln, LineState.SHARED)
        s = ln % sets
        if ln in recent[s]:
            recent[s].remove(ln)
        recent[s].insert(0, ln)
        for r in recent[s][:assoc]:
            assert c.contains(r)
