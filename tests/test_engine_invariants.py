"""Whole-engine invariants checked with hypothesis-generated workloads.

These are the properties that make the simulator trustworthy:
* per-process virtual time never goes backwards;
* events are processed in nondecreasing global time;
* CPU time conservation: busy + idle ≈ sum of per-CPU horizons;
* every spawned process terminates (no lost wakeups) for workloads built
  from the safe primitive mix.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Engine, ProcState, complex_backend

# one workload step: (op, magnitude)
step = st.one_of(
    st.tuples(st.just("compute"), st.integers(1, 50_000)),
    st.tuples(st.just("load"), st.integers(0, 255)),
    st.tuples(st.just("store"), st.integers(0, 255)),
    st.tuples(st.just("advance"), st.just(0)),
    st.tuples(st.just("lock"), st.integers(0, 2)),
    st.tuples(st.just("sleep"), st.integers(1_000, 200_000)),
    st.tuples(st.just("io"), st.integers(1, 4)),
)

workloads = st.lists(st.lists(step, min_size=1, max_size=12),
                     min_size=1, max_size=4)


def build_app(steps, engine, observed):
    def app(proc):
        held = []
        last_t = 0
        for op, arg in steps:
            if op == "compute":
                proc.compute(arg)
            elif op == "load":
                yield from proc.load(0x10_000 + 64 * arg)
            elif op == "store":
                yield from proc.store(0x10_000 + 64 * arg)
            elif op == "advance":
                yield from proc.advance()
            elif op == "lock":
                if arg in held:
                    yield from proc.unlock(arg)
                    held.remove(arg)
                elif held and arg < max(held):
                    # enforce ascending acquisition order so the generated
                    # workloads cannot ABBA-deadlock (the engine detects
                    # real deadlocks — covered in test_engine_basic)
                    proc.compute(10)
                else:
                    yield from proc.lock(arg)
                    held.append(arg)
            elif op == "sleep":
                yield from proc.call("nanosleep", arg)
            elif op == "io":
                r = yield from proc.call("open", f"/f{arg}", 0x100)
                yield from proc.call("kwritev", r.value, 0x200000,
                                     arg * 1024, b"z" * (arg * 1024))
                yield from proc.call("close", r.value)
            # invariant: vtime never decreases
            t = proc.process.vtime
            assert t >= last_t, "vtime went backwards"
            last_t = t
            observed.append(t)
        for lid in held:
            yield from proc.unlock(lid)
        yield from proc.exit(0)
    return app


@settings(max_examples=20, deadline=None)
@given(workloads)
def test_random_workloads_terminate_and_stay_monotone(wls):
    eng = Engine(complex_backend(num_cpus=2))
    observed = []
    procs = [eng.spawn(f"p{i}", build_app(steps, eng, observed))
             for i, steps in enumerate(wls)]
    stats = eng.run()
    assert all(p.state == ProcState.DONE for p in procs)
    assert stats.end_cycle >= 0


@settings(max_examples=15, deadline=None)
@given(workloads)
def test_global_event_order_nondecreasing(wls):
    eng = Engine(complex_backend(num_cpus=2))
    times = []
    orig = eng._handle_event

    def spy(proc, event):
        times.append(event.time)
        return orig(proc, event)

    eng._handle_event = spy
    for i, steps in enumerate(wls):
        eng.spawn(f"p{i}", build_app(steps, eng, []))
    eng.run()
    assert times == sorted(times), "events processed out of global order"


@settings(max_examples=15, deadline=None)
@given(workloads)
def test_cpu_time_conservation(wls):
    """busy + idle accounts for each CPU's full horizon (within the
    trailing gap to end_cycle for CPUs that finished early)."""
    eng = Engine(complex_backend(num_cpus=2))
    for i, steps in enumerate(wls):
        eng.spawn(f"p{i}", build_app(steps, eng, []))
    stats = eng.run()
    for c in range(2):
        cpu = stats.cpu[c]
        horizon = eng.comm.cpus[c].time
        accounted = cpu.busy + cpu.idle
        assert accounted <= stats.end_cycle + 1
        # busy work can never exceed the cpu's own horizon
        assert cpu.busy <= horizon + 1


@settings(max_examples=10, deadline=None)
@given(workloads)
def test_determinism_under_hypothesis(wls):
    def once():
        eng = Engine(complex_backend(num_cpus=2))
        for i, steps in enumerate(wls):
            eng.spawn(f"p{i}", build_app(steps, eng, []))
        st_ = eng.run()
        return st_.end_cycle, eng.events_processed
    assert once() == once()
