"""Socket / IPC / misc syscall integration tests."""

import pytest

from repro import Engine, ProcState, complex_backend
from repro.core.events import EBADF, ECONNREFUSED, EINVAL

BUF = 0x0100_0000


class TestSockets:
    def test_client_server_echo(self, engine2):
        result = {}

        def server(proc):
            r = yield from proc.call("socket")
            sfd = r.value
            assert (yield from proc.call("bind", sfd, 7000)).ok
            assert (yield from proc.call("listen", sfd)).ok
            r = yield from proc.call("naccept", sfd)
            cfd = r.value
            r = yield from proc.call("recv", cfd, BUF, 1024)
            yield from proc.call("send", cfd, BUF, len(r.data), r.data)
            yield from proc.call("close", cfd)
            yield from proc.call("close", sfd)
            yield from proc.exit(0)

        def client(proc):
            yield from proc.call("nanosleep", 50_000)
            r = yield from proc.call("socket")
            fd = r.value
            assert (yield from proc.call("connect", fd, 7000)).ok
            yield from proc.call("send", fd, BUF, 4, b"ping")
            r = yield from proc.call("recv", fd, BUF, 1024)
            result["echo"] = r.data
            yield from proc.call("close", fd)
            yield from proc.exit(0)

        engine2.spawn("srv", server)
        engine2.spawn("cli", client)
        engine2.run()
        assert result["echo"] == b"ping"

    def test_connect_refused(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("socket")
            out["r"] = yield from proc.call("connect", r.value, 9999)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["r"].errno == ECONNREFUSED

    def test_send_on_non_socket(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("open", "/f", 0x100)
            out["r"] = yield from proc.call("send", r.value, BUF, 4)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["r"].errno == EBADF

    def test_select_blocks_until_readable(self, engine2):
        out = {}

        def server(proc):
            r = yield from proc.call("socket")
            sfd = r.value
            yield from proc.call("bind", sfd, 7100)
            yield from proc.call("listen", sfd)
            r = yield from proc.call("select", [sfd])
            out["ready"] = r.data
            r = yield from proc.call("naccept", sfd)
            yield from proc.call("close", r.value)
            yield from proc.call("close", sfd)
            yield from proc.exit(0)

        def client(proc):
            yield from proc.call("nanosleep", 200_000)
            r = yield from proc.call("socket")
            yield from proc.call("connect", r.value, 7100)
            yield from proc.call("close", r.value)
            yield from proc.exit(0)

        engine2.spawn("srv", server)
        engine2.spawn("cli", client)
        engine2.run()
        assert out["ready"]           # the listen fd became readable

    def test_select_timeout(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("socket")
            sfd = r.value
            yield from proc.call("bind", sfd, 7200)
            yield from proc.call("listen", sfd)
            r = yield from proc.call("select", [sfd], 100_000)
            out["n"] = r.value
            yield from proc.call("close", sfd)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["n"] == 0

    def test_select_poll_mode(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("socket")
            sfd = r.value
            yield from proc.call("bind", sfd, 7300)
            yield from proc.call("listen", sfd)
            r = yield from proc.call("select", [sfd], 0)
            out["n"] = r.value
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["n"] == 0

    def test_kreadv_kwritev_work_on_sockets(self, engine2):
        """Web servers call kreadv/kwritev on connections (Table 1)."""
        out = {}

        def server(proc):
            r = yield from proc.call("socket")
            sfd = r.value
            yield from proc.call("bind", sfd, 7400)
            yield from proc.call("listen", sfd)
            r = yield from proc.call("naccept", sfd)
            cfd = r.value
            r = yield from proc.call("kreadv", cfd, BUF, 100)
            out["got"] = r.data
            yield from proc.call("kwritev", cfd, BUF, 2, b"ok")
            yield from proc.call("close", cfd)
            yield from proc.call("close", sfd)
            yield from proc.exit(0)

        def client(proc):
            yield from proc.call("nanosleep", 50_000)
            r = yield from proc.call("socket")
            fd = r.value
            yield from proc.call("connect", fd, 7400)
            yield from proc.call("kwritev", fd, BUF, 5, b"hello")
            r = yield from proc.call("kreadv", fd, BUF, 10)
            out["reply"] = r.data
            yield from proc.exit(0)

        engine2.spawn("s", server)
        engine2.spawn("c", client)
        engine2.run()
        assert out["got"] == b"hello" and out["reply"] == b"ok"


class TestSharedMemory:
    def test_shmget_shmat_roundtrip(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("shmget", 0x77, 65536)
            out["shmid"] = r.value
            r = yield from proc.call("shmat", r.value)
            out["base"] = r.value
            yield from proc.store(r.value + 128)
            out["dt"] = yield from proc.call("shmdt", r.value)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["shmid"] > 0 and out["base"] > 0 and out["dt"].ok

    def test_two_processes_share_frames(self, engine2):
        bases = {}

        def maker(name):
            def app(proc):
                r = yield from proc.call("shmget", 0x99, 4096)
                r = yield from proc.call("shmat", r.value)
                bases[name] = r.value
                yield from proc.store(r.value)
                yield from proc.barrier(1, 2)
                yield from proc.exit(0)
            return app

        engine2.spawn("a", maker("a"))
        engine2.spawn("b", maker("b"))
        engine2.run()
        vmm = engine2.memsys.vmm
        pids = sorted(engine2.comm.processes)
        pa = vmm.translate(pids[0], bases["a"], False, 0)[0]
        pb = vmm.translate(pids[1], bases["b"], False, 1)[0]
        assert pa == pb

    def test_shmat_bad_id(self, engine2):
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("shmat", 424242)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["r"].errno == EINVAL

    def test_shmget_bad_size(self, engine2):
        out = {}

        def app(proc):
            out["r"] = yield from proc.call("shmget", 1, -5)
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["r"].errno == EINVAL


class TestPipesAndMisc:
    def test_pipe_roundtrip(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("pipe")
            rfd, wfd = r.data
            yield from proc.call("kwritev", wfd, BUF, 3, b"abc")
            r = yield from proc.call("kreadv", rfd, BUF, 10)
            out["d"] = r.data
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["d"] == b"abc"

    def test_getpid_matches(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("getpid")
            out["pid"] = r.value
            out["real"] = proc.process.pid
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["pid"] == out["real"]

    def test_gettimeofday_monotone(self, engine2):
        out = {}

        def app(proc):
            r1 = yield from proc.call("times")
            yield from proc.call("nanosleep", 1_000_000)
            r2 = yield from proc.call("times")
            out["d"] = r2.value - r1.value
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["d"] >= 1_000_000

    def test_nanosleep_blocks_frees_cpu(self):
        eng = Engine(complex_backend(num_cpus=1))
        order = []

        def sleeper(proc):
            yield from proc.call("nanosleep", 5_000_000)
            order.append("sleeper")
            yield from proc.exit(0)

        def worker(proc):
            proc.compute(1000)
            yield from proc.advance()
            order.append("worker")
            yield from proc.exit(0)

        eng.spawn("s", sleeper)
        eng.spawn("w", worker)       # queued behind the sleeper on 1 CPU
        eng.run()
        assert order == ["worker", "sleeper"]

    def test_getcpu(self, engine2):
        out = {}

        def app(proc):
            r = yield from proc.call("getcpu")
            out["cpu"] = r.value
            yield from proc.exit(0)

        engine2.spawn("a", app)
        engine2.run()
        assert out["cpu"] in (0, 1)

    def test_waitpid_returns_status(self, engine2):
        out = {}

        def child(proc):
            yield from proc.exit(9)

        def parent(proc):
            r = yield from proc.call("spawn", "kid", child)
            r = yield from proc.call("waitpid", r.value)
            out["status"] = r.value
            yield from proc.exit(0)

        engine2.spawn("p", parent)
        engine2.run()
        assert out["status"] == 9

    def test_waitpid_already_dead(self, engine2):
        out = {}

        def child(proc):
            yield from proc.exit(3)

        def parent(proc):
            r = yield from proc.call("spawn", "kid", child)
            pid = r.value
            yield from proc.call("nanosleep", 10_000_000)
            r = yield from proc.call("waitpid", pid)
            out["status"] = r.value
            yield from proc.exit(0)

        engine2.spawn("p", parent)
        engine2.run()
        assert out["status"] == 3
