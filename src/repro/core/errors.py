"""Exception hierarchy for the COMPASS reproduction.

All simulator-raised errors derive from :class:`CompassError` so callers can
catch simulator failures without masking programming errors.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class CompassError(Exception):
    """Base class for all simulator errors."""


class ConfigError(CompassError):
    """Raised for invalid or inconsistent configuration values."""


class SchedulerError(CompassError):
    """Raised by the global event scheduler on protocol violations
    (e.g. scheduling a task in the past)."""


class CommunicatorError(CompassError):
    """Raised by the communicator on event-port protocol violations."""


class FrontendError(CompassError):
    """Raised when a frontend coroutine misbehaves (bad yield, double exit)."""


class MemoryError_(CompassError):
    """Raised by the memory system (bad address, unmapped page without a
    fault handler, misaligned descriptor)."""


class PageFault(CompassError):
    """Internal signal: a virtual address has no valid translation.

    Caught by the engine, which invokes the VM trap path (category-2
    handling); it is an error only if it escapes to user code.
    """

    def __init__(self, pid: int, vaddr: int, write: bool) -> None:
        super().__init__(f"page fault pid={pid} vaddr={vaddr:#x} write={write}")
        self.pid = pid
        self.vaddr = vaddr
        self.write = write


class ProtectionFault(MemoryError_):
    """A reference violated segment permissions."""


class OSError_(CompassError):
    """Base for simulated-OS failures (as opposed to errno returns, which are
    normal results)."""


class DeadlockError(CompassError):
    """Raised when the communicator detects that no frontend can make
    progress (all blocked and no pending backend work), or when the
    engine watchdog sees global time frozen across too many rounds.

    ``report`` carries the structured diagnostic built by the engine:
    per-process states with blocked-on wait tokens, CPU states, lock and
    barrier owners, and the most recent events.
    """

    def __init__(self, message: str,
                 report: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.report = report


class CheckpointError(CompassError):
    """Raised for unusable checkpoints: version mismatch, corrupt file, or
    a config/workload fingerprint that does not match the resuming engine."""


class _CorruptFileMixin:
    """Structured file-corruption identity: path + byte offset + reason.

    The durability layer quarantines corrupt files and embeds
    :meth:`to_record` output in JSON forensic records, so the payload
    must stay JSON-plain.
    """

    def __init__(self, path: str, offset: int, reason: str) -> None:
        super().__init__(f"{path}: corrupt at byte {offset}: {reason}")
        self.path = path
        self.offset = offset
        self.reason = reason

    def to_record(self) -> Dict[str, Any]:
        return {"type": type(self).__name__, "path": str(self.path),
                "offset": int(self.offset), "reason": self.reason}


class CheckpointCorruptError(_CorruptFileMixin, CheckpointError):
    """A checkpoint file failed verification (bad magic, torn frame,
    CRC mismatch, unpicklable payload). Carries the byte offset of the
    first bad frame; never surfaces as a raw ``EOFError`` or
    ``UnpicklingError``."""


class SpoolCorruptError(_CorruptFileMixin, CompassError):
    """A job-spool segment is corrupt *in the interior* — valid records
    follow the damaged one, so truncating at the tear would silently
    drop durable history. Torn tails are not errors: the recovery scan
    truncates and quarantines them."""


class ReplayDivergence(CheckpointError):
    """Raised when the restore fast-forward diverges from the recorded run.

    During restore the frontends re-execute against the recorded reply log;
    any step that needs a reply the log does not hold (or rebuilds backend
    state that fails verification against the snapshot) means the workload,
    config or code changed since the checkpoint was written.
    """


class SimulatedCrash(CompassError):
    """Deterministic stand-in for a host crash (chaos/CI kill tests).

    Raised by the checkpoint manager when ``crash_after_saves`` is armed:
    the run dies mid-flight exactly as a SIGKILL would leave it — autosave
    on disk, engine state abandoned.
    """


class InstrumentationError(CompassError):
    """Raised by the instrumentor for malformed programs."""


class DeviceError(CompassError):
    """Raised by physical device models for invalid requests."""


class HostError(CompassError):
    """Raised by the host-parallel runtime (worker death, protocol drift).

    When a supervised worker exhausts its restart budget, ``report``
    carries the forensic record (host pid, exit code, message counters,
    last messages seen) assembled by the supervisor.
    """

    def __init__(self, message: str,
                 report: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.report = report
