"""Event vocabulary exchanged between frontends and the backend.

In COMPASS, instrumented frontend code fills out an *event data structure*
for every memory reference (reference type, effective address, size, cycle of
issue) and passes it to the backend through the event port. Synchronisation
instructions and OS calls also produce events. This module defines those
records.

Events are deliberately small ``__slots__`` objects: the simulator creates
one per simulated memory reference, which makes this the hottest allocation
site in the system (see the HPC guide notes in DESIGN.md).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Optional, Tuple


class EvKind(IntEnum):
    """Discriminator for :class:`Event` payloads."""

    #: Data load. ``addr``/``size`` give the virtual reference.
    READ = 0
    #: Data store.
    WRITE = 1
    #: Atomic read-modify-write (lwarx/stwcx-style); used by lock models.
    RMW = 2
    #: Pure time synchronisation: no memory traffic, just publishes the
    #: frontend's execution-time so interleaving stays fine-grained across
    #: long computation stretches, and gives the engine an interrupt-poll
    #: point (the paper polls at memory/branch instructions).
    ADVANCE = 3
    #: Acquire a simulated lock (arg = lock id). May block the entity.
    LOCK = 4
    #: Release a simulated lock (arg = lock id).
    UNLOCK = 5
    #: Barrier arrival (arg = (barrier id, participant count)).
    BARRIER = 6
    #: OS call: ``arg`` is ``(name, args_tuple)``. Routed to the OS server
    #: (category 1) or handled directly in the backend (category 2).
    SYSCALL = 7
    #: Frontend announces termination (sent before the coroutine returns,
    #: mirroring the EXIT message that unpairs the OS thread).
    EXIT = 8


#: Kinds that reference simulated memory.
MEMORY_KINDS = frozenset({EvKind.READ, EvKind.WRITE, EvKind.RMW})

#: Kinds that the communicator forwards straight to the memory system.
_KIND_NAMES = {k.value: k.name for k in EvKind}


class Event:
    """One frontend→backend message.

    Attributes
    ----------
    kind:
        An :class:`EvKind` value (stored as a plain int for speed).
    addr, size:
        Virtual address and byte size for memory kinds; 0 otherwise.
    arg:
        Kind-specific payload (lock id, barrier tuple, syscall tuple).
    time:
        The issuing entity's execution-time (cycles) when the event was
        generated; filled in by the engine from the entity clock, exactly as
        the instrumentation fills the cycle field in the paper.
    pid:
        Simulated process id of the issuer (filled in by the engine).
    kernel:
        True when the reference was generated in kernel mode (by OS-server
        code); such references translate through the kernel address space.
    """

    __slots__ = ("kind", "addr", "size", "arg", "time", "pid", "kernel", "mode")

    def __init__(
        self,
        kind: int,
        addr: int = 0,
        size: int = 0,
        arg: Any = None,
    ) -> None:
        self.kind = kind
        self.addr = addr
        self.size = size
        self.arg = arg
        self.time = 0
        self.pid = -1
        self.kernel = False
        #: charge bucket of the generating code: "user"|"kernel"|"interrupt"
        self.mode = "user"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _KIND_NAMES.get(self.kind, str(self.kind))
        return (
            f"Event({name}, addr={self.addr:#x}, size={self.size}, "
            f"arg={self.arg!r}, t={self.time}, pid={self.pid}, "
            f"{'kernel' if self.kernel else 'user'})"
        )


# ---------------------------------------------------------------------------
# Constructors (cheap factory helpers used by Proc / the interpreter)
# ---------------------------------------------------------------------------

def read(addr: int, size: int = 4) -> Event:
    """A data-load event."""
    return Event(EvKind.READ, addr, size)


def write(addr: int, size: int = 4) -> Event:
    """A data-store event."""
    return Event(EvKind.WRITE, addr, size)


def rmw(addr: int, size: int = 4) -> Event:
    """An atomic read-modify-write event."""
    return Event(EvKind.RMW, addr, size)


def advance() -> Event:
    """A pure time-publication event."""
    return Event(EvKind.ADVANCE)


def lock(lock_id: int) -> Event:
    """A lock-acquire event."""
    return Event(EvKind.LOCK, arg=lock_id)


def unlock(lock_id: int) -> Event:
    """A lock-release event."""
    return Event(EvKind.UNLOCK, arg=lock_id)


def barrier(barrier_id: int, count: int) -> Event:
    """A barrier-arrival event for a barrier of ``count`` participants."""
    return Event(EvKind.BARRIER, arg=(barrier_id, count))


def syscall(name: str, *args: Any) -> Event:
    """An OS-call event (name + positional arguments)."""
    return Event(EvKind.SYSCALL, arg=(name, args))


def exit_event(status: int = 0) -> Event:
    """A process-exit announcement."""
    return Event(EvKind.EXIT, arg=status)


class SyscallResult:
    """Reply delivered to a frontend for a SYSCALL event.

    ``value`` is the return value; ``errno`` is 0 on success or a simulated
    errno. ``data`` optionally carries out-of-band payloads (e.g. bytes read)
    so syscall models can return rich results without extra round trips.
    """

    __slots__ = ("value", "errno", "data")

    def __init__(self, value: Any = 0, errno: int = 0, data: Any = None) -> None:
        self.value = value
        self.errno = errno
        self.data = data

    @property
    def ok(self) -> bool:
        """True when the call succeeded (errno == 0)."""
        return self.errno == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyscallResult(value={self.value!r}, errno={self.errno})"


# Simulated errno values (AIX-flavoured subset).
EPERM = 1
ENOENT = 2
EINTR = 4
EIO = 5
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOSPC = 28
EPIPE = 32
ENOSYS = 38
ENOTCONN = 57
EADDRINUSE = 67
ECONNREFUSED = 79
ETIMEDOUT = 78

ERRNO_NAMES = {
    EPERM: "EPERM", ENOENT: "ENOENT", EINTR: "EINTR", EIO: "EIO",
    EBADF: "EBADF", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES",
    EFAULT: "EFAULT", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR",
    EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE", ENOSPC: "ENOSPC",
    EPIPE: "EPIPE", ENOSYS: "ENOSYS", ENOTCONN: "ENOTCONN",
    EADDRINUSE: "EADDRINUSE", ECONNREFUSED: "ECONNREFUSED",
    ETIMEDOUT: "ETIMEDOUT",
}
