"""Event vocabulary exchanged between frontends and the backend.

In COMPASS, instrumented frontend code fills out an *event data structure*
for every memory reference (reference type, effective address, size, cycle of
issue) and passes it to the backend through the event port. Synchronisation
instructions and OS calls also produce events. This module defines those
records.

Events are deliberately small ``__slots__`` objects: the simulator creates
one per simulated memory reference, which makes this the hottest allocation
site in the system (see the HPC guide notes in DESIGN.md).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Optional, Tuple


class EvKind(IntEnum):
    """Discriminator for :class:`Event` payloads."""

    #: Data load. ``addr``/``size`` give the virtual reference.
    READ = 0
    #: Data store.
    WRITE = 1
    #: Atomic read-modify-write (lwarx/stwcx-style); used by lock models.
    RMW = 2
    #: Pure time synchronisation: no memory traffic, just publishes the
    #: frontend's execution-time so interleaving stays fine-grained across
    #: long computation stretches, and gives the engine an interrupt-poll
    #: point (the paper polls at memory/branch instructions).
    ADVANCE = 3
    #: Acquire a simulated lock (arg = lock id). May block the entity.
    LOCK = 4
    #: Release a simulated lock (arg = lock id).
    UNLOCK = 5
    #: Barrier arrival (arg = (barrier id, participant count)).
    BARRIER = 6
    #: OS call: ``arg`` is ``(name, args_tuple)``. Routed to the OS server
    #: (category 1) or handled directly in the backend (category 2).
    SYSCALL = 7
    #: Frontend announces termination (sent before the coroutine returns,
    #: mirroring the EXIT message that unpairs the OS thread).
    EXIT = 8
    #: A pooled :class:`EventBatch` — a run of consecutive memory references
    #: published through the port as one message (the batched hot path).
    BATCH = 9


#: Kinds that reference simulated memory.
MEMORY_KINDS = frozenset({EvKind.READ, EvKind.WRITE, EvKind.RMW})

#: Kinds that the communicator forwards straight to the memory system.
_KIND_NAMES = {k.value: k.name for k in EvKind}


class Event:
    """One frontend→backend message.

    Attributes
    ----------
    kind:
        An :class:`EvKind` value (stored as a plain int for speed).
    addr, size:
        Virtual address and byte size for memory kinds; 0 otherwise.
    arg:
        Kind-specific payload (lock id, barrier tuple, syscall tuple).
    time:
        The issuing entity's execution-time (cycles) when the event was
        generated; filled in by the engine from the entity clock, exactly as
        the instrumentation fills the cycle field in the paper.
    pid:
        Simulated process id of the issuer (filled in by the engine).
    kernel:
        True when the reference was generated in kernel mode (by OS-server
        code); such references translate through the kernel address space.
    """

    __slots__ = ("kind", "addr", "size", "arg", "time", "pid", "kernel", "mode")

    def __init__(
        self,
        kind: int,
        addr: int = 0,
        size: int = 0,
        arg: Any = None,
    ) -> None:
        self.kind = kind
        self.addr = addr
        self.size = size
        self.arg = arg
        self.time = 0
        self.pid = -1
        self.kernel = False
        #: charge bucket of the generating code: "user"|"kernel"|"interrupt"
        self.mode = "user"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _KIND_NAMES.get(self.kind, str(self.kind))
        return (
            f"Event({name}, addr={self.addr:#x}, size={self.size}, "
            f"arg={self.arg!r}, t={self.time}, pid={self.pid}, "
            f"{'kernel' if self.kernel else 'user'})"
        )


#: monotone id distinguishing batch *contents*: reused pool objects get a
#: fresh serial on every refill, so a serial uniquely names one filling
_serial_counter = [0]


def _next_serial() -> int:
    _serial_counter[0] += 1
    return _serial_counter[0]


class EventBatch:
    """A run of consecutive memory references from one frontend frame.

    The per-reference round trip (suspend generator → handle → resume) is
    the simulator's dominant cost; a batch carries up to :data:`BATCH_CAP`
    references in parallel arrays so the engine can service them in a tight
    loop without re-entering the generator. Semantics are identical to
    yielding the references one by one:

    * ``pendings[i]`` holds the statically-known cycles accumulated *before*
      reference ``i`` (what the per-event path would fold into the event's
      time stamp), so each reference's issue time is reconstructed exactly;
    * ``time`` is the absolute issue time of the reference at ``cursor``
      (the port timestamp the communicator orders on);
    * the engine advances ``cursor``/``total`` as it consumes references and
      may re-park a half-consumed batch at the port (conservative-ordering
      cut) or on ``pending_batches`` (interrupt/fault frames pushed above
      it); the generator resumes only once, receiving ``total``.

    Batches are pooled (:func:`acquire_batch` / :func:`release_batch`): a
    producer reuses one batch object for its whole life, so the hot loop
    allocates nothing.
    """

    #: class-level Event protocol: a batch is its own kind, has no payload
    kind = int(EvKind.BATCH)
    arg = None

    __slots__ = ("kinds", "addrs", "sizes", "pendings", "n", "cursor",
                 "total", "time", "pid", "kernel", "mode", "depth",
                 "serial", "uhint")

    def __init__(self) -> None:
        self.serial = _next_serial()
        #: producer hint ``(kind, stride, work_per_ref)``: set by a producer
        #: that filled the WHOLE batch as one arithmetic reference stream —
        #: every kind equal, addresses stepping by ``stride`` with sizes
        #: ``stride``, and every pending after the first ``work_per_ref``.
        #: Purely an accelerator hint (mem/vec.py rebuilds the arrays from
        #: it instead of converting the lists); None = no structure claimed.
        self.uhint = None
        self.kinds: list = []
        self.addrs: list = []
        self.sizes: list = []
        self.pendings: list = []
        self.n = 0
        self.cursor = 0
        self.total = 0
        self.time = 0
        self.pid = -1
        self.kernel = False
        self.mode = "user"
        #: frame-stack depth a half-consumed batch was parked under (engine)
        self.depth = 0

    def append(self, kind: int, addr: int, size: int, pending: int) -> None:
        """Add one reference (caller zeroes its pending-cycle counter)."""
        self.kinds.append(kind)
        self.addrs.append(addr)
        self.sizes.append(size)
        self.pendings.append(pending)
        self.n += 1

    def reset(self) -> None:
        """Empty the batch for reuse. Bumps ``serial``: any cached
        classification of the old contents (mem/vec.py) is invalidated."""
        self.serial = _next_serial()
        self.uhint = None
        self.kinds.clear()
        self.addrs.clear()
        self.sizes.clear()
        self.pendings.clear()
        self.n = 0
        self.cursor = 0
        self.total = 0
        self.depth = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventBatch(n={self.n}, cursor={self.cursor}, "
                f"t={self.time}, pid={self.pid}, total={self.total})")


#: references per batch before the producer must flush (bounds both the
#: parallel-array size and how far a frontend can run ahead of a cut).
#: Sized so the vectorized classifier (mem/vec.py) amortizes its fixed
#: per-batch numpy cost; results are cap-independent (the consumer cuts
#: batches wherever timing requires), so this is purely a host-side knob.
BATCH_CAP = 1024

#: freelist of EventBatch objects (engine is single-threaded)
_batch_pool: list = []
_BATCH_POOL_MAX = 64


def acquire_batch() -> EventBatch:
    """Take a clean batch from the pool (or allocate one)."""
    if _batch_pool:
        return _batch_pool.pop()
    return EventBatch()


def release_batch(batch: EventBatch) -> None:
    """Return a batch to the pool once no party references it."""
    batch.reset()
    if len(_batch_pool) < _BATCH_POOL_MAX:
        _batch_pool.append(batch)


# ---------------------------------------------------------------------------
# Constructors (cheap factory helpers used by Proc / the interpreter)
# ---------------------------------------------------------------------------

def read(addr: int, size: int = 4) -> Event:
    """A data-load event."""
    return Event(EvKind.READ, addr, size)


def write(addr: int, size: int = 4) -> Event:
    """A data-store event."""
    return Event(EvKind.WRITE, addr, size)


def rmw(addr: int, size: int = 4) -> Event:
    """An atomic read-modify-write event."""
    return Event(EvKind.RMW, addr, size)


def advance() -> Event:
    """A pure time-publication event."""
    return Event(EvKind.ADVANCE)


def lock(lock_id: int) -> Event:
    """A lock-acquire event."""
    return Event(EvKind.LOCK, arg=lock_id)


def unlock(lock_id: int) -> Event:
    """A lock-release event."""
    return Event(EvKind.UNLOCK, arg=lock_id)


def barrier(barrier_id: int, count: int) -> Event:
    """A barrier-arrival event for a barrier of ``count`` participants."""
    return Event(EvKind.BARRIER, arg=(barrier_id, count))


def syscall(name: str, *args: Any) -> Event:
    """An OS-call event (name + positional arguments)."""
    return Event(EvKind.SYSCALL, arg=(name, args))


def exit_event(status: int = 0) -> Event:
    """A process-exit announcement."""
    return Event(EvKind.EXIT, arg=status)


class SyscallResult:
    """Reply delivered to a frontend for a SYSCALL event.

    ``value`` is the return value; ``errno`` is 0 on success or a simulated
    errno. ``data`` optionally carries out-of-band payloads (e.g. bytes read)
    so syscall models can return rich results without extra round trips.
    """

    __slots__ = ("value", "errno", "data")

    def __init__(self, value: Any = 0, errno: int = 0, data: Any = None) -> None:
        self.value = value
        self.errno = errno
        self.data = data

    @property
    def ok(self) -> bool:
        """True when the call succeeded (errno == 0)."""
        return self.errno == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyscallResult(value={self.value!r}, errno={self.errno})"


# Simulated errno values (AIX-flavoured subset).
EPERM = 1
ENOENT = 2
EINTR = 4
EIO = 5
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOSPC = 28
EPIPE = 32
ENOSYS = 38
ENOTCONN = 57
EADDRINUSE = 67
ECONNRESET = 73
ECONNREFUSED = 79
ETIMEDOUT = 78

ERRNO_NAMES = {
    EPERM: "EPERM", ENOENT: "ENOENT", EINTR: "EINTR", EIO: "EIO",
    EBADF: "EBADF", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES",
    EFAULT: "EFAULT", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR",
    EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE", ENOSPC: "ENOSPC",
    EPIPE: "EPIPE", ENOSYS: "ENOSYS", ENOTCONN: "ENOTCONN",
    EADDRINUSE: "EADDRINUSE", ECONNRESET: "ECONNRESET",
    ECONNREFUSED: "ECONNREFUSED", ETIMEDOUT: "ETIMEDOUT",
}
