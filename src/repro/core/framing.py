"""CRC32-framed record I/O for the durability layer.

One framing convention shared by every crash-consistent file in the
repo — the control plane's job spool segments and the checkpoint
manager's autosave files:

* a file starts with a 4-byte **magic** naming its format,
* every record is ``[u32 length][u32 crc32(payload)][payload]``
  (little-endian), so a reader can detect *exactly* where a torn write
  or a bit flip happened and report the byte offset,
* writers follow the classic fsync discipline: flush+fsync the file
  before it becomes reachable (``os.replace`` for checkpoints, the
  append itself for WAL segments), then fsync the containing directory
  so the rename/creat is itself durable.

Readers never raise raw ``struct``/EOF errors: every failure mode maps
to the caller-supplied corruption exception carrying path + byte offset
+ reason, which is what the recovery layers quarantine and report.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import BinaryIO, Callable, List, Optional

_HEADER = struct.Struct("<II")          # payload length, payload crc32
HEADER_SIZE = _HEADER.size
MAGIC_SIZE = 4

#: hard ceiling on a single frame; a declared length past this is
#: corruption, not data (keeps a flipped length bit from allocating GBs)
MAX_FRAME = 256 * 1024 * 1024


def write_frame(f: BinaryIO, payload: bytes) -> int:
    """Append one framed record; returns the bytes written."""
    f.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
    f.write(payload)
    return HEADER_SIZE + len(payload)


def read_frame(f: BinaryIO, path: str,
               err: Callable[[str, int, str], Exception]) -> Optional[bytes]:
    """Read one framed record at the current position.

    Returns the payload, or ``None`` at a clean end of file. Any other
    condition — torn header, torn payload, implausible length, CRC
    mismatch — raises ``err(path, offset, reason)`` where ``offset`` is
    the byte position of the frame that failed.
    """
    offset = f.tell()
    header = f.read(HEADER_SIZE)
    if not header:
        return None
    if len(header) < HEADER_SIZE:
        raise err(path, offset,
                  f"torn frame header ({len(header)} of {HEADER_SIZE} bytes)")
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise err(path, offset,
                  f"implausible frame length {length} (corrupt header)")
    payload = f.read(length)
    if len(payload) < length:
        raise err(path, offset,
                  f"torn frame payload ({len(payload)} of {length} bytes)")
    if zlib.crc32(payload) != crc:
        raise err(path, offset, "frame CRC32 mismatch")
    return payload


def fsync_file(f: BinaryIO) -> None:
    """Flush user-space buffers and force the file to stable storage."""
    f.flush()
    os.fsync(f.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Best-effort: some filesystems refuse O_RDONLY fsync on directories;
    a failure here degrades durability, not correctness.
    """
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def sweep_stale_tmp(dirpath: str, prefix: str = "") -> List[str]:
    """Remove ``<prefix>*.tmp`` leftovers from writers that died mid-write.

    Returns the paths removed (for forensic logging). Missing directory
    is not an error — there is then nothing stale to sweep.
    """
    removed: List[str] = []
    try:
        names = os.listdir(dirpath)
    except OSError:
        return removed
    for name in names:
        if name.endswith(".tmp") and name.startswith(prefix):
            path = os.path.join(dirpath, name)
            try:
                os.unlink(path)
                removed.append(path)
            except OSError:
                pass
    return removed
