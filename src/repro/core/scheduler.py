"""Global event scheduler (the backend's task queue).

When the backend receives an event it "creates a task and inserts it in the
global event scheduler with a time stamp indicating at which global
simulation cycle the task is to be dispatched. [...] Functions may cause
additional tasks to be generated and placed in the global event queue."
(paper §2). Device completions, timer ticks and deferred wakeups all live
here.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from .errors import SchedulerError

Task = Callable[..., None]


class ScheduledTask:
    """Handle for a scheduled task; supports cancellation."""

    __slots__ = ("when", "seq", "fn", "args", "cancelled")

    def __init__(self, when: int, seq: int, fn: Task, args: tuple) -> None:
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the task as cancelled; it will be skipped at dispatch time."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledTask") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class GlobalScheduler:
    """A deterministic min-heap of timestamped backend tasks.

    Ties are broken by insertion order (monotone sequence number), so runs
    are bit-for-bit reproducible.
    """

    def __init__(self) -> None:
        self._heap: List[ScheduledTask] = []
        self._seq = 0
        #: current global simulation cycle (monotone, advanced by the engine)
        self.now = 0
        self.dispatched = 0

    def __len__(self) -> int:
        return len(self._heap)

    def state_dict(self) -> dict:
        """Verification snapshot. The heap holds closures and cannot be
        serialized; a restore rebuilds it by replay, and this summary (time,
        tie-break sequence, queue shape) is what the rebuilt heap must match
        for the tie-break order to stay bit-identical."""
        return {"now": self.now, "seq": self._seq,
                "dispatched": self.dispatched,
                "heap_len": len(self._heap),
                "next_time": self.next_time()}

    def load_state(self, state: dict) -> None:
        """Restore the scalar counters (the heap itself is rebuilt live)."""
        self.now = state["now"]
        self._seq = state["seq"]
        self.dispatched = state["dispatched"]

    def schedule_at(self, when: int, fn: Task, *args: Any) -> ScheduledTask:
        """Schedule ``fn(*args)`` to run at absolute cycle ``when``."""
        if when < self.now:
            raise SchedulerError(
                f"cannot schedule at cycle {when}, now is {self.now}"
            )
        t = ScheduledTask(when, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, t)
        return t

    def schedule_after(self, delay: int, fn: Task, *args: Any) -> ScheduledTask:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def next_time(self) -> Optional[int]:
        """Timestamp of the earliest live task, or None when empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].when if heap else None

    def pop_due(self, horizon: int) -> Optional[ScheduledTask]:
        """Pop the earliest live task with ``when <= horizon``; advance
        ``now`` to its timestamp. Returns None when nothing is due."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap)
                continue
            if head.when > horizon:
                return None
            heapq.heappop(heap)
            if head.when > self.now:
                self.now = head.when
            return head
        return None

    def run_task(self, task: ScheduledTask) -> None:
        """Dispatch one task (no-op when it was cancelled meanwhile)."""
        if not task.cancelled:
            self.dispatched += 1
            task.fn(*task.args)

    def advance_to(self, when: int) -> None:
        """Advance the global clock without dispatching (engine use)."""
        if when > self.now:
            self.now = when
