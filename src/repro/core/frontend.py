"""Frontend processes and the Augmint-macro-style application API.

A *frontend process* in COMPASS is a real UNIX process running instrumented
application code; it accumulates an execution-time value and blocks on its
event port after every event until the backend replies (§2). Here a frontend
is a :class:`SimProcess` driving a stack of generator frames:

* the base frame is the application coroutine (either hand-written against
  the :class:`Proc` API — the Augmint-macro analog — or an
  :class:`~repro.isa.interpreter.Interpreter` run);
* the engine pushes additional frames for kernel-mode work: category-1 OS
  service routines executed by the paired OS-server thread, and interrupt
  handlers delivered as pseudo-interrupt requests (§3.1–3.2). Frames above
  the base run in *kernel mode*: their memory references translate through
  the kernel address space and their cycles are charged to kernel/interrupt
  time, which is exactly the paper's OS-thread-shares-the-event-port scheme.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Callable, Generator, List, Optional

from . import events as ev
from .errors import FrontendError

#: generator type of an application/kernel coroutine
Coroutine = Generator[ev.Event, Any, Any]


class ProcState(IntEnum):
    """Life-cycle states of a simulated process."""

    NEW = 0        #: created, never dispatched
    READY = 1      #: runnable, waiting for a processor
    RUNNING = 2    #: bound to a processor, exchanging events
    BLOCKED = 3    #: waiting in a blocking OS call (processor released)
    SYNCWAIT = 4   #: waiting on a lock/barrier grant (still holds the CPU)
    DONE = 5       #: exited


class WaitToken:
    """Yielded by kernel service code to block the calling process.

    The engine parks the process (informing the process scheduler, which
    frees the CPU, §3.3.3) until some backend task calls :meth:`wake`.
    ``value`` is delivered as the result of the yield.
    """

    __slots__ = ("label", "waker", "value", "woken")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.waker: Optional[Callable[["WaitToken"], None]] = None
        self.value: Any = None
        self.woken = False

    def wake(self, value: Any = None) -> None:
        """Mark complete and hand back to the engine (idempotent)."""
        if self.woken:
            return
        self.woken = True
        self.value = value
        if self.waker is not None:
            self.waker(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitToken({self.label!r}, woken={self.woken})"


class FrontendClock:
    """The per-process execution-time accumulator of the paper.

    ``pending`` collects statically-known cycles (basic-block costs, compute
    macros) between events; the engine folds it into the process's virtual
    time when the next event is published.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending = 0


class SimProcess:
    """One simulated application process (a frontend)."""

    _next_pid = [1]

    @classmethod
    def pid_counter(cls) -> int:
        """Next pid to be assigned (checkpointed so a resumed run recreates
        the same pid sequence)."""
        return cls._next_pid[0]

    @classmethod
    def set_pid_counter(cls, value: int) -> None:
        """Reset the global pid sequence (restore/test harness use only)."""
        cls._next_pid[0] = value

    def __init__(self, name: str, clock: Optional[FrontendClock] = None) -> None:
        self.pid = SimProcess._next_pid[0]
        SimProcess._next_pid[0] += 1
        self.name = name
        self.state = ProcState.NEW
        #: frame stack: [app, (kernel service | interrupt handler)...]
        self.frames: List[Coroutine] = []
        #: kernel-mode depth == len(frames) - 1; >0 means kernel mode
        self.clock = clock if clock is not None else FrontendClock()
        #: accumulated execution time (cycles) — the event-port time value
        self.vtime = 0
        #: event waiting at the event port (set after each step)
        self.port_event: Optional[ev.Event] = None
        #: value to send into the coroutine on the next step
        self.reply: Any = None
        #: CPU currently running this process (-1 = none)
        self.cpu = -1
        #: CPUs this process has used (affinity scheduler history, §3.3.2)
        self.cpu_history: List[int] = []
        #: paired OS-server thread (set by the OS server)
        self.os_thread: Any = None
        self.exit_status: Optional[int] = None
        #: interrupt frames currently stacked (to attribute time correctly)
        self.intr_depth = 0
        #: set while this process must not take interrupts (in-handler)
        self.intr_enabled = True
        #: outstanding wait token while BLOCKED
        self.wait: Optional[WaitToken] = None
        #: charge-mode stack entries: "user"|"kernel"|"interrupt"
        self.mode_stack: List[str] = ["user"]
        #: per-frame pop directives, parallel to ``frames``:
        #: ("exit", None) | ("syscall", None) | ("interrupt", saved_reply)
        #: | ("retry", original_event)
        self.frame_meta: List[tuple] = []
        #: cycle up to which this process's time has been charged to stats
        self.acct_mark = 0
        #: set by the timer tick when pre-emption is due at the next event
        self.preempt_pending = False
        #: cycle at which the current CPU stint began (quantum accounting)
        self.run_since = 0
        #: the per-process context-record flag of §4.1: when False, the
        #: Proc API generates no events and no time (simulation OFF regions,
        #: signal handlers, static constructors)
        self.events_enabled = True
        #: batched event pipeline enabled (set by the engine from
        #: SimConfig.fastpath; producers fall back to per-event yields
        #: when False)
        self.batching = False
        #: half-consumed EventBatches stashed while interrupt/fault frames
        #: run above their producers (LIFO; engine re-parks each when the
        #: frame stack unwinds back to its recorded depth)
        self.pending_batches: List[ev.EventBatch] = []

    # -- frame management (engine use) ------------------------------------

    @property
    def mode(self) -> str:
        """Current charge mode: user / kernel / interrupt."""
        return self.mode_stack[-1]

    @property
    def kernel_mode(self) -> bool:
        """True when executing OS-server or handler code."""
        return len(self.mode_stack) > 1

    def push_frame(self, frame: Coroutine, mode: str,
                   meta: tuple = ("syscall", None)) -> None:
        """Enter kernel-mode code (OS service or interrupt handler)."""
        self.frames.append(frame)
        self.mode_stack.append(mode)
        self.frame_meta.append(meta)

    def pop_frame(self) -> tuple:
        """Leave kernel-mode code; returns the frame's pop directive."""
        self.frames.pop()
        self.mode_stack.pop()
        return self.frame_meta.pop()

    def base_frame(self, frame: Coroutine) -> None:
        """Install the application coroutine (exactly once)."""
        if self.frames:
            raise FrontendError(f"{self.name}: base frame already set")
        self.frames.append(frame)
        self.frame_meta.append(("exit", None))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SimProcess(pid={self.pid}, {self.name!r}, "
                f"{self.state.name}, cpu={self.cpu}, t={self.vtime})")


class Proc:
    """The application-facing macro API (the Augmint analog).

    Application coroutines receive a ``Proc`` and drive the simulation with
    ``yield from`` calls::

        def app(proc: Proc):
            proc.compute(120)                      # 120 cycles of ALU work
            v = yield from proc.load(0x1000)       # one read reference
            yield from proc.store(0x1000, 4)
            r = yield from proc.call("open", "/db/t1", 0)   # OS call
            yield from proc.exit(0)

    Memory here is *timing-only*: ``load`` returns the reference latency, not
    data (apps keep functional state in ordinary Python objects, as COMPASS
    frontends keep theirs in native memory). Use the ISA interpreter path
    when functional simulated memory is wanted.
    """

    __slots__ = ("process", "_clock")

    def __init__(self, process: SimProcess) -> None:
        self.process = process
        self._clock = process.clock

    # -- instrumentation control (the Simulation ON/OFF switch, §4/§5) ------

    def sim_off(self) -> None:
        """Stop generating events and time (uninteresting code regions)."""
        self.process.events_enabled = False

    def sim_on(self) -> None:
        """Resume event generation."""
        self.process.events_enabled = True

    # -- time ---------------------------------------------------------------

    def compute(self, cycles: int) -> None:
        """Accumulate ``cycles`` of computation (no event, no interleave
        point — the inserted basic-block timing update)."""
        if cycles < 0:
            raise FrontendError(f"negative compute: {cycles}")
        if self.process.events_enabled:
            self._clock.pending += cycles

    def advance(self, cycles: int = 0):
        """Accumulate ``cycles`` then publish time with an ADVANCE event —
        an explicit interleave/interrupt-poll point."""
        if cycles:
            self.compute(cycles)
        if not self.process.events_enabled:
            return 0
        return (yield ev.advance())

    # -- memory -------------------------------------------------------------

    def load(self, addr: int, size: int = 4):
        """Issue a read reference; returns its latency in cycles."""
        if not self.process.events_enabled:
            return 0
        return (yield ev.Event(ev.EvKind.READ, addr, size))

    def store(self, addr: int, size: int = 4):
        """Issue a write reference; returns its latency in cycles."""
        if not self.process.events_enabled:
            return 0
        return (yield ev.Event(ev.EvKind.WRITE, addr, size))

    def rmw(self, addr: int, size: int = 4):
        """Issue an atomic read-modify-write reference."""
        if not self.process.events_enabled:
            return 0
        return (yield ev.Event(ev.EvKind.RMW, addr, size))

    def touch(self, addr: int, nbytes: int, write: bool = False,
              stride: int = 32, work_per_line: int = 0):
        """Reference ``nbytes`` starting at ``addr``, one event per
        ``stride`` bytes (bulk copies, scans). ``work_per_line`` adds compute
        cycles between references. Returns total memory latency."""
        if nbytes <= 0 or not self.process.events_enabled:
            return 0
        kind = ev.EvKind.WRITE if write else ev.EvKind.READ
        total = 0
        end = addr + nbytes
        a = addr
        pend = self._clock
        if self.process.batching:
            # batched pipeline: one EventBatch message per BATCH_CAP
            # references instead of one generator suspension each. The
            # parallel arrays are filled with bulk extends — the reference
            # stream of a strided touch is fully determined up front, so
            # each batch-sized chunk is materialised in C-level list ops
            # (kind/pending constants, a range() of addresses); only the
            # final ragged reference can be shorter than stride.
            k = int(kind)
            cap = ev.BATCH_CAP
            batch = ev.acquire_batch()
            # the whole filling is one arithmetic stream — advertise it so
            # the vectorized consumer can skip the list conversions; a
            # ragged final reference voids the claim for its filling
            uhint = (k, stride, work_per_line)
            batch.uhint = uhint
            n = batch.n
            pending = pend.pending
            pend.pending = 0
            last_full = end - stride
            while a < end:
                room = cap - n
                left = -(-(end - a) // stride)
                cnt = room if room < left else left
                last = a + (cnt - 1) * stride
                batch.kinds.extend([k] * cnt)
                batch.addrs.extend(range(a, last + 1, stride))
                szs = [stride] * cnt
                if last > last_full:
                    szs[-1] = end - last
                    batch.uhint = None
                batch.sizes.extend(szs)
                if work_per_line:
                    ps = [work_per_line] * cnt
                    ps[0] += pending
                else:
                    ps = [0] * cnt
                    ps[0] = pending
                batch.pendings.extend(ps)
                pending = 0
                n += cnt
                a = last + stride
                if n >= cap:
                    batch.n = n
                    total += yield batch
                    batch.reset()
                    batch.uhint = uhint
                    n = 0
                    # handler frames that ran while the batch was parked
                    # may have left pending cycles for the next reference
                    pending = pend.pending
                    pend.pending = 0
            if n:
                batch.n = n
                total += yield batch
            ev.release_batch(batch)
            return total
        while a < end:
            if work_per_line:
                pend.pending += work_per_line
            total += yield ev.Event(kind, a, min(stride, end - a))
            a += stride
        return total

    # -- synchronisation ------------------------------------------------------

    def lock(self, lock_id: int):
        """Acquire a simulated lock (FIFO; spins without releasing the CPU)."""
        return (yield ev.lock(lock_id))

    def unlock(self, lock_id: int):
        """Release a simulated lock."""
        return (yield ev.unlock(lock_id))

    def barrier(self, barrier_id: int, count: int):
        """Arrive at a ``count``-party barrier and wait for the last party."""
        return (yield ev.barrier(barrier_id, count))

    # -- OS -------------------------------------------------------------------

    def call(self, name: str, *args: Any):
        """Issue an OS call through the COMPASS stub; returns a
        :class:`~repro.core.events.SyscallResult`."""
        res = yield ev.syscall(name, *args)
        if not isinstance(res, ev.SyscallResult):  # pragma: no cover
            raise FrontendError(f"syscall {name!r} reply was {res!r}")
        return res

    def call_retry(self, name: str, *args: Any, retries: int = 8):
        """OS call with the classic EINTR restart loop.

        Without a fault plan this is event-for-event identical to
        :meth:`call` (EINTR never occurs), so applications can use it
        unconditionally; under fault injection it models the retry path
        commercial code takes around interruptible I/O."""
        res = yield from self.call(name, *args)
        while res.errno == ev.EINTR and retries > 0:
            retries -= 1
            res = yield from self.call(name, *args)
        return res

    def exit(self, status: int = 0):
        """Announce termination (the EXIT message that unpairs the OS
        thread); the coroutine should return right after."""
        yield ev.exit_event(status)
        return status
