"""Simulation core: engine, communicator, global scheduler, event
vocabulary, frontend-process abstraction, configuration and statistics.
See DESIGN.md for how these map onto the paper's Figure 1."""
