"""The COMPASS simulation engine.

Binds the pieces of Figure 1 together: frontend processes exchange events
with the backend through the communicator; the backend services each event
(memory system, sync managers, OS dispatch), replies, and lets the frontend
run ahead to its next event; devices and deferred work live in the global
event scheduler. The loop always takes whichever is earliest — the smallest
frontend event-port timestamp or the head of the task queue — so the whole
simulation executes in one global time order.
"""

from __future__ import annotations

import time as _wallclock
from collections import deque
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .. import devices as _devices
from .. import osim as _osim
from ..faults import FaultInjector
from ..mem.hierarchy import MemorySystem
from ..mem.pagetable import MajorFault
from . import events as ev
from .communicator import Communicator
from .config import SimConfig
from .errors import DeadlockError, FrontendError
from .jsonable import to_jsonable
from .frontend import (Coroutine, FrontendClock, Proc, ProcState, SimProcess,
                       WaitToken)
from .scheduler import GlobalScheduler
from .stats import StatsRegistry
from .sync import BarrierManager, LockManager, lock_address

class _SignalMark:
    """Stats marker for signal-wrapper frames (they cost nothing)."""

    source = "signal"
    handler_cycles = 0


_SIGNAL_MARK = _SignalMark()

#: default private VMA for spawned processes (text+data+heap+stack)
DEFAULT_ANON_BASE = 0x0001_0000
DEFAULT_ANON_END = 0xB000_0000
#: region managed by the mmap/shmat address allocator
MMAP_BASE = 0xB000_0000


class Engine:
    """One simulated machine plus its workload."""

    def __init__(self, cfg: SimConfig,
                 stats: Optional[StatsRegistry] = None) -> None:
        cfg.validate()
        self.cfg = cfg
        self.stats = stats if stats is not None else StatsRegistry(cfg.num_cpus)
        self.gsched = GlobalScheduler()
        self.comm = Communicator(cfg.num_cpus)
        self.memsys = MemorySystem(cfg, self.stats)
        self.locks = LockManager()
        self.barriers = BarrierManager()
        self.procsched = _osim.ProcessScheduler(
            cfg.num_cpus, cfg.os.scheduler, self.memsys.vmm.cpu_node)
        self.intctl = _osim.InterruptController(self.comm.cpus)
        self.intctl.post_hook = self._interrupt_posted
        self.timer = _devices.IntervalTimer(
            self.gsched, self.intctl, cfg.os.timer_interval,
            cfg.os.timer_handler_cycles, cfg.num_cpus)
        if cfg.os.preemptive:
            self.timer.on_tick.append(self._preempt_tick)
        self.disk = _devices.Disk("hd0", self.gsched, self.intctl,
                                  cfg.disk, cfg.clock)
        self.nic = _devices.EthernetNic("en0", self.gsched, self.intctl,
                                        cfg.ethernet, cfg.clock)
        #: signal manager (§4.1 non-augmented wrapper delivery)
        self.signals = _osim.signals.SignalManager()
        # the OS server pairs threads with processes and owns the
        # category-1 syscall models (fs, sockets, ipc)
        self.os_server = _osim.OSServer(self)
        #: seeded deterministic fault injection; with no (or an empty) plan
        #: the injector is disabled, no hooks are bound anywhere, and runs
        #: are bit-identical to a build without the subsystem
        self.faults = FaultInjector(getattr(cfg, "faults", None), self.stats)
        self._faults_on = self.faults.enabled
        if self._faults_on:
            self.stats.counter("fault_plan_seed").add(self.faults.plan.seed)
            self._wire_faults()
        #: per-process mmap address allocator cursor
        self._mmap_cursor: Dict[int, int] = {}
        #: pid -> tokens to wake when that process exits (waitpid support)
        self._exit_watchers: Dict[int, List[WaitToken]] = {}
        self.events_processed = 0
        #: frontends publish EventBatches instead of per-reference events
        #: (ParallelEngine turns this off: its proxies stream plain events)
        self._frontend_batching = bool(cfg.fastpath)
        #: ISA frontends run through the basic-block translation cache
        self._frontend_translate = bool(cfg.translate)
        #: batched-pipeline observability: batches consumed, references
        #: consumed, and why each consume loop stopped; ``la_windows`` /
        #: ``la_refs`` count granted lookahead windows and references
        #: consumed beyond the strict rival horizon
        self.batch_stats: Dict[str, int] = {
            "batches": 0, "refs": 0, "completed": 0,
            "cut_horizon": 0, "cut_budget": 0, "cut_intr": 0,
            "cut_fault": 0, "la_windows": 0, "la_refs": 0,
            "sp_windows": 0, "sp_refs": 0, "sp_commits": 0,
            "sp_rollbacks": 0,
        }
        #: conservative lookahead windows (timing-invisible by
        #: construction; see DESIGN.md): only meaningful with the batched
        #: pipeline + L1 filter on, since invisibility is exactly the
        #: fast-path full-hit predicate
        self._lookahead = (bool(getattr(cfg, "lookahead", True))
                           and self._frontend_batching
                           and self.memsys._fast_on)
        _la_cycles = getattr(cfg, "lookahead_cycles", 0)
        if not _la_cycles:
            # auto: the protocol's cheapest cross-CPU interaction sets the
            # per-configuration scale; the multiplier only bounds how much
            # rival-qualification work one window may spend (safety comes
            # from per-reference invisibility, not from the bound itself)
            _la_cycles = max(64 * self.memsys.min_remote_latency(), 4096)
        self._lookahead_cycles = _la_cycles
        #: optimistic speculation past the rival horizon (Time Warp-style,
        #: see DESIGN.md "Speculative execution"): consume invisible
        #: references to ``horizon + quantum`` first, validate the window
        #: against every rival's memoized invisibility frontier afterwards,
        #: roll the issuing CPU back to a micro-checkpoint on violation.
        #: Gated like lookahead; stands down at runtime wherever leases are
        #: denied today (checkpoint wrappers, taps, sampled fast-forward).
        self._speculate = (bool(getattr(cfg, "speculate", True))
                           and self._frontend_batching
                           and self.memsys._fast_on)
        _q = getattr(cfg, "speculate_quantum", 0)
        if not _q:
            _q = _la_cycles
        #: adaptive quantum: halve on rollback, double on commit (the
        #: vec-path accept-based backoff shape), clamped to [base/16, 64*base]
        self._spec_quantum = _q
        self._spec_quantum_min = max(64, _q >> 4)
        self._spec_quantum_max = _q << 6
        #: consecutive rollbacks without an intervening commit; at
        #: ``speculate_max_rollbacks`` speculation disables for the run
        self._spec_row = 0
        self._spec_max_rollbacks = getattr(cfg, "speculate_max_rollbacks",
                                           64)
        self._spec_on = self._speculate
        #: rival pid -> resumable invisibility-walk state
        #: (see MemorySystem.invisible_frontier)
        self._spec_memo: Dict[int, list] = {}
        if self._speculate:
            # deferred import: the checkpoint package imports core modules
            from ..checkpoint.micro import MicroCheckpoint
            self._micro_ckpt = MicroCheckpoint
        else:
            self._micro_ckpt = None
        self._max_cycles = cfg.max_cycles
        self._timer_started = False
        #: count of not-yet-exited processes (kept in step with spawns/exits)
        self._live = 0
        #: cycle of the last frontend progress (event processed / wake /
        #: dispatch); when only housekeeping tasks fire for this many cycles
        #: with live processes, the run is declared deadlocked
        self._last_progress = 0
        self._deadlock_window = max(10 * cfg.os.timer_interval, 10_000_000)
        #: watchdog: scheduler rounds tolerated with global time frozen
        self._watchdog_rounds = getattr(cfg, "watchdog_rounds", 1_000_000)
        #: ring of the most recent events, for deadlock/livelock forensics:
        #: (cycle, pid, event kind) tuples
        self._recent_events: deque = deque(maxlen=8)
        #: deterministic checkpoint/restore; None = subsystem entirely off
        #: (no wrapper installed, no hook bound, zero cost)
        self._ckpt = None
        if getattr(cfg, "checkpoint_interval", 0) > 0:
            from ..checkpoint import CheckpointManager
            self._ckpt = CheckpointManager(self, cfg.checkpoint_path,
                                           cfg.checkpoint_interval)
        #: sampled-simulation window controller; None = full detail (no
        #: hook bound, zero cost — see core/sampling.py)
        self._sampler = None
        if getattr(cfg, "sampling", None) is not None:
            from .sampling import SamplingController
            self._sampler = SamplingController(self, cfg.sampling)

    def _wire_faults(self) -> None:
        """Bind injection hooks at every armed site.

        Called only for a non-empty plan, so disabled runs never see an
        extra attribute, branch, or RNG draw on a hot path.
        """
        fi = self.faults
        if fi.has_prefix("mem:"):
            self.memsys.fault_extra = fi.mem_extra
        if fi.has_prefix("disk:latency"):
            self.disk.fault_hook = fi.disk_latency_extra
        if fi.has_prefix("tcp:"):
            self.os_server.net.faults = fi
        if fi.has_prefix("link:"):
            proto = getattr(self.memsys, "protocol", None)
            hook = fi.link_extra
            for attr in ("bus", "dirctl", "memctl", "amctl"):
                res = getattr(proto, attr, None)
                if res is None:
                    continue
                if isinstance(res, list):
                    for r in res:
                        r.fault_hook = hook
                else:
                    res.fault_hook = hook
            net = getattr(proto, "network", None)
            if net is not None:
                net.set_fault_hook(hook)

    # ------------------------------------------------------------------
    # process setup
    # ------------------------------------------------------------------

    def spawn(self, name: str,
              app: Callable[[Proc], Coroutine],
              map_default: bool = True,
              clock: Optional[FrontendClock] = None) -> SimProcess:
        """Create a frontend process running ``app(proc_api)``.

        ``map_default=True`` installs the standard private VMA so the app can
        reference heap/stack addresses immediately.
        """
        proc = SimProcess(name, clock=clock)
        proc.batching = self._frontend_batching
        self.memsys.vmm.new_space(proc.pid)
        if map_default:
            self.memsys.vmm.map_anon(proc.pid, DEFAULT_ANON_BASE,
                                     DEFAULT_ANON_END - DEFAULT_ANON_BASE)
        api = Proc(proc)
        proc.base_frame(app(api))
        proc.vtime = self.gsched.now
        proc.acct_mark = proc.vtime
        self.comm.register(proc)
        self._live += 1
        self.os_server.pair(proc)
        disp = self.procsched.admit(proc)
        if disp is not None:
            self._dispatch(disp[0], disp[1], self.gsched.now)
        return proc

    def spawn_interpreter(self, name: str, interp) -> SimProcess:
        """Spawn a frontend executing an ISA interpreter (the faithful
        instrumented-assembly path). The interpreter's pending-cycle counter
        becomes the process clock."""
        machine = interp.machine

        class _MachineClock:
            """Adapter: the interpreter accumulates into machine.pending."""
            __slots__ = ()

            @property
            def pending(self) -> int:
                return machine.pending

            @pending.setter
            def pending(self, v: int) -> None:
                machine.pending = v

        batched = self._frontend_batching
        translate = self._frontend_translate
        return self.spawn(
            name,
            lambda _api: interp.run(batched=batched, translate=translate),
            clock=_MachineClock())

    def mmap_alloc(self, pid: int, size: int) -> int:
        """Pick a free address in the mmap region (page aligned)."""
        ps = self.cfg.backend.memory.page_size
        size = (size + ps - 1) & ~(ps - 1)
        cur = self._mmap_cursor.get(pid, MMAP_BASE)
        self._mmap_cursor[pid] = cur + size
        return cur

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> StatsRegistry:
        """Simulate until every process exits (or a bound is hit)."""
        if not self._timer_started:
            self.timer.start()
            self._timer_started = True
        ck = self._ckpt
        if ck is not None:
            ck.on_run_begin(self, until, max_events)
        sam = self._sampler
        t0 = _wallclock.perf_counter()
        budget = max_events if max_events is not None else (1 << 62)
        wd_rounds = 0
        wd_time = -1
        while budget > 0:
            if self._live <= 0:
                break
            if ck is not None and ck.on_loop_top(self):
                # replay reached the checkpoint's event count: stop without
                # finalising (timer.stop would kill the pending tick the
                # checkpointed run still had armed)
                return self.stats
            if sam is not None:
                sam.on_loop_top(self)
            now = self.gsched.now
            if now != wd_time:
                wd_time = now
                wd_rounds = 0
            else:
                wd_rounds += 1
                if wd_rounds > self._watchdog_rounds:
                    self._report_deadlock(
                        self.comm.live_processes(),
                        reason=(f"watchdog: global time stuck at cycle {now} "
                                f"for {wd_rounds} scheduler rounds "
                                "(livelock)"))
            t_task = self.gsched.next_time()
            cand = self.comm.select()
            if cand is None:
                if t_task is None:
                    self._report_deadlock(self.comm.live_processes())
                if until is not None and t_task > until:
                    break
                task = self.gsched.pop_due(t_task)
                self.gsched.run_task(task)
                if (self.comm.next_event_time() is None
                        and self.gsched.now - self._last_progress
                        > self._deadlock_window):
                    # long silence is only a deadlock when nobody is waiting
                    # for a device completion: BLOCKED processes have wakers
                    # scheduled (a deep disk queue can legitimately run tens
                    # of millions of cycles ahead of the frontends)
                    live = self.comm.live_processes()
                    if not any(p.state == ProcState.BLOCKED for p in live):
                        self._report_deadlock(live)
                    self._last_progress = self.gsched.now
                continue
            et = cand.port_event.time
            if t_task is not None and t_task <= et:
                task = self.gsched.pop_due(t_task)
                self.gsched.run_task(task)
                continue
            if until is not None and et > until:
                break
            if et > self._max_cycles:
                raise DeadlockError(
                    f"simulation exceeded max_cycles={self._max_cycles}"
                )
            event = cand.port_event
            cand.port_event = None
            self.gsched.advance_to(et)
            self._last_progress = et
            if event.kind == 9:     # EvKind.BATCH
                # consume references while this frontend is guaranteed to
                # stay globally first: before any rival port event (with
                # the pid tie-break), any backend task, and the run bounds
                horizon = self.comm.batch_horizon(cand)
                if horizon is None:
                    horizon = 1 << 62
                # lookahead: extend past the rival cut (never past tasks or
                # run bounds — tasks can mutate anything) up to the window
                # cap, then shrink to the rivals' qualified-invisible bound.
                # Speculation skips the up-front shrink: it consumes the
                # whole extension optimistically behind a micro-checkpoint
                # and validates afterwards (see _handle_batch).
                ext = 0
                spec = False
                if (horizon < (1 << 61)
                        and self.memsys.__class__ is MemorySystem):
                    ms = self.memsys
                    if (self._spec_on and not ms.ff_active
                            and "access" not in ms.__dict__):
                        spec = True
                        ext = horizon + self._spec_quantum
                    elif self._lookahead:
                        ext = horizon + self._lookahead_cycles
                if t_task is not None:
                    if t_task < horizon:
                        horizon = t_task
                    if t_task < ext:
                        ext = t_task
                if until is not None:
                    if until + 1 < horizon:
                        horizon = until + 1
                    if until + 1 < ext:
                        ext = until + 1
                if self._max_cycles + 1 < horizon:
                    horizon = self._max_cycles + 1
                if self._max_cycles + 1 < ext:
                    ext = self._max_cycles + 1
                if ext > horizon and not spec:
                    ext = self.comm.lookahead_horizon(
                        cand, horizon, ext, self._invisible_bound)
                n = self._handle_batch(cand, event, horizon, ext, budget,
                                       speculate=spec)
                self.events_processed += n
                budget -= n
                continue
            self.events_processed += 1
            budget -= 1
            self._handle_event(cand, event)
        self.timer.stop()
        self.stats.end_cycle = self.gsched.now
        self.stats.host_seconds += _wallclock.perf_counter() - t0
        self._account_trailing_idle()
        return self.stats

    def _report_deadlock(self, live: List[SimProcess],
                         reason: str = "no frontend can make progress and "
                                       "the task queue is empty") -> None:
        report = self.diagnostic_report(reason)
        raise DeadlockError(report["text"], report=report)

    def diagnostic_report(self, reason: str) -> Dict[str, Any]:
        """Structured no-progress diagnostic: per-process states with their
        blocked-on wait tokens, CPU states, lock/barrier ownership and the
        most recent events — everything needed to debug a hang without
        re-running under a debugger.

        The report is JSON-plain (dict[str]/list/str/int only, no live
        objects) so control-plane job records can embed it verbatim with
        ``json.dumps``; in particular lock/barrier ids appear as *string*
        keys."""
        now = self.gsched.now
        procs = []
        for p in sorted(self.comm.processes.values(), key=lambda q: q.pid):
            if p.state == ProcState.DONE:
                continue
            procs.append({
                "pid": p.pid, "name": p.name, "state": p.state.name,
                "cpu": p.cpu, "vtime": p.vtime, "mode": p.mode,
                "frames": len(p.frames),
                "wait": (p.wait.label if p.wait is not None else None),
            })
        cpus = []
        for c in self.comm.cpus:
            cpus.append({
                "cpu": c.index, "time": c.time,
                "running_pid": c.running_pid,
                "irq_pending": bool(c.irq_pending),
                "irq_enabled": bool(c.irq_enabled),
            })
        locks = {lid: {"holder": holder, "waiters": waiters}
                 for lid, (holder, waiters) in self.locks.owners().items()}
        barriers = self.barriers.pending()
        recent = list(self._recent_events)
        lines = [f"DEADLOCK at cycle {now}: {reason}",
                 f"  events processed: {self.events_processed}; "
                 f"last progress at cycle {self._last_progress}",
                 "  processes:"]
        for p in procs:
            lines.append(
                f"    pid={p['pid']} {p['name']!r} state={p['state']} "
                f"cpu={p['cpu']} vtime={p['vtime']} mode={p['mode']} "
                f"frames={p['frames']} wait={p['wait']!r}")
        lines.append("  cpus:")
        for c in cpus:
            lines.append(
                f"    cpu{c['cpu']}: time={c['time']} "
                f"running_pid={c['running_pid']} "
                f"irq_pending={c['irq_pending']} "
                f"irq_enabled={c['irq_enabled']}")
        if locks:
            lines.append("  locks:")
            for lid in sorted(locks):
                info = locks[lid]
                lines.append(f"    lock {lid}: holder={info['holder']} "
                             f"waiters={info['waiters']}")
        if barriers:
            lines.append("  barriers:")
            for bid in sorted(barriers):
                lines.append(f"    barrier {bid}: waiting={barriers[bid]}")
        if recent:
            lines.append("  recent events (cycle, pid, kind):")
            lines.extend(f"    {r}" for r in recent)
        return to_jsonable({
            "reason": reason, "now": now,
            "events_processed": self.events_processed,
            "last_progress": self._last_progress,
            "processes": procs, "cpus": cpus,
            "locks": locks, "barriers": barriers,
            "recent_events": recent,
            "text": "\n".join(lines),
        })

    def _account_trailing_idle(self) -> None:
        for c in self.comm.cpus:
            if c.running_pid < 0 and self.gsched.now > c.idle_since:
                self.stats.cpu[c.index].idle += self.gsched.now - c.idle_since
                c.idle_since = self.gsched.now

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _handle_event(self, proc: SimProcess, event: ev.Event) -> None:
        kind = event.kind
        now = self.gsched.now
        self._recent_events.append((now, proc.pid, kind))
        resume = True

        if kind <= ev.EvKind.RMW:   # READ / WRITE / RMW
            lat, major = self.memsys.access(
                proc.pid, event.addr, event.size,
                kind != ev.EvKind.READ, proc.cpu, now,
                atomic=(kind == ev.EvKind.RMW))
            if major is not None:
                self._push_fault_handler(proc, event, major)
            else:
                proc.vtime += lat
                proc.reply = lat
        elif kind == ev.EvKind.ADVANCE:
            proc.reply = 0
        elif kind == ev.EvKind.LOCK:
            resume = self._do_lock(proc, event, now)
        elif kind == ev.EvKind.UNLOCK:
            self._do_unlock(proc, event, now)
        elif kind == ev.EvKind.BARRIER:
            resume = self._do_barrier(proc, event)
        elif kind == ev.EvKind.SYSCALL:
            self._do_syscall(proc, event, now)
        elif kind == ev.EvKind.EXIT:
            proc.exit_status = event.arg
            proc.reply = 0
        else:  # pragma: no cover
            raise FrontendError(f"unknown event kind {kind}")

        self._charge(proc, event.mode)
        if resume:
            self._after_event(proc)

    # -- the batched hot loop ----------------------------------------------

    def _handle_batch(self, proc: SimProcess, batch: ev.EventBatch,
                      horizon: int, ext: int, budget: int,
                      speculate: bool = False) -> int:
        """Consume references from ``batch`` in one tight loop.

        Bit-identity contract: each reference is serviced at exactly the
        cycle and in exactly the global order the per-event path would have
        used. The run loop guarantees the reference at ``cursor`` is
        globally first; later references are consumed only while their issue
        time stays below ``horizon`` — or below ``ext`` when a lookahead
        window was granted, in which case references past ``horizon`` must
        resolve invisibly (L1 fast-path full hits commute with everything
        the qualified rivals can do before ``ext``; see DESIGN.md).
        With ``speculate`` the extension is *not* pre-qualified: references
        past the horizon are consumed optimistically behind a
        micro-checkpoint and validated afterwards (see _speculative_run).
        Interrupt/signal/preemption flags only change when backend tasks
        run — never inside this loop — so they are evaluated once on entry:
        when delivery is due, exactly one reference is consumed (the
        per-event path polls after each reference too). Returns the number
        of references consumed.
        """
        cpu = proc.cpu
        cpu_state = self.comm.cpus[cpu]
        deliver = ((cpu_state.irq_pending and cpu_state.irq_enabled
                    and proc.intr_enabled and proc.mode != "interrupt")
                   or (not proc.kernel_mode
                       and self.signals.has_pending(proc.pid))
                   or proc.preempt_pending)
        limit = batch.n - batch.cursor
        if budget < limit:
            limit = budget
        if deliver:
            limit = 1
        pends = batch.pendings
        if speculate and ext > horizon and not deliver:
            consumed, i, t, added, fault, ext_refs = self._speculative_run(
                proc, batch, horizon, ext, limit)
        else:
            consumed, i, t, added, fault, ext_refs = self.memsys.access_run(
                proc.pid, cpu, batch.kinds, batch.addrs, batch.sizes, pends,
                batch.cursor, batch.n, batch.time, limit, horizon,
                horizon if speculate else ext,
                clock=self.gsched, serial=batch.serial, uhint=batch.uhint)
        n = batch.n
        batch.cursor = i
        batch.total = total = batch.total + added
        self._last_progress = self.gsched.now
        bs = self.batch_stats
        bs["batches"] += 1
        bs["refs"] += consumed
        if ext > horizon and not speculate:
            bs["la_windows"] += 1
            bs["la_refs"] += ext_refs
        self._recent_events.append((self.gsched.now, proc.pid, 9))
        if fault is not None:
            # the faulting reference re-runs via the ("retry", batch) meta;
            # its lead-in pending is already folded into vtime, so zero it
            bs["cut_fault"] += 1
            pends[i] = 0
            proc.vtime = t
            batch.time = t
            batch.depth = len(proc.frames)
            proc.pending_batches.append(batch)
            self._push_fault_handler(proc, batch, fault)
            self._charge(proc, batch.mode)
            self._after_event(proc)
            return consumed
        proc.vtime = t
        if i >= n:
            bs["completed"] += 1
            proc.reply = total
            self._charge(proc, batch.mode)
            self._after_event(proc)
            return consumed
        # cut with references remaining
        self._charge(proc, batch.mode)
        if deliver:
            # stash under the handler frames _after_event will push; _step
            # re-parks it when the stack unwinds back to this depth
            bs["cut_intr"] += 1
            batch.depth = len(proc.frames)
            proc.pending_batches.append(batch)
            proc.reply = None
            self._after_event(proc)
        else:
            bs["cut_horizon" if consumed < limit else "cut_budget"] += 1
            batch.time = t + pends[i]
            proc.port_event = batch
        return consumed

    def _invisible_bound(self, proc: SimProcess, event, cap: int) -> int:
        """Earliest cycle at which rival ``proc`` could next act
        *non-invisibly*, given its parked port event.

        Used by the lookahead scan: another frontend may safely consume
        invisible references up to this cycle without being reordered
        against anything ``proc`` can observe. When ``proc`` has a pending
        interrupt/signal/preemption, servicing its event pushes handler
        frames whose references cannot be bounded here, so no extension
        past its event time is granted. A parked batch is qualified
        reference-by-reference (read-only) up to ``cap``; a single memory
        event is qualified with one probe — after it, the rival's next
        event can be no earlier than its completion. Every other event
        kind (locks, syscalls, exit…) is non-invisible at its own time.
        """
        cpu_state = self.comm.cpus[proc.cpu]
        if ((cpu_state.irq_pending and cpu_state.irq_enabled
                and proc.intr_enabled and proc.mode != "interrupt")
                or (not proc.kernel_mode
                    and self.signals.has_pending(proc.pid))
                or proc.preempt_pending):
            return event.time
        kind = event.kind
        if kind == 9:
            return self.memsys.invisible_until(event.pid, proc.cpu, event,
                                               cap)
        if kind <= 2:
            lat = self.memsys.ref_invisible_latency(
                event.pid, proc.cpu, kind, event.addr, event.size)
            if lat >= 0:
                return event.time + lat
        return event.time

    # -- optimistic speculation (Time Warp-style; see DESIGN.md) -----------

    def _speculative_run(self, proc: SimProcess, batch: ev.EventBatch,
                         horizon: int, ext: int, limit: int):
        """Two-phase optimistic consume of one batch window.

        Phase 1 runs strictly conservatively below the rival horizon
        (slow paths, faults and all — everything there is globally first
        and commits unconditionally). If references remain, phase 2 takes
        a micro-checkpoint of the issuing CPU's private slice and drains
        on into ``[horizon, ext)`` *without* asking the rivals first.
        ``access_run`` confines that window to the L1 fast path by
        construction (the first slow reference at or past the horizon is
        cut unconsumed), so phase 2 can only have touched exactly the
        slice the micro-checkpoint captured — no faults, no protocol or
        page-table mutations, no task scheduling. Validation then asks
        the communicator for every rival's invisibility frontier: commit
        if all of them clear the window's end, else roll back and — when
        part of the window was proven safe — re-consume up to that bound.
        Either way the consumed reference stream, its timing, and every
        gated statistic are bit-identical to the conservative schedule;
        commit/rollback only decides how much progress survives.
        """
        ms = self.memsys
        gsched = self.gsched
        cpu = proc.cpu
        pends = batch.pendings
        c1, i, t, a1, fault, _ = ms.access_run(
            proc.pid, cpu, batch.kinds, batch.addrs, batch.sizes, pends,
            batch.cursor, batch.n, batch.time, limit, horizon, horizon,
            clock=gsched, serial=batch.serial, uhint=batch.uhint)
        if fault is not None or i >= batch.n or c1 >= limit:
            return c1, i, t, a1, fault, 0
        t0 = t + pends[i]
        if t0 >= ext:
            return c1, i, t, a1, None, 0
        bs = self.batch_stats
        bs["sp_windows"] += 1
        mck = self._micro_ckpt(ms, cpu, gsched)
        c2, i2, t2, a2, _f2, er2 = ms.access_run(
            proc.pid, cpu, batch.kinds, batch.addrs, batch.sizes, pends,
            i, batch.n, t0, limit - c1, horizon, ext,
            clock=gsched, serial=batch.serial, uhint=batch.uhint)
        if c2 == 0:
            # first window reference would take the slow path: nothing was
            # speculated, but the scalar loop already published its issue
            # time on the global clock — take that back
            gsched.now = mck._now
            return c1, i, t, a1, None, 0
        v = self.comm.speculation_bound(proc, horizon, t2,
                                        self._frontier_bound)
        if v >= t2:
            bs["sp_commits"] += 1
            bs["sp_refs"] += c2
            self._spec_row = 0
            q = self._spec_quantum << 1
            if q <= self._spec_quantum_max:
                self._spec_quantum = q
            return c1 + c2, i2, t2, a1 + a2, None, er2
        # violation: a rival could act inside [v, t2) — roll back, shrink
        # the quantum, and re-consume up to the proven-safe bound (the
        # re-run is a qualified conservative extension: no revalidation)
        mck.rollback()
        bs["sp_rollbacks"] += 1
        q = self._spec_quantum >> 1
        if q >= self._spec_quantum_min:
            self._spec_quantum = q
        self._spec_row += 1
        if (self._spec_max_rollbacks
                and self._spec_row >= self._spec_max_rollbacks):
            # thrashing: fall back to conservative lookahead for the rest
            # of the run (results are identical either way)
            self._spec_on = False
        if v <= t0:
            return c1, i, t, a1, None, 0
        c3, i3, t3, a3, _f3, er3 = ms.access_run(
            proc.pid, cpu, batch.kinds, batch.addrs, batch.sizes, pends,
            i, batch.n, t0, limit - c1, horizon, v,
            clock=gsched, serial=batch.serial, uhint=batch.uhint)
        bs["sp_refs"] += c3
        if c3 == 0:
            return c1, i, t, a1, None, 0
        return c1 + c3, i3, t3, a1 + a3, None, er3

    def _frontier_bound(self, proc: SimProcess, event, cap: int) -> int:
        """:meth:`_invisible_bound` with the memoized resumable walk —
        the validation-side qualifier. Delivery flags are checked fresh
        on every call; only the pure invisibility walk is memoised."""
        cpu_state = self.comm.cpus[proc.cpu]
        if ((cpu_state.irq_pending and cpu_state.irq_enabled
                and proc.intr_enabled and proc.mode != "interrupt")
                or (not proc.kernel_mode
                    and self.signals.has_pending(proc.pid))
                or proc.preempt_pending):
            return event.time
        kind = event.kind
        if kind == 9:
            return self.memsys.invisible_frontier(event.pid, proc.cpu,
                                                  event, cap,
                                                  self._spec_memo)
        if kind <= 2:
            lat = self.memsys.ref_invisible_latency(
                event.pid, proc.cpu, kind, event.addr, event.size)
            if lat >= 0:
                return event.time + lat
        return event.time

    # -- memory faults -----------------------------------------------------

    def _push_fault_handler(self, proc: SimProcess, event: ev.Event,
                            fault: MajorFault) -> None:
        """Major (file-backed) page fault: run the VM trap path, then retry
        the faulting reference — the paper's precise-trap mechanism."""
        frame = self.os_server.vm_fault_handler(proc, fault)
        proc.push_frame(frame, "kernel", ("retry", event))
        proc.reply = None
        self.stats.counter("major_fault_traps").add()

    # -- synchronisation -----------------------------------------------------

    def _do_lock(self, proc: SimProcess, event: ev.Event, now: int) -> bool:
        lid = event.arg
        lat, _ = self.memsys.access(proc.pid, lock_address(lid), 4, True,
                                    proc.cpu, now, atomic=True)
        proc.vtime += lat
        if self.locks.acquire(lid, proc):
            proc.reply = lat
            return True
        # contended: block through the process scheduler (AIX-style sleeping
        # lock — the CPU is handed to a ready process, §3.3.3; spinning
        # waiters would deadlock oversubscribed workloads because SYNCWAIT
        # processes emit no events and thus can never be preempted)
        self.stats.counter("lock_contention").add(key=lid)
        self._sync_park(proc, ProcState.SYNCWAIT)
        return False

    def _do_unlock(self, proc: SimProcess, event: ev.Event, now: int) -> None:
        lid = event.arg
        lat, _ = self.memsys.access(proc.pid, lock_address(lid), 4, True,
                                    proc.cpu, now)
        proc.vtime += lat
        proc.reply = lat
        nxt = self.locks.release(lid, proc)
        if nxt is not None:
            # lock-line handoff cost to the new holder
            self._sync_release(nxt, proc.vtime, reply=0)

    def _do_barrier(self, proc: SimProcess, event: ev.Event) -> bool:
        bid, count = event.arg
        released = self.barriers.arrive(bid, count, proc)
        if released is None:
            self._sync_park(proc, ProcState.SYNCWAIT)
            return False
        for w in released:
            self._sync_release(w, proc.vtime, reply=0)
        proc.reply = 0
        return True

    def _sync_park(self, proc: SimProcess, state: ProcState) -> None:
        """Wait for a lock/barrier grant: release the processor (the
        blocking-OS-call protocol of §3.3.3 applied to synchronisation)."""
        self._charge(proc, proc.mode)
        proc.state = state
        cpu_state = self.comm.cpus[proc.cpu]
        cpu_state.time = max(cpu_state.time, proc.vtime)
        self.comm.mark_not_running(proc)
        disp = self.procsched.release_cpu(proc)
        cpu_state.running_pid = -1
        cpu_state.idle_since = cpu_state.time
        if disp is not None:
            nxt, cpu = disp
            self._dispatch(nxt, cpu, max(self.gsched.now, cpu_state.time))
        else:
            self._interrupt_posted(cpu_state.index)

    def _sync_release(self, proc: SimProcess, at: int, reply: int) -> None:
        """Grant a lock/barrier to a parked process: back to the scheduler."""
        proc.vtime = max(proc.vtime, at, self.gsched.now)
        proc.reply = reply
        disp = self.procsched.admit(proc)
        if disp is not None:
            self._dispatch(disp[0], disp[1], proc.vtime)

    # -- syscalls ---------------------------------------------------------

    def _do_syscall(self, proc: SimProcess, event: ev.Event, now: int) -> None:
        name, args = event.arg
        entry = self.os_server.lookup(name)
        self.stats.syscall_counts[name] += 1
        if self._faults_on:
            injected = self.faults.syscall_fault(name)
            if injected is not None:
                # abort at syscall entry with the planned errno, before the
                # handler touches any functional state, so the caller's
                # retry re-executes the call from scratch; the cost mirrors
                # the category-2 accounting (entry + error return)
                errno, kcycles = injected
                proc.vtime += kcycles
                self.stats.cpu[proc.cpu].kernel += kcycles
                self.stats.syscall_cycles[name] += kcycles
                proc.reply = ev.SyscallResult(-1, errno)
                return
        if entry is None:
            proc.reply = ev.SyscallResult(-1, ev.ENOSYS)
            return
        category, handler = entry
        if category == 2:
            # backend-modeled (category 2): immediate effect, direct cost
            result, kcycles = handler(self, proc, *args)
            proc.vtime += kcycles
            self.stats.cpu[proc.cpu].kernel += kcycles
            self.stats.syscall_cycles[name] += kcycles
            proc.reply = result
            return
        # category 1: run instrumented kernel code in the OS thread
        sys_ctx = self.os_server.context_for(proc)
        frame = handler(sys_ctx, *args)
        proc.push_frame(frame, "kernel", ("syscall", (name, proc.vtime)))
        proc.reply = None

    # ------------------------------------------------------------------
    # stepping, interrupts, preemption
    # ------------------------------------------------------------------

    def _after_event(self, proc: SimProcess) -> None:
        """Post-processing at an event boundary: interrupt poll, preemption,
        then run the frontend ahead to its next event."""
        if proc.state != ProcState.RUNNING:
            return
        cpu_state = self.comm.cpus[proc.cpu]
        if (cpu_state.irq_pending and cpu_state.irq_enabled
                and proc.intr_enabled and proc.mode != "interrupt"):
            for intr in self.intctl.pending_for(proc.cpu):
                self.stats.interrupt_counts[intr.source] += 1
                frame = self.intctl.handler_frame(intr, proc.clock)
                proc.push_frame(frame, "interrupt",
                                ("interrupt", (intr, proc.reply, proc.vtime)))
                proc.reply = None
        if not proc.kernel_mode:
            signo = self.signals.pending_for(proc.pid)
            while signo is not None:
                # §4.1: the wrapper runs in user mode with event generation
                # disabled; pushing it costs nothing simulated
                frame = self.signals.wrapper_frame(proc, signo)
                proc.push_frame(frame, "user",
                                ("interrupt", (_SIGNAL_MARK, proc.reply,
                                               proc.vtime)))
                proc.reply = None
                signo = self.signals.pending_for(proc.pid)
        if proc.preempt_pending:
            proc.preempt_pending = False
            if not proc.kernel_mode and self.procsched.ready:
                self._preempt_now(proc)
                return
        self._step(proc)

    def _interrupt_posted(self, cpu: int) -> None:
        """Post-hook from the interrupt controller: when the target CPU has
        no event-producing frontend (idle, spinning on a lock/barrier, or its
        process just blocked), service the interrupt immediately — the idle
        loop takes interrupts without waiting for a memory event."""
        cpu_state = self.comm.cpus[cpu]
        if not cpu_state.irq_enabled:
            return
        pid = cpu_state.running_pid
        if pid >= 0:
            proc = self.comm.processes.get(pid)
            if (proc is not None and proc.state == ProcState.RUNNING
                    and proc.intr_enabled):
                return   # the frontend will poll the flag at its next event
            if proc is not None and not proc.intr_enabled:
                return   # masked: stays pending until re-enabled
        start = max(self.gsched.now, cpu_state.time)
        if pid < 0 and start > cpu_state.idle_since:
            self.stats.cpu[cpu].idle += start - cpu_state.idle_since
        # charge all handler time first: wake actions may dispatch a process
        # onto this very CPU, and it must see the post-handler clock
        pending = self.intctl.pending_for(cpu)
        t = start
        for intr in pending:
            self.stats.interrupt_counts[intr.source] += 1
            self.stats.interrupt_cycles[intr.source] += intr.handler_cycles
            self.stats.cpu[cpu].interrupt += intr.handler_cycles
            t += intr.handler_cycles
        cpu_state.time = t
        if pid < 0:
            cpu_state.idle_since = t
        for intr in pending:
            self.intctl.direct_service(intr)

    def _preempt_tick(self, cpu: int, now: int) -> None:
        """Timer hook: flag the process on ``cpu`` for pre-emption once it
        has held the CPU for a full quantum (the paper's changeable
        pre-emption interval)."""
        pid = self.procsched.on_cpu[cpu]
        if pid >= 0:
            p = self.comm.processes.get(pid)
            if (p is not None and p.state == ProcState.RUNNING
                    and now - p.run_since >= self.cfg.os.quantum):
                p.preempt_pending = True

    def _preempt_now(self, proc: SimProcess) -> None:
        cs = self.cfg.os.ctx_switch_cycles
        proc.vtime += cs
        self.stats.cpu[proc.cpu].ctx_switch += cs
        proc.acct_mark = proc.vtime
        cpu_state = self.comm.cpus[proc.cpu]
        cpu_state.time = max(cpu_state.time, proc.vtime)
        self.comm.mark_not_running(proc)
        disp = self.procsched.preempt(proc)
        if disp is None:
            # nobody was waiting after all: keep running, restart the quantum
            proc.run_since = proc.vtime
            self.comm.mark_running(proc)
            proc.state = ProcState.RUNNING
            self._step(proc)
            return
        cpu_state.running_pid = -1
        cpu_state.idle_since = cpu_state.time
        nxt, cpu = disp
        self._dispatch(nxt, cpu, max(self.gsched.now, cpu_state.time))

    # -- blocking / waking (paper §3.3.3) ------------------------------------

    def _block(self, proc: SimProcess, token: WaitToken) -> None:
        if token.woken:
            # completion raced ahead of the block: resume immediately
            proc.reply = token.value
            self._step(proc)
            return
        proc.state = ProcState.BLOCKED
        proc.wait = token
        token.waker = lambda t, p=proc: self._token_woken(p, t)
        cpu_state = self.comm.cpus[proc.cpu]
        cpu_state.time = max(cpu_state.time, proc.vtime)
        self.comm.mark_not_running(proc)
        disp = self.procsched.release_cpu(proc)
        cpu_state.running_pid = -1
        cpu_state.idle_since = cpu_state.time
        if disp is not None:
            nxt, cpu = disp
            self._dispatch(nxt, cpu, max(self.gsched.now, cpu_state.time))
        else:
            self._interrupt_posted(cpu_state.index)

    def _token_woken(self, proc: SimProcess, token: WaitToken) -> None:
        if proc.state != ProcState.BLOCKED or proc.wait is not token:
            return
        self._last_progress = max(self._last_progress, self.gsched.now)
        proc.wait = None
        proc.reply = token.value
        proc.vtime = max(proc.vtime, self.gsched.now)
        disp = self.procsched.admit(proc)
        if disp is not None:
            self._dispatch(disp[0], disp[1], self.gsched.now)

    def _dispatch(self, proc: SimProcess, cpu: int, at: int) -> None:
        """Bind ``proc`` to ``cpu`` at cycle ``at`` (plus context switch)."""
        cpu_state = self.comm.cpus[cpu]
        start = max(at, cpu_state.time)
        if cpu_state.running_pid < 0 and start > cpu_state.idle_since:
            self.stats.cpu[cpu].idle += start - cpu_state.idle_since
        cs = self.cfg.os.ctx_switch_cycles
        self.stats.cpu[cpu].ctx_switch += cs
        proc.vtime = max(proc.vtime, start) + cs
        proc.acct_mark = proc.vtime
        proc.run_since = proc.vtime
        cpu_state.time = proc.vtime
        cpu_state.running_pid = proc.pid
        self.comm.mark_running(proc)
        self._step(proc)

    # -- the stepper ----------------------------------------------------------

    def _step(self, proc: SimProcess) -> None:
        """Run the frontend ahead until it parks an event at its port,
        blocks on a wait token, or exits."""
        send_val = proc.reply
        proc.reply = None
        while True:
            pb = proc.pending_batches
            if pb and len(proc.frames) == pb[-1].depth:
                # the frames stacked above a half-consumed batch have all
                # unwound: put it back at the port instead of resuming the
                # generator (which is still suspended at its yield)
                b = pb.pop()
                b.time = proc.vtime + b.pendings[b.cursor]
                proc.port_event = b
                return
            top = proc.frames[-1]
            try:
                out = top.send(send_val)
            except StopIteration as si:
                if len(proc.frames) == 1:
                    self._on_exit(proc, si.value)
                    return
                kind, payload = proc.pop_frame()
                if kind == "syscall":
                    # kernel CPU time is attributed per syscall in _charge
                    # (wall time would double-count disk-blocked waits)
                    rv = si.value
                    if not isinstance(rv, ev.SyscallResult):
                        rv = ev.SyscallResult(rv if rv is not None else 0)
                    send_val = rv
                elif kind == "interrupt":
                    intr, saved, t0 = payload
                    self.stats.interrupt_cycles[intr.source] += (
                        proc.vtime - t0)
                    send_val = saved
                elif kind == "retry":
                    orig = payload
                    if orig.kind == 9:   # half-consumed EventBatch
                        c = orig.cursor
                        k = orig.kinds[c]
                        lat, major = self.memsys.access(
                            proc.pid, orig.addrs[c], orig.sizes[c],
                            k != 0, proc.cpu, self.gsched.now,
                            atomic=(k == 2))
                        if major is not None:
                            frame = self.os_server.vm_fault_handler(
                                proc, major)
                            proc.push_frame(frame, "kernel",
                                            ("retry", orig))
                            send_val = None
                            continue
                        proc.vtime += lat
                        self._charge(proc, orig.mode)
                        orig.total += lat
                        orig.cursor = c + 1
                        proc.pending_batches.pop()
                        if orig.cursor >= orig.n:
                            # batch done: resume the generator with the
                            # aggregate latency, as one yield reply
                            send_val = orig.total
                            continue
                        orig.time = proc.vtime + orig.pendings[orig.cursor]
                        proc.port_event = orig
                        return
                    lat, major = self.memsys.access(
                        proc.pid, orig.addr, orig.size,
                        orig.kind != ev.EvKind.READ, proc.cpu,
                        self.gsched.now,
                        atomic=(orig.kind == ev.EvKind.RMW))
                    if major is not None:
                        frame = self.os_server.vm_fault_handler(proc, major)
                        proc.push_frame(frame, "kernel", ("retry", orig))
                        send_val = None
                        continue
                    proc.vtime += lat
                    self._charge(proc, orig.mode)
                    send_val = lat
                else:  # pragma: no cover
                    raise FrontendError(f"bad frame meta {kind!r}")
                continue
            if isinstance(out, WaitToken):
                self._charge(proc, proc.mode)
                self._block(proc, out)
                return
            if out.kind == 9:
                # an EventBatch: per-reference pendings are already folded
                # into the batch (clock.pending holds only cycles belonging
                # to whatever the producer yields next, so leave it alone)
                out.time = proc.vtime + out.pendings[out.cursor]
                out.pid = proc.pid
                out.mode = proc.mode
                out.kernel = proc.kernel_mode
                proc.port_event = out
                return
            # an Event: stamp it and park it at the event port
            out.time = proc.vtime + proc.clock.pending
            proc.clock.pending = 0
            proc.vtime = out.time
            out.pid = proc.pid
            out.mode = proc.mode
            out.kernel = proc.kernel_mode
            proc.port_event = out
            return

    def watch_exit(self, pid: int, token: WaitToken) -> None:
        """Wake ``token`` when process ``pid`` exits (waitpid support)."""
        proc = self.comm.processes.get(pid)
        if proc is None or proc.state == ProcState.DONE:
            token.wake(proc.exit_status if proc else -1)
            return
        self._exit_watchers.setdefault(pid, []).append(token)

    def _on_exit(self, proc: SimProcess, status: Any) -> None:
        proc.state = ProcState.DONE
        self._live -= 1
        if proc.exit_status is None:
            proc.exit_status = status if isinstance(status, int) else 0
        self._charge(proc, "user")
        self.signals.clear(proc.pid)
        for token in self._exit_watchers.pop(proc.pid, []):
            token.wake(proc.exit_status)
        self.comm.mark_not_running(proc)
        self.os_server.unpair(proc)
        if proc.cpu >= 0:
            cpu_state = self.comm.cpus[proc.cpu]
            cpu_state.time = max(cpu_state.time, proc.vtime)
            disp = self.procsched.release_cpu(proc)
            cpu_state.running_pid = -1
            cpu_state.idle_since = cpu_state.time
            if disp is not None:
                nxt, cpu = disp
                self._dispatch(nxt, cpu, max(self.gsched.now, cpu_state.time))
        else:
            self.procsched.remove(proc)

    # -- accounting -----------------------------------------------------------

    def _charge(self, proc: SimProcess, mode: str) -> None:
        delta = proc.vtime - proc.acct_mark
        if delta <= 0 or proc.cpu < 0:
            return
        c = self.stats.cpu[proc.cpu]
        if mode == "kernel":
            c.kernel += delta
            for meta in reversed(proc.frame_meta):
                if meta[0] == "syscall":
                    self.stats.syscall_cycles[meta[1][0]] += delta
                    break
                if meta[0] == "retry":
                    self.stats.syscall_cycles["__vm_fault"] += delta
                    break
        elif mode == "interrupt":
            c.interrupt += delta
        else:
            c.user += delta
        proc.acct_mark = proc.vtime
        cpu_state = self.comm.cpus[proc.cpu]
        if proc.vtime > cpu_state.time:
            cpu_state.time = proc.vtime
