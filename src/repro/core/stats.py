"""Statistics registry.

Every component registers counters/accumulators here; the harness reads them
to build the paper's tables. Counters are plain ints updated in hot paths;
grouping and percentage math happen only at report time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple


class Counter:
    """A named integer counter with optional per-key breakdown."""

    __slots__ = ("name", "total", "by_key")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0
        self.by_key: Dict[object, int] = {}

    def add(self, n: int = 1, key: object = None) -> None:
        """Increment by ``n``; also attribute to ``key`` when given."""
        self.total += n
        if key is not None:
            self.by_key[key] = self.by_key.get(key, 0) + n

    def state_dict(self) -> Dict[str, object]:
        return {"total": self.total, "by_key": dict(self.by_key)}

    def load_state(self, state: Dict[str, object]) -> None:
        self.total = state["total"]
        self.by_key = dict(state["by_key"])

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.total})"


class CpuTimeStats:
    """Per-CPU busy-time decomposition used for the paper's Table 1.

    The paper splits CPU time (excluding disk-wait idle) into *user*,
    *kernel* (system calls) and *interrupt handler* time. We track cycles for
    each bucket per simulated CPU, plus idle cycles separately so that the
    percentages can exclude I/O wait as the paper does.
    """

    __slots__ = ("user", "kernel", "interrupt", "idle", "ctx_switch")

    def __init__(self) -> None:
        self.user = 0
        self.kernel = 0
        self.interrupt = 0
        self.idle = 0
        self.ctx_switch = 0

    @property
    def busy(self) -> int:
        """Cycles the CPU spent executing anything (excludes idle)."""
        return self.user + self.kernel + self.interrupt + self.ctx_switch

    def state_dict(self) -> Dict[str, int]:
        return {"user": self.user, "kernel": self.kernel,
                "interrupt": self.interrupt, "idle": self.idle,
                "ctx_switch": self.ctx_switch}

    def load_state(self, state: Dict[str, int]) -> None:
        self.user = state["user"]
        self.kernel = state["kernel"]
        self.interrupt = state["interrupt"]
        self.idle = state["idle"]
        self.ctx_switch = state["ctx_switch"]

    def breakdown(self) -> Dict[str, float]:
        """Fractions of busy time per bucket (paper's Table 1 convention)."""
        b = self.busy
        if b == 0:
            return {"user": 0.0, "kernel": 0.0, "interrupt": 0.0, "os": 0.0}
        return {
            "user": self.user / b,
            "kernel": self.kernel / b,
            "interrupt": self.interrupt / b,
            "os": (self.kernel + self.interrupt) / b,
        }


class StatsRegistry:
    """Central statistics store shared by all simulator components."""

    def __init__(self, num_cpus: int = 1) -> None:
        self.counters: Dict[str, Counter] = {}
        self.cpu: list[CpuTimeStats] = [CpuTimeStats() for _ in range(num_cpus)]
        #: cycles spent per syscall name (kernel-mode service time)
        self.syscall_cycles: Dict[str, int] = defaultdict(int)
        self.syscall_counts: Dict[str, int] = defaultdict(int)
        #: cycles spent per interrupt source name
        self.interrupt_cycles: Dict[str, int] = defaultdict(int)
        self.interrupt_counts: Dict[str, int] = defaultdict(int)
        #: final simulated cycle count (set by the engine at completion)
        self.end_cycle = 0
        #: wall-clock seconds the host spent simulating (set by harness)
        self.host_seconds = 0.0

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def get(self, name: str) -> int:
        """Total of counter ``name`` (0 when absent)."""
        c = self.counters.get(name)
        return c.total if c else 0

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of every statistic."""
        return {
            "counters": {n: c.state_dict() for n, c in self.counters.items()},
            "cpu": [c.state_dict() for c in self.cpu],
            "syscall_cycles": dict(self.syscall_cycles),
            "syscall_counts": dict(self.syscall_counts),
            "interrupt_cycles": dict(self.interrupt_cycles),
            "interrupt_counts": dict(self.interrupt_counts),
            "end_cycle": self.end_cycle,
            "host_seconds": self.host_seconds,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot in place. The registry object itself and its
        per-CPU :class:`CpuTimeStats` objects are preserved (engine, memory
        system and fault injector all hold references to them)."""
        self.counters.clear()
        for name, cs in state["counters"].items():
            c = Counter(name)
            c.load_state(cs)
            self.counters[name] = c
        for c, cs in zip(self.cpu, state["cpu"]):
            c.load_state(cs)
        for attr in ("syscall_cycles", "syscall_counts",
                     "interrupt_cycles", "interrupt_counts"):
            d = getattr(self, attr)
            d.clear()
            d.update(state[attr])
        self.end_cycle = state["end_cycle"]
        self.host_seconds = state["host_seconds"]

    # -- aggregate views -----------------------------------------------------

    def total_cpu(self) -> CpuTimeStats:
        """Sum of all per-CPU time buckets."""
        agg = CpuTimeStats()
        for c in self.cpu:
            agg.user += c.user
            agg.kernel += c.kernel
            agg.interrupt += c.interrupt
            agg.idle += c.idle
            agg.ctx_switch += c.ctx_switch
        return agg

    def top_syscalls(self, n: int = 10) -> list[Tuple[str, int, int]]:
        """The ``n`` syscalls with the most kernel cycles:
        ``(name, cycles, count)`` sorted descending by cycles."""
        items = [
            (name, cyc, self.syscall_counts.get(name, 0))
            for name, cyc in self.syscall_cycles.items()
        ]
        items.sort(key=lambda t: -t[1])
        return items[:n]

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict summary suitable for printing or JSON dumping."""
        agg = self.total_cpu()
        return {
            "end_cycle": self.end_cycle,
            "cpu": agg.breakdown(),
            "cpu_busy_cycles": agg.busy,
            "cpu_idle_cycles": agg.idle,
            "counters": {k: v.total for k, v in sorted(self.counters.items())},
            "top_syscalls": self.top_syscalls(),
            "interrupts": dict(self.interrupt_cycles),
        }
