"""Checkpoint-based sampled simulation (SimConfig.sampling).

SMARTS/gem5-style windowing for the engine: run ``detail_events`` in full
detail, then ``ff_events`` in functional fast-forward (the memory system's
ff mode: translation + cache warming, constant calibrated latency, no
protocol/interconnect modeling), and repeat. Window boundaries are counted
in processed events, so the schedule — and therefore the whole sampled run —
is deterministic for a given workload.

Calibration: unless ``ff_latency`` pins a constant, each fast-forward window
charges the mean reference latency measured over the preceding detail
window (slow-path latency from ``lat_slow`` plus one L1 hit time per
fast-path hit), with the fractional part spread by a deterministic error
accumulator. Commercial workloads' phase behaviour makes this a good local
predictor; the error-bound tests in tests/test_sampling.py and the
EXPERIMENTS.md table quantify it.

Checkpoint composition: with ``checkpoint_windows`` on (requires the
checkpoint subsystem), a snapshot is saved at every fast-forward -> detail
transition under ``<checkpoint_path>.w<N>``, so any detail window can be
re-run or inspected from its exact start state with
``repro.checkpoint.resume``. During checkpoint *replay* the controller
stands down — the reply log already encodes every latency the recorded run
saw, ff windows included.
"""

from __future__ import annotations

from typing import List


class SamplingController:
    """Flips the memory system between detail and fast-forward windows."""

    def __init__(self, engine, cfg) -> None:
        self.engine = engine
        self.cfg = cfg
        #: per-window log: kind, start event/cycle, calibrated latency
        self.windows: List[dict] = []
        self.in_ff = False
        self._next_switch = cfg.detail_events
        self._win_idx = 0
        self._mark = (0, 0, 0)      # (accesses, lat_slow, fast_hits)
        self.windows.append({"window": 0, "kind": "detail",
                             "start_events": 0, "start_cycle": 0})

    # -- calibration -------------------------------------------------------

    def _calibrate(self, ms) -> float:
        if self.cfg.ff_latency > 0:
            return float(self.cfg.ff_latency)
        a0, s0, f0 = self._mark
        refs = ms.accesses - a0
        if refs <= 0:
            return float(ms._l1_latency)
        lat = (ms.lat_slow - s0) + (ms.fast_hits - f0) * ms._l1_latency
        return lat / refs

    # -- the engine hook ---------------------------------------------------

    def on_loop_top(self, engine) -> None:
        if engine.events_processed < self._next_switch:
            return
        ck = engine._ckpt
        if ck is not None and ck.mode != "record":
            # replaying: recorded replies already carry the sampled timing
            return
        ms = engine.memsys
        ms = getattr(ms, "real", ms)   # unwrap Recording/ReplayMemory
        if not self.in_ff:
            if self.cfg.ff_events <= 0:
                self._next_switch = 1 << 62
                return
            mean = self._calibrate(ms)
            ms.ff_begin(mean)
            self.in_ff = True
            self.windows.append({
                "window": self._win_idx, "kind": "ff",
                "start_events": engine.events_processed,
                "start_cycle": engine.gsched.now,
                "ff_latency": mean,
            })
            self._next_switch = (engine.events_processed
                                 + self.cfg.ff_events)
        else:
            ms.ff_end()
            self.in_ff = False
            self._win_idx += 1
            self._mark = (ms.accesses, ms.lat_slow, ms.fast_hits)
            self.windows.append({
                "window": self._win_idx, "kind": "detail",
                "start_events": engine.events_processed,
                "start_cycle": engine.gsched.now,
            })
            if self.cfg.checkpoint_windows and ck is not None:
                ck.save(path=f"{ck.path}.w{self._win_idx}")
            self._next_switch = (engine.events_processed
                                 + self.cfg.detail_events)

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> dict:
        """The window schedule position (replay stands down, so a resumed
        run must restore this rather than re-deriving it)."""
        return {
            "windows": [dict(w) for w in self.windows],
            "in_ff": self.in_ff,
            "next_switch": self._next_switch,
            "win_idx": self._win_idx,
            "mark": tuple(self._mark),
        }

    def load_state(self, state: dict) -> None:
        self.windows = [dict(w) for w in state["windows"]]
        self.in_ff = state["in_ff"]
        self._next_switch = state["next_switch"]
        self._win_idx = state["win_idx"]
        self._mark = tuple(state["mark"])

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        ms = getattr(self.engine.memsys, "real", self.engine.memsys)
        detail = sum(1 for w in self.windows if w["kind"] == "detail")
        ff = sum(1 for w in self.windows if w["kind"] == "ff")
        return {
            "detail_windows": detail,
            "ff_windows": ff,
            "ff_refs": ms.ff_refs,
            "detail_refs": ms.accesses - ms.ff_refs,
            "ff_latencies": [w["ff_latency"] for w in self.windows
                             if w["kind"] == "ff"],
        }
