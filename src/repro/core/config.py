"""Configuration dataclasses for the simulated machine.

A :class:`SimConfig` fully describes one simulation: the target multiprocessor
(CPUs, caches, memory organisation, coherence protocol), the modeled OS
(process scheduler, page placement, costs), and the physical devices. The
paper's two reference backends are provided as constructors:

* :func:`simple_backend` — one level of cache per processor over flat memory
  (the "Simple Backend" of Table 2);
* :func:`complex_backend` — two cache levels, buses/interconnect, memory and
  coherence controllers for a CC-NUMA system (the "Complex Backend").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .clock import ClockDomain
from .errors import ConfigError


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size: int = 32 * 1024
    line_size: int = 32
    assoc: int = 4
    #: access latency in cycles (hit time)
    latency: int = 1
    write_back: bool = True

    def validate(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError(f"line_size must be a power of two, got {self.line_size}")
        if self.size <= 0 or self.size % self.line_size:
            raise ConfigError("cache size must be a positive multiple of line_size")
        n_lines = self.size // self.line_size
        if self.assoc <= 0 or n_lines % self.assoc:
            raise ConfigError(
                f"associativity {self.assoc} does not divide {n_lines} lines"
            )
        if self.latency < 0:
            raise ConfigError("cache latency must be non-negative")

    @property
    def n_sets(self) -> int:
        return self.size // self.line_size // self.assoc


@dataclass(frozen=True, slots=True)
class MemoryConfig:
    """Main-memory organisation and NUMA parameters."""

    #: DRAM access latency (cycles) at the local memory controller
    dram_latency: int = 60
    #: number of NUMA nodes (1 = centralised UMA memory)
    num_nodes: int = 1
    #: extra cycles for each network hop on remote access
    hop_latency: int = 20
    #: directory / coherence-controller occupancy per request (cycles)
    dir_latency: int = 10
    #: bus arbitration+transfer time per bus transaction (cycles)
    bus_latency: int = 8
    #: page size in bytes (AIX uses 4 KiB)
    page_size: int = 4096
    #: physical memory per node (bytes)
    node_mem_bytes: int = 1 << 30
    #: page placement policy: "round_robin" | "block" | "first_touch"
    placement: str = "first_touch"

    def validate(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigError(f"page_size must be a power of two, got {self.page_size}")
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.placement not in ("round_robin", "block", "first_touch"):
            raise ConfigError(f"unknown placement policy {self.placement!r}")
        for name in ("dram_latency", "hop_latency", "dir_latency", "bus_latency"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True, slots=True)
class BackendConfig:
    """Architecture-model selection: how much detail the backend simulates."""

    #: "simple" = 1-level cache over flat memory; "complex" = full hierarchy
    detail: str = "complex"
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size=32 * 1024,
                                                                line_size=32,
                                                                assoc=4,
                                                                latency=1))
    l2: Optional[CacheConfig] = field(default_factory=lambda: CacheConfig(
        size=512 * 1024, line_size=32, assoc=8, latency=8))
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: coherence protocol: "mesi" (bus snooping), "directory" (CC-NUMA),
    #: "coma" (attraction memory), "dsm" (page-based software DSM),
    #: "none" (private caches, no sharing cost model — simple backend)
    coherence: str = "directory"

    def validate(self) -> None:
        if self.detail not in ("simple", "complex"):
            raise ConfigError(f"unknown backend detail {self.detail!r}")
        self.l1.validate()
        if self.detail == "complex":
            if self.l2 is None:
                raise ConfigError("complex backend requires an L2 cache")
            self.l2.validate()
            if self.l2.line_size != self.l1.line_size:
                raise ConfigError("L1/L2 line sizes must match")
        if self.coherence not in ("mesi", "directory", "coma", "dsm", "none"):
            raise ConfigError(f"unknown coherence protocol {self.coherence!r}")
        self.memory.validate()


@dataclass(frozen=True, slots=True)
class OSConfig:
    """Category-2 OS modeling knobs (scheduler, VM, costs)."""

    #: process scheduler: "fcfs" | "affinity"
    scheduler: str = "fcfs"
    #: enable pre-emption (composes with either scheduler, per §3.3.2)
    preemptive: bool = False
    #: pre-emption interval in cycles (the paper's changeable interval)
    quantum: int = 1_000_000
    #: context-switch cost in cycles (direct cost charged to the CPU)
    ctx_switch_cycles: int = 2_000
    #: interval-timer tick period in cycles (AIX 100 Hz at 133 MHz ≈ 1.33 M)
    timer_interval: int = 1_330_000
    #: cycles of kernel work per timer tick (decrementer handler)
    timer_handler_cycles: int = 400
    #: maximum open file descriptors per process
    max_fds: int = 256

    def validate(self) -> None:
        if self.scheduler not in ("fcfs", "affinity"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        if self.quantum <= 0:
            raise ConfigError("quantum must be positive")
        if self.ctx_switch_cycles < 0:
            raise ConfigError("ctx_switch_cycles must be non-negative")
        if self.timer_interval <= 0:
            raise ConfigError("timer_interval must be positive")


@dataclass(frozen=True, slots=True)
class DiskConfig:
    """Hard-disk model parameters (1990s SCSI disk defaults)."""

    avg_seek_ms: float = 8.0
    rpm: int = 7200
    transfer_mb_s: float = 10.0
    #: fixed controller overhead per request (µs)
    controller_us: float = 100.0
    #: cycles of kernel work in the disk interrupt handler
    intr_handler_cycles: int = 3_000

    def validate(self) -> None:
        if self.rpm <= 0 or self.transfer_mb_s <= 0 or self.avg_seek_ms < 0:
            raise ConfigError("invalid disk parameters")


@dataclass(frozen=True, slots=True)
class EthernetConfig:
    """Ethernet NIC model parameters (100 Mb/s era)."""

    bandwidth_mb_s: float = 12.5  # 100 Mbit/s
    #: per-frame fixed latency (µs)
    frame_us: float = 50.0
    mtu: int = 1500
    #: cycles of kernel work in the ethernet interrupt handler per frame
    intr_handler_cycles: int = 4_000

    def validate(self) -> None:
        if self.bandwidth_mb_s <= 0 or self.mtu <= 0:
            raise ConfigError("invalid ethernet parameters")


@dataclass(frozen=True, slots=True)
class SamplingConfig:
    """Checkpoint-based sampled simulation (SMARTS/gem5-style windows).

    The run alternates *detail* windows (full timing, every model engaged)
    with *fast-forward* windows (functional cache warming only: references
    update translation and cache contents but are charged a constant
    calibrated latency, with no protocol/interconnect/occupancy modeling).
    Window boundaries are measured in processed events, so the schedule is
    deterministic for a given workload. Sampled runs are explicitly
    *approximate*: gated by the error-bound tests in tests/test_sampling.py
    and the measured error table in EXPERIMENTS.md, not by bit-identity.
    """

    #: events simulated in full detail per window
    detail_events: int = 20_000
    #: events fast-forwarded between detail windows (0 = never fast-forward)
    ff_events: int = 80_000
    #: constant per-reference latency charged while fast-forwarding; 0.0 =
    #: auto-calibrate from the mean reference latency of the preceding
    #: detail window (fractional parts are spread deterministically)
    ff_latency: float = 0.0
    #: with checkpointing enabled, save a snapshot at each fast-forward ->
    #: detail transition (path suffix ``.w<N>``) so any detail window can
    #: be re-run or inspected from its exact start state
    checkpoint_windows: bool = False

    def validate(self) -> None:
        if self.detail_events <= 0:
            raise ConfigError("sampling.detail_events must be positive")
        if self.ff_events < 0:
            raise ConfigError("sampling.ff_events must be >= 0")
        if self.ff_latency < 0:
            raise ConfigError("sampling.ff_latency must be >= 0")


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Complete simulation configuration."""

    #: number of simulated processors
    num_cpus: int = 4
    clock: ClockDomain = field(default_factory=ClockDomain)
    backend: BackendConfig = field(default_factory=BackendConfig)
    os: OSConfig = field(default_factory=OSConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    ethernet: EthernetConfig = field(default_factory=EthernetConfig)
    #: deadlock-detection: max events with no progress before aborting
    max_cycles: int = 1 << 62
    #: instrumentation ON/OFF default (the paper's Simulation switch)
    instrument_default: bool = True
    #: batched event pipeline + L1 fast-path filter (bit-identical timing;
    #: turn off to force the one-event-per-reference path, e.g. for
    #: equivalence testing or interleaving ablations)
    fastpath: bool = True
    #: basic-block translation cache for interpreted ISA frontends: compile
    #: each block to a specialized closure (bit-identical results; see
    #: src/repro/isa/translate.py). Turn off to force the generic opcode
    #: dispatch loop, e.g. for equivalence testing.
    translate: bool = True
    #: conservative lookahead windows: grant the earliest frontend a safe
    #: window past the strict rival horizon during which provably-invisible
    #: (private L1-hit) batched references drain without re-consulting rival
    #: ports, and let ParallelEngine workers time such runs worker-side.
    #: Bit-identical to the strict scheduler; turn off to force the PR 1
    #: next-rival-event cut, e.g. for equivalence testing.
    lookahead: bool = True
    #: how far past the strict horizon a lookahead window may reach, in
    #: cycles. 0 = auto: scaled from the protocol's min_remote_latency()
    #: (see DESIGN.md "Conservative lookahead windows").
    lookahead_cycles: int = 0
    #: fire-and-forget batch size used by ParallelEngine workers (events
    #: per pipe message)
    worker_batch: int = 64
    #: ParallelEngine worker-side timing: a worker requests an exclusive
    #: window lease after this many consecutive full fire-and-forget
    #: batches. 0 disables worker-side timing (leases also require
    #: ``lookahead``).
    worker_lease: int = 4
    #: optional deterministic fault-injection plan (a repro.faults.FaultPlan;
    #: kept untyped here to avoid a config -> faults import cycle). None or
    #: an empty plan disables the subsystem entirely: no hooks are bound and
    #: runs are bit-identical to a build without it.
    faults: Optional[object] = None
    #: engine watchdog: consecutive scheduler rounds with global time frozen
    #: before the run is declared livelocked and aborted with a structured
    #: DeadlockError. The default is far above anything a legitimate
    #: workload produces at one cycle.
    watchdog_rounds: int = 1_000_000
    #: checkpoint/restore: autosave an engine checkpoint to this path every
    #: ``checkpoint_interval`` processed events. 0 disables the subsystem
    #: entirely — no manager is created, no wrapper is installed, and runs
    #: are bit-identical to a build without it.
    checkpoint_path: Optional[str] = None
    checkpoint_interval: int = 0
    #: vectorized batch fast path: mirror the L1 tag/state arrays and page
    #: tables as numpy arrays so a whole EventBatch is classified in one
    #: vectorized tag-compare and all-hit prefixes retire in bulk array ops
    #: (bit-identical timing; requires ``fastpath``; silently degrades to
    #: the scalar loop when numpy is unavailable). Turn off to force the
    #: scalar fast path, e.g. for equivalence testing.
    vectorized: bool = True
    #: sampled-simulation schedule (a SamplingConfig) alternating detailed
    #: windows with functional fast-forward. None = full detail (default);
    #: sampled runs are approximate — see SamplingConfig.
    sampling: Optional[SamplingConfig] = None
    #: optimistic (Time Warp-style) speculative execution: instead of
    #: qualifying a lookahead window against every rival up front, the
    #: engine consumes provably-invisible references straight through to
    #: ``horizon + speculate_quantum`` after taking a micro-checkpoint of
    #: the issuing CPU's private state, validates the window afterwards,
    #: and rolls only that CPU back when a rival could have intervened
    #: (bit-identical either way — see DESIGN.md "Speculative execution").
    #: Automatically stands down wherever leases are denied today:
    #: checkpoint record/replay, memory taps, sampled fast-forward.
    speculate: bool = True
    #: speculation window length in cycles past the strict rival horizon.
    #: 0 = auto: start from the lookahead scale and adapt — shrink on
    #: rollback, grow on commit (the vec-path accept-based backoff shape).
    speculate_quantum: int = 0
    #: consecutive rollbacks tolerated before speculation disables itself
    #: for the rest of the run (a thrash guard; 0 = never disable)
    speculate_max_rollbacks: int = 64

    def validate(self) -> "SimConfig":
        if self.num_cpus <= 0:
            raise ConfigError("num_cpus must be positive")
        self.backend.validate()
        self.os.validate()
        self.disk.validate()
        self.ethernet.validate()
        if self.watchdog_rounds <= 0:
            raise ConfigError("watchdog_rounds must be positive")
        if self.lookahead_cycles < 0:
            raise ConfigError("lookahead_cycles must be >= 0")
        if self.worker_batch <= 0:
            raise ConfigError("worker_batch must be positive")
        if self.worker_lease < 0:
            raise ConfigError("worker_lease must be >= 0")
        if self.speculate_quantum < 0:
            raise ConfigError("speculate_quantum must be >= 0")
        if self.speculate_max_rollbacks < 0:
            raise ConfigError("speculate_max_rollbacks must be >= 0")
        if self.faults is not None:
            self.faults.validate()
        if self.checkpoint_interval < 0:
            raise ConfigError("checkpoint_interval must be >= 0")
        if self.checkpoint_interval > 0 and not self.checkpoint_path:
            raise ConfigError(
                "checkpoint_interval requires a checkpoint_path")
        if self.checkpoint_path and self.checkpoint_interval <= 0:
            raise ConfigError(
                "checkpoint_path requires checkpoint_interval > 0")
        if self.sampling is not None:
            self.sampling.validate()
            if self.sampling.checkpoint_windows and not self.checkpoint_path:
                raise ConfigError(
                    "sampling.checkpoint_windows requires checkpointing "
                    "(checkpoint_path + checkpoint_interval)")
        if self.backend.coherence == "mesi" and self.backend.memory.num_nodes > 1:
            raise ConfigError("MESI bus snooping models a single-node SMP")
        return self


def simple_backend(num_cpus: int = 1, **kw) -> SimConfig:
    """Paper's *Simple Backend*: one cache level per CPU over flat memory."""
    be = BackendConfig(
        detail="simple",
        l1=CacheConfig(size=32 * 1024, line_size=32, assoc=4, latency=1),
        l2=None,
        coherence="none",
        memory=MemoryConfig(num_nodes=1),
    )
    return SimConfig(num_cpus=num_cpus, backend=be, **kw).validate()


def complex_backend(num_cpus: int = 4, num_nodes: int = 0,
                    coherence: str = "directory", **kw) -> SimConfig:
    """Paper's *Complex Backend*: two cache levels + full CC-NUMA system.

    ``num_nodes`` defaults to one node per CPU pair (at least 1).
    """
    if num_nodes <= 0:
        num_nodes = max(1, num_cpus // 2)
    if coherence == "mesi":
        num_nodes = 1
    be = BackendConfig(
        detail="complex",
        coherence=coherence,
        memory=MemoryConfig(num_nodes=num_nodes),
    )
    return SimConfig(num_cpus=num_cpus, backend=be, **kw).validate()


def with_os(cfg: SimConfig, **os_kw) -> SimConfig:
    """Return a copy of ``cfg`` with OS knobs replaced."""
    return replace(cfg, os=replace(cfg.os, **os_kw)).validate()
