"""Lock and barrier managers.

Synchronisation instructions generate events (§2); the backend resolves them
here. Locks are FIFO and *spinning*: a waiter keeps its processor (the model
for the latches/spinlocks that dominate database engines), so a grant simply
advances the waiter's execution time to the release point. Barriers release
every party at the time the last one arrives.

Each lock is also given a line-aligned address in the shared-sync region so
the engine can charge real coherence traffic (an RMW reference) for
acquisitions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .errors import CompassError
from .frontend import SimProcess

#: base virtual address of the lock/barrier region (kernel-shared segment)
SYNC_REGION_BASE = 0xF000_0000
#: bytes reserved per lock (one cache line, avoids false sharing)
SYNC_SLOT = 128


def lock_address(lock_id: int) -> int:
    """Line-aligned shared address backing a lock id."""
    return SYNC_REGION_BASE + lock_id * SYNC_SLOT


class _Lock:
    __slots__ = ("holder", "waiters", "acquisitions", "contended")

    def __init__(self) -> None:
        self.holder: Optional[int] = None      # pid
        self.waiters: Deque[SimProcess] = deque()
        self.acquisitions = 0
        self.contended = 0


class LockManager:
    """FIFO spin locks keyed by integer id."""

    def __init__(self) -> None:
        self._locks: Dict[int, _Lock] = {}

    def _get(self, lock_id: int) -> _Lock:
        lk = self._locks.get(lock_id)
        if lk is None:
            lk = _Lock()
            self._locks[lock_id] = lk
        return lk

    def acquire(self, lock_id: int, proc: SimProcess) -> bool:
        """Try to take the lock; False enqueues ``proc`` as a spinner."""
        lk = self._get(lock_id)
        if lk.holder is None:
            lk.holder = proc.pid
            lk.acquisitions += 1
            return True
        lk.contended += 1
        lk.waiters.append(proc)
        return False

    def release(self, lock_id: int, proc: SimProcess) -> Optional[SimProcess]:
        """Release; returns the next waiter (now the holder), if any."""
        lk = self._locks.get(lock_id)
        if lk is None or lk.holder != proc.pid:
            raise CompassError(
                f"pid {proc.pid} released lock {lock_id} it does not hold "
                f"(holder={getattr(lk, 'holder', None)})"
            )
        if lk.waiters:
            nxt = lk.waiters.popleft()
            lk.holder = nxt.pid
            lk.acquisitions += 1
            return nxt
        lk.holder = None
        return None

    def holder_of(self, lock_id: int) -> Optional[int]:
        lk = self._locks.get(lock_id)
        return lk.holder if lk else None

    def stats(self) -> Dict[int, Tuple[int, int]]:
        """lock id -> (acquisitions, contended acquisitions)."""
        return {i: (l.acquisitions, l.contended) for i, l in self._locks.items()}

    def owners(self) -> Dict[int, Tuple[Optional[int], List[int]]]:
        """lock id -> (holder pid, waiter pids) for every non-idle lock."""
        return {i: (l.holder, [w.pid for w in l.waiters])
                for i, l in self._locks.items()
                if l.holder is not None or l.waiters}

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> Dict[int, dict]:
        """Plain-data snapshot: waiters become pids (SimProcess references
        are rebuilt by replay; ``load_state`` resolves them back when given
        a pid map, otherwise restores counters only)."""
        return {i: {"holder": l.holder,
                    "waiters": [w.pid for w in l.waiters],
                    "acquisitions": l.acquisitions,
                    "contended": l.contended}
                for i, l in self._locks.items()}

    def load_state(self, state: Dict[int, dict],
                   procs: Optional[Dict[int, SimProcess]] = None) -> None:
        self._locks.clear()
        for i, ls in state.items():
            lk = _Lock()
            lk.holder = ls["holder"]
            lk.acquisitions = ls["acquisitions"]
            lk.contended = ls["contended"]
            if procs is not None:
                lk.waiters = deque(procs[pid] for pid in ls["waiters"])
            self._locks[i] = lk


class _Barrier:
    __slots__ = ("arrived", "episodes")

    def __init__(self) -> None:
        self.arrived: List[SimProcess] = []
        self.episodes = 0


class BarrierManager:
    """Counted barriers keyed by integer id; spinning semantics."""

    def __init__(self) -> None:
        self._barriers: Dict[int, _Barrier] = {}

    def arrive(self, barrier_id: int, count: int,
               proc: SimProcess) -> Optional[List[SimProcess]]:
        """Record an arrival. When ``proc`` is the last of ``count`` parties,
        returns the earlier arrivals to release (the caller proceeds
        directly); otherwise returns None and ``proc`` must wait."""
        if count <= 0:
            raise CompassError(f"barrier {barrier_id}: count must be positive")
        b = self._barriers.get(barrier_id)
        if b is None:
            b = _Barrier()
            self._barriers[barrier_id] = b
        if len(b.arrived) + 1 > count:
            raise CompassError(
                f"barrier {barrier_id}: more arrivals than count={count}"
            )
        if len(b.arrived) + 1 == count:
            released = b.arrived
            b.arrived = []
            b.episodes += 1
            return released
        b.arrived.append(proc)
        return None

    def waiting(self, barrier_id: int) -> int:
        b = self._barriers.get(barrier_id)
        return len(b.arrived) if b else 0

    def episodes(self, barrier_id: int) -> int:
        b = self._barriers.get(barrier_id)
        return b.episodes if b else 0

    def pending(self) -> Dict[int, List[int]]:
        """barrier id -> pids parked at an incomplete episode."""
        return {i: [p.pid for p in b.arrived]
                for i, b in self._barriers.items() if b.arrived}

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> Dict[int, dict]:
        """Plain-data snapshot (arrivals as pids; see LockManager)."""
        return {i: {"arrived": [p.pid for p in b.arrived],
                    "episodes": b.episodes}
                for i, b in self._barriers.items()}

    def load_state(self, state: Dict[int, dict],
                   procs: Optional[Dict[int, SimProcess]] = None) -> None:
        self._barriers.clear()
        for i, bs in state.items():
            b = _Barrier()
            b.episodes = bs["episodes"]
            if procs is not None:
                b.arrived = [procs[pid] for pid in bs["arrived"]]
            self._barriers[i] = b
