"""Lossy-but-total conversion of diagnostic payloads to JSON-plain data.

Forensic reports (:meth:`Engine.diagnostic_report`, the supervisor's
worker post-mortems) are embedded verbatim in job records by the
simulation-as-a-service control plane, which persists them with
``json.dumps``. The engine builds them from live scheduler state, so the
raw payloads can contain tuples, deques, int-keyed dicts, bytes from a
worker's last pipe messages — anything. :func:`to_jsonable` maps all of
that onto the JSON value model (dict[str, ...], list, str, int, float,
bool, None) so a report survives ``json.loads(json.dumps(report))``
unchanged. The mapping is total: objects with no natural JSON shape
degrade to ``repr`` strings instead of raising.
"""

from __future__ import annotations

from typing import Any

#: recursion guard: a diagnostic payload deeper than this is almost
#: certainly self-referential; degrade to repr instead of overflowing
_MAX_DEPTH = 24


def to_jsonable(obj: Any, _depth: int = 0) -> Any:
    """Map ``obj`` onto JSON-plain data (see module docstring).

    Guarantees ``json.dumps(to_jsonable(x))`` never raises and that the
    dump/load round trip is the identity on the converted value.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # inf/nan are not JSON; keep the report loadable everywhere
        if obj != obj or obj in (float("inf"), float("-inf")):
            return repr(obj)
        return obj
    if _depth >= _MAX_DEPTH:
        return repr(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v, _depth + 1) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else obj
        return [to_jsonable(v, _depth + 1) for v in items]
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    # deques, generators of the recent-event ring, enums, live objects…
    try:
        return [to_jsonable(v, _depth + 1) for v in list(obj)]
    except TypeError:
        return repr(obj)
