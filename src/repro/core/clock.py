"""Cycle-domain time helpers.

Simulated time is a non-negative integer number of *CPU cycles* of the target
machine. The paper's frontends accumulate an "execution time" value in cycles
(one per process, stored in the event port); the backend orders all work on a
single global cycle axis. This module centralises conversions between cycles,
nanoseconds and derived units so device models (disk, ethernet, timer) can be
specified in physical units while the core stays integer-cycle exact.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cycles are plain ints; alias for documentation purposes.
Cycles = int


@dataclass(frozen=True, slots=True)
class ClockDomain:
    """A fixed-frequency clock used to convert physical time to cycles.

    The paper's host and target are 133 MHz PowerPC 604 parts; the default
    target frequency follows that. All conversions round *up* (a device busy
    for 1.2 cycles occupies 2), keeping latencies conservative and integral.
    """

    freq_hz: int = 133_000_000

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {self.freq_hz}")

    @property
    def cycle_ns(self) -> float:
        """Length of one cycle in nanoseconds."""
        return 1e9 / self.freq_hz

    def ns_to_cycles(self, ns: float) -> Cycles:
        """Convert nanoseconds to cycles, rounding up."""
        if ns < 0:
            raise ValueError(f"negative duration: {ns} ns")
        c = int(ns * self.freq_hz / 1e9)
        if c * 1e9 < ns * self.freq_hz:
            c += 1
        return c

    def us_to_cycles(self, us: float) -> Cycles:
        """Convert microseconds to cycles, rounding up."""
        return self.ns_to_cycles(us * 1e3)

    def ms_to_cycles(self, ms: float) -> Cycles:
        """Convert milliseconds to cycles, rounding up."""
        return self.ns_to_cycles(ms * 1e6)

    def s_to_cycles(self, s: float) -> Cycles:
        """Convert seconds to cycles, rounding up."""
        return self.ns_to_cycles(s * 1e9)

    def cycles_to_ns(self, cycles: Cycles) -> float:
        """Convert cycles to nanoseconds."""
        return cycles * 1e9 / self.freq_hz

    def cycles_to_s(self, cycles: Cycles) -> float:
        """Convert cycles to seconds."""
        return cycles / self.freq_hz

    def bytes_at_rate(self, nbytes: int, bytes_per_sec: float) -> Cycles:
        """Cycles needed to move ``nbytes`` at ``bytes_per_sec`` (rounded up)."""
        if bytes_per_sec <= 0:
            raise ValueError(f"rate must be positive, got {bytes_per_sec}")
        return self.ns_to_cycles(nbytes / bytes_per_sec * 1e9)


#: Default target clock (133 MHz PowerPC, as in the paper's Table 2 host).
DEFAULT_CLOCK = ClockDomain()
