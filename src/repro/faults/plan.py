"""Fault plans: which sites fail, when, and how.

A plan is a frozen description — all runtime state (visit counters,
fire counters, the RNG) lives in the :class:`~repro.faults.injector.
FaultInjector`, so one plan object can drive any number of engines or
repeated runs and always produce the same injections.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from ..core import events as ev
from ..core.errors import ConfigError

#: Site namespaces the simulator actually consults.  A rule site must
#: match one of these prefixes (a trailing ``*`` wildcard is allowed,
#: e.g. ``syscall:*`` injects into every syscall).
KNOWN_SITE_PREFIXES = (
    "syscall:",   # errno injection at syscall entry (syscall:<name>)
    "fs:",        # filesystem-layer errors (fs:enospc)
    "net:",       # socket-layer errors (net:reset)
    "disk:",      # disk:latency (service-time spikes), disk:read_error
    "tcp:",       # tcp:drop (segment loss -> retransmission)
    "mem:",       # mem:degraded (extra DRAM latency on cache misses)
    "link:",      # link:degraded (extra occupancy on bus/dir/mesh links)
)


def _resolve_errno(value: Union[int, str]) -> int:
    if isinstance(value, int):
        return value
    name = str(value)
    num = getattr(ev, name, None)
    if not isinstance(num, int) or name not in ev.ERRNO_NAMES.values():
        raise ConfigError(f"unknown errno name {value!r} in fault rule")
    return num


@dataclass(frozen=True)
class FaultRule:
    """One injection rule.

    ``site``
        Injection point, e.g. ``"syscall:kreadv"`` or ``"disk:latency"``.
        A trailing ``*`` matches every site with that prefix.
    ``prob``
        Per-visit firing probability drawn from the plan's seeded RNG.
    ``schedule``
        Exact 1-based visit indices that fire deterministically (in
        addition to any probability draws).
    ``errno``
        Error to report for syscall/fs/net sites; an int or a name such
        as ``"EINTR"``.
    ``extra_cycles``
        Extra latency for timing faults (disk/mem/link sites) or the
        kernel-cycle charge of an aborted syscall.
    ``max_fires``
        Cap on total fires for this rule; ``-1`` means unlimited.
    """

    site: str
    prob: float = 0.0
    schedule: Tuple[int, ...] = ()
    errno: Optional[Union[int, str]] = None
    extra_cycles: int = 0
    max_fires: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", tuple(self.schedule))

    def validate(self) -> "FaultRule":
        if not any(self.site.startswith(p) for p in KNOWN_SITE_PREFIXES):
            raise ConfigError(
                f"fault site {self.site!r} matches no known namespace "
                f"{KNOWN_SITE_PREFIXES}")
        if not (0.0 <= self.prob <= 1.0):
            raise ConfigError(f"fault prob must be in [0, 1], got {self.prob}")
        if any((not isinstance(v, int)) or v < 1 for v in self.schedule):
            raise ConfigError(
                f"fault schedule must hold 1-based visit indices, "
                f"got {self.schedule!r}")
        if self.prob == 0.0 and not self.schedule:
            raise ConfigError(
                f"fault rule for {self.site!r} can never fire "
                "(prob == 0 and empty schedule)")
        if self.extra_cycles < 0:
            raise ConfigError("fault extra_cycles must be >= 0")
        if self.errno is not None:
            _resolve_errno(self.errno)
        return self

    def errno_value(self) -> int:
        """The errno to inject (0 when the rule carries none)."""
        return 0 if self.errno is None else _resolve_errno(self.errno)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"site": self.site}
        if self.prob:
            d["prob"] = self.prob
        if self.schedule:
            d["schedule"] = list(self.schedule)
        if self.errno is not None:
            d["errno"] = self.errno
        if self.extra_cycles:
            d["extra_cycles"] = self.extra_cycles
        if self.max_fires >= 0:
            d["max_fires"] = self.max_fires
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultRule":
        unknown = set(d) - {"site", "prob", "schedule", "errno",
                            "extra_cycles", "max_fires"}
        if unknown:
            raise ConfigError(f"unknown fault rule keys {sorted(unknown)}")
        if "site" not in d:
            raise ConfigError("fault rule needs a 'site'")
        return cls(site=d["site"],
                   prob=float(d.get("prob", 0.0)),
                   schedule=tuple(d.get("schedule", ())),
                   errno=d.get("errno"),
                   extra_cycles=int(d.get("extra_cycles", 0)),
                   max_fires=int(d.get("max_fires", -1)))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules; empty means faults fully disabled."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def empty(self) -> bool:
        return not self.rules

    def validate(self) -> "FaultPlan":
        for rule in self.rules:
            rule.validate()
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "rules": [r.to_dict() for r in self.rules]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        unknown = set(d) - {"seed", "rules"}
        if unknown:
            raise ConfigError(f"unknown fault plan keys {sorted(unknown)}")
        rules = tuple(FaultRule.from_dict(r) for r in d.get("rules", ()))
        return cls(rules=rules, seed=int(d.get("seed", 0))).validate()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad fault plan JSON: {exc}") from exc
        if not isinstance(d, dict):
            raise ConfigError("fault plan JSON must be an object")
        return cls.from_dict(d)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
