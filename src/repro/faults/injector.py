"""The runtime half of fault injection.

The injector owns every piece of mutable fault state: per-rule visit
and fire counters, the dedicated ``random.Random(seed)`` stream, and
the :class:`FaultStats` report.  All decisions are taken on the backend
while events are handled in global time order, so two runs with the
same plan make identical draws and fire identical faults — the paper's
conservative-interleaving determinism extends to faulty runs for free.

When the plan is empty ``enabled`` is False, the engine binds no hooks,
and no call here is ever made on a hot path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core import events as ev
from ..core.errors import ReplayDivergence
from .plan import FaultPlan, FaultRule

#: Kernel cycles charged for a syscall aborted at entry (argument
#: checking + error return) when the rule does not override it.
ABORTED_SYSCALL_CYCLES = 400


class FaultStats:
    """What fired where, for reports and acceptance checks."""

    __slots__ = ("seed", "fired", "draws")

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.fired: Dict[str, int] = {}
        self.draws = 0

    def record(self, site: str) -> None:
        self.fired[site] = self.fired.get(site, 0) + 1

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    @property
    def distinct_sites(self) -> int:
        return len(self.fired)

    def summary(self) -> Dict[str, object]:
        return {"seed": self.seed, "draws": self.draws,
                "total_fired": self.total_fired,
                "fired": dict(sorted(self.fired.items()))}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultStats(seed={self.seed}, fired={self.fired})"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically, site by site."""

    def __init__(self, plan: Optional[FaultPlan] = None,
                 registry=None) -> None:
        if plan is None:
            plan = FaultPlan()
        plan.validate()
        self.plan = plan
        self.enabled = bool(plan.rules)
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats(plan.seed)
        self._registry = registry
        self._rules: List[FaultRule] = list(plan.rules)
        self._visits = [0] * len(self._rules)
        self._fires = [0] * len(self._rules)
        self._sched = [frozenset(r.schedule) for r in self._rules]
        self._exact: Dict[str, List[int]] = {}
        self._wild: List[Tuple[str, int]] = []
        for idx, rule in enumerate(self._rules):
            if rule.site.endswith("*"):
                self._wild.append((rule.site[:-1], idx))
            else:
                self._exact.setdefault(rule.site, []).append(idx)
        self._site_cache: Dict[str, Tuple[int, ...]] = {}
        # checkpoint support: while recording, every check() outcome is
        # appended to a per-site FIFO (rule index, -1 = no fire); while
        # replaying, check() pops that FIFO verbatim and touches *nothing*
        # else — no counters, no RNG — so sites the replay never revisits
        # (memory, links) cannot desynchronise the shared stream. Counters
        # and RNG state are restored from the snapshot at switch-to-live.
        self._rec_log: Optional[Dict[str, List[int]]] = None
        self._replay_log: Optional[Dict[str, List[int]]] = None
        self._replay_cursor: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # checkpoint/restore

    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot of every piece of mutable injector state."""
        return {
            "visits": list(self._visits),
            "fires": list(self._fires),
            "rng": self.rng.getstate(),
            "stats": {"seed": self.stats.seed,
                      "fired": dict(self.stats.fired),
                      "draws": self.stats.draws},
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (exact round-trip)."""
        visits = state["visits"]
        fires = state["fires"]
        if len(visits) != len(self._visits) or len(fires) != len(self._fires):
            raise ReplayDivergence(
                f"fault plan shape changed: snapshot has {len(visits)} rules,"
                f" live plan has {len(self._visits)}")
        self._visits[:] = visits
        self._fires[:] = fires
        self.rng.setstate(state["rng"])
        st = state["stats"]
        self.stats.seed = st["seed"]
        self.stats.fired = dict(st["fired"])
        self.stats.draws = st["draws"]

    def begin_recording(self, log: Dict[str, List[int]]) -> None:
        """Append every future check() outcome to ``log`` (caller-owned)."""
        self._rec_log = log
        self._replay_log = None
        self._replay_cursor = None

    def begin_replay(self, log: Dict[str, List[int]]) -> None:
        """Answer future check() calls from ``log`` instead of evaluating."""
        self._replay_log = log
        self._replay_cursor = {}
        self._rec_log = None

    # ------------------------------------------------------------------
    # wiring helpers

    def has_prefix(self, prefix: str) -> bool:
        """True when any rule could target a site starting with prefix."""
        return any(r.site.startswith(prefix)
                   or (r.site.endswith("*")
                       and prefix.startswith(r.site[:-1]))
                   for r in self._rules)

    # ------------------------------------------------------------------
    # the core primitive

    def check(self, site: str) -> Optional[FaultRule]:
        """Record one visit to ``site``; return the rule that fired.

        Every call is one deterministic point in the injection stream:
        visit counters always advance and probability draws always
        consume RNG state in the same order, so same-seed runs agree.
        """
        rp = self._replay_log
        if rp is not None:
            # restore fast-forward: the recorded outcome is the answer; no
            # bookkeeping here — the snapshot install fixes it all at once
            cur = self._replay_cursor
            c = cur.get(site, 0)
            outcomes = rp.get(site)
            if outcomes is None or c >= len(outcomes):
                raise ReplayDivergence(
                    f"fault site {site!r} visited more times than recorded "
                    f"({c} outcomes in the log)")
            cur[site] = c + 1
            idx = outcomes[c]
            return None if idx < 0 else self._rules[idx]
        idxs = self._site_cache.get(site)
        if idxs is None:
            exact = self._exact.get(site, ())
            wild = tuple(i for prefix, i in self._wild
                         if site.startswith(prefix))
            idxs = tuple(exact) + wild
            self._site_cache[site] = idxs
        hit: Optional[FaultRule] = None
        hit_idx = -1
        for i in idxs:
            self._visits[i] += 1
            if hit is not None:
                continue
            rule = self._rules[i]
            if 0 <= rule.max_fires <= self._fires[i]:
                continue
            fired = self._visits[i] in self._sched[i]
            if not fired and rule.prob > 0.0:
                self.stats.draws += 1
                fired = self.rng.random() < rule.prob
            if fired:
                self._fires[i] += 1
                self.stats.record(site)
                if self._registry is not None:
                    self._registry.counter("faults_injected").add(key=site)
                hit = rule
                hit_idx = i
        rec = self._rec_log
        if rec is not None:
            rec.setdefault(site, []).append(hit_idx)
        return hit

    # ------------------------------------------------------------------
    # site-specific hooks (bound by the engine only when armed)

    def syscall_fault(self, name: str) -> Optional[Tuple[int, int]]:
        """(errno, kernel_cycles) to abort syscall ``name`` with, or None."""
        rule = self.check("syscall:" + name)
        if rule is None:
            return None
        errno = rule.errno_value() or ev.EINTR
        return errno, (rule.extra_cycles or ABORTED_SYSCALL_CYCLES)

    def disk_latency_extra(self, req) -> int:
        """Disk.fault_hook: extra service cycles for one request."""
        rule = self.check("disk:latency")
        return rule.extra_cycles if rule is not None else 0

    def disk_read_error(self) -> bool:
        """Transient media error on a buffer-cache read (one retry)."""
        return self.check("disk:read_error") is not None

    def mem_extra(self) -> int:
        """MemorySystem.fault_extra: degraded-DIMM latency on a miss path."""
        rule = self.check("mem:degraded")
        return rule.extra_cycles if rule is not None else 0

    def link_extra(self, now: int) -> int:
        """OccupancyResource.fault_hook: degraded-link service inflation."""
        rule = self.check("link:degraded")
        return rule.extra_cycles if rule is not None else 0
