"""The runtime half of fault injection.

The injector owns every piece of mutable fault state: per-rule visit
and fire counters, the dedicated ``random.Random(seed)`` stream, and
the :class:`FaultStats` report.  All decisions are taken on the backend
while events are handled in global time order, so two runs with the
same plan make identical draws and fire identical faults — the paper's
conservative-interleaving determinism extends to faulty runs for free.

When the plan is empty ``enabled`` is False, the engine binds no hooks,
and no call here is ever made on a hot path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core import events as ev
from .plan import FaultPlan, FaultRule

#: Kernel cycles charged for a syscall aborted at entry (argument
#: checking + error return) when the rule does not override it.
ABORTED_SYSCALL_CYCLES = 400


class FaultStats:
    """What fired where, for reports and acceptance checks."""

    __slots__ = ("seed", "fired", "draws")

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.fired: Dict[str, int] = {}
        self.draws = 0

    def record(self, site: str) -> None:
        self.fired[site] = self.fired.get(site, 0) + 1

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    @property
    def distinct_sites(self) -> int:
        return len(self.fired)

    def summary(self) -> Dict[str, object]:
        return {"seed": self.seed, "draws": self.draws,
                "total_fired": self.total_fired,
                "fired": dict(sorted(self.fired.items()))}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultStats(seed={self.seed}, fired={self.fired})"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically, site by site."""

    def __init__(self, plan: Optional[FaultPlan] = None,
                 registry=None) -> None:
        if plan is None:
            plan = FaultPlan()
        plan.validate()
        self.plan = plan
        self.enabled = bool(plan.rules)
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats(plan.seed)
        self._registry = registry
        self._rules: List[FaultRule] = list(plan.rules)
        self._visits = [0] * len(self._rules)
        self._fires = [0] * len(self._rules)
        self._sched = [frozenset(r.schedule) for r in self._rules]
        self._exact: Dict[str, List[int]] = {}
        self._wild: List[Tuple[str, int]] = []
        for idx, rule in enumerate(self._rules):
            if rule.site.endswith("*"):
                self._wild.append((rule.site[:-1], idx))
            else:
                self._exact.setdefault(rule.site, []).append(idx)
        self._site_cache: Dict[str, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # wiring helpers

    def has_prefix(self, prefix: str) -> bool:
        """True when any rule could target a site starting with prefix."""
        return any(r.site.startswith(prefix)
                   or (r.site.endswith("*")
                       and prefix.startswith(r.site[:-1]))
                   for r in self._rules)

    # ------------------------------------------------------------------
    # the core primitive

    def check(self, site: str) -> Optional[FaultRule]:
        """Record one visit to ``site``; return the rule that fired.

        Every call is one deterministic point in the injection stream:
        visit counters always advance and probability draws always
        consume RNG state in the same order, so same-seed runs agree.
        """
        idxs = self._site_cache.get(site)
        if idxs is None:
            exact = self._exact.get(site, ())
            wild = tuple(i for prefix, i in self._wild
                         if site.startswith(prefix))
            idxs = tuple(exact) + wild
            self._site_cache[site] = idxs
        hit: Optional[FaultRule] = None
        for i in idxs:
            self._visits[i] += 1
            if hit is not None:
                continue
            rule = self._rules[i]
            if 0 <= rule.max_fires <= self._fires[i]:
                continue
            fired = self._visits[i] in self._sched[i]
            if not fired and rule.prob > 0.0:
                self.stats.draws += 1
                fired = self.rng.random() < rule.prob
            if fired:
                self._fires[i] += 1
                self.stats.record(site)
                if self._registry is not None:
                    self._registry.counter("faults_injected").add(key=site)
                hit = rule
        return hit

    # ------------------------------------------------------------------
    # site-specific hooks (bound by the engine only when armed)

    def syscall_fault(self, name: str) -> Optional[Tuple[int, int]]:
        """(errno, kernel_cycles) to abort syscall ``name`` with, or None."""
        rule = self.check("syscall:" + name)
        if rule is None:
            return None
        errno = rule.errno_value() or ev.EINTR
        return errno, (rule.extra_cycles or ABORTED_SYSCALL_CYCLES)

    def disk_latency_extra(self, req) -> int:
        """Disk.fault_hook: extra service cycles for one request."""
        rule = self.check("disk:latency")
        return rule.extra_cycles if rule is not None else 0

    def disk_read_error(self) -> bool:
        """Transient media error on a buffer-cache read (one retry)."""
        return self.check("disk:read_error") is not None

    def mem_extra(self) -> int:
        """MemorySystem.fault_extra: degraded-DIMM latency on a miss path."""
        rule = self.check("mem:degraded")
        return rule.extra_cycles if rule is not None else 0

    def link_extra(self, now: int) -> int:
        """OccupancyResource.fault_hook: degraded-link service inflation."""
        rule = self.check("link:degraded")
        return rule.extra_cycles if rule is not None else 0
