"""Deterministic fault injection.

A :class:`FaultPlan` (loadable from config or JSON) names injection
*sites* in the simulator — syscall entry, the buffer cache, the disk,
the TCP stack, memory controllers and interconnect links — and attaches
probability-or-schedule triggers to each.  The :class:`FaultInjector`
evaluates every trigger on the backend, in global event order, from one
dedicated ``random.Random(seed)`` stream, so a faulty run is exactly as
reproducible as a fault-free one.  With no plan (or an empty plan) the
subsystem binds no hooks and draws no random numbers: runs are
bit-identical to a build without it.

``crashpoints`` is the host-side sibling: a seeded
:class:`CrashPointPlan` kills (or raises inside) the *simulator
process itself* at named durability sites — spool append/fsync,
checkpoint pre/post-rename, post-fsync — to prove the WAL spool and
checkpoint layers recover from any torn write.
"""

from .crashpoints import (CrashPointInjector, CrashPointPlan, CrashRule,
                          KNOWN_CRASH_SITES)
from .injector import FaultInjector, FaultStats
from .plan import FaultPlan, FaultRule, KNOWN_SITE_PREFIXES

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "KNOWN_SITE_PREFIXES",
    "CrashPointInjector",
    "CrashPointPlan",
    "CrashRule",
    "KNOWN_CRASH_SITES",
]
