"""Deterministic crash-point injection for the durability layer.

Where the :class:`~repro.faults.plan.FaultPlan` injects *simulated*
faults (errno returns, slow disks) into the simulated machine, a
:class:`CrashPointPlan` injects *host* crashes into the simulator's own
durability code, at the exact instants that matter for crash
consistency:

``spool:append``
    entry of :meth:`JobSpool.append`, before the frame is written —
    the journal record is lost entirely;
``spool:fsync``
    after the frame reached the OS but before fsync — models the
    classic torn-tail/power-cut window;
``ckpt:pre-rename``
    checkpoint tmp file written + fsynced, ``os.replace`` not yet
    issued — a stale ``*.tmp`` must be swept, the previous generation
    must still load;
``ckpt:post-rename``
    rename issued, directory not yet fsynced;
``ckpt:post-fsync``
    checkpoint fully durable — the crash must cost nothing.

Each rule fires at the *Nth* hit of its site — either an explicit
``hit`` index or one drawn deterministically from the plan ``seed``
over ``hit_range`` — and either SIGKILLs the process (``action:
"kill"``, indistinguishable from power loss) or raises
:class:`~repro.core.errors.SimulatedCrash` (``action: "raise"``, for
in-process harnesses).

Rules are **once-only across a process tree**: firing claims a sentinel
file under the plan's ``state_dir`` with ``O_CREAT|O_EXCL``, so a
forked job child that inherits the installed plan cannot re-fire a rule
the supervisor (or an earlier child) already spent. Without that, every
checkpoint-site retry would die at the same local hit count and no
recovery loop could converge. With no ``state_dir`` the claim set is
process-local.

The plan installs process-globally (:func:`install`) because the crash
sites live deep inside ``checkpoint/`` and ``service/spool.py`` hot
paths where threading a handle through every caller would be pure
noise; :func:`hit` is a no-op attribute read when nothing is installed.
A plan can also arrive through the ``COMPASS_CRASH_POINTS`` environment
variable (inline JSON or a path to a JSON file) so CI can crash fresh
processes without code changes.
"""

from __future__ import annotations

import json
import os
import random
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ConfigError, SimulatedCrash

#: every site the durability layer consults, in code order
KNOWN_CRASH_SITES = (
    "spool:append",
    "spool:fsync",
    "ckpt:pre-rename",
    "ckpt:post-rename",
    "ckpt:post-fsync",
)

ENV_VAR = "COMPASS_CRASH_POINTS"


@dataclass(frozen=True)
class CrashRule:
    """Crash at the Nth hit of ``site``.

    Exactly one of ``hit`` (explicit 1-based index) or ``hit_range``
    (inclusive bounds; the index is drawn from the plan seed) must be
    given. ``action`` is ``"kill"`` (SIGKILL self) or ``"raise"``
    (raise :class:`SimulatedCrash`).
    """

    site: str
    hit: Optional[int] = None
    hit_range: Optional[Tuple[int, int]] = None
    action: str = "kill"

    def __post_init__(self) -> None:
        if self.hit_range is not None:
            object.__setattr__(self, "hit_range", tuple(self.hit_range))

    def validate(self) -> "CrashRule":
        if self.site not in KNOWN_CRASH_SITES:
            raise ConfigError(
                f"unknown crash site {self.site!r}; known sites are "
                f"{KNOWN_CRASH_SITES}")
        if self.action not in ("kill", "raise"):
            raise ConfigError(
                f"crash action must be 'kill' or 'raise', got {self.action!r}")
        if (self.hit is None) == (self.hit_range is None):
            raise ConfigError(
                f"crash rule for {self.site!r} needs exactly one of "
                f"'hit' or 'hit_range'")
        if self.hit is not None and self.hit < 1:
            raise ConfigError("crash 'hit' is a 1-based index")
        if self.hit_range is not None:
            lo, hi = self.hit_range
            if not (1 <= lo <= hi):
                raise ConfigError(
                    f"crash hit_range must satisfy 1 <= lo <= hi, "
                    f"got {self.hit_range!r}")
        return self

    def resolve_hit(self, seed: int, index: int) -> int:
        """The concrete 1-based hit count this rule fires at."""
        if self.hit is not None:
            return self.hit
        lo, hi = self.hit_range
        return random.Random(f"{seed}:{self.site}:{index}").randint(lo, hi)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"site": self.site, "action": self.action}
        if self.hit is not None:
            d["hit"] = self.hit
        if self.hit_range is not None:
            d["hit_range"] = list(self.hit_range)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CrashRule":
        unknown = set(d) - {"site", "hit", "hit_range", "action"}
        if unknown:
            raise ConfigError(f"unknown crash rule keys {sorted(unknown)}")
        if "site" not in d:
            raise ConfigError("crash rule needs a 'site'")
        hit_range = d.get("hit_range")
        return cls(site=d["site"], hit=d.get("hit"),
                   hit_range=tuple(hit_range) if hit_range else None,
                   action=d.get("action", "kill")).validate()


@dataclass(frozen=True)
class CrashPointPlan:
    """A seeded set of crash rules plus the cross-process claim store.

    ``tag`` namespaces the once-only sentinels so a recovery harness
    can reuse one ``state_dir`` across rounds with distinct plans.
    """

    rules: Tuple[CrashRule, ...] = ()
    seed: int = 0
    state_dir: Optional[str] = None
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def validate(self) -> "CrashPointPlan":
        for rule in self.rules:
            rule.validate()
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "tag": self.tag,
                "state_dir": self.state_dir,
                "rules": [r.to_dict() for r in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CrashPointPlan":
        unknown = set(d) - {"seed", "tag", "state_dir", "rules"}
        if unknown:
            raise ConfigError(f"unknown crash plan keys {sorted(unknown)}")
        rules = tuple(CrashRule.from_dict(r) for r in d.get("rules", ()))
        return cls(rules=rules, seed=int(d.get("seed", 0)),
                   state_dir=d.get("state_dir"),
                   tag=str(d.get("tag", ""))).validate()

    @classmethod
    def from_json(cls, text: str) -> "CrashPointPlan":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad crash plan JSON: {exc}") from exc
        if not isinstance(d, dict):
            raise ConfigError("crash plan JSON must be an object")
        return cls.from_dict(d)


class CrashPointInjector:
    """Runtime state: per-site hit counters + the once-only claim set."""

    def __init__(self, plan: CrashPointPlan) -> None:
        plan.validate()
        self.plan = plan
        self._counts: Dict[str, int] = {}
        self._claimed: set = set()
        self._sites: Dict[str, List[Tuple[int, str, str]]] = {}
        for idx, rule in enumerate(plan.rules):
            nth = rule.resolve_hit(plan.seed, idx)
            key = f"{plan.tag or plan.seed}-{idx}-{rule.site}-{nth}"
            self._sites.setdefault(rule.site, []).append(
                (nth, rule.action, key.replace(":", "_").replace("/", "_")))

    def _claim(self, key: str) -> bool:
        """True exactly once per key across every process sharing
        ``state_dir`` (or per process without one)."""
        if self.plan.state_dir is None:
            if key in self._claimed:
                return False
            self._claimed.add(key)
            return True
        os.makedirs(self.plan.state_dir, exist_ok=True)
        path = os.path.join(self.plan.state_dir, f"fired-{key}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def on_hit(self, site: str) -> None:
        rules = self._sites.get(site)
        if not rules:
            return
        n = self._counts[site] = self._counts.get(site, 0) + 1
        for nth, action, key in rules:
            if n == nth and self._claim(key):
                if action == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                raise SimulatedCrash(
                    f"crash point {site!r} fired at hit #{n} "
                    f"(pid {os.getpid()})")


#: the process-global injector; None = crash points fully disabled
_injector: Optional[CrashPointInjector] = None


def install(plan: Optional[CrashPointPlan]) -> None:
    """Install (or with ``None`` clear) the process-global crash plan."""
    global _injector
    _injector = None if plan is None or not plan.rules \
        else CrashPointInjector(plan)


def current() -> Optional[CrashPointInjector]:
    return _injector


def hit(site: str) -> None:
    """Consult the installed plan at one crash site (cheap no-op when
    nothing is installed)."""
    inj = _injector
    if inj is not None:
        inj.on_hit(site)


def _install_from_env() -> None:
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return
    spec = spec.strip()
    if not spec.startswith("{") and os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as fh:
            spec = fh.read()
    install(CrashPointPlan.from_json(spec))


_install_from_env()
