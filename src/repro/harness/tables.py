"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (the shape the paper's tables print)."""
    srows: List[List[str]] = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
            else:
                widths.append(len(c))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt(list(headers)))
    out.append(sep)
    out.extend(fmt(r) for r in srows)
    return "\n".join(out)
