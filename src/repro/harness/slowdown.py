"""Simulation slowdown measurement (the paper's Tables 2 and 3).

Slowdown = (wall-clock of the simulated run) / (wall-clock of the raw,
uninstrumented run of the same work on the same host). The paper's three
factors — how much code is instrumented, backend complexity, host
parallelism — map to: which workload callable you pass, which SimConfig you
build the engine with, and whether the engine runs inline or in host-
parallel mode.

Since the basic-block translation cache (:mod:`repro.isa.translate`) there
are *two* raw baselines for ISA workloads: the generic interpreter loop and
the translated closures. Pass both to :func:`measure_slowdown` and the
result carries both slowdown factors, so Table 2/3 numbers can be quoted
against the faster native mode (the honest analogue of COMPASS's
direct-execution baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.stats import StatsRegistry


@dataclass(frozen=True)
class SlowdownResult:
    """Raw-vs-simulated timing for one configuration."""

    label: str
    raw_seconds: float
    sim_seconds: float
    simulated_cycles: int
    events: int
    #: wall-clock of the translated raw baseline; 0.0 = not measured
    raw_translated_seconds: float = 0.0

    @property
    def slowdown(self) -> float:
        """The paper's slowdown factor (vs the interpreted raw baseline)."""
        return self.sim_seconds / self.raw_seconds if self.raw_seconds else 0.0

    @property
    def slowdown_translated(self) -> float:
        """Slowdown vs the translated raw baseline (the faster native
        mode); 0.0 when no translated baseline was measured."""
        if not self.raw_translated_seconds:
            return 0.0
        return self.sim_seconds / self.raw_translated_seconds

    def row(self) -> tuple:
        base = (self.label, f"{self.raw_seconds:.3f}s",
                f"{self.sim_seconds:.3f}s", f"{self.slowdown:.0f}x")
        if self.raw_translated_seconds:
            base += (f"{self.raw_translated_seconds:.3f}s",
                     f"{self.slowdown_translated:.0f}x")
        return base


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_slowdown(label: str,
                     raw_fn: Callable[[], object],
                     sim_fn: Callable[[], StatsRegistry],
                     events: Optional[int] = None,
                     repeat_raw: int = 3,
                     raw_translated_fn: Optional[Callable[[], object]] = None,
                     ) -> SlowdownResult:
    """Time the raw baseline (best of ``repeat_raw``) against one simulated
    run. ``sim_fn`` must return the run's StatsRegistry. Pass
    ``raw_translated_fn`` to also time the translated raw baseline (filled
    into ``raw_translated_seconds`` / ``slowdown_translated``)."""
    best_raw = _best_of(raw_fn, repeat_raw)
    best_tr = (_best_of(raw_translated_fn, repeat_raw)
               if raw_translated_fn is not None else 0.0)
    t0 = time.perf_counter()
    stats = sim_fn()
    sim_s = time.perf_counter() - t0
    return SlowdownResult(
        label=label,
        raw_seconds=best_raw,
        sim_seconds=sim_s,
        simulated_cycles=stats.end_cycle,
        events=events if events is not None else 0,
        raw_translated_seconds=best_tr,
    )
