"""Simulation slowdown measurement (the paper's Tables 2 and 3).

Slowdown = (wall-clock of the simulated run) / (wall-clock of the raw,
uninstrumented run of the same work on the same host). The paper's three
factors — how much code is instrumented, backend complexity, host
parallelism — map to: which workload callable you pass, which SimConfig you
build the engine with, and whether the engine runs inline or in host-
parallel mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.stats import StatsRegistry


@dataclass(frozen=True)
class SlowdownResult:
    """Raw-vs-simulated timing for one configuration."""

    label: str
    raw_seconds: float
    sim_seconds: float
    simulated_cycles: int
    events: int

    @property
    def slowdown(self) -> float:
        """The paper's slowdown factor."""
        return self.sim_seconds / self.raw_seconds if self.raw_seconds else 0.0

    def row(self) -> tuple:
        return (self.label, f"{self.raw_seconds:.3f}s",
                f"{self.sim_seconds:.3f}s", f"{self.slowdown:.0f}x")


def measure_slowdown(label: str,
                     raw_fn: Callable[[], object],
                     sim_fn: Callable[[], StatsRegistry],
                     events: Optional[int] = None,
                     repeat_raw: int = 3) -> SlowdownResult:
    """Time the raw baseline (best of ``repeat_raw``) against one simulated
    run. ``sim_fn`` must return the run's StatsRegistry."""
    best_raw = float("inf")
    for _ in range(max(1, repeat_raw)):
        t0 = time.perf_counter()
        raw_fn()
        best_raw = min(best_raw, time.perf_counter() - t0)
    t0 = time.perf_counter()
    stats = sim_fn()
    sim_s = time.perf_counter() - t0
    return SlowdownResult(
        label=label,
        raw_seconds=best_raw,
        sim_seconds=sim_s,
        simulated_cycles=stats.end_cycle,
        events=events if events is not None else 0,
    )
