"""Host-parallelism model for the Table 3 experiment.

The paper's §1 explains where the SMP win comes from: on a uniprocessor
host every simulated memory operation forces a process context switch
between the frontend and the backend, while "on an SMP system the backend
process and a frontend process can run on two different processors, and
sending an event from the frontend to the backend will not cause a context
switch".

When the measurement host has several cores, :class:`~repro.host.parallel.
ParallelEngine` demonstrates this directly. When it does not (this
container exposes a single CPU), Table 3 is reproduced through this model,
with every parameter *measured on the host*:

* ``t_fe`` — frontend cost per event: raw instrumented-execution time
  between events (measured by timing the interpreter);
* ``t_be`` — backend cost per event (measured by timing the event loop with
  a null frontend);
* ``t_cs`` — one context switch + event hand-off on a shared CPU (measured
  with a pipe ping-pong between two processes pinned to one core);
* ``t_spin`` — shared-memory event hand-off without a context switch.

Predicted wall time for E events::

    T_uni = E * (t_fe + t_be + 2 * t_cs)              # time-shared CPU
    T_smp = E * (max(t_be, t_fe / min(N-1, F)) + t_spin)

with N host CPUs and F frontend processes: on the SMP the backend pipeline
rate is bounded by its own per-event work or by the (parallelised)
frontends, whichever is slower.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class HostCosts:
    """Per-event host-cost parameters (seconds)."""

    t_fe: float
    t_be: float
    t_cs: float
    t_spin: float = 1e-6


@dataclass(frozen=True)
class HostPrediction:
    """Predicted wall times and slowdowns for one backend configuration."""

    label: str
    events: int
    raw_seconds: float
    uni_seconds: float
    smp_seconds: float

    @property
    def uni_slowdown(self) -> float:
        return self.uni_seconds / self.raw_seconds if self.raw_seconds else 0.0

    @property
    def smp_slowdown(self) -> float:
        return self.smp_seconds / self.raw_seconds if self.raw_seconds else 0.0

    @property
    def smp_speedup(self) -> float:
        return self.uni_seconds / self.smp_seconds if self.smp_seconds else 0.0


def measure_context_switch(iterations: int = 2000) -> float:
    """One context switch + hand-off cost: pipe ping-pong between two
    processes pinned to a single core (every message forces a switch)."""
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    a_parent, a_child = ctx.Pipe()

    def child(conn) -> None:
        try:
            os.sched_setaffinity(0, {sorted(os.sched_getaffinity(0))[0]})
        except OSError:
            pass
        while True:
            m = conn.recv()
            if m is None:
                return
            conn.send(m)

    p = ctx.Process(target=child, args=(a_child,), daemon=True)
    p.start()
    a_child.close()
    old = os.sched_getaffinity(0)
    try:
        os.sched_setaffinity(0, {sorted(old)[0]})
    except OSError:
        pass
    try:
        a_parent.send(1)   # warm up
        a_parent.recv()
        t0 = time.perf_counter()
        for _ in range(iterations):
            a_parent.send(1)
            a_parent.recv()
        dt = time.perf_counter() - t0
        a_parent.send(None)
    finally:
        try:
            os.sched_setaffinity(0, old)
        except OSError:
            pass
        p.join(timeout=2)
        if p.is_alive():
            p.terminate()
    # one round trip = two hand-offs = two context switches
    return dt / iterations / 2


def predict(label: str, events: int, raw_seconds: float, costs: HostCosts,
            host_cpus: int = 4, frontends: int = 4) -> HostPrediction:
    """Apply the overlap model to one configuration."""
    uni = events * (costs.t_fe + costs.t_be + 2 * costs.t_cs)
    fe_rate = costs.t_fe / max(1, min(host_cpus - 1, frontends))
    smp = events * (max(costs.t_be, fe_rate) + costs.t_spin)
    return HostPrediction(label, events, raw_seconds, uni, smp)
