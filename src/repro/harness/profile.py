"""User-vs-OS time decomposition (the paper's Table 1).

The paper reports "user and OS times as a percentage of the total CPU time
which excludes wait time due to disk IO", with OS time split into interrupt
handlers and kernel (syscall) time. :func:`profile_row` produces that row
from a finished run's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.stats import StatsRegistry


@dataclass(frozen=True)
class ProfileRow:
    """One Table 1 row."""

    benchmark: str
    user_pct: float
    os_pct: float
    interrupt_pct: float
    kernel_pct: float
    busy_cycles: int
    idle_cycles: int

    def as_tuple(self) -> Tuple[str, str, str, str, str]:
        return (self.benchmark,
                f"{self.user_pct:.1f}%",
                f"{self.os_pct:.1f}%",
                f"{self.interrupt_pct:.1f}%",
                f"{self.kernel_pct:.1f}%")


def profile_row(name: str, stats: StatsRegistry) -> ProfileRow:
    """Build the Table 1 row for a finished run.

    Context-switch cycles are folded into kernel time (the dispatcher is
    kernel code); idle (I/O wait) is excluded, as in the paper.
    """
    agg = stats.total_cpu()
    busy = agg.busy
    if busy == 0:
        return ProfileRow(name, 0.0, 0.0, 0.0, 0.0, 0, agg.idle)
    kernel = agg.kernel + agg.ctx_switch
    return ProfileRow(
        benchmark=name,
        user_pct=100.0 * agg.user / busy,
        os_pct=100.0 * (kernel + agg.interrupt) / busy,
        interrupt_pct=100.0 * agg.interrupt / busy,
        kernel_pct=100.0 * kernel / busy,
        busy_cycles=busy,
        idle_cycles=agg.idle,
    )


def top_oscall_table(stats: StatsRegistry, n: int = 8) -> List[Tuple[str, float, int]]:
    """The "significant OS calls" list: (name, % of kernel cycles, count)."""
    total_kernel = stats.total_cpu().kernel
    if total_kernel == 0:
        return []
    return [(name, 100.0 * cyc / total_kernel, cnt)
            for name, cyc, cnt in stats.top_syscalls(n)]


def fastpath_summary(engine) -> dict:
    """Observability row for the batched pipeline + L1 fast-path filter.

    Reports how many references resolved in the L1 fast path vs fell back
    to the full hierarchy walk, plus the engine's batch consumption
    counters (batches consumed, references per batch, and why each consume
    loop stopped — see DESIGN.md "Performance notes").
    """
    ms = engine.memsys
    total = ms.fast_hits + ms.fast_fallbacks
    out = {
        "fast_hits": ms.fast_hits,
        "fast_fallbacks": ms.fast_fallbacks,
        "fast_hit_rate": (ms.fast_hits / total) if total else 0.0,
        "events_processed": engine.events_processed,
    }
    bs = engine.batch_stats
    out.update({f"batch_{k}": v for k, v in bs.items()})
    out["refs_per_batch"] = (bs["refs"] / bs["batches"]) if bs["batches"] else 0.0
    return out


def vec_summary(engine) -> dict:
    """Observability row for the vectorized batch memory path.

    Reports how many batch runs classified and retired through the numpy
    mirror state vs fell back to the scalar loop, the mirror rebuild count,
    and the per-reason decline counters from the vec classifier (see
    DESIGN.md "Vectorized mirror state").
    """
    ms = engine.memsys
    out = {
        "enabled": ms._vec is not None,
        "vec_batches": ms.vec_batches,
        "vec_refs": ms.vec_refs,
        "vec_fallbacks": ms.vec_fallbacks,
        "vec_rebuilds": ms.vec_rebuilds,
    }
    if ms._vec is not None:
        out["declines"] = dict(ms._vec.declines)
    return out


def sampling_summary(engine) -> dict:
    """Observability row for checkpoint-based sampled simulation.

    Reports how many references retired through the functional
    fast-forward path vs the detailed model, plus the window counts and
    calibrated ff latencies from the controller. ``enabled: False`` (and
    no other keys) when sampling is off.
    """
    ctl = getattr(engine, "_sampler", None)
    if ctl is None:
        return {"enabled": False}
    out = {"enabled": True}
    out.update(ctl.summary())
    return out


def translate_summary(engine) -> dict:
    """Observability row for the basic-block translation cache.

    ``enabled`` reflects the engine's frontend setting; the counters are the
    process-wide translation-cache stats (programs/blocks translated, shared
    code-cache hit rate, and interpreter fallbacks) — see
    :mod:`repro.isa.translate`.
    """
    from ..isa.translate import cache_stats
    out = {"enabled": bool(getattr(engine, "_frontend_translate", False))}
    out.update(cache_stats())
    compiles = out["code_hits"] + out["code_misses"]
    out["code_hit_rate"] = (out["code_hits"] / compiles) if compiles else 0.0
    return out
