"""Experiment harness: profile decomposition (Table 1), slowdown
measurement (Tables 2–3), and ASCII table rendering for the benches."""

from .profile import (ProfileRow, fastpath_summary, profile_row,
                      sampling_summary, top_oscall_table, translate_summary,
                      vec_summary)
from .slowdown import SlowdownResult, measure_slowdown
from .tables import render_table
from .hostmodel import (HostCosts, HostPrediction, measure_context_switch,
                        predict)

__all__ = [
    "ProfileRow",
    "fastpath_summary",
    "translate_summary",
    "vec_summary",
    "sampling_summary",
    "profile_row",
    "top_oscall_table",
    "SlowdownResult",
    "measure_slowdown",
    "render_table",
    "HostCosts",
    "HostPrediction",
    "measure_context_switch",
    "predict",
]
