"""Simulation-as-a-service control plane.

``adapter`` — the ``prepare/run/collect`` :class:`SimulatorAdapter` and
the plain-dict config factory; ``workloads`` — the canonical workload
registry and stats fingerprints; ``job`` — :class:`JobSpec` /
:class:`JobRecord` / the job state machine; ``runner`` — the supervised
:class:`JobRunner` + :class:`JobQueue` (retry/backoff, hang and
wall-clock watchdogs, checkpoint-based preempt/resume, safe-mode
degradation). See DESIGN.md "Control plane".
"""

from .adapter import SimulatorAdapter, make_config_factory
from .job import AttemptRecord, JobRecord, JobSpec, JobState
from .runner import JobQueue, JobRunner, run_matrix
from .workloads import WORKLOADS, fingerprint, full_fingerprint

__all__ = [
    "SimulatorAdapter",
    "make_config_factory",
    "JobSpec",
    "JobRecord",
    "JobState",
    "AttemptRecord",
    "JobQueue",
    "JobRunner",
    "run_matrix",
    "WORKLOADS",
    "fingerprint",
    "full_fingerprint",
]
