"""Simulation-as-a-service control plane.

``adapter`` — the ``prepare/run/collect`` :class:`SimulatorAdapter` and
the plain-dict config factory; ``workloads`` — the canonical workload
registry and stats fingerprints; ``job`` — :class:`JobSpec` /
:class:`JobRecord` / the job state machine; ``runner`` — the supervised
:class:`JobRunner` + :class:`JobQueue` (retry/backoff, hang and
wall-clock watchdogs, checkpoint-based preempt/resume, safe-mode
degradation); ``spool`` — the :class:`JobSpool` WAL journal behind
``JobRunner(spool_dir=...)`` / :meth:`JobRunner.recover`; ``recovery``
— the :func:`crash_recovery_loop` supervisor-kill harness. See
DESIGN.md "Control plane" and "Durability & crash consistency".
"""

from .adapter import SimulatorAdapter, make_config_factory
from .job import AttemptRecord, JobRecord, JobSpec, JobState
from .recovery import crash_recovery_loop, final_fingerprints
from .runner import JobQueue, JobRunner, run_matrix
from .spool import JobSpool
from .workloads import WORKLOADS, fingerprint, full_fingerprint

__all__ = [
    "SimulatorAdapter",
    "make_config_factory",
    "JobSpec",
    "JobRecord",
    "JobState",
    "AttemptRecord",
    "JobQueue",
    "JobRunner",
    "JobSpool",
    "crash_recovery_loop",
    "final_fingerprints",
    "run_matrix",
    "WORKLOADS",
    "fingerprint",
    "full_fingerprint",
]
