"""Canonical workload builders and stats fingerprints.

One registry for the engine setup that used to be duplicated across
``benchmarks/workloads.py``, ``tests/conftest.py``, and the equivalence
tests: every builder takes a *config factory* — a callable
``cfg(**kw) -> SimConfig`` (usually :func:`make_config_factory` output or
a partial of :func:`repro.complex_backend`) — spawns its workload, and
returns the ready-to-run engine without calling ``run()``. That contract
is exactly what :func:`repro.checkpoint.resume` needs from a rebuild
callable, so the same builders serve direct runs, golden regression runs,
and checkpoint-resumed control-plane jobs.

The four registry entries mirror the paper's workload classes: ``oltp``
(TPC-C-style transactions), ``dss`` (TPC-D Q1 scan), ``webserver``
(SPECWeb-like trace playback), and ``splash`` (radix kernel). Builders
pin their own architecture knobs (CPU count; the web tier is MESI bus
snooping) — those win over factory-level defaults.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.engine import Engine
from ..apps.minidb import (MiniDb, TpccDriver, TpcdDriver, tpcc_catalog,
                           tpcd_catalog)
from ..apps.splash import spawn_kernel
from ..apps.webserver import (TracePlayer, generate_fileset, make_trace,
                              prefork_web_server)

#: a config factory: keyword architecture knobs -> validated SimConfig
ConfigFactory = Callable[..., object]


# ---------------------------------------------------------------------------
# deterministic test/golden-scale builders (the FAULT_OFF_WORKLOADS set)
# ---------------------------------------------------------------------------

def build_oltp(cfg: ConfigFactory, *, warehouses=1, scale=0.005,
               pool_frames=16, seed=3, nagents=2, tx_per_agent=3,
               think_cycles=5_000, user_work=20_000) -> Engine:
    """TPC-C-style OLTP: short read/write transactions with think time."""
    eng = Engine(cfg(num_cpus=2))
    db = MiniDb(eng, tpcc_catalog(warehouses, scale),
                pool_frames=pool_frames, seed=seed)
    db.setup()
    drv = TpccDriver(db, nagents=nagents, tx_per_agent=tx_per_agent,
                     seed=seed, think_cycles=think_cycles,
                     user_work=user_work)
    drv.spawn_agents(eng)
    return eng


def build_dss(cfg: ConfigFactory, *, scale=0.0001, pool_frames=16,
              nagents=2, io="read", rows_work=50) -> Engine:
    """TPC-D Q1: a partitioned sequential scan (decision support)."""
    eng = Engine(cfg(num_cpus=2))
    db = MiniDb(eng, tpcd_catalog(scale=scale), pool_frames=pool_frames)
    db.setup()
    TpcdDriver(db, nagents=nagents, io=io, rows_work=rows_work).spawn_q1(eng)
    return eng


def build_web(cfg: ConfigFactory, *, nrequests=6, nworkers=2, nclients=2,
              size_scale=0.1, seed=3) -> Engine:
    """SPECWeb-like trace playback against a prefork web server (MESI)."""
    eng = Engine(cfg(num_cpus=4, coherence="mesi", num_nodes=1))
    fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=size_scale)
    trace = make_trace(fset, nrequests=nrequests, seed=seed)
    prefork_web_server(eng, nworkers=nworkers)
    TracePlayer(eng, trace, fset, nclients=nclients,
                nworkers_to_quit=nworkers).start()
    return eng


def build_splash(cfg: ConfigFactory, *, kernel="radix", nprocs=4,
                 nkeys=512) -> Engine:
    """SPLASH-2 style scientific kernel (radix sort by default)."""
    eng = Engine(cfg(num_cpus=4))
    spawn_kernel(eng, kernel, nprocs, nkeys=nkeys)
    return eng


#: name -> builder(cfg, **kwargs). The canonical scenario axis for the
#: determinism suite, the golden fleet, and control-plane job specs.
WORKLOADS: Dict[str, Callable[..., Engine]] = {
    "oltp": build_oltp,
    "dss": build_dss,
    "webserver": build_web,
    "splash": build_splash,
}


# ---------------------------------------------------------------------------
# stats fingerprints
# ---------------------------------------------------------------------------

def fingerprint(eng: Engine, stats) -> tuple:
    """Scheduler-level identity of a finished run: end cycle, event count,
    per-CPU time split, syscall/interrupt tallies. Equal fingerprints mean
    the runs made the same scheduling decisions at the same cycles."""
    return (
        stats.end_cycle,
        eng.events_processed,
        tuple((c.user, c.kernel, c.interrupt, c.idle, c.ctx_switch)
              for c in stats.cpu),
        tuple(sorted(stats.syscall_cycles.items())),
        tuple(sorted(stats.syscall_counts.items())),
        tuple(sorted(stats.interrupt_counts.items())),
    )


def full_fingerprint(eng: Engine, stats) -> tuple:
    """:func:`fingerprint` plus fault-injection tallies, cache/protocol
    counters, and VM fault counts — the bit-identity gate used by the
    checkpoint-resume and golden-output tests."""
    summary = eng.memsys.cache_summary()
    return fingerprint(eng, stats) + (
        tuple(sorted(eng.faults.stats.fired.items())),
        eng.faults.stats.draws,
        tuple(sorted(summary["l1"].items())),
        dict(summary["protocol"]),
        eng.memsys.vmm.minor_faults,
        eng.memsys.vmm.major_faults,
    )


# ---------------------------------------------------------------------------
# benchmark-scale builders (ready-to-finish closures for the bench suite)
# ---------------------------------------------------------------------------

def build_web_run(nrequests=20, nworkers=3, nclients=4, size_scale=0.25,
                  cfg=None):
    """SPECWeb-like run ready to go: returns (engine, finisher)."""
    from ..core.config import complex_backend
    factory = cfg if cfg is not None else complex_backend
    eng = Engine(factory(num_cpus=4, coherence="mesi", num_nodes=1))
    fset = generate_fileset(eng.os_server.fs, ndirs=1, size_scale=size_scale)
    trace = make_trace(fset, nrequests=nrequests, seed=3)
    workers, wstats = prefork_web_server(eng, nworkers=nworkers)
    player = TracePlayer(eng, trace, fset, nclients=nclients,
                         nworkers_to_quit=nworkers)
    player.start()

    def finish():
        stats = eng.run()
        assert player.completed == nrequests
        return stats

    return eng, finish


def build_tpcd_run(scale=0.0003, nagents=4, io="read", cfg=None,
                   pool_frames=64):
    from ..core.config import complex_backend
    eng = Engine(cfg if cfg is not None else complex_backend(num_cpus=4))
    cat = tpcd_catalog(scale=scale)
    db = MiniDb(eng, cat, pool_frames=pool_frames)
    db.setup()
    drv = TpcdDriver(db, nagents=nagents, io=io)
    drv.spawn_q1(eng)

    def finish():
        stats = eng.run()
        assert drv.result is not None
        return stats

    return eng, db, drv, finish


def build_tpcc_run(scale=0.01, nagents=4, tx=6, cfg=None, pool_frames=48,
                   seed=11):
    from ..core.config import complex_backend
    eng = Engine(cfg if cfg is not None else complex_backend(num_cpus=4))
    cat = tpcc_catalog(warehouses=1, scale=scale)
    db = MiniDb(eng, cat, pool_frames=pool_frames, seed=seed)
    db.setup()
    drv = TpccDriver(db, nagents=nagents, tx_per_agent=tx, seed=seed,
                     think_cycles=10_000)
    drv.spawn_agents(eng)

    def finish():
        stats = eng.run()
        assert drv.committed == nagents * tx
        return stats

    return eng, db, drv, finish
