"""Job descriptions and structured job records for the control plane.

A :class:`JobSpec` is a plain-data description of one simulation plus the
supervision policy it runs under (timeouts, retry budget, backoff curve,
checkpoint cadence, safe-mode fallback). A :class:`JobRecord` is the
runner's account of what actually happened: the state machine history
(``PENDING → RUNNING → {DONE, RETRYING, PREEMPTED, DEGRADED, FAILED}``),
per-attempt outcomes with the forensic ``DeadlockError`` /
``HostError.report`` payloads attached verbatim, and the final stats
fingerprint. Both serialize to JSON-plain dicts — a record written with
``json.dumps`` survives a load round trip unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..core.jsonable import to_jsonable


class JobState:
    """Control-plane job states (plain strings, so records stay JSON-plain).

    Terminal states are ``DONE`` (succeeded as configured), ``DEGRADED``
    (succeeded, but only in the serial safe-mode fallback after the retry
    budget ran out), and ``FAILED``. ``RETRYING`` and ``PREEMPTED`` return
    to ``RUNNING``; a preemption never consumes retry budget.
    """

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    RETRYING = "RETRYING"
    PREEMPTED = "PREEMPTED"
    DEGRADED = "DEGRADED"
    DONE = "DONE"
    FAILED = "FAILED"

    TERMINAL = frozenset({DONE, DEGRADED, FAILED})


@dataclass
class JobSpec:
    """One simulation + the supervision policy to run it under."""

    name: str
    workload: str = "oltp"
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: SimConfig knobs in the :func:`make_config_factory` dict form
    config: Dict[str, Any] = field(default_factory=dict)
    #: total event budget (None = run the workload to completion)
    budget: Optional[int] = None
    #: per-attempt wall-clock ceiling (seconds)
    timeout: float = 300.0
    #: max heartbeat silence before an attempt is declared hung (seconds)
    hang_timeout: float = 30.0
    #: events per child run() segment — one heartbeat per segment
    heartbeat_events: int = 2_000
    #: crash/hang retries after the first attempt (0 = no retries)
    max_retries: int = 2
    #: exponential backoff: first delay, doubling per retry, capped
    backoff: float = 0.05
    backoff_max: float = 2.0
    #: deterministic jitter fraction on top of each backoff delay
    jitter: float = 0.25
    #: autosave cadence in events; 0 disables checkpointing, so crashed
    #: attempts restart from scratch instead of resuming
    checkpoint_interval: int = 2_000
    #: after the last retry, try once more serially with every optimistic
    #: knob (speculate/lookahead/vectorized) off before giving up
    safe_mode_fallback: bool = True
    #: deterministic failure injection for tests/CI: ``kill_at_events``
    #: (child SIGKILLs itself at that event count, on the attempts listed
    #: in ``kill_on_attempts``, default [1]), ``hang_on_attempts`` (child
    #: sends one heartbeat then sleeps forever), ``crash_on_attempts``
    #: (child raises after its first segment)
    chaos: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return to_jsonable(asdict(self))

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobSpec":
        return cls(**d)

    def backoff_delay(self, attempt: int) -> float:
        """Wall-clock delay before launching ``attempt`` (2, 3, …).

        Exponential in the retry index with a deterministic per-job
        jitter draw, so tests are reproducible while a fleet of jobs
        that crashed together still fans out instead of thundering back
        in lockstep."""
        import random
        base = min(self.backoff * (2 ** max(attempt - 2, 0)),
                   self.backoff_max)
        spread = random.Random(f"{self.name}:{attempt}").random()
        return base * (1.0 + self.jitter * spread)


@dataclass
class AttemptRecord:
    """What one supervised attempt did and how it ended."""

    attempt: int
    safe_mode: bool = False
    resumed_from_events: Optional[int] = None
    outcome: str = ""               # "done" | "crashed" | "hung" |
    #                                 "timeout" | "error" | "preempted"
    detail: str = ""
    exitcode: Optional[int] = None
    events_processed: int = 0
    wall_seconds: float = 0.0
    backoff_seconds: float = 0.0    # delay charged *before* this attempt
    #: forensic DeadlockError/HostError report, embedded verbatim
    report: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return to_jsonable(asdict(self))

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "AttemptRecord":
        return cls(**d)


@dataclass
class JobRecord:
    """The runner's structured, JSON-serializable account of one job."""

    spec: JobSpec
    state: str = JobState.PENDING
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: state-machine transitions in order, e.g. ["PENDING", "RUNNING", ...]
    history: List[str] = field(default_factory=lambda: [JobState.PENDING])
    resumes: int = 0
    preemptions: int = 0
    degraded: bool = False
    #: the collect() payload of the successful attempt (None on FAILED)
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None

    @property
    def fingerprint(self):
        return None if self.result is None else self.result["fingerprint"]

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, state: str) -> None:
        self.state = state
        self.history.append(state)

    def to_dict(self) -> Dict[str, Any]:
        return to_jsonable({
            "spec": self.spec.to_dict(),
            "state": self.state,
            "history": list(self.history),
            "attempts": [a.to_dict() for a in self.attempts],
            "resumes": self.resumes,
            "preemptions": self.preemptions,
            "degraded": self.degraded,
            "result": self.result,
            "error": self.error,
        })

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobRecord":
        """Rebuild a record from its :meth:`to_dict` form — the spool's
        compaction snapshots and crash recovery both replay these."""
        return cls(
            spec=JobSpec.from_dict(d["spec"]),
            state=d.get("state", JobState.PENDING),
            attempts=[AttemptRecord.from_dict(a)
                      for a in d.get("attempts", ())],
            history=list(d.get("history", (JobState.PENDING,))),
            resumes=int(d.get("resumes", 0)),
            preemptions=int(d.get("preemptions", 0)),
            degraded=bool(d.get("degraded", False)),
            result=d.get("result"),
            error=d.get("error"),
        )
