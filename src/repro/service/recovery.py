"""Crash-recovery loop harness: kill the supervisor, recover, repeat.

:func:`crash_recovery_loop` runs a job matrix under a
:class:`~repro.faults.crashpoints.CrashPointPlan` in a sequence of
*rounds*. Each round forks a fresh supervisor process that installs the
plan, then either starts the matrix (first round, empty spool) or
adopts it with :meth:`JobRunner.recover`. When an injected crash kills
the round — whether it lands in the supervisor itself or in one of its
forked job children — the next round recovers from the WAL spool and
the checkpoint autosaves and carries on. The loop ends when a round
completes cleanly and returns the final job records.

Because every crash rule is once-only across the process tree (claimed
via sentinel files in the plan ``state_dir``), the loop is guaranteed
to make progress: a spent rule cannot re-fire in the recovery round.
A plan arriving without a ``state_dir`` gets one under the harness
work directory for exactly this reason.

The harness is the acceptance gate for the durability layer: tests
assert that :func:`final_fingerprints` of a crashed-and-recovered loop
is bit-identical to an undisturbed run of the same specs.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..faults import crashpoints
from ..faults.crashpoints import CrashPointPlan
from .job import JobSpec
from .runner import JobRunner, _ctx
from .spool import _segment_index


def spool_has_segments(spool_dir: str) -> bool:
    """True when ``spool_dir`` already holds WAL segments to recover."""
    if not os.path.isdir(spool_dir):
        return False
    return any(_segment_index(name) is not None
               for name in os.listdir(spool_dir))


def final_fingerprints(records: Dict[str, Dict[str, Any]]
                       ) -> Dict[str, Any]:
    """name -> stats fingerprint of each job's final result (None for
    jobs that failed)."""
    out = {}
    for name, rec in records.items():
        result = rec.get("result")
        out[name] = None if result is None else result.get("fingerprint")
    return out


def _round_child(spec_dicts: List[dict], plan_dict: Optional[dict],
                 spool_dir: str, workdir: str, runner_kw: dict,
                 conn) -> None:
    """One supervisor round: install the plan, start or recover the
    matrix, pump to completion, ship the record dicts back."""
    try:
        plan = (CrashPointPlan.from_dict(plan_dict)
                if plan_dict is not None else None)
        crashpoints.install(plan)
        if spool_has_segments(spool_dir):
            runner = JobRunner.recover(spool_dir, workdir=workdir,
                                       **runner_kw)
        else:
            runner = JobRunner(spool_dir=spool_dir, workdir=workdir,
                               **runner_kw)
        for d in spec_dicts:
            spec = JobSpec.from_dict(d)
            if spec.name not in runner.queue.records:
                runner.submit(spec)
        records = runner.run()
        conn.send(("done", {n: r.to_dict() for n, r in records.items()}))
        conn.close()
    except BaseException as exc:   # noqa: BLE001 — forwarded, then exit
        try:
            conn.send(("err", {"type": type(exc).__name__,
                               "message": str(exc)}))
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


def crash_recovery_loop(specs: Iterable[JobSpec],
                        plan: Optional[CrashPointPlan] = None, *,
                        spool_dir: Optional[str] = None,
                        workdir: Optional[str] = None,
                        max_rounds: int = 12,
                        round_timeout: float = 120.0,
                        **runner_kw
                        ) -> Tuple[Dict[str, Dict[str, Any]],
                                   List[Dict[str, Any]]]:
    """Run ``specs`` to completion through supervisor crashes.

    Returns ``(records, rounds)``: the final name -> record dicts from
    the first clean round, and a per-round log (``round``, ``exitcode``,
    ``crashed``, optional ``error``). Raises ``RuntimeError`` if no
    round completes within ``max_rounds`` — a regression in either the
    spool recovery scan or the once-only crash-rule claims.

    Extra keyword arguments are forwarded to :class:`JobRunner` /
    :meth:`JobRunner.recover` (``max_workers``, ``poll``,
    ``spool_fsync``, ``compact_every``).
    """
    spec_dicts = [s.to_dict() if isinstance(s, JobSpec) else dict(s)
                  for s in specs]
    root = tempfile.mkdtemp(prefix="compass-crl-")
    spool_dir = spool_dir or os.path.join(root, "spool")
    workdir = workdir or os.path.join(root, "work")
    os.makedirs(workdir, exist_ok=True)
    if plan is not None and plan.state_dir is None:
        # once-only claims must survive the round process dying, or a
        # kill rule would re-fire every round and the loop could not
        # converge
        plan = CrashPointPlan(rules=plan.rules, seed=plan.seed,
                              state_dir=os.path.join(root, "crash-state"),
                              tag=plan.tag)
    plan_dict = plan.to_dict() if plan is not None else None

    rounds: List[Dict[str, Any]] = []
    for round_no in range(1, max_rounds + 1):
        parent_conn, child_conn = _ctx.Pipe(duplex=False)
        proc = _ctx.Process(
            target=_round_child,
            args=(spec_dicts, plan_dict, spool_dir, workdir, runner_kw,
                  child_conn),
            name=f"crl-round-{round_no}")
        proc.start()
        child_conn.close()
        msg = None
        deadline = time.monotonic() + round_timeout
        while time.monotonic() < deadline:
            try:
                if parent_conn.poll(0.05):
                    msg = parent_conn.recv()
                    break
            except (EOFError, OSError):
                break
            if not proc.is_alive():
                break
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
        if proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, TypeError):
                pass
            proc.join()
        parent_conn.close()
        entry: Dict[str, Any] = {
            "round": round_no,
            "exitcode": proc.exitcode,
            "crashed": msg is None or msg[0] != "done",
        }
        if msg is not None and msg[0] == "err":
            entry["error"] = msg[1]
        rounds.append(entry)
        if msg is not None and msg[0] == "done":
            return msg[1], rounds
    raise RuntimeError(
        f"crash_recovery_loop did not converge within {max_rounds} "
        f"rounds (spool_dir={spool_dir!r}); round log: {rounds}")
