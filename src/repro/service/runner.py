"""Supervised job execution: many sims in watched subprocesses.

The :class:`JobRunner` drives every submitted :class:`JobSpec` to a
terminal state. Each attempt runs in its own forked subprocess built
around a :class:`~repro.service.adapter.SimulatorAdapter`; the child
simulates in ``heartbeat_events``-sized segments (segment cuts are
bit-identical to one uninterrupted run) and reports a heartbeat after
each, so the parent's single-threaded pump — the same
``connection.wait``-over-pipes shape as the PR 3 worker supervision in
``host/parallel.py`` — can tell *slow* from *dead* from *hung*:

* child exits without a result → **crashed**: retry with exponential
  backoff + deterministic jitter;
* heartbeat silence beyond ``hang_timeout`` → **hung**: SIGKILL, retry;
* wall clock beyond ``timeout`` → **timeout**: SIGKILL, retry;
* structured error message (``DeadlockError``/``HostError``…) → retry,
  with the forensic report embedded in the attempt record.

With ``checkpoint_interval`` set, every attempt autosaves through the
PR 4 :class:`~repro.checkpoint.manager.CheckpointManager`; a retried,
preempted, or externally SIGKILLed job *resumes from its last autosave*
instead of restarting, and the checkpoint layer guarantees the resumed
run is bit-identical to an undisturbed one. When the retry budget runs
out, one last "safe mode" attempt runs with every optimistic knob
(speculate / lookahead / vectorized) off and checkpointing disabled —
those knobs are bit-identical by contract, so a safe-mode success still
produces the canonical fingerprint, just slower; it terminates the job
as ``DEGRADED`` rather than ``DONE`` so fleets can alert on it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import tempfile
import time
from multiprocessing.connection import wait as conn_wait
from typing import Dict, Iterable, Optional

from ..checkpoint import checkpoint_exists, generation_paths
from ..checkpoint import resume as ckpt_resume
from ..core.framing import sweep_stale_tmp
from ..core.jsonable import to_jsonable
from .adapter import SimulatorAdapter
from .job import AttemptRecord, JobRecord, JobSpec, JobState
from .spool import JobSpool

try:
    _ctx = mp.get_context("fork")
except ValueError:                             # non-POSIX host
    _ctx = mp.get_context()

#: knobs forced off by a safe-mode attempt (all bit-identical on/off)
SAFE_MODE_OVERRIDES = {"speculate": False, "lookahead": False,
                       "vectorized": False}


# ---------------------------------------------------------------------------
# the job child
# ---------------------------------------------------------------------------

def _job_child(spec_dict: dict, attempt: int, ckpt_path: str,
               safe_mode: bool, conn) -> None:
    """One supervised attempt. Protocol (child -> parent):

    ``("resumed", events)`` restored from the autosave up to *events*;
    ``("hb", attempt, events, cycle)`` one segment retired;
    ``("done", collect_payload)`` finished, payload is JSON-plain;
    ``("err", {type, message, report})`` structured failure.
    Dying without ``done``/``err`` is a crash — the parent sees only the
    process sentinel.
    """
    spec = JobSpec.from_dict(spec_dict)
    chaos = spec.chaos or {}
    try:
        adapter = SimulatorAdapter()
        config = dict(spec.config)
        if safe_mode:
            # serial safe mode: optimistic knobs off; no checkpointing, a
            # safe-mode config could not adopt the optimistic run's
            # autosave anyway (the config fingerprint differs)
            config.update(SAFE_MODE_OVERRIDES)
            config.pop("checkpoint_path", None)
            config.pop("checkpoint_interval", None)
        elif spec.checkpoint_interval > 0:
            config["checkpoint_path"] = ckpt_path
            config["checkpoint_interval"] = spec.checkpoint_interval

        def build():
            return adapter.prepare(config=config, workload=spec.workload,
                                   workload_kwargs=spec.workload_kwargs)

        if (not safe_mode and spec.checkpoint_interval > 0
                and checkpoint_exists(ckpt_path)):
            engine, stats = ckpt_resume(ckpt_path, build, finish=True)
            adapter.stats = stats
            conn.send(("resumed", engine.events_processed))
        else:
            build()

        if attempt in chaos.get("hang_on_attempts", ()):
            # deterministic hang: prove liveness once, then fall silent
            conn.send(("hb", attempt, adapter.engine.events_processed,
                       adapter.engine.gsched.now))
            while True:
                time.sleep(3600)

        kill_at = chaos.get("kill_at_events")
        kill_on = chaos.get("kill_on_attempts", (1,))
        while adapter.running:
            seg = spec.heartbeat_events
            done_events = adapter.engine.events_processed
            if spec.budget is not None:
                if done_events >= spec.budget:
                    break
                seg = min(seg, spec.budget - done_events)
            adapter.run(budget=seg)
            conn.send(("hb", attempt, adapter.engine.events_processed,
                       adapter.engine.gsched.now))
            if (kill_at is not None and attempt in kill_on
                    and adapter.engine.events_processed >= kill_at):
                os.kill(os.getpid(), signal.SIGKILL)   # simulated kill -9
            if attempt in chaos.get("crash_on_attempts", ()):
                raise RuntimeError("chaos: injected crash")
        conn.send(("done", adapter.collect()))
        conn.close()
    except BaseException as exc:   # noqa: BLE001 — forwarded, then exit
        try:
            conn.send(("err", {
                "type": type(exc).__name__,
                "message": str(exc),
                "report": to_jsonable(getattr(exc, "report", None)),
            }))
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------

class _Active:
    """Parent-side bookkeeping for one live attempt."""

    __slots__ = ("process", "conn", "attempt", "safe_mode", "started",
                 "last_alive", "events", "resumed_from", "backoff",
                 "finished")

    def __init__(self, process, conn, attempt, safe_mode, backoff):
        self.process = process
        self.conn = conn
        self.attempt = attempt
        self.safe_mode = safe_mode
        self.started = time.monotonic()
        self.last_alive = self.started
        self.events = 0
        self.resumed_from: Optional[int] = None
        self.backoff = backoff
        self.finished = False


class JobQueue:
    """In-process submission queue: name -> JobRecord, insertion-ordered."""

    def __init__(self) -> None:
        self.records: Dict[str, JobRecord] = {}

    def submit(self, spec: JobSpec) -> JobRecord:
        if spec.name in self.records:
            raise ValueError(f"duplicate job name {spec.name!r}")
        rec = JobRecord(spec=spec)
        self.records[spec.name] = rec
        return rec

    def get(self, name: str) -> JobRecord:
        return self.records[name]

    def __iter__(self):
        return iter(self.records.values())

    def __len__(self) -> int:
        return len(self.records)


class JobRunner:
    """Drive submitted jobs to terminal states under supervision."""

    def __init__(self, queue: Optional[JobQueue] = None, *,
                 max_workers: int = 2, workdir: Optional[str] = None,
                 poll: float = 0.05, spool_dir: Optional[str] = None,
                 spool_fsync: bool = True, compact_every: int = 256) -> None:
        self.queue = queue if queue is not None else JobQueue()
        self.max_workers = max(1, max_workers)
        self.workdir = (workdir if workdir is not None
                        else tempfile.mkdtemp(prefix="compass-jobs-"))
        os.makedirs(self.workdir, exist_ok=True)
        self.poll = poll
        #: the WAL job spool; None = in-memory only (pre-spool behaviour)
        self._spool: Optional[JobSpool] = None
        if spool_dir is not None:
            spool = JobSpool(spool_dir, fsync=spool_fsync,
                             compact_every=compact_every)
            if spool.segment_indices():
                raise ValueError(
                    f"spool dir {spool_dir!r} already holds journal "
                    f"segments; use JobRunner.recover() to adopt them")
            self._spool = spool
            self._journal({"type": "meta", "workdir": self.workdir})
        self._active: Dict[str, _Active] = {}
        #: monotonic time each non-active job becomes launchable
        self._eligible_at: Dict[str, float] = {}
        #: next launch index per job (1-based; preemptions advance it too)
        self._next_launch: Dict[str, int] = {}
        #: crash/hang/timeout failures charged against max_retries
        self._retries_used: Dict[str, int] = {}
        #: delay charged before the *next* launch (for the record)
        self._pending_backoff: Dict[str, float] = {}
        self._safe_pending: set = set()
        self._preempt_requested: set = set()
        #: preempted jobs held until resume() is called
        self._held: set = set()

    # -- journaling --------------------------------------------------------

    def _journal(self, record: dict) -> None:
        """Append one WAL record (no-op without a spool)."""
        if self._spool is not None:
            self._spool.append(record)

    def _journal_attempt(self, rec: JobRecord, ar: AttemptRecord) -> None:
        """One atomic record per finished attempt: the attempt itself,
        the resulting state, and every counter recovery needs."""
        name = rec.spec.name
        entry = {
            "type": "attempt", "job": name, "record": ar.to_dict(),
            "state": rec.state,
            "retries_used": self._retries_used.get(name, 0),
            "safe_pending": name in self._safe_pending,
            "resumes": rec.resumes, "preemptions": rec.preemptions,
            "degraded": rec.degraded,
        }
        if rec.terminal:
            entry["result"] = rec.result
            entry["error"] = rec.error
        self._journal(entry)
        if self._spool is not None and rec.terminal:
            self._spool.maybe_compact(self._snapshot_records)

    def _snapshot_records(self) -> list:
        """The compaction snapshot: meta + one full record per job."""
        records = [{"type": "meta", "workdir": self.workdir}]
        for rec in self.queue:
            name = rec.spec.name
            records.append({
                "type": "job", "job": name, "record": rec.to_dict(),
                "retries_used": self._retries_used.get(name, 0),
                "next_launch": self._next_launch.get(name, 1),
                "safe_pending": name in self._safe_pending,
                "held": name in self._held,
            })
        return records

    # -- public API --------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        rec = self.queue.submit(spec)
        self._journal({"type": "submit", "spec": spec.to_dict()})
        return rec

    def run(self) -> Dict[str, JobRecord]:
        """Pump until every job is terminal (or preempted-and-held);
        returns name -> record."""
        while any(not r.terminal and r.spec.name not in self._held
                  for r in self.queue):
            self.step()
        return dict(self.queue.records)

    def step(self, timeout: Optional[float] = None) -> None:
        """One pump round: launch eligible jobs, poll pipes/sentinels,
        enforce hang and wall-clock deadlines."""
        self._launch_eligible()
        self._poll(self.poll if timeout is None else timeout)
        self._check_deadlines()

    def preempt(self, name: str) -> None:
        """Stop ``name`` now (SIGKILL) without consuming retry budget; it
        stays ``PREEMPTED`` until :meth:`resume`, then continues from its
        last autosave."""
        rec = self.queue.get(name)
        act = self._active.get(name)
        self._held.add(name)
        if act is not None:
            self._preempt_requested.add(name)
            try:
                os.kill(act.process.pid, signal.SIGKILL)
            except (OSError, TypeError):
                pass
        elif not rec.terminal:
            rec.preemptions += 1
            rec.transition(JobState.PREEMPTED)
            self._journal({"type": "state", "job": name,
                           "state": JobState.PREEMPTED,
                           "preemptions": rec.preemptions})

    def resume(self, name: str) -> None:
        """Make a preempted job launchable again."""
        rec = self.queue.get(name)
        if rec.terminal:
            return
        self._held.discard(name)
        self._eligible_at[name] = time.monotonic()
        self._journal({"type": "resume", "job": name})

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def recover(cls, spool_dir: str, *, workdir: Optional[str] = None,
                max_workers: int = 2, poll: float = 0.05,
                spool_fsync: bool = True,
                compact_every: int = 256) -> "JobRunner":
        """Reconstruct a runner from its WAL spool after a supervisor
        crash (SIGKILL included).

        Replays the journal to rebuild the queue — completed results,
        attempt histories, retry counters, safe-mode/held flags — then:

        * **reaps orphaned RUNNING jobs**: the journaled child pid is
          SIGKILLed (it may still be simulating), an ``"orphaned"``
          attempt record is appended, and the job returns to RETRYING
          *without* consuming retry budget, so its next launch resumes
          from its checkpoint autosave bit-identically;
        * sweeps stale ``*.tmp`` files (checkpoint writers that died
          mid-save) from the work directory;
        * deletes autosave generations of jobs already terminal;
        * compacts the spool, so recovery cost stays bounded no matter
          how many crashes preceded this one.

        ``workdir`` defaults to the one journaled by the crashed runner
        — it must, or resumed jobs could not find their autosaves.
        """
        spool = JobSpool(spool_dir, fsync=spool_fsync,
                         compact_every=compact_every)
        records = spool.recover()
        queue = JobQueue()
        meta_workdir: Optional[str] = None
        retries: Dict[str, int] = {}
        next_launch: Dict[str, int] = {}
        safe_pending: set = set()
        held: set = set()
        pids: Dict[str, Optional[int]] = {}
        running_safe: Dict[str, bool] = {}
        for r in records:
            kind = r.get("type")
            name = r.get("job")
            rec = queue.records.get(name) if name else None
            if kind == "meta":
                meta_workdir = r.get("workdir", meta_workdir)
            elif kind == "submit":
                spec = JobSpec.from_dict(r["spec"])
                if spec.name not in queue.records:
                    queue.submit(spec)
            elif kind == "job":        # compaction snapshot entry
                queue.records[name] = JobRecord.from_dict(r["record"])
                retries[name] = int(r.get("retries_used", 0))
                next_launch[name] = int(r.get("next_launch", 1))
                (safe_pending.add if r.get("safe_pending")
                 else safe_pending.discard)(name)
                (held.add if r.get("held") else held.discard)(name)
            elif rec is None:
                continue               # delta for a job we never saw
            elif kind == "launch":
                next_launch[name] = int(r["attempt"]) + 1
                running_safe[name] = bool(r.get("safe_mode"))
                pids[name] = r.get("pid")
                rec.transition(JobState.RUNNING)
            elif kind == "attempt":
                rec.attempts.append(AttemptRecord.from_dict(r["record"]))
                retries[name] = int(r.get("retries_used", 0))
                (safe_pending.add if r.get("safe_pending")
                 else safe_pending.discard)(name)
                rec.resumes = int(r.get("resumes", rec.resumes))
                rec.preemptions = int(r.get("preemptions", rec.preemptions))
                rec.degraded = bool(r.get("degraded", rec.degraded))
                if r.get("result") is not None:
                    rec.result = r["result"]
                if r.get("error") is not None:
                    rec.error = r["error"]
                state = r.get("state")
                if state:
                    rec.transition(state)
                    (held.add if state == JobState.PREEMPTED
                     else held.discard)(name)
                pids.pop(name, None)
            elif kind == "state":
                rec.transition(r["state"])
                rec.preemptions = int(r.get("preemptions", rec.preemptions))
                if r["state"] == JobState.PREEMPTED:
                    held.add(name)
            elif kind == "resume":
                held.discard(name)

        runner = cls(queue, max_workers=max_workers, poll=poll,
                     workdir=workdir if workdir is not None
                     else meta_workdir)
        runner._spool = spool
        runner._retries_used = retries
        runner._next_launch = next_launch
        runner._safe_pending = safe_pending
        runner._held = held

        sweep_stale_tmp(runner.workdir)
        for rec in queue:
            name = rec.spec.name
            if rec.state != JobState.RUNNING:
                continue
            pid = pids.get(name)
            if pid:
                try:                    # the orphan may still be running
                    os.kill(pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
            ar = AttemptRecord(
                attempt=next_launch.get(name, 2) - 1,
                safe_mode=running_safe.get(name, False),
                outcome="orphaned",
                detail="supervisor crashed while the attempt was in "
                       "flight; reaped on recovery, resuming from its "
                       "checkpoint autosave")
            rec.attempts.append(ar)
            rec.transition(JobState.RETRYING)   # no retry budget charged
            runner._journal_attempt(rec, ar)
        for rec in queue:
            if rec.terminal:            # autosaves of finished jobs are
                base = runner._ckpt_path(rec.spec.name)   # dead weight
                for gen in generation_paths(base):
                    try:
                        os.unlink(gen)
                    except OSError:
                        pass
        spool.compact(runner._snapshot_records())
        return runner

    # -- launching ---------------------------------------------------------

    def _launch_eligible(self) -> None:
        now = time.monotonic()
        for rec in self.queue:
            name = rec.spec.name
            if (rec.terminal or name in self._active or name in self._held
                    or len(self._active) >= self.max_workers
                    or self._eligible_at.get(name, 0.0) > now):
                continue
            self._launch(rec)

    def _ckpt_path(self, name: str) -> str:
        return os.path.join(self.workdir, f"{name}.ckpt")

    def _launch(self, rec: JobRecord) -> None:
        name = rec.spec.name
        attempt = self._next_launch.get(name, 1)
        self._next_launch[name] = attempt + 1
        safe_mode = name in self._safe_pending
        parent_conn, child_conn = _ctx.Pipe(duplex=False)
        proc = _ctx.Process(
            target=_job_child,
            args=(rec.spec.to_dict(), attempt, self._ckpt_path(name),
                  safe_mode, child_conn),
            name=f"job-{name}-a{attempt}", daemon=True)
        proc.start()
        child_conn.close()
        self._active[name] = _Active(
            proc, parent_conn, attempt, safe_mode,
            self._pending_backoff.pop(name, 0.0))
        rec.transition(JobState.RUNNING)
        # journaled after start so the child pid lands in the WAL;
        # recovery SIGKILLs journaled pids before relaunching orphans
        self._journal({"type": "launch", "job": name, "attempt": attempt,
                       "safe_mode": safe_mode, "pid": proc.pid})

    # -- polling -----------------------------------------------------------

    def _poll(self, timeout: float) -> None:
        if not self._active:
            if timeout:
                time.sleep(min(timeout, self.poll))
            return
        sources = {}
        for name, act in self._active.items():
            sources[act.conn] = name
            sources[act.process.sentinel] = name
        ready = conn_wait(list(sources), timeout)
        # messages first: a finished child's pipe and sentinel fire
        # together and the result must win over the exit notification
        for src in ready:
            name = sources[src]
            act = self._active.get(name)
            if act is None or src is not act.conn:
                continue
            self._drain(name, act)
        for src in ready:
            name = sources[src]
            act = self._active.get(name)
            if act is None or src is act.conn:
                continue
            self._drain(name, act)          # late messages before the exit
            act = self._active.get(name)
            if act is not None and not act.process.is_alive():
                act.process.join()
                self._attempt_failed(
                    name, "crashed",
                    f"job process exited without a result "
                    f"(exitcode {act.process.exitcode})",
                    exitcode=act.process.exitcode)

    def _drain(self, name: str, act: _Active) -> None:
        while True:
            try:
                if not act.conn.poll():
                    return
                msg = act.conn.recv()
            except (EOFError, OSError):
                return
            act.last_alive = time.monotonic()
            kind = msg[0]
            if kind == "hb":
                act.events = msg[2]
            elif kind == "resumed":
                act.resumed_from = msg[1]
                act.events = msg[1]
                self.queue.get(name).resumes += 1
            elif kind == "done":
                self._attempt_done(name, act, msg[1])
                return
            elif kind == "err":
                self._attempt_failed(name, "error", msg[1]["message"],
                                     error=msg[1])
                return

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for name in list(self._active):
            act = self._active[name]
            spec = self.queue.get(name).spec
            if now - act.started > spec.timeout:
                self._kill(act)
                self._attempt_failed(
                    name, "timeout",
                    f"attempt exceeded its {spec.timeout:.1f}s wall-clock "
                    f"budget")
            elif now - act.last_alive > spec.hang_timeout:
                self._kill(act)
                self._attempt_failed(
                    name, "hung",
                    f"no heartbeat for {now - act.last_alive:.2f}s "
                    f"(hang_timeout={spec.hang_timeout:.2f}s)")

    @staticmethod
    def _kill(act: _Active) -> None:
        try:
            os.kill(act.process.pid, signal.SIGKILL)
        except (OSError, TypeError):
            pass
        act.process.join()

    # -- attempt outcomes --------------------------------------------------

    def _attempt_record(self, act: _Active, outcome: str, detail: str,
                        exitcode=None, report=None) -> AttemptRecord:
        return AttemptRecord(
            attempt=act.attempt, safe_mode=act.safe_mode,
            resumed_from_events=act.resumed_from, outcome=outcome,
            detail=detail, exitcode=exitcode, events_processed=act.events,
            wall_seconds=round(time.monotonic() - act.started, 4),
            backoff_seconds=round(act.backoff, 4), report=report)

    def _attempt_done(self, name: str, act: _Active, payload: dict) -> None:
        rec = self.queue.get(name)
        self._active.pop(name, None)
        act.process.join()
        self._preempt_requested.discard(name)
        self._held.discard(name)
        act.events = payload["events_processed"]
        ar = self._attempt_record(act, "done", "", 0)
        rec.attempts.append(ar)
        rec.result = payload
        rec.degraded = act.safe_mode
        self._safe_pending.discard(name)
        rec.transition(JobState.DEGRADED if act.safe_mode else JobState.DONE)
        self._journal_attempt(rec, ar)

    def _attempt_failed(self, name: str, outcome: str, detail: str,
                        exitcode=None, error: Optional[dict] = None) -> None:
        rec = self.queue.get(name)
        act = self._active.pop(name, None)
        if act is None:
            return
        if act.process.is_alive():
            self._kill(act)
        act.process.join()
        preempted = name in self._preempt_requested
        self._preempt_requested.discard(name)
        report = error.get("report") if error else None
        ar = self._attempt_record(
            act, "preempted" if preempted else outcome, detail,
            exitcode if exitcode is not None
            else act.process.exitcode, report)
        rec.attempts.append(ar)
        spec = rec.spec
        if preempted:
            rec.preemptions += 1
            rec.transition(JobState.PREEMPTED)     # held until resume()
            self._journal_attempt(rec, ar)
            return
        if act.safe_mode:
            self._fail(rec, ar, error)
            self._journal_attempt(rec, ar)
            return
        self._retries_used[name] = self._retries_used.get(name, 0) + 1
        used = self._retries_used[name]
        if used <= spec.max_retries:
            delay = spec.backoff_delay(used + 1)
            self._pending_backoff[name] = delay
            self._eligible_at[name] = time.monotonic() + delay
            rec.transition(JobState.RETRYING)
        elif spec.safe_mode_fallback:
            # retry budget gone: degrade to one serial safe-mode attempt
            self._safe_pending.add(name)
            delay = spec.backoff_delay(used + 1)
            self._pending_backoff[name] = delay
            self._eligible_at[name] = time.monotonic() + delay
            rec.transition(JobState.RETRYING)
        else:
            self._fail(rec, ar, error)
        self._journal_attempt(rec, ar)

    def _fail(self, rec: JobRecord, ar: AttemptRecord,
              error: Optional[dict]) -> None:
        rec.error = to_jsonable({
            "outcome": ar.outcome,
            "detail": ar.detail,
            "attempts": len(rec.attempts),
            "retries_used": self._retries_used.get(rec.spec.name, 0),
            "last_error": error,
        })
        self._safe_pending.discard(rec.spec.name)
        rec.transition(JobState.FAILED)


def run_matrix(specs: Iterable[JobSpec], **runner_kw) -> Dict[str, JobRecord]:
    """Convenience: submit every spec to a fresh runner, pump to
    completion, return name -> record."""
    runner = JobRunner(**runner_kw)
    for spec in specs:
        runner.submit(spec)
    return runner.run()
