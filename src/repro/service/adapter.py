"""The ``prepare / run / collect`` simulator adapter.

The bsb ``SimulatorAdapter`` idiom: one object owns the full lifecycle of
a simulation — build the engine from a plain-data description
(:meth:`~SimulatorAdapter.prepare`), drive it in bounded segments
(:meth:`~SimulatorAdapter.run`), and extract a JSON-plain result payload
(:meth:`~SimulatorAdapter.collect`). Everything a caller passes in is
plain data (a workload name + kwargs, a config dict of architecture
knobs), so the same description can be submitted to the in-process
:class:`~repro.service.runner.JobRunner`, shipped to a job subprocess,
or replayed by the golden regression fleet.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.config import SamplingConfig, complex_backend, simple_backend
from ..core.errors import ConfigError
from ..core.frontend import SimProcess
from ..core.jsonable import to_jsonable
from ..faults import FaultPlan
from .workloads import WORKLOADS, full_fingerprint


def make_config_factory(config: Optional[Dict[str, Any]] = None):
    """Turn a plain config dict into a workload-builder config factory.

    ``config`` holds :class:`SimConfig` keyword knobs plus two
    conveniences: ``backend`` ("complex", the default, or "simple")
    selects the constructor, and ``faults`` / ``sampling`` accept the
    dict forms (:meth:`FaultPlan.to_dict`, ``SamplingConfig`` kwargs) so
    job specs stay JSON-plain. Builder-supplied kwargs (``num_cpus``,
    ``coherence``…) win over the config dict: workloads pin their own
    architecture where it is part of the workload's identity.
    """
    config = dict(config or {})
    backend = config.pop("backend", "complex")
    if backend not in ("complex", "simple"):
        raise ConfigError(f"unknown backend constructor {backend!r}")
    base = complex_backend if backend == "complex" else simple_backend
    faults = config.get("faults")
    if isinstance(faults, dict):
        config["faults"] = FaultPlan.from_dict(faults)
    sampling = config.get("sampling")
    if isinstance(sampling, dict):
        config["sampling"] = SamplingConfig(**sampling)

    def cfg(**kw):
        return base(**{**config, **kw})

    return cfg


class SimulatorAdapter:
    """Own one simulation end to end: ``prepare``, ``run``, ``collect``."""

    def __init__(self) -> None:
        self.engine = None
        self.stats = None
        self.workload: Optional[str] = None
        self.config: Dict[str, Any] = {}
        self.workload_kwargs: Dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------

    def prepare(self, config: Optional[Dict[str, Any]] = None,
                workload: str = "oltp",
                workload_kwargs: Optional[Dict[str, Any]] = None,
                reset_pids: bool = True):
        """Build the engine and spawn the workload; no events run yet.

        ``reset_pids`` pins the global pid sequence to 1 first so the
        same description always produces the same simulation — exactly
        what the determinism harness does by hand. The return contract
        (a built, never-run engine) is what :func:`repro.checkpoint.resume`
        needs, so ``lambda: adapter.prepare(...)`` is a valid rebuild
        callable for checkpoint restores.
        """
        if workload not in WORKLOADS:
            raise ConfigError(
                f"unknown workload {workload!r}; registry has "
                f"{sorted(WORKLOADS)}")
        if reset_pids:
            SimProcess.set_pid_counter(1)
        self.workload = workload
        self.config = dict(config or {})
        self.workload_kwargs = dict(workload_kwargs or {})
        factory = make_config_factory(self.config)
        self.engine = WORKLOADS[workload](factory, **self.workload_kwargs)
        return self.engine

    def run(self, budget: Optional[int] = None):
        """Advance the simulation by at most ``budget`` events (None =
        run to completion). Bounded calls may be repeated — segment cuts
        are bit-identical to one uninterrupted run — which is how the
        job runner interleaves heartbeats with simulation."""
        if self.engine is None:
            raise ConfigError("run() before prepare()")
        self.stats = self.engine.run(max_events=budget)
        return self.stats

    def run_to_completion(self, segment: Optional[int] = None):
        """Drive the engine until no live processes remain, optionally in
        ``segment``-event slices; returns the final stats."""
        if segment is None:
            return self.run()
        while self.running:
            self.run(budget=segment)
        return self.stats

    @property
    def running(self) -> bool:
        """True while live simulated processes remain."""
        return self.engine is not None and self.engine._live > 0

    # -- results -----------------------------------------------------------

    def fingerprint(self) -> tuple:
        """The bit-identity tuple of the run so far (see
        :func:`repro.service.workloads.full_fingerprint`)."""
        if self.engine is None:
            raise ConfigError("fingerprint() before prepare()")
        stats = self.stats if self.stats is not None else self.engine.stats
        return full_fingerprint(self.engine, stats)

    def collect(self) -> Dict[str, Any]:
        """JSON-plain result payload: identity of the description plus
        the outcome fingerprint and headline counters. Two runs of the
        same description are bit-identical iff their ``fingerprint``
        fields are equal."""
        if self.engine is None:
            raise ConfigError("collect() before prepare()")
        stats = self.stats if self.stats is not None else self.engine.stats
        return to_jsonable({
            "workload": self.workload,
            "workload_kwargs": self.workload_kwargs,
            "config": self.config,
            "events_processed": self.engine.events_processed,
            "end_cycle": stats.end_cycle,
            "running": self.running,
            "fingerprint": self.fingerprint(),
        })
