"""The job spool: an append-only, CRC32-framed write-ahead journal.

The control plane's durability substrate. Every job/attempt state
transition the :class:`~repro.service.runner.JobRunner` makes is
appended to the spool *as it happens*, so a supervisor SIGKILL loses
nothing that was journaled: :meth:`JobRunner.recover` replays the
records, reconstructs the queue (completed results included), reaps
orphaned RUNNING attempts, and the reaped jobs resume from their
checkpoint autosaves.

On-disk layout (``spool_dir/``)::

    spool-00000001.wal      CRC32-framed JSON records (magic b"CSPL")
    spool-00000002.wal      ... appended on rotation/compaction
    spool-00000002.wal.quarantine       bytes cut from a torn tail
    spool-00000002.wal.quarantine.json  forensic record for the cut

Each segment starts with the 4-byte magic; records are framed by
:mod:`repro.core.framing` (length + CRC32 + payload). Appends follow
WAL discipline — frame write, flush, fsync (``fsync=True``, the
default) — with the ``spool:append`` / ``spool:fsync`` crash points
bracketing the two durability windows.

**Recovery scan.** Segments are read oldest-first. A framing error in
the *last* written position — a torn tail from a crash between append
and fsync — is normal: the scan truncates the segment at the tear,
moves the cut bytes to ``<segment>.quarantine``, and writes a JSON
forensic record next to them. A framing error with valid records
*after* it (or in any non-final segment) is real corruption — a bit
flip inside synced history — and raises
:class:`~repro.core.errors.SpoolCorruptError` with path + byte offset
instead of silently dropping durable state.

**Rotation + compaction.** The active segment rotates at
``segment_bytes``. Compaction writes a snapshot of live state into a
fresh segment and unlinks everything older, bounding replay time; the
runner triggers it by record count (``compact_every``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import SpoolCorruptError
from ..core.framing import (HEADER_SIZE, fsync_dir, fsync_file, read_frame,
                            sweep_stale_tmp, write_frame)
from ..faults import crashpoints

#: 4-byte magic opening every spool segment
MAGIC = b"CSPL"
SEG_PREFIX = "spool-"
SEG_SUFFIX = ".wal"


def _segment_name(index: int) -> str:
    return f"{SEG_PREFIX}{index:08d}{SEG_SUFFIX}"


def _segment_index(name: str) -> Optional[int]:
    if not (name.startswith(SEG_PREFIX) and name.endswith(SEG_SUFFIX)):
        return None
    digits = name[len(SEG_PREFIX):-len(SEG_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class JobSpool:
    """One directory of WAL segments; one writer at a time.

    A fresh instance never appends to a pre-existing segment: it claims
    the next segment index and writes there, so recovery (which may
    truncate the old tail) and writing never race on one file.
    """

    def __init__(self, spool_dir: str, *, segment_bytes: int = 256 * 1024,
                 fsync: bool = True, compact_every: int = 256) -> None:
        self.dir = spool_dir
        self.segment_bytes = int(segment_bytes)
        self.fsync = fsync
        self.compact_every = int(compact_every)
        os.makedirs(self.dir, exist_ok=True)
        self._f = None
        self._bytes = 0
        self._seg_index = max(self.segment_indices(), default=0)
        self.appended = 0
        self.records_since_compact = 0
        #: quarantine forensic records produced by the last recover()
        self.quarantines: List[Dict[str, Any]] = []

    # -- segment bookkeeping ----------------------------------------------

    def segment_indices(self) -> List[int]:
        out = []
        for name in os.listdir(self.dir):
            idx = _segment_index(name)
            if idx is not None:
                out.append(idx)
        return sorted(out)

    def segment_path(self, index: int) -> str:
        return os.path.join(self.dir, _segment_name(index))

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def _open_next_segment(self) -> None:
        self.close()
        self._seg_index += 1
        path = self.segment_path(self._seg_index)
        self._f = open(path, "xb")
        self._f.write(MAGIC)
        if self.fsync:
            fsync_file(self._f)
        fsync_dir(self.dir)
        self._bytes = len(MAGIC)

    # -- the write path ----------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably journal one record (WAL discipline; see module doc)."""
        crashpoints.hit("spool:append")
        if self._f is None or self._bytes >= self.segment_bytes:
            self._open_next_segment()
        payload = json.dumps(record, separators=(",", ":"),
                             sort_keys=True).encode()
        self._bytes += write_frame(self._f, payload)
        self._f.flush()
        crashpoints.hit("spool:fsync")
        if self.fsync:
            os.fsync(self._f.fileno())
        self.appended += 1
        self.records_since_compact += 1

    def compact(self, snapshot: List[Dict[str, Any]]) -> None:
        """Collapse history: write ``snapshot`` into a fresh segment and
        unlink every older segment (their records are now dead)."""
        self._open_next_segment()
        for record in snapshot:
            payload = json.dumps(record, separators=(",", ":"),
                                 sort_keys=True).encode()
            self._bytes += write_frame(self._f, payload)
        fsync_file(self._f)
        for idx in self.segment_indices():
            if idx < self._seg_index:
                try:
                    os.unlink(self.segment_path(idx))
                except OSError:
                    pass
        fsync_dir(self.dir)
        self.records_since_compact = 0

    def maybe_compact(self, snapshot_fn) -> bool:
        if self.records_since_compact < self.compact_every:
            return False
        self.compact(snapshot_fn())
        return True

    # -- the recovery scan -------------------------------------------------

    def recover(self) -> List[Dict[str, Any]]:
        """Scan every segment, truncate a torn tail, return the records.

        Also sweeps stale ``*.tmp`` files in the spool directory.
        Raises :class:`SpoolCorruptError` on interior corruption (see
        module docstring for the torn-tail vs interior distinction).
        """
        sweep_stale_tmp(self.dir)
        self.quarantines = []
        records: List[Dict[str, Any]] = []
        indices = [i for i in self.segment_indices() if i <= self._seg_index
                   and (self._f is None or i < self._seg_index)]
        for pos, idx in enumerate(indices):
            last_segment = pos == len(indices) - 1
            path = self.segment_path(idx)
            segment_records, tear = self._scan_segment(path, last_segment)
            records.extend(segment_records)
            if tear is not None:
                self._truncate_tail(path, tear)
        return records

    def _scan_segment(self, path: str, last_segment: bool
                      ) -> Tuple[List[Dict[str, Any]],
                                 Optional[SpoolCorruptError]]:
        """Read one segment; returns (records, tear-to-truncate|None)."""
        records: List[Dict[str, Any]] = []
        size = os.path.getsize(path)
        with open(path, "rb") as f:
            magic = f.read(len(MAGIC))
            if magic != MAGIC:
                err = SpoolCorruptError(
                    path, 0, f"bad segment magic {magic!r}")
                if last_segment and size < len(MAGIC) + HEADER_SIZE:
                    # segment creation itself was torn; nothing recorded
                    return records, err
                raise err
            while True:
                try:
                    payload = read_frame(f, path, SpoolCorruptError)
                except SpoolCorruptError as err:
                    if not last_segment:
                        raise   # synced history is damaged mid-stream
                    if self._valid_frame_follows(f, path, err.offset):
                        raise SpoolCorruptError(
                            path, err.offset,
                            f"interior corruption ({err.reason}); valid "
                            f"records follow the damaged one")
                    return records, err
                if payload is None:
                    return records, None
                try:
                    records.append(json.loads(payload))
                except ValueError as exc:
                    # CRC-valid frame holding garbage JSON: writer bug,
                    # not a torn write — surface it structurally
                    raise SpoolCorruptError(
                        path, f.tell(), f"frame payload is not JSON: {exc}")

    @staticmethod
    def _valid_frame_follows(f, path: str, fail_offset: int) -> bool:
        """After a frame error: is there a readable frame later in the
        file (=> interior corruption, not a torn tail)?

        The damaged frame's length field may itself be garbage, so the
        next frame position is unknowable in general; probing one
        header-stride past the failure catches the common single-record
        bit flip without a full resync scan."""
        try:
            size = os.fstat(f.fileno()).st_size
        except OSError:
            return False
        probe = fail_offset + HEADER_SIZE
        while probe + HEADER_SIZE <= size:
            f.seek(probe)
            try:
                if read_frame(f, path, SpoolCorruptError) is not None:
                    return True
            except SpoolCorruptError:
                pass
            probe += HEADER_SIZE
            if probe > fail_offset + 64 * HEADER_SIZE:
                break   # bounded probe; beyond this treat as torn tail
        return False

    def _truncate_tail(self, path: str, err: SpoolCorruptError) -> None:
        """Cut a torn tail at the tear, quarantining the removed bytes.

        A tear before the magic (segment creation itself torn) removes
        the whole segment — an empty file with half a magic holds no
        records and would re-tear on every scan."""
        offset = err.offset
        with open(path, "rb") as f:
            f.seek(offset)
            tail = f.read()
        if offset < len(MAGIC):
            record = {
                "segment": path, "offset": offset,
                "discarded_bytes": len(tail),
                "moved_to": path + ".quarantine",
                "error": err.to_record(),
            }
            with open(path + ".quarantine", "wb") as f:
                f.write(tail)
            with open(path + ".quarantine.json", "w",
                      encoding="utf-8") as f:
                json.dump(record, f, indent=2)
            os.unlink(path)
            fsync_dir(self.dir)
            self.quarantines.append(record)
            return
        record = {
            "segment": path,
            "offset": offset,
            "discarded_bytes": len(tail),
            "moved_to": path + ".quarantine",
            "error": err.to_record(),
        }
        with open(path + ".quarantine", "wb") as f:
            f.write(tail)
        with open(path + ".quarantine.json", "w", encoding="utf-8") as f:
            json.dump(record, f, indent=2)
        with open(path, "rb+") as f:
            f.truncate(offset)
            fsync_file(f)
        fsync_dir(self.dir)
        self.quarantines.append(record)
