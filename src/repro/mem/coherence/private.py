"""No-coherence protocol: private caches over flat memory.

This is the paper's *simple backend* ("only a one-level cache per processor",
§2/Table 2): every miss costs a flat DRAM access through one memory
controller; writes install MODIFIED lines that write back on eviction. No
sharing traffic is modeled — functionally safe here because data values live
in the frontends, so staleness cannot corrupt execution, only timing (which
is exactly the fidelity/speed trade the simple backend makes).
"""

from __future__ import annotations

from typing import Tuple

from ..bus import OccupancyResource
from ..cache import LineState
from .base import CoherenceProtocol


class PrivateProtocol(CoherenceProtocol):
    """Flat-memory misses; single contended memory controller."""

    name = "none"

    def __init__(self, dram_latency: int = 60, bus_latency: int = 8,
                 **_ignored) -> None:
        super().__init__()
        self.dram_latency = dram_latency
        self.memctl = OccupancyResource("memctl", bus_latency)

    def min_remote_latency(self) -> int:
        """No sharing traffic exists; CPUs interact only by queueing at the
        shared memory controller, whose grant is the cheapest coupling."""
        return max(1, self.memctl.service + self.dram_latency)

    def state_dict(self):
        st = super().state_dict()
        st["memctl"] = self.memctl.state_dict()
        return st

    def load_state(self, state) -> None:
        super().load_state(state)
        self.memctl.load_state(state["memctl"])

    def read_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        self.count("read_miss")
        return (self.memctl.occupy(now) + self.dram_latency,
                LineState.EXCLUSIVE)

    def write_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        self.count("write_miss")
        return (self.memctl.occupy(now) + self.dram_latency,
                LineState.MODIFIED)

    def writeback(self, cpu: int, line: int, now: int) -> int:
        self.count("writeback")
        # eviction writebacks are buffered; they occupy the controller but
        # do not stall the processor
        self.memctl.occupy(now)
        return 0
