"""Full-map directory protocol for the CC-NUMA complex backend.

Each line has a *home node* (where its physical frame lives); the home's
directory tracks the sharer set and a dirty owner. Misses pay the classic
2-hop (clean at home) or 3-hop (dirty in a third node) NUMA costs through the
mesh network, plus directory-controller and DRAM occupancy at the home. This
is the backend used for the paper's TPC-D NUMA studies ([14] in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..bus import OccupancyResource
from ..cache import LineState
from ..network import MeshNetwork
from .base import CoherenceProtocol


class _DirEntry:
    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()   # cpu ids holding the line
        self.owner = -1                  # cpu id with a MODIFIED copy


class DirectoryProtocol(CoherenceProtocol):
    """Full-map invalidate-based directory over a 2D mesh."""

    name = "directory"

    def __init__(self, dram_latency: int = 60, dir_latency: int = 10,
                 hop_latency: int = 20, num_nodes: int = 2,
                 data_flits: int = 2, **_ignored) -> None:
        super().__init__()
        self.dram_latency = dram_latency
        self.num_nodes = num_nodes
        self.network = MeshNetwork(num_nodes, hop_latency)
        self.dirctl = [OccupancyResource(f"dir{n}", dir_latency)
                       for n in range(num_nodes)]
        self.data_flits = data_flits
        self._dir: Dict[int, _DirEntry] = {}

    def _entry(self, line: int) -> _DirEntry:
        e = self._dir.get(line)
        if e is None:
            e = _DirEntry()
            self._dir[line] = e
        return e

    def _home(self, line: int) -> int:
        return self.home_of(self.line_paddr(line))

    def min_remote_latency(self) -> int:
        """Cheapest cross-CPU effect: a one-hop invalidation through a
        directory controller (request hop + directory occupancy)."""
        return max(1, self.network.hop_latency + self.dirctl[0].service)

    # -- checkpoint/restore -------------------------------------------------

    def state_dict(self):
        st = super().state_dict()
        st["dir"] = {line: (sorted(e.sharers), e.owner)
                     for line, e in self._dir.items()}
        st["dirctl"] = [r.state_dict() for r in self.dirctl]
        st["network"] = self.network.state_dict()
        return st

    def load_state(self, state) -> None:
        super().load_state(state)
        self._dir.clear()
        for line, (sharers, owner) in state["dir"].items():
            e = _DirEntry()
            e.sharers = set(sharers)
            e.owner = owner
            self._dir[line] = e
        for r, rs in zip(self.dirctl, state["dirctl"]):
            r.load_state(rs)
        self.network.load_state(state["network"])

    # -- contract ---------------------------------------------------------

    def read_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        node = self.cpu_node[cpu]
        home = self._home(line)
        e = self._entry(line)
        lat = self.network.transfer(node, home, now)          # request
        lat += self.dirctl[home].occupy(now + lat)            # dir lookup
        if e.owner >= 0 and e.owner != cpu:
            onode = self.cpu_node[e.owner]
            self.count("remote_dirty_3hop" if onode not in (node, home)
                       else "remote_dirty")
            lat += self.network.transfer(home, onode, now + lat)
            self._downgrade_peer(e.owner, line)               # owner -> S
            lat += self.network.transfer(onode, node, now + lat,
                                         self.data_flits)
            e.sharers.add(e.owner)
            e.owner = -1
            e.sharers.add(cpu)
            return lat, LineState.SHARED
        self.count("local_read" if home == node else "remote_read_2hop")
        lat += self.dram_latency
        lat += self.network.transfer(home, node, now + lat, self.data_flits)
        if not e.sharers:
            e.sharers.add(cpu)
            return lat, LineState.EXCLUSIVE
        # existing sharers may hold EXCLUSIVE: the directory downgrades them
        # so no silent E->M upgrade can bypass it
        for s_ in e.sharers:
            if s_ != cpu:
                self._downgrade_peer(s_, line)
        e.sharers.add(cpu)
        return lat, LineState.SHARED

    def write_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        node = self.cpu_node[cpu]
        home = self._home(line)
        e = self._entry(line)
        lat = self.network.transfer(node, home, now)
        lat += self.dirctl[home].occupy(now + lat)
        inval_lat = 0
        if e.owner >= 0 and e.owner != cpu:
            onode = self.cpu_node[e.owner]
            self.count("ownership_transfer")
            inval_lat = (self.network.transfer(home, onode, now + lat)
                         + self.network.transfer(onode, node, now + lat,
                                                 self.data_flits))
            self._drop_peer(e.owner, line)
        else:
            # invalidate every sharer; acks gathered in parallel — pay the
            # max distance, plus a constant per extra sharer for ack fan-in
            worst = 0
            extras = 0
            for s in list(e.sharers):
                if s == cpu:
                    continue
                snode = self.cpu_node[s]
                d = (self.network.transfer(home, snode, now + lat)
                     + self.network.transfer(snode, node, now + lat))
                worst = max(worst, d)
                extras += 1
                self._drop_peer(s, line)
                self.count("invalidation")
            inval_lat = worst + 2 * max(0, extras - 1)
            if self.caches[cpu].probe(line) is None:
                lat += self.dram_latency
                lat += self.network.transfer(home, node, now + lat,
                                             self.data_flits)
        e.sharers = {cpu}
        e.owner = cpu
        self.count("write_miss")
        return lat + inval_lat, LineState.MODIFIED

    def writeback(self, cpu: int, line: int, now: int) -> int:
        node = self.cpu_node[cpu]
        home = self._home(line)
        self.count("writeback")
        # buffered: network + home DRAM occupied, requester not stalled
        self.network.transfer(node, home, now, self.data_flits)
        self.dirctl[home].occupy(now)
        e = self._dir.get(line)
        if e is not None and e.owner == cpu:
            e.owner = -1
            e.sharers.discard(cpu)
        return 0

    def forget(self, cpu: int, line: int) -> None:
        e = self._dir.get(line)
        if e is not None:
            e.sharers.discard(cpu)
            if e.owner == cpu:
                e.owner = -1

    # -- introspection ------------------------------------------------------

    def sharers_of(self, line: int) -> Set[int]:
        e = self._dir.get(line)
        return set(e.sharers) if e else set()

    def owner_of(self, line: int) -> int:
        e = self._dir.get(line)
        return e.owner if e else -1
