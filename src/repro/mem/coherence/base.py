"""Shared machinery for coherence protocols.

A protocol owns the *global* view of every cached line (who holds it, in what
state) and the shared resources (bus / directories / network). The per-CPU
cache arrays are installed once by the :class:`~repro.mem.hierarchy.
MemorySystem`; protocols mutate peer caches directly on invalidations and
interventions, which is what a snoop or a directory message does.

Contract (all latencies in cycles, ``now`` is the global cycle):

* ``read_miss(cpu, line, now) -> (latency, install_state)``
* ``write_miss(cpu, line, now) -> (latency, install_state)`` — also used for
  S→M upgrades (the line may be present SHARED in the requester)
* ``writeback(cpu, line, now) -> latency`` — eviction of a MODIFIED line
* ``forget(cpu, line)`` — eviction of a clean line (bookkeeping only)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...core.stats import Counter
from ..cache import Cache, LineState


class CoherenceProtocol:
    """Base class; subclasses implement the four-message contract."""

    name = "base"

    def __init__(self) -> None:
        #: outer-level (coherence-point) cache per CPU; set by attach()
        self.caches: Sequence[Cache] = ()
        #: inner (L1) cache per CPU, or None; invalidated alongside
        self.l1s: Sequence[Optional[Cache]] = ()
        #: cpu -> NUMA node
        self.cpu_node: Sequence[int] = ()
        #: paddr -> home node (installed by MemorySystem)
        self.home_of: Callable[[int], int] = lambda paddr: 0
        self.line_size = 32
        self.counters: Dict[str, int] = {}

    def attach(self, caches: Sequence[Cache], l1s: Sequence[Optional[Cache]],
               cpu_node: Sequence[int], home_of: Callable[[int], int],
               line_size: int) -> None:
        """Wire the protocol to the hierarchy (called by MemorySystem)."""
        self.caches = caches
        self.l1s = l1s
        self.cpu_node = cpu_node
        self.home_of = home_of
        self.line_size = line_size

    # -- helpers ------------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def min_remote_latency(self) -> int:
        """Cycles of the cheapest action by which one CPU can affect what
        another CPU observes (cheapest coherence message / bus grant).

        This is the per-protocol scale of the engine's conservative
        lookahead windows (see DESIGN.md): a frontend that has been granted
        a window can never be perturbed sooner than this by a rival action
        initiated after the grant. Subclasses derive it from their cost
        tables; the base floor of one cycle is always safe.
        """
        return 1

    # -- checkpoint/restore -------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Plain-data snapshot; subclasses extend with their global line
        state and shared-resource occupancies."""
        return {"counters": dict(self.counters)}

    def load_state(self, state: Dict[str, object]) -> None:
        self.counters.clear()
        self.counters.update(state["counters"])

    def _drop_peer(self, cpu: int, line: int) -> Optional[int]:
        """Invalidate ``line`` in peer ``cpu``'s caches; returns its prior
        outer state (None when absent)."""
        st = self.caches[cpu].invalidate(line)
        l1 = self.l1s[cpu]
        if l1 is not None:
            l1.invalidate(line)
        return st

    def _downgrade_peer(self, cpu: int, line: int) -> None:
        """Demote ``line`` to SHARED in peer ``cpu``'s caches."""
        self.caches[cpu].set_state(line, LineState.SHARED)
        l1 = self.l1s[cpu]
        if l1 is not None:
            l1.set_state(line, LineState.SHARED)

    def line_paddr(self, line: int) -> int:
        return line * self.line_size

    # -- contract ---------------------------------------------------------

    def read_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        raise NotImplementedError

    def write_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        raise NotImplementedError

    def writeback(self, cpu: int, line: int, now: int) -> int:
        raise NotImplementedError

    def forget(self, cpu: int, line: int) -> None:
        """Clean eviction: default keeps no global state; overridden by
        protocols that track sharers."""
