"""Page-granular software DSM protocol.

Software distributed shared memory keeps coherence in page units with the
protocol executed by software handlers: a node's first access to a page it
does not hold triggers a handler that fetches the whole page from the current
owner; a write by a non-owner invalidates the other copies (single-writer,
multiple-reader). Handler cost is thousands of cycles — the defining
difference from hardware CC-NUMA, and what the paper's §5 architecture
comparison is about.

Hardware caches still operate under DSM (nodes cache their local copies); the
page machinery adds its cost on outer-level misses, with node-hit pages
costing only local DRAM.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..bus import OccupancyResource
from ..cache import LineState
from ..network import MeshNetwork
from .base import CoherenceProtocol


class _PageEntry:
    __slots__ = ("holders", "owner")

    def __init__(self, home: int) -> None:
        self.holders: Set[int] = {home}
        self.owner = home


class DsmProtocol(CoherenceProtocol):
    """Single-writer multiple-reader page-based software DSM."""

    name = "dsm"

    def __init__(self, dram_latency: int = 60, hop_latency: int = 20,
                 num_nodes: int = 2, page_size: int = 4096,
                 handler_cycles: int = 8000, data_flits_per_page: int = 64,
                 **_ignored) -> None:
        super().__init__()
        self.dram_latency = dram_latency
        self.num_nodes = num_nodes
        self.page_size = page_size
        self.handler_cycles = handler_cycles
        self.page_flits = data_flits_per_page
        self.network = MeshNetwork(num_nodes, hop_latency)
        self._pages: Dict[int, _PageEntry] = {}
        self.memctl = [OccupancyResource(f"mem{n}", 8)
                       for n in range(num_nodes)]
        #: (node, page) pairs writable locally — avoids re-faulting per line
        self._write_ok: Set[Tuple[int, int]] = set()

    def _page_of_line(self, line: int) -> int:
        return self.line_paddr(line) // self.page_size

    # -- checkpoint/restore -------------------------------------------------

    def min_remote_latency(self) -> int:
        """Cheapest cross-CPU effect: a software protocol handler invocation
        at the remote node (one hop plus half the handler, the invalidation
        path's cheapest leg)."""
        return max(1, self.network.hop_latency + self.handler_cycles // 2)

    def state_dict(self):
        st = super().state_dict()
        st["pages"] = {page: (sorted(e.holders), e.owner)
                       for page, e in self._pages.items()}
        st["memctl"] = [r.state_dict() for r in self.memctl]
        st["write_ok"] = sorted(self._write_ok)
        st["network"] = self.network.state_dict()
        return st

    def load_state(self, state) -> None:
        super().load_state(state)
        self._pages.clear()
        for page, (holders, owner) in state["pages"].items():
            e = _PageEntry(owner if owner >= 0 else 0)
            e.holders = set(holders)
            e.owner = owner
            self._pages[page] = e
        for r, rs in zip(self.memctl, state["memctl"]):
            r.load_state(rs)
        self._write_ok.clear()
        self._write_ok.update(tuple(k) for k in state["write_ok"])
        self.network.load_state(state["network"])

    def _entry(self, page: int) -> _PageEntry:
        e = self._pages.get(page)
        if e is None:
            e = _PageEntry(self.home_of(page * self.page_size))
            self._pages[page] = e
        return e

    def _page_fetch(self, node: int, e: _PageEntry, now: int,
                    page: int) -> int:
        """Software read-fault: pull the page from its owner. The owner's
        write permission is revoked (invalidate-based SWMR: it must re-own
        the page before writing again)."""
        self.count("page_fetch")
        lat = self.handler_cycles
        src = e.owner if e.owner >= 0 else next(iter(e.holders))
        lat += self.network.transfer(node, src, now + lat)
        lat += self.network.transfer(src, node, now + lat, self.page_flits)
        e.holders.add(node)
        self._write_ok.discard((src, page))
        return lat

    def _page_own(self, node: int, e: _PageEntry, page: int, now: int) -> int:
        """Software write-fault: become the single writer."""
        self.count("page_ownership")
        lat = self.handler_cycles
        worst = 0
        for h in list(e.holders):
            if h == node:
                continue
            worst = max(worst, 2 * self.network.hops(node, h)
                        * self.network.hop_latency + self.handler_cycles // 2)
            e.holders.discard(h)
            self._write_ok.discard((h, page))
            self.count("page_invalidation")
        if node not in e.holders:
            src = e.owner
            lat += self.network.transfer(node, src, now + lat)
            lat += self.network.transfer(src, node, now + lat,
                                         self.page_flits)
            e.holders.add(node)
        e.owner = node
        self._write_ok.add((node, page))
        return lat + worst

    # -- contract ---------------------------------------------------------

    def read_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        node = self.cpu_node[cpu]
        page = self._page_of_line(line)
        e = self._entry(page)
        lat = 0
        if node not in e.holders:
            lat += self._page_fetch(node, e, now, page)
        # peer CPUs may cache the line EXCLUSIVE/MODIFIED; demote them so a
        # later write must take the write_miss path (line-level SWMR)
        for c in range(len(self.caches)):
            if c != cpu:
                self._downgrade_peer(c, line)
        lat += self.memctl[node].occupy(now + lat) + self.dram_latency
        self.count("read_miss")
        return lat, LineState.SHARED

    def write_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        node = self.cpu_node[cpu]
        page = self._page_of_line(line)
        e = self._entry(page)
        lat = 0
        if (node, page) not in self._write_ok or e.owner != node:
            lat += self._page_own(node, e, page, now)
        # peer CPUs on other nodes lost the page; peers on this node just
        # lose the line
        for c, cn in enumerate(self.cpu_node):
            if c != cpu:
                self._drop_peer(c, line)
        lat += self.memctl[node].occupy(now + lat) + self.dram_latency
        self.count("write_miss")
        return lat, LineState.MODIFIED

    def writeback(self, cpu: int, line: int, now: int) -> int:
        self.count("writeback")
        node = self.cpu_node[cpu]
        self.memctl[node].occupy(now)
        return 0

    # -- introspection ------------------------------------------------------

    def holders_of_page(self, page: int) -> Set[int]:
        e = self._pages.get(page)
        return set(e.holders) if e else set()

    def owner_of_page(self, page: int) -> int:
        e = self._pages.get(page)
        return e.owner if e else -1
