"""Cache-coherence protocols for the backend architecture models.

The paper's backend "simulates the target shared memory multiprocessor
architecture including several levels of caches, memory buses, memory
controllers, coherence controllers, network" (§2) and COMPASS was used to
study "CC-NUMA, COMA and software DSM multiprocessors" (§5). Four protocols
are provided behind one interface:

* :class:`~repro.mem.coherence.private.PrivateProtocol` — no sharing model
  (the simple backend);
* :class:`~repro.mem.coherence.mesi.MesiBusProtocol` — snooping MESI on a
  shared bus (SMP);
* :class:`~repro.mem.coherence.directory.DirectoryProtocol` — full-map
  directory CC-NUMA;
* :class:`~repro.mem.coherence.coma.ComaProtocol` — attraction-memory COMA;
* :class:`~repro.mem.coherence.dsm.DsmProtocol` — page-granular software DSM.
"""

from .base import CoherenceProtocol
from .private import PrivateProtocol
from .mesi import MesiBusProtocol
from .directory import DirectoryProtocol
from .coma import ComaProtocol
from .dsm import DsmProtocol


def make_protocol(name: str, **kw) -> CoherenceProtocol:
    """Factory keyed by the config's ``coherence`` string."""
    cls = {
        "none": PrivateProtocol,
        "mesi": MesiBusProtocol,
        "directory": DirectoryProtocol,
        "coma": ComaProtocol,
        "dsm": DsmProtocol,
    }.get(name)
    if cls is None:
        raise ValueError(f"unknown coherence protocol {name!r}")
    return cls(**kw)


__all__ = [
    "CoherenceProtocol",
    "PrivateProtocol",
    "MesiBusProtocol",
    "DirectoryProtocol",
    "ComaProtocol",
    "DsmProtocol",
    "make_protocol",
]
