"""MESI snooping protocol on a shared bus (bus-based SMP backend).

Every miss and upgrade is a bus transaction that all peer caches snoop.
Cache-to-cache transfers service misses to dirty remote lines; upgrades
(S→M) are address-only invalidations. The single bus is the contended
resource, so OLTP-style sharing shows up as queueing delay — the first-order
behaviour of the 4-way AIX SMPs profiled in Table 1.
"""

from __future__ import annotations

from typing import Tuple

from ..bus import OccupancyResource
from ..cache import LineState
from .base import CoherenceProtocol


class MesiBusProtocol(CoherenceProtocol):
    """Snooping MESI over one shared split-transaction bus."""

    name = "mesi"

    def __init__(self, dram_latency: int = 60, bus_latency: int = 8,
                 c2c_latency: int = 20, **_ignored) -> None:
        super().__init__()
        self.dram_latency = dram_latency
        self.c2c_latency = c2c_latency
        self.bus = OccupancyResource("bus", bus_latency)

    def min_remote_latency(self) -> int:
        """Cheapest cross-CPU effect: an address-only bus transaction (an
        S->M upgrade's invalidation) costs one bus grant."""
        return max(1, self.bus.service)

    # -- checkpoint/restore -------------------------------------------------

    def state_dict(self):
        st = super().state_dict()
        st["bus"] = self.bus.state_dict()
        return st

    def load_state(self, state) -> None:
        super().load_state(state)
        self.bus.load_state(state["bus"])

    # -- snoop helpers ------------------------------------------------------

    def _snoop(self, requester: int, line: int):
        """Peers holding ``line``: returns (dirty_holder, sharers)."""
        dirty = -1
        sharers = []
        for c, cache in enumerate(self.caches):
            if c == requester:
                continue
            st = cache.probe(line)
            if st is None:
                continue
            if st == 3:   # LineState.MODIFIED — int compare keeps the snoop scan cheap
                dirty = c
            sharers.append(c)
        return dirty, sharers

    # -- contract -----------------------------------------------------------

    def read_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        self.count("bus_read")
        lat = self.bus.occupy(now)
        dirty, sharers = self._snoop(cpu, line)
        if dirty >= 0:
            # intervention: dirty peer supplies the data and both end SHARED;
            # memory is updated in the background
            self.count("c2c_transfer")
            self._downgrade_peer(dirty, line)
            return lat + self.c2c_latency, LineState.SHARED
        if sharers:
            for s in sharers:
                self._downgrade_peer(s, line)
            return lat + self.dram_latency, LineState.SHARED
        return lat + self.dram_latency, LineState.EXCLUSIVE

    def write_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        dirty, sharers = self._snoop(cpu, line)
        had_line = self.caches[cpu].probe(line) is not None
        lat = self.bus.occupy(now)
        if had_line and dirty < 0:
            # S -> M upgrade: address-only bus transaction
            self.count("bus_upgrade")
            for s in sharers:
                self._drop_peer(s, line)
                self.count("invalidation")
            return lat, LineState.MODIFIED
        self.count("bus_read_exclusive")
        extra = 0
        if dirty >= 0:
            self.count("c2c_transfer")
            extra = self.c2c_latency
            self._drop_peer(dirty, line)
            self.count("invalidation")
            for s in sharers:
                if s != dirty:
                    self._drop_peer(s, line)
                    self.count("invalidation")
            return lat + extra, LineState.MODIFIED
        for s in sharers:
            self._drop_peer(s, line)
            self.count("invalidation")
        return lat + self.dram_latency, LineState.MODIFIED

    def writeback(self, cpu: int, line: int, now: int) -> int:
        self.count("writeback")
        self.bus.occupy(now)   # buffered: occupies the bus, no CPU stall
        return 0
