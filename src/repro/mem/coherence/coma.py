"""COMA (Cache-Only Memory Architecture) attraction-memory protocol.

In a COMA every node's DRAM is an *attraction memory* (AM): data has no fixed
home and migrates/replicates to the nodes that use it. We model the AM as a
per-node resident-line set with a global map of holders: a miss fetches the
line from the nearest holder and replicates it locally, so subsequent misses
from the same node become node-local. Writes invalidate remote replicas and
make the writer the owner. This captures COMA's defining advantage over
CC-NUMA (automatic locality for migratory data) and its cost (the extra AM
lookup on every miss).

Capacity: node memories are large relative to working sets in our workloads,
so AM displacement ("last copy relocation") is modeled only when the AM
exceeds ``am_lines`` — the displaced line moves to the least-loaded node and
a relocation counter records it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..bus import OccupancyResource
from ..cache import LineState
from ..network import MeshNetwork
from .base import CoherenceProtocol


class _ComaEntry:
    __slots__ = ("holders", "owner")

    def __init__(self) -> None:
        self.holders: Set[int] = set()   # node ids with a replica
        self.owner = -1                  # node with the master (dirty) copy


class ComaProtocol(CoherenceProtocol):
    """Attraction-memory COMA over a 2D mesh."""

    name = "coma"

    def __init__(self, dram_latency: int = 60, dir_latency: int = 10,
                 hop_latency: int = 20, num_nodes: int = 2,
                 data_flits: int = 2, am_lines: int = 1 << 20,
                 **_ignored) -> None:
        super().__init__()
        self.dram_latency = dram_latency
        #: AM tag lookup adds a directory-like cost on every miss
        self.am_lookup = dir_latency
        self.num_nodes = num_nodes
        self.network = MeshNetwork(num_nodes, hop_latency)
        self.amctl = [OccupancyResource(f"am{n}", dir_latency)
                      for n in range(num_nodes)]
        self.data_flits = data_flits
        self.am_lines = am_lines
        self._map: Dict[int, _ComaEntry] = {}
        self._am_load = [0] * num_nodes
        self.relocations = 0

    def _entry(self, line: int) -> _ComaEntry:
        e = self._map.get(line)
        if e is None:
            e = _ComaEntry()
            self._map[line] = e
            # cold line: initially resident where its frame was allocated
            node = self.home_of(self.line_paddr(line))
            e.holders.add(node)
            self._am_load[node] += 1
        return e

    # -- checkpoint/restore -------------------------------------------------

    def min_remote_latency(self) -> int:
        """Cheapest cross-CPU effect: a one-hop attraction-memory probe
        (request hop + AM tag lookup at the target node)."""
        return max(1, self.network.hop_latency + self.am_lookup)

    def state_dict(self):
        st = super().state_dict()
        st["map"] = {line: (sorted(e.holders), e.owner)
                     for line, e in self._map.items()}
        st["amctl"] = [r.state_dict() for r in self.amctl]
        st["am_load"] = list(self._am_load)
        st["relocations"] = self.relocations
        st["network"] = self.network.state_dict()
        return st

    def load_state(self, state) -> None:
        super().load_state(state)
        self._map.clear()
        for line, (holders, owner) in state["map"].items():
            e = _ComaEntry()
            e.holders = set(holders)
            e.owner = owner
            self._map[line] = e
        for r, rs in zip(self.amctl, state["amctl"]):
            r.load_state(rs)
        self._am_load[:] = state["am_load"]
        self.relocations = state["relocations"]
        self.network.load_state(state["network"])

    def _nearest_holder(self, node: int, e: _ComaEntry) -> int:
        if node in e.holders:
            return node
        return min(e.holders, key=lambda h: (self.network.hops(node, h), h))

    def _replicate(self, node: int, line: int, e: _ComaEntry) -> None:
        if node in e.holders:
            return
        e.holders.add(node)
        self._am_load[node] += 1
        if self._am_load[node] > self.am_lines:
            self._displace(node)

    def _displace(self, node: int) -> None:
        """AM overflow: drop one replica; a last copy relocates elsewhere."""
        for line, e in self._map.items():
            if node in e.holders and e.owner != node:
                e.holders.discard(node)
                self._am_load[node] -= 1
                if not e.holders:
                    dest = min(range(self.num_nodes),
                               key=lambda n: self._am_load[n])
                    e.holders.add(dest)
                    self._am_load[dest] += 1
                    self.relocations += 1
                return

    # -- contract -----------------------------------------------------------

    def read_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        node = self.cpu_node[cpu]
        e = self._entry(line)
        src = e.owner if e.owner >= 0 else self._nearest_holder(node, e)
        lat = self.amctl[node].occupy(now)          # local AM tag check
        if src == node:
            self.count("am_local_hit")
            lat += self.dram_latency
        else:
            self.count("am_remote_fetch")
            lat += self.network.transfer(node, src, now + lat)
            lat += self.amctl[src].occupy(now + lat) + self.dram_latency
            lat += self.network.transfer(src, node, now + lat,
                                         self.data_flits)
            self._replicate(node, line, e)
        if e.owner >= 0:
            e.owner = -1   # master copy demoted to a plain replica
        if len(e.holders) == 1 and node in e.holders:
            # sole holder node: exclusive only if no peer CPU caches it
            if not any(self.caches[c].probe(line) is not None
                       for c in range(len(self.caches)) if c != cpu):
                return lat, LineState.EXCLUSIVE
        # any peer copy (possibly E or M) is demoted: no silent upgrades
        for c in range(len(self.caches)):
            if c != cpu:
                self._downgrade_peer(c, line)
        return lat, LineState.SHARED

    def write_miss(self, cpu: int, line: int, now: int) -> Tuple[int, int]:
        node = self.cpu_node[cpu]
        e = self._entry(line)
        lat = self.amctl[node].occupy(now)
        # fetch if not local
        if node not in e.holders:
            src = e.owner if e.owner >= 0 else self._nearest_holder(node, e)
            lat += self.network.transfer(node, src, now + lat)
            lat += self.amctl[src].occupy(now + lat) + self.dram_latency
            lat += self.network.transfer(src, node, now + lat,
                                         self.data_flits)
            self._replicate(node, line, e)
        else:
            lat += self.dram_latency
        # invalidate all other replicas (and any peer CPU caches)
        worst = 0
        for h in list(e.holders):
            if h == node:
                continue
            worst = max(worst, 2 * self.network.hops(node, h)
                        * self.network.hop_latency)
            e.holders.discard(h)
            self._am_load[h] -= 1
            self.count("replica_invalidation")
        for c, cn in enumerate(self.cpu_node):
            if c != cpu:
                self._drop_peer(c, line)
        e.owner = node
        self.count("write_miss")
        return lat + worst, LineState.MODIFIED

    def writeback(self, cpu: int, line: int, now: int) -> int:
        # master copy returns to the local AM: node-local, buffered
        self.count("writeback")
        node = self.cpu_node[cpu]
        self.amctl[node].occupy(now)
        e = self._map.get(line)
        if e is not None and e.owner == node:
            e.owner = -1
        return 0

    # -- introspection ------------------------------------------------------

    def holders_of(self, line: int) -> Set[int]:
        e = self._map.get(line)
        return set(e.holders) if e else set()
