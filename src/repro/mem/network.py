"""Point-to-point interconnection network for the CC-NUMA / COMA backends.

Nodes are arranged on a 2D mesh (the densest square that fits); messages pay
``hop_latency`` per hop plus per-link occupancy. For small node counts this
degenerates gracefully (1 node → zero cost, 2 nodes → one link).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .bus import OccupancyResource


class MeshNetwork:
    """2D-mesh distance + link-contention model."""

    def __init__(self, num_nodes: int, hop_latency: int,
                 link_occupancy: int = 2) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.hop_latency = hop_latency
        self.cols = max(1, int(math.isqrt(num_nodes)))
        self.rows = (num_nodes + self.cols - 1) // self.cols
        #: per-directed-link occupancy resources, created lazily
        self._links: Dict[Tuple[int, int], OccupancyResource] = {}
        self._link_occ = link_occupancy
        self.messages = 0
        self.total_hops = 0
        #: fault injection: callable(now) -> extra occupancy cycles applied
        #: to every link (a degraded interconnect); None normally
        self.fault_hook = None

    def set_fault_hook(self, hook) -> None:
        """Install a degraded-link hook on every current and future link."""
        self.fault_hook = hook
        for r in self._links.values():
            r.fault_hook = hook

    def coords(self, node: int) -> Tuple[int, int]:
        return node % self.cols, node // self.cols

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Dimension-ordered (X then Y) list of directed links."""
        links: List[Tuple[int, int]] = []
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        cur = src
        while sx != dx:
            sx += 1 if dx > sx else -1
            nxt = sy * self.cols + sx
            links.append((cur, nxt))
            cur = nxt
        while sy != dy:
            sy += 1 if dy > sy else -1
            nxt = sy * self.cols + sx
            links.append((cur, nxt))
            cur = nxt
        return links

    def transfer(self, src: int, dst: int, now: int, flits: int = 1) -> int:
        """Latency to move a ``flits``-unit message src→dst at cycle ``now``
        (wormhole-ish: per-hop latency + contended link occupancy)."""
        if src == dst:
            return 0
        self.messages += 1
        latency = 0
        t = now
        route = self.route(src, dst)
        self.total_hops += len(route)
        for link in route:
            r = self._links.get(link)
            if r is None:
                r = OccupancyResource(f"link{link}", self._link_occ)
                r.fault_hook = self.fault_hook
                self._links[link] = r
            d = self.hop_latency + r.occupy(t, self._link_occ * flits)
            latency += d
            t += d
        return latency

    def state_dict(self) -> dict:
        """Plain-data snapshot: message counters + every lazy link's state."""
        return {
            "messages": self.messages,
            "total_hops": self.total_hops,
            "links": {k: r.state_dict() for k, r in self._links.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot; links absent from the live set are recreated
        (with the current fault hook reapplied)."""
        self.messages = state["messages"]
        self.total_hops = state["total_hops"]
        self._links.clear()
        for key, lstate in state["links"].items():
            r = OccupancyResource(f"link{key}", self._link_occ)
            r.fault_hook = self.fault_hook
            r.load_state(lstate)
            self._links[key] = r

    def link_stats(self) -> Dict[Tuple[int, int], int]:
        """Directed link -> transactions carried."""
        return {k: v.transactions for k, v in self._links.items()}
