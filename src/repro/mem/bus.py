"""Shared-resource occupancy models: buses, controllers, ports.

Because the communicator services events in global-time order, contention can
be modeled exactly with a ``busy_until`` horizon per resource: a transaction
arriving at cycle *t* waits ``max(0, busy_until - t)``, then occupies the
resource for its service time. This one class models the memory bus, the
per-node memory/coherence controllers and device ports.
"""

from __future__ import annotations


class OccupancyResource:
    """A FIFO resource with a fixed (or per-request) service time."""

    __slots__ = ("name", "service", "busy_until", "transactions",
                 "wait_cycles", "busy_cycles", "fault_hook")

    def __init__(self, name: str, service: int) -> None:
        if service < 0:
            raise ValueError(f"{name}: negative service time")
        self.name = name
        self.service = service
        self.busy_until = 0
        self.transactions = 0
        self.wait_cycles = 0
        self.busy_cycles = 0
        #: fault injection: callable(now) -> extra service cycles modeling a
        #: degraded bus/controller/link; None outside fault-plan runs
        self.fault_hook = None

    def occupy(self, now: int, service: int = -1) -> int:
        """Acquire at cycle ``now``; returns total delay (queueing + service).

        ``service`` overrides the default per-transaction time.
        """
        if service < 0:
            service = self.service
        if self.fault_hook is not None:
            service += self.fault_hook(now)
        start = self.busy_until if self.busy_until > now else now
        wait = start - now
        self.busy_until = start + service
        self.transactions += 1
        self.wait_cycles += wait
        self.busy_cycles += service
        return wait + service

    def state_dict(self) -> dict:
        """Plain-data snapshot (the fault hook is rebound by its owner)."""
        return {"busy_until": self.busy_until,
                "transactions": self.transactions,
                "wait_cycles": self.wait_cycles,
                "busy_cycles": self.busy_cycles}

    def load_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]
        self.transactions = state["transactions"]
        self.wait_cycles = state["wait_cycles"]
        self.busy_cycles = state["busy_cycles"]

    def utilisation(self, horizon: int) -> float:
        """Fraction of [0, horizon) this resource was busy."""
        return self.busy_cycles / horizon if horizon > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"OccupancyResource({self.name}, txns={self.transactions}, "
                f"wait={self.wait_cycles})")
