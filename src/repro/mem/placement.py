"""Page placement policies for distributed (NUMA) memory.

The paper (§3.3.1): "The home nodes can be assigned at the time of page
creation (if a round-robin or block page placement policy is being used) or
when the page is first referenced (if a first-touch page placement algorithm
is used)."
"""

from __future__ import annotations

from ..core.errors import ConfigError


class PagePlacement:
    """Chooses the home node for a newly created page."""

    def __init__(self, policy: str, num_nodes: int) -> None:
        if policy not in ("round_robin", "block", "first_touch"):
            raise ConfigError(f"unknown placement policy {policy!r}")
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        self.policy = policy
        self.num_nodes = num_nodes
        self._rr = 0

    def place(self, vpn_in_segment: int, segment_pages: int,
              accessor_node: int) -> int:
        """Home node for page ``vpn_in_segment`` of a ``segment_pages``-page
        segment, first referenced from ``accessor_node``."""
        n = self.num_nodes
        if n == 1:
            return 0
        if self.policy == "first_touch":
            return accessor_node
        if self.policy == "round_robin":
            node = self._rr
            self._rr = (self._rr + 1) % n
            return node
        # block: contiguous runs of pages per node
        if segment_pages <= 0:
            return vpn_in_segment % n
        per = (segment_pages + n - 1) // n
        return min(vpn_in_segment // per, n - 1)
