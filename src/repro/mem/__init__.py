"""Backend memory system: address translation, caches, interconnect and
coherence protocols. See DESIGN.md for the module map."""

from .pagetable import Vmm, PhysMem, SharedSegment, KERNEL_BASE
from .cache import Cache, LineState
from .hierarchy import MemorySystem

__all__ = [
    "Vmm",
    "PhysMem",
    "SharedSegment",
    "KERNEL_BASE",
    "Cache",
    "LineState",
    "MemorySystem",
]
