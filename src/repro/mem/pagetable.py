"""Virtual memory management (category-2 OS function, paper §3.3.1).

Per-process page tables, the shared-memory descriptor model, file mappings
and the home-node map. The paper keeps "a hash table of the home nodes of
each of the pages hashed by physical address" in the backend; here the home
node is computable from the physical frame number (frames are allocated from
per-node pools), and the page tables map virtual page number → frame.

Address layout (AIX-flavoured 32-bit):

* user space:    0x0000_0000 .. 0xBFFF_FFFF (private per process)
* kernel space:  0xC000_0000 .. 0xFFFF_FFFF (one shared kernel page table)

Translation performs allocation-on-first-touch for anonymous and shared
pages (minor faults, counted and costed by the engine). References to
file-backed pages with no resident frame report a *major* fault, which the
engine services through the buffer cache / disk path before retrying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import MemoryError_, ConfigError
from .placement import PagePlacement

KERNEL_BASE = 0xC000_0000
USER_LIMIT = KERNEL_BASE


class PhysMem:
    """Per-node physical frame pools.

    Frame numbers are global; ``home_node(ppn)`` recovers the owning node in
    O(1), replacing the paper's physical-address hash table.
    """

    def __init__(self, num_nodes: int, node_bytes: int, page_size: int) -> None:
        if node_bytes % page_size:
            raise ConfigError("node memory must be a multiple of page size")
        self.num_nodes = num_nodes
        self.page_size = page_size
        self.frames_per_node = node_bytes // page_size
        self._next = [0] * num_nodes
        self.allocated = 0

    def alloc(self, node: int) -> int:
        """Allocate one frame on ``node`` (spilling to the next node with
        free frames when full). Returns the global frame number."""
        n = self.num_nodes
        for k in range(n):
            cand = (node + k) % n
            if self._next[cand] < self.frames_per_node:
                ppn = cand * self.frames_per_node + self._next[cand]
                self._next[cand] += 1
                self.allocated += 1
                return ppn
        raise MemoryError_("out of physical memory on all nodes")

    def home_node(self, ppn: int) -> int:
        """Owning NUMA node of a frame."""
        return ppn // self.frames_per_node

    def state_dict(self) -> dict:
        return {"next": list(self._next), "allocated": self.allocated}

    def load_state(self, state: dict) -> None:
        self._next[:] = state["next"]
        self.allocated = state["allocated"]

    def free_frames(self, node: int) -> int:
        return self.frames_per_node - self._next[node]


@dataclass
class SharedSegment:
    """The paper's *common shared memory descriptor* (shmget model).

    Links a shared-memory key to one system-wide page array; every attaching
    process's page table entries resolve into the same frames.
    """

    shmid: int
    key: int
    size: int
    #: per-page frame numbers; None until placed (first touch) or filled
    #: eagerly at creation (round-robin / block)
    pages: List[Optional[int]] = field(default_factory=list)
    nattach: int = 0

    def npages(self, page_size: int) -> int:
        return (self.size + page_size - 1) // page_size


@dataclass
class Vma:
    """One mapped region of a process address space."""

    start: int
    end: int                       # exclusive
    kind: str                      # "anon" | "shm" | "file"
    segment: Optional[SharedSegment] = None
    file_key: Optional[object] = None   # opaque file identity (inode)
    file_offset: int = 0
    shared_file: bool = True

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end


class _Space:
    """Page table + region list for one address space."""

    __slots__ = ("table", "vmas", "version")

    def __init__(self) -> None:
        self.table: Dict[int, int] = {}       # vpn -> ppn
        self.vmas: List[Vma] = []
        #: bumped on every page-table mutation; the vectorized fast path
        #: (mem/vec.py) keys its sorted translation snapshot on it
        self.version = 0

    def find_vma(self, vaddr: int) -> Optional[Vma]:
        for v in self.vmas:
            if v.contains(vaddr):
                return v
        return None


class MajorFault:
    """Reported when a reference touches a non-resident file-backed page.

    The engine runs the VM trap path: read the page via the buffer cache
    (possibly blocking on disk), then call :meth:`Vmm.install_file_page` and
    retry the translation.
    """

    __slots__ = ("pid", "vaddr", "vma", "vpn", "page_index")

    def __init__(self, pid: int, vaddr: int, vma: Vma, vpn: int,
                 page_index: int) -> None:
        self.pid = pid
        self.vaddr = vaddr
        self.vma = vma
        self.vpn = vpn
        #: index of the faulting page within the backing file
        self.page_index = page_index


class Vmm:
    """The backend's virtual-memory manager."""

    def __init__(self, num_nodes: int, node_bytes: int, page_size: int,
                 placement: str, num_cpus: int) -> None:
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self.phys = PhysMem(num_nodes, node_bytes, page_size)
        self.placement = PagePlacement(placement, num_nodes)
        self.num_nodes = num_nodes
        #: node of each cpu (cpus striped across nodes in order)
        self.cpu_node = [c * num_nodes // num_cpus for c in range(num_cpus)]
        self._spaces: Dict[int, _Space] = {}
        self._kernel = _Space()
        self._kernel.vmas.append(Vma(KERNEL_BASE, 0x1_0000_0000, "anon"))
        self._segments: Dict[int, SharedSegment] = {}
        self._key_to_shmid: Dict[int, int] = {}
        self._next_shmid = 1
        #: file pages resident in memory: (file_key, page_index) -> ppn
        self._file_pages: Dict[Tuple[object, int], int] = {}
        # statistics
        self.minor_faults = 0
        self.major_faults = 0

    # -- spaces ----------------------------------------------------------

    def new_space(self, pid: int) -> None:
        """Create the address space for process ``pid``."""
        if pid in self._spaces:
            raise MemoryError_(f"pid {pid} already has an address space")
        self._spaces[pid] = _Space()

    def destroy_space(self, pid: int) -> None:
        """Tear down a process address space (detaching its segments)."""
        sp = self._spaces.pop(pid, None)
        if sp:
            for vma in sp.vmas:
                if vma.kind == "shm" and vma.segment is not None:
                    vma.segment.nattach -= 1

    def space_of(self, pid: int) -> _Space:
        sp = self._spaces.get(pid)
        if sp is None:
            raise MemoryError_(f"pid {pid} has no address space")
        return sp

    # -- mapping ------------------------------------------------------------

    def map_anon(self, pid: int, base: int, size: int) -> None:
        """Map private zero-fill memory (heap, stack, bss)."""
        self._add_vma(pid, Vma(base, base + size, "anon"))

    def map_file(self, pid: int, base: int, size: int, file_key: object,
                 offset: int = 0, shared: bool = True) -> None:
        """mmap a file region (paper's mmap; TPC-D's dominant OS call)."""
        self._add_vma(pid, Vma(base, base + size, "file", file_key=file_key,
                               file_offset=offset, shared_file=shared))

    def unmap(self, pid: int, base: int) -> Vma:
        """munmap the region starting at ``base``; page-table entries for the
        region are dropped (frames are not reclaimed — the simulator never
        reuses frames, keeping home-node identity stable)."""
        sp = self.space_of(pid)
        for i, v in enumerate(sp.vmas):
            if v.start == base:
                del sp.vmas[i]
                for vpn in range(v.start >> self._page_shift,
                                 ((v.end - 1) >> self._page_shift) + 1):
                    sp.table.pop(vpn, None)
                sp.version += 1
                if v.kind == "shm" and v.segment is not None:
                    v.segment.nattach -= 1
                return v
        raise MemoryError_(f"pid {pid}: no mapping at {base:#x}")

    def _add_vma(self, pid: int, vma: Vma) -> None:
        if vma.end > USER_LIMIT:
            raise MemoryError_(
                f"mapping [{vma.start:#x},{vma.end:#x}) crosses kernel base"
            )
        sp = self.space_of(pid)
        for v in sp.vmas:
            if vma.start < v.end and v.start < vma.end:
                raise MemoryError_(
                    f"pid {pid}: mapping overlaps [{v.start:#x},{v.end:#x})"
                )
        sp.vmas.append(vma)

    # -- shared memory (shmget / shmat / shmdt) ------------------------------

    def shmget(self, key: int, size: int) -> int:
        """Create (or look up) the common shared-memory descriptor for
        ``key``; returns the shmid. For round-robin/block placement the home
        nodes are assigned now, at page-creation time (paper §3.3.1)."""
        if key in self._key_to_shmid:
            return self._key_to_shmid[key]
        shmid = self._next_shmid
        self._next_shmid += 1
        seg = SharedSegment(shmid=shmid, key=key, size=size)
        npages = seg.npages(self.page_size)
        seg.pages = [None] * npages
        if self.placement.policy in ("round_robin", "block"):
            for i in range(npages):
                node = self.placement.place(i, npages, 0)
                seg.pages[i] = self.phys.alloc(node)
        self._segments[shmid] = seg
        self._key_to_shmid[key] = shmid
        return shmid

    def shmat(self, pid: int, shmid: int, base: int) -> int:
        """Attach segment ``shmid`` at ``base``; creates the VMA (page-table
        entries materialise on reference). Returns the attach address."""
        seg = self._segments.get(shmid)
        if seg is None:
            raise MemoryError_(f"no shared segment {shmid}")
        self._add_vma(pid, Vma(base, base + seg.size, "shm", segment=seg))
        seg.nattach += 1
        return base

    def shmdt(self, pid: int, base: int) -> None:
        """Detach the segment mapped at ``base``."""
        self.unmap(pid, base)

    def segment(self, shmid: int) -> SharedSegment:
        seg = self._segments.get(shmid)
        if seg is None:
            raise MemoryError_(f"no shared segment {shmid}")
        return seg

    # -- file page residency (used by the VM trap path) ----------------------

    def file_page_resident(self, file_key: object, page_index: int) -> bool:
        return (file_key, page_index) in self._file_pages

    def install_file_page(self, file_key: object, page_index: int,
                          node: int) -> int:
        """Make a file page resident (called by the major-fault handler after
        the disk read); idempotent. Returns the frame."""
        k = (file_key, page_index)
        ppn = self._file_pages.get(k)
        if ppn is None:
            ppn = self.phys.alloc(node)
            self._file_pages[k] = ppn
        return ppn

    # -- translation ----------------------------------------------------------

    def translate(self, pid: int, vaddr: int, write: bool,
                  cpu: int) -> Tuple[int, Optional[MajorFault], bool]:
        """Translate a reference to ``(paddr, major_fault, minor_fault)``.

        Minor faults (anonymous/shared/kernel first touch) are serviced
        inline: the frame is allocated by the placement policy and the flag
        returned so the engine can charge the trap cost. A major fault
        returns a :class:`MajorFault` and no paddr progress (paddr is 0).
        """
        ps = self.page_size
        shift = self._page_shift
        vpn = vaddr >> shift
        offset = vaddr & (ps - 1)

        if vaddr >= KERNEL_BASE:
            sp = self._kernel
            ppn = sp.table.get(vpn)
            if ppn is not None:
                return (ppn * ps + offset, None, False)
            # kernel first touch: place near the accessing CPU
            node = self.placement.place(vpn & 0xFFFF, 0, self.cpu_node[cpu])
            ppn = self.phys.alloc(node)
            sp.table[vpn] = ppn
            sp.version += 1
            self.minor_faults += 1
            return (ppn * ps + offset, None, True)

        sp = self.space_of(pid)
        ppn = sp.table.get(vpn)
        if ppn is not None:
            return (ppn * ps + offset, None, False)

        vma = sp.find_vma(vaddr)
        if vma is None:
            raise MemoryError_(
                f"pid {pid}: segmentation fault at {vaddr:#x} "
                f"({'write' if write else 'read'})"
            )
        if vma.kind == "anon":
            node = self.placement.place(vpn - (vma.start >> shift),
                                        (vma.end - vma.start) // ps,
                                        self.cpu_node[cpu])
            ppn = self.phys.alloc(node)
            sp.table[vpn] = ppn
            sp.version += 1
            self.minor_faults += 1
            return (ppn * ps + offset, None, True)
        if vma.kind == "shm":
            seg = vma.segment
            idx = vpn - (vma.start >> shift)
            if idx >= len(seg.pages):
                raise MemoryError_(f"pid {pid}: past end of shm segment")
            ppn = seg.pages[idx]
            if ppn is None:   # first touch placement
                node = self.placement.place(idx, len(seg.pages),
                                            self.cpu_node[cpu])
                ppn = self.phys.alloc(node)
                seg.pages[idx] = ppn
            sp.table[vpn] = ppn
            sp.version += 1
            self.minor_faults += 1
            return (ppn * ps + offset, None, True)
        # file-backed
        page_index = (vma.file_offset + (vaddr - vma.start)) // ps
        k = (vma.file_key, page_index)
        ppn = self._file_pages.get(k)
        if ppn is not None:
            sp.table[vpn] = ppn
            sp.version += 1
            self.minor_faults += 1
            return (ppn * ps + offset, None, True)
        self.major_faults += 1
        return (0, MajorFault(pid, vaddr, vma, vpn, page_index), False)

    def home_of_paddr(self, paddr: int) -> int:
        """NUMA home node of a physical address."""
        return self.phys.home_node(paddr // self.page_size)

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot of translation state. VMAs are *not* here:
        they are rebuilt live by the replayed mmap/shmat calls; only the
        frame assignments (which depend on allocation order, not replayable
        without the backend) need installing."""
        return {
            "spaces": {pid: dict(sp.table)
                       for pid, sp in self._spaces.items()},
            "kernel_table": dict(self._kernel.table),
            "segments": {shmid: {"pages": list(seg.pages),
                                 "nattach": seg.nattach}
                         for shmid, seg in self._segments.items()},
            "key_to_shmid": dict(self._key_to_shmid),
            "next_shmid": self._next_shmid,
            "file_pages": list(self._file_pages.items()),
            "phys": self.phys.state_dict(),
            "minor_faults": self.minor_faults,
            "major_faults": self.major_faults,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot into a live Vmm whose spaces/segments were
        already recreated (by replayed spawns and shm calls). Containers are
        mutated in place — the memory system's fast path holds direct
        references to ``_kernel.table`` and ``_spaces``."""
        snap_pids = set(state["spaces"])
        live_pids = set(self._spaces)
        if snap_pids != live_pids:
            from ..core.errors import ReplayDivergence
            raise ReplayDivergence(
                f"address spaces diverged: snapshot pids {sorted(snap_pids)}"
                f" vs live {sorted(live_pids)}")
        for pid, table in state["spaces"].items():
            sp = self._spaces[pid]
            sp.table.clear()
            sp.table.update(table)
            sp.version += 1
        self._kernel.table.clear()
        self._kernel.table.update(state["kernel_table"])
        self._kernel.version += 1
        for shmid, seg_state in state["segments"].items():
            seg = self._segments.get(shmid)
            if seg is None:
                from ..core.errors import ReplayDivergence
                raise ReplayDivergence(f"shared segment {shmid} missing")
            seg.pages[:] = seg_state["pages"]
            seg.nattach = seg_state["nattach"]
        self._key_to_shmid.clear()
        self._key_to_shmid.update(state["key_to_shmid"])
        self._next_shmid = state["next_shmid"]
        self._file_pages.clear()
        self._file_pages.update(
            {tuple(k): v for k, v in state["file_pages"]})
        self.phys.load_state(state["phys"])
        self.minor_faults = state["minor_faults"]
        self.major_faults = state["major_faults"]
