"""Set-associative cache model with MESI-compatible line states.

Used for both L1 and L2 of the paper's backends. The hot path (lookup +
LRU update) is a dict hit plus a small-list move-to-front; associativities
are ≤ 16 so linear set scans beat fancier structures (see the HPC-guide
notes in DESIGN.md).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from ..core.config import CacheConfig


class LineState(IntEnum):
    """MESI states (INVALID lines are simply absent)."""

    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


# hot-path int constants: enum member access costs a descriptor lookup per
# use, which shows up in the fill/flush paths (values are interchangeable
# with LineState members — it is an IntEnum)
_SHARED = 1
_MODIFIED = 3


class Cache:
    """One cache: maps line address → state, LRU within each set."""

    __slots__ = ("name", "cfg", "line_shift", "n_sets", "set_mask", "assoc",
                 "_sets", "_states", "version",
                 "hits", "misses", "evictions", "writebacks", "invalidations")

    def __init__(self, name: str, cfg: CacheConfig) -> None:
        cfg.validate()
        self.name = name
        self.cfg = cfg
        self.line_shift = cfg.line_size.bit_length() - 1
        self.n_sets = cfg.n_sets
        #: power-of-two set counts index with a mask instead of a modulo
        #: (the common geometry; -1 marks the generic fallback)
        self.set_mask = self.n_sets - 1 if self.n_sets & (self.n_sets - 1) == 0 else -1
        #: hoisted from the frozen dataclass: attribute reads off a slot are
        #: measurably cheaper than a dataclass field in the fill path
        self.assoc = cfg.assoc
        #: per-set MRU-ordered list of line addresses (index 0 = MRU)
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        #: line address -> LineState
        self._states: Dict[int, int] = {}
        #: bumped on every content/state mutation that could *relax* what a
        #: lookup may answer (fills, invalidations, state changes, restores);
        #: the vectorized mirror (mem/vec.py) resyncs when it changes. Pure
        #: LRU reordering and the fast path's direct E->M upgrades do not
        #: bump it — see DESIGN.md, "mirror-state invariants".
        self.version = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    # -- address helpers -----------------------------------------------------

    def line_of(self, paddr: int) -> int:
        """Line address (paddr with offset bits stripped)."""
        return paddr >> self.line_shift

    def _set_of(self, line: int) -> int:
        mask = self.set_mask
        return line & mask if mask >= 0 else line % self.n_sets

    # -- operations ------------------------------------------------------------

    def lookup(self, line: int, update_lru: bool = True) -> Optional[int]:
        """State of ``line`` if present (MRU-promoted), else None."""
        st = self._states.get(line)
        if st is None:
            self.misses += 1
            return None
        self.hits += 1
        if update_lru:
            s = self._sets[self._set_of(line)]
            if s[0] != line:
                s.remove(line)
                s.insert(0, line)
        return st

    def probe(self, line: int) -> Optional[int]:
        """State without touching LRU or hit/miss counters (snoop path)."""
        return self._states.get(line)

    def insert(self, line: int, state: int) -> Optional[Tuple[int, int]]:
        """Fill ``line`` with ``state``; returns the victim ``(line, state)``
        when an eviction was needed (caller handles the writeback)."""
        victim: Optional[Tuple[int, int]] = None
        self.version += 1
        s = self._sets[self._set_of(line)]
        if line in self._states:
            # refill of a present line: just update state + LRU
            self._states[line] = state
            if s[0] != line:
                s.remove(line)
                s.insert(0, line)
            return None
        if len(s) >= self.assoc:
            vline = s.pop()
            vstate = self._states.pop(vline)
            self.evictions += 1
            if vstate == _MODIFIED:
                self.writebacks += 1
            victim = (vline, vstate)
        s.insert(0, line)
        self._states[line] = state
        return victim

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a present line (upgrade/downgrade)."""
        if line in self._states:
            self._states[line] = state
            self.version += 1

    def invalidate(self, line: int) -> Optional[int]:
        """Drop ``line``; returns its prior state (None if absent)."""
        st = self._states.pop(line, None)
        if st is not None:
            self._sets[self._set_of(line)].remove(line)
            self.invalidations += 1
            self.version += 1
        return st

    def contains(self, line: int) -> bool:
        return line in self._states

    def occupancy(self) -> int:
        """Number of valid lines."""
        return len(self._states)

    def flush_dirty(self) -> List[int]:
        """Return (and clean) every MODIFIED line — used by msync models."""
        dirty = [l for l, s in self._states.items() if s == _MODIFIED]
        for l in dirty:
            self._states[l] = _SHARED
        if dirty:
            self.version += 1
        self.writebacks += len(dirty)
        return dirty

    def reset_stats(self) -> None:
        self.hits = self.misses = 0
        self.evictions = self.writebacks = self.invalidations = 0

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot: per-set MRU order, line states, counters."""
        return {
            "sets": [list(s) for s in self._sets],
            "states": dict(self._states),
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "writebacks": self.writebacks,
            "invalidations": self.invalidations,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot. The ``_sets``/``_states`` containers are
        mutated in place: the memory system's fast-path filter holds direct
        references to them."""
        for dst, src in zip(self._sets, state["sets"]):
            dst[:] = src
        self._states.clear()
        self._states.update(state["states"])
        self.version += 1
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
        self.writebacks = state["writebacks"]
        self.invalidations = state["invalidations"]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        a = self.accesses
        return self.misses / a if a else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Cache({self.name}, {self.cfg.size >> 10}KiB, "
                f"hits={self.hits}, misses={self.misses})")
