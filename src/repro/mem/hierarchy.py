"""The backend memory system: translation + cache hierarchy + coherence.

``MemorySystem.access`` is the single entry point the engine calls for every
memory-reference event. It translates the virtual address through the
issuing process's page table (or the kernel space for OS-server references),
walks the private cache hierarchy, and lets the coherence protocol service
misses and upgrades. The returned latency is what the backend replies to the
frontend's event port.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.config import SimConfig
from ..core.stats import StatsRegistry
from .cache import Cache
from .coherence import make_protocol
from .pagetable import KERNEL_BASE, MajorFault, Vmm

try:
    import numpy as _np
except ImportError:          # pragma: no cover - numpy is a soft dependency
    _np = None

# hot-path int constants: IntEnum member access and comparisons carry enum
# dispatch overhead, so the access paths below compare against plain ints
# (LineState is an IntEnum, so stored values interoperate either way)
_SHARED = 1
_EXCLUSIVE = 2
_MODIFIED = 3


class MemorySystem:
    """Caches, interconnect and VM for one simulated machine."""

    def __init__(self, cfg: SimConfig, stats: StatsRegistry,
                 minor_fault_cycles: int = 400) -> None:
        cfg.backend.validate()
        self.cfg = cfg
        self.stats = stats
        be = cfg.backend
        mem = be.memory
        n = cfg.num_cpus

        self.vmm = Vmm(mem.num_nodes, mem.node_mem_bytes, mem.page_size,
                       mem.placement, n)
        self.minor_fault_cycles = minor_fault_cycles

        self.l1s: List[Cache] = [Cache(f"L1.{c}", be.l1) for c in range(n)]
        self.l2s: Optional[List[Cache]] = None
        if be.detail == "complex" and be.l2 is not None:
            self.l2s = [Cache(f"L2.{c}", be.l2) for c in range(n)]
        outer = self.l2s if self.l2s is not None else self.l1s
        inner: List[Optional[Cache]] = (
            list(self.l1s) if self.l2s is not None else [None] * n
        )

        self.protocol = make_protocol(
            be.coherence,
            dram_latency=mem.dram_latency,
            bus_latency=mem.bus_latency,
            dir_latency=mem.dir_latency,
            hop_latency=mem.hop_latency,
            num_nodes=mem.num_nodes,
            page_size=mem.page_size,
        )
        self.protocol.attach(outer, inner, self.vmm.cpu_node,
                             self.vmm.home_of_paddr, be.l1.line_size)
        self._outer = outer
        self._line_size = be.l1.line_size
        self._line_shift = be.l1.line_size.bit_length() - 1
        self.accesses = 0

        # --- L1 fast-path filter -------------------------------------------
        # A reference whose page is already translated and whose lines all
        # hit this CPU's L1 with sufficient rights resolves here as raw dict
        # probes, with no protocol/VMM involvement. The cached container
        # references below are stable objects mutated in place by the slow
        # path, so the filter always sees current state; every decline falls
        # through to the unchanged full path having mutated nothing.
        self.fast_hits = 0
        self.fast_fallbacks = 0
        self._fast_on = bool(getattr(cfg, "fastpath", True))
        self._l1_latency = be.l1.latency
        self._page_shift = self.vmm._page_shift
        self._page_mask = mem.page_size - 1
        self._kernel_table = self.vmm._kernel.table
        self._spaces = self.vmm._spaces
        self._l1_states = [c._states for c in self.l1s]
        self._l1_sets = [c._sets for c in self.l1s]
        self._l2_states = ([c._states for c in self.l2s]
                           if self.l2s is not None else None)
        self._l1_set_mask = self.l1s[0].set_mask
        self._l1_nsets = self.l1s[0].n_sets

        #: fault injection: callable() -> extra cycles on the full access
        #: path (a degraded DIMM adds latency to misses/DRAM traffic; L1
        #: fast-path hits never reach memory and stay unaffected). None
        #: outside fault-plan runs.
        self.fault_extra = None

        # --- vectorized batch fast path (see mem/vec.py) -------------------
        self.vec_batches = 0
        self.vec_refs = 0
        self.vec_fallbacks = 0
        self.vec_rebuilds = 0
        self._vec = None
        if (self._fast_on and _np is not None
                and bool(getattr(cfg, "vectorized", True))):
            from .vec import VecState
            self._vec = VecState(self)

        # --- sampled-simulation fast-forward mode --------------------------
        # While ff_active, references warm translation + cache contents
        # functionally and are charged a constant calibrated latency; no
        # protocol/interconnect modeling runs (see core/sampling.py).
        self.ff_active = False
        self.ff_refs = 0
        self._ff_base = 0
        self._ff_frac = 0.0
        self._ff_err = 0.0
        #: slow-path latency accumulator (full access() path only) — with
        #: fast_hits * l1_latency this yields the mean reference latency a
        #: detail window measured, which calibrates the next ff window
        self.lat_slow = 0

    # ------------------------------------------------------------------

    def access(self, pid: int, vaddr: int, size: int, write: bool,
               cpu: int, now: int,
               atomic: bool = False) -> Tuple[int, Optional[MajorFault]]:
        """Service one reference; returns (latency, major_fault).

        On a major fault no timing progress is made — the engine must run
        the VM trap path and retry.
        """
        if self.ff_active:
            return self._ff_access(pid, vaddr, size, write, cpu, atomic)
        if self._fast_on:
            # fast path: page already translated + all lines hit L1 with
            # sufficient rights (bit-identical to the full path below)
            if vaddr >= KERNEL_BASE:
                ppn = self._kernel_table.get(vaddr >> self._page_shift)
            else:
                sp = self._spaces.get(pid)
                ppn = (sp.table.get(vaddr >> self._page_shift)
                       if sp is not None else None)
            if ppn is not None:
                paddr = (ppn << self._page_shift) | (vaddr & self._page_mask)
                shift = self._line_shift
                line = paddr >> shift
                last = (paddr + (size or 1) - 1) >> shift
                states = self._l1_states[cpu]
                if line == last:
                    st = states.get(line)
                    if st is not None and (not write or st >= 2):
                        self.l1s[cpu].hits += 1
                        mask = self._l1_set_mask
                        s = self._l1_sets[cpu][
                            line & mask if mask >= 0
                            else line % self._l1_nsets]
                        if s[0] != line:
                            s.remove(line)
                            s.insert(0, line)
                        if write and st == 2:   # EXCLUSIVE -> MODIFIED
                            states[line] = 3
                            l2s = self._l2_states
                            if l2s is not None and line in l2s[cpu]:
                                l2s[cpu][line] = 3
                        self.accesses += 1
                        self.fast_hits += 1
                        lat = self._l1_latency
                        return (lat + 4, None) if atomic else (lat, None)
                else:
                    # multi-line: qualify every line before mutating any,
                    # so a decline leaves the caches untouched for the
                    # full path to service from scratch
                    ok = True
                    sts = []
                    l = line
                    while l <= last:
                        st = states.get(l)
                        if st is None or (write and st < 2):
                            ok = False
                            break
                        sts.append(st)
                        l += 1
                    if ok:
                        nlines = last - line + 1
                        self.l1s[cpu].hits += nlines
                        sets = self._l1_sets[cpu]
                        mask = self._l1_set_mask
                        nsets = self._l1_nsets
                        l2s = (self._l2_states[cpu]
                               if self._l2_states is not None else None)
                        for j in range(nlines):
                            l = line + j
                            s = sets[l & mask if mask >= 0 else l % nsets]
                            if s[0] != l:
                                s.remove(l)
                                s.insert(0, l)
                            if write and sts[j] == 2:
                                states[l] = 3
                                if l2s is not None and l in l2s:
                                    l2s[l] = 3
                        self.accesses += 1
                        self.fast_hits += 1
                        lat = self._l1_latency * nlines
                        if atomic:
                            lat += 4
                        return lat, None
            self.fast_fallbacks += 1
        paddr, major, minor = self.vmm.translate(pid, vaddr, write, cpu)
        if major is not None:
            return 0, major
        self.accesses += 1
        latency = self.minor_fault_cycles if minor else 0
        if atomic:
            latency += 4   # bus-locked RMW pipeline cost

        first = paddr >> self._line_shift
        last = (paddr + max(size, 1) - 1) >> self._line_shift
        line = first
        while line <= last:
            latency += self._access_line(line, write, cpu, now + latency)
            line += 1
        fe = self.fault_extra
        if fe is not None:
            latency += fe()
        self.lat_slow += latency
        return latency, None

    # ------------------------------------------------------------------
    # conservative lookahead support (see DESIGN.md)
    # ------------------------------------------------------------------

    def min_remote_latency(self) -> int:
        """Cheapest cross-CPU interaction of the configured protocol — the
        per-configuration scale of the engine's lookahead windows."""
        return self.protocol.min_remote_latency()

    def ref_invisible_latency(self, pid: int, cpu: int, kind: int,
                              vaddr: int, size: int) -> int:
        """Latency this single reference would resolve with on the L1 fast
        path, or -1 when it would decline (miss / upgrade / untranslated).

        Read-only: probes the same state the fast path consults but mutates
        nothing — used to bound how long a *rival* frontend provably stays
        invisible (a fast-path hit touches only issuer-private state).
        """
        if not self._fast_on or self.ff_active:
            return -1
        if vaddr >= KERNEL_BASE:
            ppn = self._kernel_table.get(vaddr >> self._page_shift)
        else:
            sp = self._spaces.get(pid)
            ppn = (sp.table.get(vaddr >> self._page_shift)
                   if sp is not None else None)
        if ppn is None:
            return -1
        paddr = (ppn << self._page_shift) | (vaddr & self._page_mask)
        shift = self._line_shift
        line = paddr >> shift
        last = (paddr + (size or 1) - 1) >> shift
        states_get = self._l1_states[cpu].get
        while line <= last:
            st = states_get(line)
            if st is None or (kind != 0 and st < _EXCLUSIVE):
                return -1
            line += 1
        lat = self._l1_latency * (last - (paddr >> shift) + 1)
        return lat + 4 if kind == 2 else lat

    def invisible_until(self, pid: int, cpu: int, batch, cap: int) -> int:
        """Earliest cycle at which the frontend owning ``batch`` could next
        act *non-invisibly*, walking its pending references from the cursor.

        A reference is invisible when it satisfies the L1 fast-path full-hit
        predicate: it then mutates only issuer-private state (own LRU order,
        E->M flips of lines no peer holds, commutative counters), so any
        interleaving of invisible references from different frontends is
        bit-identical to the strict order. The walk is read-only (no LRU
        promotion, no counters) and chains the same issue-time arithmetic
        as :meth:`access_run`. Returns ``cap`` when the whole prefix up to
        ``cap`` qualifies, else the issue time of the first reference that
        might take the slow path (or the batch-completion time when the
        batch ends first — the frontend's next event can be no earlier).
        """
        t = batch.time
        if not self._fast_on or self.ff_active or "access" in self.__dict__:
            return t
        kbase = KERNEL_BASE
        ktable_get = self._kernel_table.get
        sp = self._spaces.get(pid)
        utable_get = sp.table.get if sp is not None else None
        pshift = self._page_shift
        pmask = self._page_mask
        shift = self._line_shift
        states_get = self._l1_states[cpu].get
        l1_lat = self._l1_latency
        kinds = batch.kinds
        addrs = batch.addrs
        sizes = batch.sizes
        pends = batch.pendings
        i = batch.cursor
        n = batch.n
        while True:
            vaddr = addrs[i]
            k = kinds[i]
            if vaddr >= kbase:
                ppn = ktable_get(vaddr >> pshift)
            elif utable_get is not None:
                ppn = utable_get(vaddr >> pshift)
            else:
                ppn = None
            if ppn is None:
                return t
            paddr = (ppn << pshift) | (vaddr & pmask)
            line = paddr >> shift
            last = (paddr + (sizes[i] or 1) - 1) >> shift
            nlines = 0
            while line <= last:
                st = states_get(line)
                if st is None or (k != 0 and st < _EXCLUSIVE):
                    return t
                line += 1
                nlines += 1
            lat = l1_lat * nlines
            if k == 2:
                lat += 4
            t += lat
            i += 1
            if i >= n:
                return t
            nt = t + pends[i]
            if nt >= cap:
                return cap
            t = nt

    def invisible_frontier(self, pid: int, cpu: int, batch, cap: int,
                           memo: dict) -> int:
        """Memoized :meth:`invisible_until`: resume the walk per filling.

        Speculative validation re-qualifies the same rival batches window
        after window with growing caps, so the O(refs) walk is amortised by
        resuming from where the previous one stopped. A memo entry
        ``memo[pid] = [serial, l1_version, kernel_version, space_version,
        i, t, final]`` is sound to resume because every mutation that can
        *revoke* an invisibility right bumps one of the versions
        (``Cache.version`` on fills/invalidations/state changes/restores,
        ``_Space.version`` on map/unmap) — mutations that only *add* rights
        merely leave the memoised bound too small, which can only cause an
        unnecessary rollback, never a wrong commit. Pending-delivery flags
        are the caller's job (checked fresh on every validation, never
        memoised). ``final`` is the filling's walk-independent stopping
        bound (first slow reference's issue time, or batch completion) —
        once known, later validations are O(1) until a version moves.
        """
        t = batch.time
        if not self._fast_on or self.ff_active or "access" in self.__dict__:
            return t
        l1v = self.l1s[cpu].version
        kv = self.vmm._kernel.version
        sp = self._spaces.get(pid)
        spv = sp.version if sp is not None else -1
        serial = batch.serial
        i = batch.cursor
        ent = memo.get(pid)
        if (ent is not None and ent[0] == serial and ent[1] == l1v
                and ent[2] == kv and ent[3] == spv and ent[4] >= i):
            final = ent[6]
            if final is not None:
                return final
            if ent[5] >= cap:
                return cap
            i = ent[4]
            t = ent[5]
        else:
            ent = [serial, l1v, kv, spv, i, t, None]
            memo[pid] = ent
        kbase = KERNEL_BASE
        ktable_get = self._kernel_table.get
        utable_get = sp.table.get if sp is not None else None
        pshift = self._page_shift
        pmask = self._page_mask
        shift = self._line_shift
        states_get = self._l1_states[cpu].get
        l1_lat = self._l1_latency
        kinds = batch.kinds
        addrs = batch.addrs
        sizes = batch.sizes
        pends = batch.pendings
        n = batch.n
        while True:
            vaddr = addrs[i]
            k = kinds[i]
            if vaddr >= kbase:
                ppn = ktable_get(vaddr >> pshift)
            elif utable_get is not None:
                ppn = utable_get(vaddr >> pshift)
            else:
                ppn = None
            if ppn is None:
                ent[6] = t
                return t
            paddr = (ppn << pshift) | (vaddr & pmask)
            line = paddr >> shift
            last = (paddr + (sizes[i] or 1) - 1) >> shift
            nlines = 0
            ok = True
            while line <= last:
                st = states_get(line)
                if st is None or (k != 0 and st < _EXCLUSIVE):
                    ok = False
                    break
                line += 1
                nlines += 1
            if not ok:
                ent[6] = t
                return t
            lat = l1_lat * nlines
            if k == 2:
                lat += 4
            t += lat
            i += 1
            if i >= n:
                ent[6] = t
                return t
            nt = t + pends[i]
            if nt >= cap:
                ent[4] = i
                ent[5] = nt
                return cap
            t = nt

    # ------------------------------------------------------------------

    def access_run(self, pid: int, cpu: int, kinds: list, addrs: list,
                   sizes: list, pends: list, i: int, n: int, t: int,
                   limit: int, horizon: int, ext: int = 0, clock=None,
                   serial=None, uhint=None):
        """Service a run of batched references in one loop.

        Replays exactly the sequence of :meth:`access` calls the engine's
        per-reference loop would make: the reference at ``i`` issues at
        ``t``; each later reference issues at the previous completion time
        plus its pending cycles, and is consumed only while that stays
        below ``horizon`` and fewer than ``limit`` references were served.
        ``clock`` (the engine's global scheduler) is advanced to each
        reference's issue time, exactly as the per-event loop does.
        Returns ``(consumed, i, t, added_latency, major_fault, ext_refs)``
        with ``i`` and ``t`` at the stop point (on a fault, the faulting
        reference's index and issue time).

        ``ext`` is the engine's conservative lookahead horizon: when it
        exceeds ``horizon``, references issuing in ``[horizon, ext)`` may
        also be consumed — but only while they stay *invisible* (resolve on
        the inlined L1 fast path); the first reference at or past
        ``horizon`` that would need the slow path cuts the run unconsumed,
        because slow-path effects at those cycles could be observed by the
        rival whose qualified window justified the extension. ``ext_refs``
        counts references consumed beyond the strict horizon.

        When a tracing tap has rebound ``access`` on the instance (e.g.
        :class:`~repro.traces.memtrace.MemTraceRecorder`), every reference
        is delegated through it so taps observe the full stream — and the
        extension is ignored (taps must see the strict interleaving);
        otherwise the L1 fast path is inlined here, which is the
        simulator's hottest loop.
        """
        if i >= n or limit <= 0:
            return 0, i, t, 0, None, 0
        access = self.access
        consumed = 0
        added = 0
        if "access" in self.__dict__ or not self._fast_on:
            # tapped (or filter disabled): preserve the per-reference call
            # stream through the instance attribute
            while True:
                k = kinds[i]
                if clock is not None and t > clock.now:
                    clock.now = t
                lat, major = access(pid, addrs[i], sizes[i], k != 0, cpu,
                                    t, atomic=(k == 2))
                consumed += 1
                if major is not None:
                    return consumed, i, t, added, major, 0
                added += lat
                t += lat
                i += 1
                if i >= n or consumed >= limit:
                    return consumed, i, t, added, None, 0
                nt = t + pends[i]
                if nt >= horizon:
                    return consumed, i, t, added, None, 0
                t = nt
        if self.ff_active:
            # sampled fast-forward window: functional warming, constant
            # calibrated latency, strict horizon (no lookahead extension)
            return self._ff_run(pid, cpu, kinds, addrs, sizes, pends,
                                i, n, t, limit, horizon, clock, uhint)
        if self._vec is not None:
            return self.access_run_vec(pid, cpu, kinds, addrs, sizes, pends,
                                       i, n, t, limit, horizon, ext, clock,
                                       serial, uhint)
        return self._access_run_scalar(pid, cpu, kinds, addrs, sizes, pends,
                                       i, n, t, limit, horizon, ext, clock)

    def access_run_vec(self, pid: int, cpu: int, kinds: list, addrs: list,
                       sizes: list, pends: list, i: int, n: int, t: int,
                       limit: int, horizon: int, ext: int = 0, clock=None,
                       serial=None, uhint=None):
        """Vectorized :meth:`access_run`: classify the run in one numpy
        membership test against the mirror state, retire the all-hit prefix
        in bulk array ops, and delegate anything past it to the scalar loop.
        Bit-identical to the scalar path (SimConfig.vectorized off).
        ``serial`` names the batch filling so a classification survives
        horizon-cut continuations of the same batch."""
        res = self._vec.run(pid, cpu, kinds, addrs, sizes, pends, i, n, t,
                            limit, horizon, ext, clock, serial, uhint)
        if res is not None:
            return res
        self.vec_fallbacks += 1
        return self._access_run_scalar(pid, cpu, kinds, addrs, sizes, pends,
                                       i, n, t, limit, horizon, ext, clock)

    def _access_run_scalar(self, pid: int, cpu: int, kinds: list,
                           addrs: list, sizes: list, pends: list, i: int,
                           n: int, t: int, limit: int, horizon: int,
                           ext: int = 0, clock=None):
        """The untapped scalar hot loop: locals bound once, fast path
        inlined; any reference the filter declines goes through the normal
        access() (which re-probes, counts the fallback, and walks the full
        path)."""
        access = self.access
        consumed = 0
        added = 0
        if ext < horizon:
            ext = horizon
        ext_refs = 0
        kbase = KERNEL_BASE
        ktable_get = self._kernel_table.get
        spaces_get = self._spaces.get
        # pid is constant for the run; the space's table dict is mutated in
        # place by the fallback path (minor faults), never replaced mid-run,
        # so its bound .get stays valid. A space that does not exist yet can
        # be created by a fallback access, so retry the lookup until found.
        sp = spaces_get(pid)
        utable_get = sp.table.get if sp is not None else None
        pshift = self._page_shift
        pmask = self._page_mask
        shift = self._line_shift
        states = self._l1_states[cpu]
        states_get = states.get
        sets = self._l1_sets[cpu]
        mask = self._l1_set_mask
        nsets = self._l1_nsets
        l1 = self.l1s[cpu]
        l2s = self._l2_states[cpu] if self._l2_states is not None else None
        l1_lat = self._l1_latency
        while True:
            vaddr = addrs[i]
            k = kinds[i]
            if clock is not None and t > clock.now:
                clock.now = t
            if vaddr >= kbase:
                ppn = ktable_get(vaddr >> pshift)
            elif utable_get is not None:
                ppn = utable_get(vaddr >> pshift)
            else:
                sp = spaces_get(pid)
                if sp is not None:
                    utable_get = sp.table.get
                    ppn = utable_get(vaddr >> pshift)
                else:
                    ppn = None
            lat = -1
            if ppn is not None:
                paddr = (ppn << pshift) | (vaddr & pmask)
                line = paddr >> shift
                size = sizes[i]
                last = (paddr + (size or 1) - 1) >> shift
                if line == last:
                    st = states_get(line)
                    if st is not None and (k == 0 or st >= 2):
                        l1.hits += 1
                        s = sets[line & mask if mask >= 0 else line % nsets]
                        if s[0] != line:
                            s.remove(line)
                            s.insert(0, line)
                        if k != 0 and st == 2:   # EXCLUSIVE -> MODIFIED
                            states[line] = 3
                            if l2s is not None and line in l2s:
                                l2s[line] = 3
                        self.accesses += 1
                        self.fast_hits += 1
                        lat = l1_lat + 4 if k == 2 else l1_lat
                else:
                    ok = True
                    sts = []
                    l = line
                    while l <= last:
                        st = states_get(l)
                        if st is None or (k != 0 and st < 2):
                            ok = False
                            break
                        sts.append(st)
                        l += 1
                    if ok:
                        nlines = last - line + 1
                        l1.hits += nlines
                        for j in range(nlines):
                            l = line + j
                            s = sets[l & mask if mask >= 0 else l % nsets]
                            if s[0] != l:
                                s.remove(l)
                                s.insert(0, l)
                            if k != 0 and sts[j] == 2:
                                states[l] = 3
                                if l2s is not None and l in l2s:
                                    l2s[l] = 3
                        self.accesses += 1
                        self.fast_hits += 1
                        lat = l1_lat * nlines
                        if k == 2:
                            lat += 4
            if lat < 0:
                if t >= horizon:
                    # lookahead zone: this reference would take the slow
                    # path, which rivals could observe — cut it unconsumed
                    # (its lead-in pending was folded into t; undo it so
                    # the engine re-parks the batch at the right time)
                    return (consumed, i, t - pends[i], added, None,
                            ext_refs)
                lat, major = access(pid, vaddr, sizes[i], k != 0, cpu, t,
                                    atomic=(k == 2))
                if major is not None:
                    return consumed + 1, i, t, added, major, ext_refs
            if t >= horizon:
                ext_refs += 1
            consumed += 1
            added += lat
            t += lat
            i += 1
            if i >= n or consumed >= limit:
                return consumed, i, t, added, None, ext_refs
            nt = t + pends[i]
            if nt >= ext:
                return consumed, i, t, added, None, ext_refs
            t = nt

    # ------------------------------------------------------------------
    # sampled-simulation fast-forward (see core/sampling.py + DESIGN.md)
    # ------------------------------------------------------------------

    def ff_begin(self, mean_latency: float) -> None:
        """Enter functional fast-forward: references warm the caches but
        are charged a constant ``mean_latency`` (fractional parts spread
        deterministically by an error accumulator)."""
        base = int(mean_latency)
        if base < 0:
            base = 0
        frac = mean_latency - base
        if frac < 0.0 or frac >= 1.0:
            frac = 0.0
        self._ff_base = base
        self._ff_frac = frac
        self._ff_err = 0.0
        self.ff_active = True

    def ff_end(self) -> None:
        """Leave fast-forward; detailed timing resumes on warmed caches."""
        self.ff_active = False

    def _ff_access(self, pid: int, vaddr: int, size: int, write: bool,
                   cpu: int, atomic: bool = False):
        """One reference in fast-forward: translate (faults still surface),
        warm L1/L2 contents, charge the calibrated constant latency. The
        coherence protocol is *not* consulted — its guards tolerate the
        resulting stale directory entries, and the next detail window
        re-establishes precise sharing state on miss."""
        paddr, major, minor = self.vmm.translate(pid, vaddr, write, cpu)
        if major is not None:
            return 0, major
        self.accesses += 1
        self.ff_refs += 1
        shift = self._line_shift
        line = paddr >> shift
        last = (paddr + (size or 1) - 1) >> shift
        l1 = self.l1s[cpu]
        states = self._l1_states[cpu]
        while line <= last:
            st = states.get(line)
            if st is None:
                l1.misses += 1
                self._ff_fill(cpu, line, 3 if write else 1)
            else:
                l1.hits += 1
                if write and st < 3:
                    # S/E -> M without the protocol: conservative for the
                    # mirror, tolerated by the directory guards
                    states[line] = 3
            line += 1
        lat = self._ff_base
        e = self._ff_err + self._ff_frac
        if e >= 1.0:
            e -= 1.0
            lat += 1
        self._ff_err = e
        if atomic:
            lat += 4
        return lat, None

    def _ff_fill(self, cpu: int, line: int, st: int) -> None:
        """Functional fill: install in L2 then L1 through the Cache methods
        (so versions bump and the vec mirror resyncs), keep inclusion by
        invalidating inner copies of outer victims, but send no
        writeback/forget — fast-forward models no protocol traffic."""
        l1 = self.l1s[cpu]
        if self.l2s is not None:
            l2 = self.l2s[cpu]
            st2 = l2._states.get(line)
            if st2 is None:
                l2.misses += 1
                victim = l2.insert(line, st)
                if victim is not None:
                    l1.invalidate(victim[0])
            else:
                l2.hits += 1
                if st > st2:
                    l2.set_state(line, st)
        victim = l1.insert(line, st)
        if victim is not None and victim[1] == _MODIFIED \
                and self.l2s is not None:
            self.l2s[cpu].set_state(victim[0], _MODIFIED)

    def _ff_run(self, pid: int, cpu: int, kinds: list, addrs: list,
                sizes: list, pends: list, i: int, n: int, t: int,
                limit: int, horizon: int, clock=None, uhint=None):
        """Batched fast-forward: translation + warming + the calibrated
        latency chain in array ops, falling back to :meth:`_ff_access` for
        short tails and references whose page is not yet translated (those
        may allocate or major-fault). Ignores the lookahead extension: ff
        timing is synthetic, so no invisibility argument applies.

        ``uhint = (kind, stride, work_per_line)`` is the producer's claim
        that the whole filling is one arithmetic stream (uniform kind and
        size == stride, addrs[i] = addrs[0] + stride*i, interior pendings
        == work_per_line — frontends void the hint on any ragged filling).
        It lets the hot window synthesize the address/latency arrays in
        closed form instead of converting the python lists."""
        np_ = _np
        consumed = 0
        added = 0
        pshift = self._page_shift
        kvpn = KERNEL_BASE >> pshift
        ktab = self._kernel_table
        while True:
            m = n - i
            rem = limit - consumed
            if rem < m:
                m = rem
            if np_ is None or m < 8:
                # scalar tail (same stream the per-event loop would make)
                while True:
                    k = kinds[i]
                    if clock is not None and t > clock.now:
                        clock.now = t
                    lat, major = self._ff_access(
                        pid, addrs[i], sizes[i], k != 0, cpu,
                        atomic=(k == 2))
                    consumed += 1
                    if major is not None:
                        return consumed, i, t, added, major, 0
                    added += lat
                    t += lat
                    i += 1
                    if i >= n or consumed >= limit:
                        return consumed, i, t, added, None, 0
                    nt = t + pends[i]
                    if nt >= horizon:
                        return consumed, i, t, added, None, 0
                    t = nt
            if uhint is not None:
                a = addrs[i] + uhint[1] * np_.arange(m, dtype=np_.int64)
            else:
                a = np_.array(addrs[i:i + m], dtype=np_.int64)
            vpn = a >> pshift
            uv, inv = np_.unique(vpn, return_inverse=True)
            sp = self._spaces.get(pid)
            utab = sp.table if sp is not None else None
            uppn = np_.empty(uv.shape[0], dtype=np_.int64)
            for j, v in enumerate(uv.tolist()):
                p = ktab.get(v) if v >= kvpn else (
                    utab.get(v) if utab is not None else None)
                uppn[j] = -1 if p is None else p
            ppn = uppn[inv]
            untrans = np_.flatnonzero(ppn < 0)
            seg = int(untrans[0]) if untrans.size else m
            if seg == 0:
                # first ref needs page allocation (or major-faults): take
                # the scalar path for it, then rescan the rest
                k = kinds[i]
                if clock is not None and t > clock.now:
                    clock.now = t
                lat, major = self._ff_access(pid, addrs[i], sizes[i],
                                             k != 0, cpu, atomic=(k == 2))
                consumed += 1
                if major is not None:
                    return consumed, i, t, added, major, 0
                added += lat
                t += lat
                i += 1
                if i >= n or consumed >= limit:
                    return consumed, i, t, added, None, 0
                nt = t + pends[i]
                if nt >= horizon:
                    return consumed, i, t, added, None, 0
                t = nt
                continue
            shift = self._line_shift
            paddr = (ppn[:seg] << pshift) | (a[:seg] & self._page_mask)
            line0 = paddr >> shift
            if uhint is not None:
                k0, stride, wpl = uhint
                line1 = (paddr + ((stride or 1) - 1)) >> shift
            else:
                k = np_.array(kinds[i:i + seg], dtype=np_.int64)
                sz = np_.array(sizes[i:i + seg], dtype=np_.int64)
                line1 = (paddr + np_.maximum(sz, 1) - 1) >> shift
            nl = line1 - line0 + 1
            lat = np_.full(seg, self._ff_base, dtype=np_.int64)
            fr = self._ff_frac
            if fr > 0.0:
                e0 = self._ff_err
                grid = np_.floor(e0 + fr * np_.arange(1, seg + 1))
                lat += np_.diff(np_.concatenate(([0.0], grid))
                                ).astype(np_.int64)
            if uhint is not None:
                if k0 == 2:
                    lat += 4
            else:
                lat[k == 2] += 4
            if seg > 1:
                if uhint is not None:
                    steps = lat[:-1] + wpl
                else:
                    steps = lat[:-1] + np_.array(pends[i + 1:i + seg],
                                                 dtype=np_.int64)
                issue = np_.empty(seg, dtype=np_.int64)
                issue[0] = 0
                np_.cumsum(steps, out=issue[1:])
                issue += t
            else:
                issue = np_.array([t], dtype=np_.int64)
            c = seg
            cut = int(np_.searchsorted(issue, horizon, side="left"))
            if cut < 1:
                cut = 1
            if cut < c:
                c = cut
            wr = (np_.full(c, k0 != 0, dtype=bool) if uhint is not None
                  else (k[:c] != 0))
            self._ff_warm(cpu, line0[:c], nl[:c], wr)
            self.accesses += c
            self.ff_refs += c
            if fr > 0.0:
                tot = self._ff_err + fr * c
                self._ff_err = tot - int(tot)
            last_issue = int(issue[c - 1])
            if clock is not None and last_issue > clock.now:
                clock.now = last_issue
            added += int(lat[:c].sum())
            t = last_issue + int(lat[c - 1])
            consumed += c
            i += c
            if i >= n or consumed >= limit:
                return consumed, i, t, added, None, 0
            nt = t + pends[i]
            if nt >= horizon:
                return consumed, i, t, added, None, 0
            t = nt

    def _ff_warm(self, cpu: int, line0, nl, wr) -> None:
        """Bulk functional warming: count one miss per newly-installed line
        and a hit per further touch (the scalar ff counting), upgrade
        write-touched lines to MODIFIED. Fills are inlined raw dict/list
        ops — the same installs/evictions/inclusion drops :meth:`_ff_fill`
        performs through the Cache methods, but with one L1 version bump
        covering the whole batch (legal because the vec mirror can only
        observe the caches between runs, never mid-warm)."""
        np_ = _np
        c = line0.shape[0]
        tot = int(nl.sum())
        if tot == c:
            seq = line0
            wrs = wr
        else:
            starts = np_.cumsum(nl) - nl
            offs = np_.arange(tot, dtype=np_.int64) - np_.repeat(starts, nl)
            seq = np_.repeat(line0, nl) + offs
            wrs = np_.repeat(wr, nl)
        uniq, idx = np_.unique(seq, return_inverse=True)
        wany = np_.zeros(uniq.shape[0], dtype=bool)
        np_.logical_or.at(wany, idx, wrs)
        counts = np_.bincount(idx)
        l1 = self.l1s[cpu]
        states = self._l1_states[cpu]
        states_get = states.get
        sets = self._l1_sets[cpu]
        mask = self._l1_set_mask
        nsets = self._l1_nsets
        assoc = l1.assoc
        l2 = self.l2s[cpu] if self.l2s is not None else None
        if l2 is not None:
            l2states = l2._states
            l2states_get = l2states.get
            l2sets = l2._sets
            l2assoc = l2.assoc
            l2n = len(l2sets)
            l2mask = l2n - 1 if (l2n & (l2n - 1)) == 0 else -1
        # counters accumulate in locals and flush once: attribute writes
        # per line would dominate the loop
        h1 = m1 = e1 = w1 = inv1 = 0
        h2 = m2 = e2 = w2 = 0
        filled = False
        for ln, w, cnt in zip(uniq.tolist(), wany.tolist(),
                              counts.tolist()):
            st = states_get(ln)
            if st is not None:
                h1 += cnt
                if w and st < 3:
                    states[ln] = 3
                continue
            m1 += 1
            h1 += cnt - 1
            filled = True
            stn = 3 if w else 1
            if l2 is not None:
                st2 = l2states_get(ln)
                if st2 is None:
                    m2 += 1
                    s2 = l2sets[ln & l2mask if l2mask >= 0 else ln % l2n]
                    if len(s2) >= l2assoc:
                        v = s2.pop()
                        vst = l2states.pop(v)
                        e2 += 1
                        if vst == 3:
                            w2 += 1
                        # inclusion: drop the inner copy of the L2 victim
                        if states.pop(v, None) is not None:
                            sets[v & mask if mask >= 0
                                 else v % nsets].remove(v)
                            inv1 += 1
                    s2.insert(0, ln)
                    l2states[ln] = stn
                else:
                    h2 += 1
                    if stn > st2:
                        l2states[ln] = stn
            s = sets[ln & mask if mask >= 0 else ln % nsets]
            if len(s) >= assoc:
                v = s.pop()
                vst = states.pop(v)
                e1 += 1
                if vst == 3:
                    w1 += 1
                    if l2 is not None and v in l2states:
                        l2states[v] = 3
            s.insert(0, ln)
            states[ln] = stn
        l1.hits += h1
        l1.misses += m1
        l1.evictions += e1
        l1.writebacks += w1
        l1.invalidations += inv1
        if l2 is not None:
            l2.hits += h2
            l2.misses += m2
            l2.evictions += e2
            l2.writebacks += w2
        if filled:
            l1.version += 1

    # ------------------------------------------------------------------

    def _access_line(self, line: int, write: bool, cpu: int, now: int) -> int:
        l1 = self.l1s[cpu]
        proto = self.protocol
        lat = l1.cfg.latency
        st = l1.lookup(line)
        if st is not None:
            if not write or st >= _EXCLUSIVE:
                if write and st == _EXCLUSIVE:
                    l1.set_state(line, _MODIFIED)
                    if self.l2s is not None:
                        self.l2s[cpu].set_state(line, _MODIFIED)
                return lat
            # write hit on SHARED: upgrade through the protocol
            up, newst = proto.write_miss(cpu, line, now)
            l1.set_state(line, newst)
            if self.l2s is not None:
                self.l2s[cpu].set_state(line, newst)
            return lat + up

        if self.l2s is not None:
            l2 = self.l2s[cpu]
            lat += l2.cfg.latency
            st2 = l2.lookup(line)
            if st2 is not None:
                if write and st2 < _EXCLUSIVE:
                    up, st2 = proto.write_miss(cpu, line, now + lat)
                    lat += up
                    l2.set_state(line, st2)
                elif write and st2 == _EXCLUSIVE:
                    st2 = _MODIFIED
                    l2.set_state(line, st2)
                self._fill_l1(cpu, line, st2)
                return lat
            # miss everywhere: coherence action
            if write:
                miss_lat, newst = proto.write_miss(cpu, line, now + lat)
            else:
                miss_lat, newst = proto.read_miss(cpu, line, now + lat)
            lat += miss_lat
            victim = l2.insert(line, newst)
            if victim is not None:
                self._handle_outer_victim(cpu, victim, now + lat)
            self._fill_l1(cpu, line, newst)
            return lat

        # simple hierarchy: L1 is the coherence point
        if write:
            miss_lat, newst = proto.write_miss(cpu, line, now + lat)
        else:
            miss_lat, newst = proto.read_miss(cpu, line, now + lat)
        lat += miss_lat
        victim = l1.insert(line, newst)
        if victim is not None:
            vline, vstate = victim
            if vstate == _MODIFIED:
                proto.writeback(cpu, vline, now + lat)
            else:
                proto.forget(cpu, vline)
        return lat

    def _fill_l1(self, cpu: int, line: int, state: int) -> None:
        l1 = self.l1s[cpu]
        victim = l1.insert(line, state)
        if victim is not None:
            vline, vstate = victim
            # L1 victim folds into L2 (inclusive hierarchy)
            if vstate == _MODIFIED and self.l2s is not None:
                self.l2s[cpu].set_state(vline, _MODIFIED)

    def _handle_outer_victim(self, cpu: int, victim: Tuple[int, int],
                             now: int) -> None:
        vline, vstate = victim
        l1 = self.l1s[cpu]
        # inclusion: the L1 copy must go too, merging dirtiness
        l1st = l1.invalidate(vline)
        if l1st == _MODIFIED:
            vstate = _MODIFIED
        if vstate == _MODIFIED:
            self.protocol.writeback(cpu, vline, now)
        else:
            self.protocol.forget(cpu, vline)

    # -- checkpoint/restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot of the whole memory system: every cache's
        sets/states, the coherence protocol's global line state and shared
        resources, the VMM's translation state, and the counters."""
        return {
            "accesses": self.accesses,
            "fast_hits": self.fast_hits,
            "fast_fallbacks": self.fast_fallbacks,
            "l1": [c.state_dict() for c in self.l1s],
            "l2": ([c.state_dict() for c in self.l2s]
                   if self.l2s is not None else None),
            "protocol": self.protocol.state_dict(),
            "vmm": self.vmm.state_dict(),
            # sampled fast-forward mode: a checkpoint taken inside an ff
            # window must resume *inside* it, same calibrated latency and
            # error-accumulator phase
            "ff": {
                "active": self.ff_active,
                "refs": self.ff_refs,
                "base": self._ff_base,
                "frac": self._ff_frac,
                "err": self._ff_err,
                "lat_slow": self.lat_slow,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot in place; all fast-path container references
        (``_kernel_table``, ``_spaces``, ``_l1_states`` …) stay valid
        because every component mutates its containers rather than
        replacing them."""
        self.accesses = state["accesses"]
        self.fast_hits = state["fast_hits"]
        self.fast_fallbacks = state["fast_fallbacks"]
        for c, cs in zip(self.l1s, state["l1"]):
            c.load_state(cs)
        if self.l2s is not None and state["l2"] is not None:
            for c, cs in zip(self.l2s, state["l2"]):
                c.load_state(cs)
        self.protocol.load_state(state["protocol"])
        self.vmm.load_state(state["vmm"])
        ff = state.get("ff")
        if ff is not None:
            self.ff_active = ff["active"]
            self.ff_refs = ff["refs"]
            self._ff_base = ff["base"]
            self._ff_frac = ff["frac"]
            self._ff_err = ff["err"]
            self.lat_slow = ff["lat_slow"]

    # -- reporting ------------------------------------------------------------

    def cache_summary(self) -> dict:
        """Hit/miss totals for every cache plus protocol counters."""
        out = {
            "l1": {c.name: (c.hits, c.misses) for c in self.l1s},
            "protocol": dict(self.protocol.counters),
            "minor_faults": self.vmm.minor_faults,
            "major_faults": self.vmm.major_faults,
        }
        if self.l2s is not None:
            out["l2"] = {c.name: (c.hits, c.misses) for c in self.l2s}
        return out
