"""The backend memory system: translation + cache hierarchy + coherence.

``MemorySystem.access`` is the single entry point the engine calls for every
memory-reference event. It translates the virtual address through the
issuing process's page table (or the kernel space for OS-server references),
walks the private cache hierarchy, and lets the coherence protocol service
misses and upgrades. The returned latency is what the backend replies to the
frontend's event port.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.config import SimConfig
from ..core.stats import StatsRegistry
from .cache import Cache, LineState
from .coherence import make_protocol
from .pagetable import MajorFault, Vmm


class MemorySystem:
    """Caches, interconnect and VM for one simulated machine."""

    def __init__(self, cfg: SimConfig, stats: StatsRegistry,
                 minor_fault_cycles: int = 400) -> None:
        cfg.backend.validate()
        self.cfg = cfg
        self.stats = stats
        be = cfg.backend
        mem = be.memory
        n = cfg.num_cpus

        self.vmm = Vmm(mem.num_nodes, mem.node_mem_bytes, mem.page_size,
                       mem.placement, n)
        self.minor_fault_cycles = minor_fault_cycles

        self.l1s: List[Cache] = [Cache(f"L1.{c}", be.l1) for c in range(n)]
        self.l2s: Optional[List[Cache]] = None
        if be.detail == "complex" and be.l2 is not None:
            self.l2s = [Cache(f"L2.{c}", be.l2) for c in range(n)]
        outer = self.l2s if self.l2s is not None else self.l1s
        inner: List[Optional[Cache]] = (
            list(self.l1s) if self.l2s is not None else [None] * n
        )

        self.protocol = make_protocol(
            be.coherence,
            dram_latency=mem.dram_latency,
            bus_latency=mem.bus_latency,
            dir_latency=mem.dir_latency,
            hop_latency=mem.hop_latency,
            num_nodes=mem.num_nodes,
            page_size=mem.page_size,
        )
        self.protocol.attach(outer, inner, self.vmm.cpu_node,
                             self.vmm.home_of_paddr, be.l1.line_size)
        self._outer = outer
        self._line_size = be.l1.line_size
        self._line_shift = be.l1.line_size.bit_length() - 1
        self.accesses = 0

    # ------------------------------------------------------------------

    def access(self, pid: int, vaddr: int, size: int, write: bool,
               cpu: int, now: int,
               atomic: bool = False) -> Tuple[int, Optional[MajorFault]]:
        """Service one reference; returns (latency, major_fault).

        On a major fault no timing progress is made — the engine must run
        the VM trap path and retry.
        """
        paddr, major, minor = self.vmm.translate(pid, vaddr, write, cpu)
        if major is not None:
            return 0, major
        self.accesses += 1
        latency = self.minor_fault_cycles if minor else 0
        if atomic:
            latency += 4   # bus-locked RMW pipeline cost

        first = paddr >> self._line_shift
        last = (paddr + max(size, 1) - 1) >> self._line_shift
        line = first
        while line <= last:
            latency += self._access_line(line, write, cpu, now + latency)
            line += 1
        return latency, None

    # ------------------------------------------------------------------

    def _access_line(self, line: int, write: bool, cpu: int, now: int) -> int:
        l1 = self.l1s[cpu]
        proto = self.protocol
        lat = l1.cfg.latency
        st = l1.lookup(line)
        if st is not None:
            if not write or st >= LineState.EXCLUSIVE:
                if write and st == LineState.EXCLUSIVE:
                    l1.set_state(line, LineState.MODIFIED)
                    if self.l2s is not None:
                        self.l2s[cpu].set_state(line, LineState.MODIFIED)
                return lat
            # write hit on SHARED: upgrade through the protocol
            up, newst = proto.write_miss(cpu, line, now)
            l1.set_state(line, newst)
            if self.l2s is not None:
                self.l2s[cpu].set_state(line, newst)
            return lat + up

        if self.l2s is not None:
            l2 = self.l2s[cpu]
            lat += l2.cfg.latency
            st2 = l2.lookup(line)
            if st2 is not None:
                if write and st2 < LineState.EXCLUSIVE:
                    up, st2 = proto.write_miss(cpu, line, now + lat)
                    lat += up
                    l2.set_state(line, st2)
                elif write and st2 == LineState.EXCLUSIVE:
                    st2 = LineState.MODIFIED
                    l2.set_state(line, st2)
                self._fill_l1(cpu, line, st2)
                return lat
            # miss everywhere: coherence action
            if write:
                miss_lat, newst = proto.write_miss(cpu, line, now + lat)
            else:
                miss_lat, newst = proto.read_miss(cpu, line, now + lat)
            lat += miss_lat
            victim = l2.insert(line, newst)
            if victim is not None:
                self._handle_outer_victim(cpu, victim, now + lat)
            self._fill_l1(cpu, line, newst)
            return lat

        # simple hierarchy: L1 is the coherence point
        if write:
            miss_lat, newst = proto.write_miss(cpu, line, now + lat)
        else:
            miss_lat, newst = proto.read_miss(cpu, line, now + lat)
        lat += miss_lat
        victim = l1.insert(line, newst)
        if victim is not None:
            vline, vstate = victim
            if vstate == LineState.MODIFIED:
                proto.writeback(cpu, vline, now + lat)
            else:
                proto.forget(cpu, vline)
        return lat

    def _fill_l1(self, cpu: int, line: int, state: int) -> None:
        l1 = self.l1s[cpu]
        victim = l1.insert(line, state)
        if victim is not None:
            vline, vstate = victim
            # L1 victim folds into L2 (inclusive hierarchy)
            if vstate == LineState.MODIFIED and self.l2s is not None:
                self.l2s[cpu].set_state(vline, LineState.MODIFIED)

    def _handle_outer_victim(self, cpu: int, victim: Tuple[int, int],
                             now: int) -> None:
        vline, vstate = victim
        l1 = self.l1s[cpu]
        # inclusion: the L1 copy must go too, merging dirtiness
        l1st = l1.invalidate(vline)
        if l1st == LineState.MODIFIED:
            vstate = LineState.MODIFIED
        if vstate == LineState.MODIFIED:
            self.protocol.writeback(cpu, vline, now)
        else:
            self.protocol.forget(cpu, vline)

    # -- reporting ------------------------------------------------------------

    def cache_summary(self) -> dict:
        """Hit/miss totals for every cache plus protocol counters."""
        out = {
            "l1": {c.name: (c.hits, c.misses) for c in self.l1s},
            "protocol": dict(self.protocol.counters),
            "minor_faults": self.vmm.minor_faults,
            "major_faults": self.vmm.major_faults,
        }
        if self.l2s is not None:
            out["l2"] = {c.name: (c.hits, c.misses) for c in self.l2s}
        return out
