"""Vectorized mirror of the L1 fast-path lookup state.

The scalar fast path (hierarchy.access_run) classifies and retires batched
references one dict probe at a time. This module keeps a numpy mirror of the
same lookup state — a sorted array of each CPU's resident L1 lines (with
MESI states) and a sorted merged snapshot of each pid's page tables — so a
whole EventBatch run is classified in a handful of vectorized membership
tests, and the leading all-hit prefix retires in bulk array ops (counters,
E->M upgrades, LRU replay). Anything else — a miss, an upgrade from SHARED,
an untranslated page, a reference spanning more than two lines — ends the
prefix and is delegated to the unchanged scalar loop, so results are
bit-identical with the mirror on or off.

Mirror-state invariants (see DESIGN.md, "Vectorized mirror state"):

* The dicts are authoritative; the mirror is a cache of them keyed on
  ``Cache.version`` / ``_Space.version`` counters bumped by every mutation
  that could make the mirror *falsely permissive* (fills, invalidations,
  downgrades, restores, page-table changes).
* Mutations that leave the fast-path predicate invariant — LRU reordering
  and direct E->M upgrades — do not bump versions; the mirror may then lag
  but only in the *conservative* direction (a stale EXCLUSIVE where the
  dict says MODIFIED still accepts, and accept is correct for both).
* A stale mirror therefore only ever causes false *declines*, which fall
  back to the scalar path — never false accepts.

Classification is cached per batch filling (``EventBatch.serial``) together
with the version triple it was computed under: a batch cut at the horizon
re-enters ``run()`` once per continuation, and as long as no version moved
the continuation reuses the cached verdicts, so the array work is paid once
per batch instead of once per cut. Anything that could change a verdict
(fill, invalidation, downgrade, unmap, restore) bumps a version and misses
the cache; in-place E->M flips only widen acceptance and pend zeroing on the
fault path only affects the retried reference's own lead-in, which the
issue-time chain never reads.

Resync rebuilds the affected arrays from the dicts whenever the versions
move; a rebuild immediately followed by an accepted run pays for itself.
What must not thrash is the *unproductive* case — classify (and possibly
rebuild) work on runs whose first reference is not an L1 fast hit. Each
consecutive unproductive entry backs the mirror off exponentially
(``run()`` goes straight to the scalar loop for ``2^failures`` entries,
capped); one accepted run resets the backoff. The schedule depends only on
the simulated reference stream, keeping runs deterministic.
"""

from __future__ import annotations

import numpy as np

#: runs shorter than this go scalar: the fixed cost of the array classify
#: only amortises over a reasonable prefix
MIN_RUN = 8

#: consecutive unproductive entries (classified but declined) tolerated
#: before backing off
FAIL_TOLERANCE = 2

#: cooldown cap (entries skipped) for the exponential backoff
COOL_CAP = 256

_SENTINEL = np.iinfo(np.int64).max


class VecState:
    """Numpy mirror + the vectorized prefix of ``access_run``."""

    def __init__(self, ms) -> None:
        self.ms = ms
        n_cpus = len(ms.l1s)
        #: per-CPU sorted array of resident line addresses (+inf sentinel)
        self._lines = [None] * n_cpus
        #: per-CPU MESI states aligned with ``_lines``
        self._lsts = [None] * n_cpus
        self._cache_versions = [-1] * n_cpus
        #: pid -> (kernel_version, space_version, vpns, pbase): one merged
        #: sorted translation snapshot per pid (user vpns sit strictly below
        #: kernel vpns — USER_LIMIT — so concatenation stays sorted), with a
        #: +inf sentinel so lookups need no bounds clipping
        self._snaps: dict = {}
        #: classification cache: key + per-batch arrays (see _classify)
        self._ck = None
        self._cd = None
        #: hinted-stream classification cache: normalized-anchor key ->
        #: cache-data dict. Hinted fillings are fully described by
        #: (kind, stride, lead-in, anchor, length), so a warm re-scan of
        #: the same buffer reuses its classification across batch serials
        #: as long as no version moved (versions are part of the key).
        self._cdm: dict = {}
        #: reusable arange for rebuilding hinted address streams
        self._ar = None
        self._fail = 0
        self._cool = 0
        #: decline reasons (observability only; see harness vec_summary)
        self.declines = {"short": 0, "cool": 0, "first_miss": 0}

    # -- resync ------------------------------------------------------------

    def _rebuild_cache(self, cpu: int) -> None:
        ms = self.ms
        l1 = ms.l1s[cpu]
        st_dict = l1._states
        n = len(st_dict)
        lines = np.empty(n + 1, dtype=np.int64)
        lsts = np.zeros(n + 1, dtype=np.int8)
        lines[n] = _SENTINEL
        if n:
            keys = np.fromiter(st_dict.keys(), dtype=np.int64, count=n)
            vals = np.fromiter(st_dict.values(), dtype=np.int8, count=n)
            order = np.argsort(keys)
            lines[:n] = keys[order]
            lsts[:n] = vals[order]
        self._lines[cpu] = lines
        self._lsts[cpu] = lsts
        self._cache_versions[cpu] = l1.version
        ms.vec_rebuilds += 1

    def on_rollback(self, cpu: int) -> None:
        """Invalidate the mirror for ``cpu`` after a speculative rollback.

        The caller restored the authoritative L1 dicts in place and bumped
        ``Cache.version``; the bump alone forces a lazy resync, but the
        rolled-back window may have flipped states inside ``_lsts[cpu]``
        *in place*, so drop the mirror eagerly rather than keep a stale
        array alive, and drop classification entries keyed against the
        dead version so the bounded caches are not wasted on them.
        """
        self._cache_versions[cpu] = -1
        self._lines[cpu] = None
        self._lsts[cpu] = None
        self._ck = None
        self._cd = None
        self._cdm.clear()

    def _snap_tables(self, pid, ker, sp, uver):
        """(Re)build the merged translation snapshot for ``pid``."""
        pshift = self.ms._page_shift
        parts_v = []
        parts_p = []
        tables = (sp.table, ker.table) if sp is not None else (ker.table,)
        for table in tables:
            tn = len(table)
            if tn:
                v = np.fromiter(table.keys(), dtype=np.int64, count=tn)
                p = np.fromiter(table.values(), dtype=np.int64, count=tn)
                o = np.argsort(v)
                parts_v.append(v[o])
                parts_p.append(p[o])
        parts_v.append(np.array([_SENTINEL], dtype=np.int64))
        parts_p.append(np.zeros(1, dtype=np.int64))
        snap = (ker.version, uver, np.concatenate(parts_v),
                np.concatenate(parts_p) << pshift)
        self._snaps[pid] = snap
        return snap

    # -- classification ----------------------------------------------------

    def _arange(self, m):
        """Shared int64 arange, grown on demand (hinted streams only)."""
        ar = self._ar
        if ar is None or ar.shape[0] < m:
            ar = np.arange(max(m, 1024), dtype=np.int64)
            self._ar = ar
        return ar[:m]

    def _classify(self, pid, cpu, kinds, addrs, sizes, pends, base, n,
                  snap, key, uhint=None):
        """Classify references [base, n) against the mirror; cache under
        ``key``. Returns the cache-data dict (see field comments).

        ``uhint`` is the producer's ``(kind, stride, work_per_ref)`` claim
        that the whole filling is one arithmetic reference stream (see
        EventBatch.uhint): the address array is then rebuilt from three
        integers instead of converting the batch lists, kinds and sizes are
        compile-time constants, and — when each reference stays within one
        line — the issue-time chain is closed-form (constant latency,
        constant lead-in), so cut decisions need no arrays at all."""
        ms = self.ms
        mfull = n - base
        pshift = ms._page_shift
        lsh = ms._line_shift
        B = ms._l1_latency
        if uhint is not None:
            k0, stride, wpl = uhint
            a = addrs[base] + stride * self._arange(mfull)
            all_read = k0 == 0
            atomic = k0 == 2
        else:
            a = np.array(addrs[base:n], dtype=np.int64)
            sz = np.array(sizes[base:n], dtype=np.int64)
            all_read = not any(kinds[base:n])
        vpn = a >> pshift
        pos = np.searchsorted(snap[2], vpn)
        okt = snap[2][pos] == vpn
        # physical address from the start-page translation only — same
        # page-straddle semantics as the scalar walk; where okt is false
        # the value is garbage but harmless (membership tests just fail)
        pa = snap[3][pos] + (a & ms._page_mask)
        line0 = pa >> lsh
        if uhint is not None:
            line1 = (pa + (stride - 1)) >> lsh
        else:
            line1 = (pa + sz - 1) >> lsh
        lines = self._lines[cpu]
        lsts = self._lsts[cpu]
        pos0 = np.searchsorted(lines, line0)
        ok = okt & (lines[pos0] == line0)
        two_any = bool((line1 != line0).any())
        #: hinted non-read stream: every reference writes (no rd array)
        all_write = uhint is not None and not all_read
        rd = st0 = st1 = pos1 = nl = None
        if two_any:
            nl = line1 - line0 + 1
            pos1 = np.searchsorted(lines, line1)
            ok &= (nl <= 2) & (lines[pos1] == line1)
        if not all_read:
            st0 = lsts[pos0]
            if all_write:
                ok &= st0 >= 2
            else:
                k = np.array(kinds[base:n], dtype=np.int64)
                rd = k == 0
                ok &= rd | (st0 >= 2)
            if two_any:
                st1 = lsts[pos1]
                ok &= (st1 >= 2) if all_write else (rd | (st1 >= 2))
        # per-reference latency + relative issue-time prefix. ``uniform``
        # (constant latency AND constant lead-in) needs no arrays at all:
        # issue times are t + step * x, computed in plain ints.
        lat = prefix = None
        step = latc = 0
        if uhint is not None:
            # the hint pins kind and lead-in, so single-line streams are
            # uniform even with nonzero per-reference work
            uniform = not two_any
            if uniform:
                latc = B + (4 if atomic else 0)
                step = latc + wpl
        else:
            uniform = (all_read and not two_any
                       and not any(pends[base + 1:n]))
            if uniform:
                latc = step = B
        if not uniform:
            if two_any:
                lat = nl * B
            else:
                lat = np.full(mfull, B, dtype=np.int64)
            if not all_read:
                if all_write:
                    if atomic:
                        lat += 4
                else:
                    atom = k == 2
                    if atom.any():
                        lat[atom] += 4
            prefix = np.empty(mfull, dtype=np.int64)
            prefix[0] = 0
            if mfull > 1:
                if uhint is not None:
                    np.cumsum(lat[:-1] + wpl, out=prefix[1:])
                else:
                    np.cumsum(lat[:-1] + np.array(pends[base + 1:n],
                                                  dtype=np.int64),
                              out=prefix[1:])
        cd = {
            "base": base, "end": n, "ok": ok, "line0": line0,
            "two_any": two_any, "all_read": all_read,
            "all_write": all_write, "uniform": uniform,
            "step": step, "latc": latc,
            "nl": nl, "rd": rd, "st0": st0, "st1": st1,
            "pos0": pos0, "pos1": pos1, "line1": line1,
            "lat": lat, "prefix": prefix,
        }
        self._ck = key
        self._cd = cd
        return cd

    # -- the vectorized run ------------------------------------------------

    def run(self, pid, cpu, kinds, addrs, sizes, pends, i, n, t,
            limit, horizon, ext, clock, serial=None, uhint=None):
        """Vectorized prefix of one access_run; returns the final
        ``(consumed, i, t, added, major, ext_refs)`` tuple, or None to
        decline the whole run (cooldown / too short / first ref not an
        L1 fast hit) — the caller then runs the scalar loop unchanged."""
        ms = self.ms
        m = n - i
        if limit < m:
            m = limit
        if m < MIN_RUN:
            self.declines["short"] += 1
            return None
        if self._cool > 0:
            self._cool -= 1
            self.declines["cool"] += 1
            return None

        # resync whatever moved: the issuer's L1 mirror and the pid's
        # merged translation snapshot are keyed on version counters
        l1 = ms.l1s[cpu]
        ker = ms.vmm._kernel
        sp = ms._spaces.get(pid)
        uver = sp.version if sp is not None else -1
        if l1.version != self._cache_versions[cpu]:
            self._rebuild_cache(cpu)
        snap = self._snaps.get(pid)
        if snap is None or snap[0] != ker.version or snap[1] != uver:
            snap = self._snap_tables(pid, ker, sp, uver)

        if uhint is not None:
            # hinted fillings are position-independent: key on the stream's
            # virtual index-0 address so identical re-fillings (warm passes
            # over the same buffer) hit across batch serials
            key = (pid, cpu, l1.version, ker.version, uver, uhint,
                   addrs[i] - uhint[1] * i, n)
            cd = self._cdm.get(key)
            if cd is None or not (cd["base"] <= i < cd["end"]):
                if len(self._cdm) > 64:
                    self._cdm.clear()
                cd = self._classify(pid, cpu, kinds, addrs, sizes, pends,
                                    i, n, snap, key, uhint)
                self._cdm[key] = cd
        else:
            key = (serial, pid, cpu, l1.version, ker.version, uver)
            cd = self._cd
            if (serial is None or key != self._ck or cd is None
                    or not (cd["base"] <= i < cd["end"])
                    or cd["end"] != n):
                cd = self._classify(pid, cpu, kinds, addrs, sizes, pends,
                                    i, n, snap, key, uhint)
        o = i - cd["base"]

        ok = cd["ok"]
        seg = ok[o:o + m]
        j_stop = int(seg.argmin())
        if seg[j_stop]:
            j_stop = m          # no False anywhere: whole run is a hit
        elif j_stop == 0:
            self.declines["first_miss"] += 1
            self._fail += 1
            if self._fail > FAIL_TOLERANCE:
                self._cool = min(1 << self._fail, COOL_CAP)
            return None

        if ext < horizon:
            ext = horizon

        # -- lookahead cut + issue-time bookkeeping ------------------------
        if cd["uniform"]:
            # issue[x] = t + step*x: cuts resolve in plain integer math
            step = cd["step"]
            latc = cd["latc"]
            c = j_stop
            if t + step * (c - 1) >= ext:
                c = -(-(ext - t) // step)   # ceil: refs with issue < ext
                if c < 1:
                    c = 1
            if t + step * (c - 1) < horizon:
                ext_refs = 0
            else:
                vis = -(-(horizon - t) // step)
                if vis < 0:
                    vis = 0
                ext_refs = c - vis
            last_issue = t + step * (c - 1)
            comp = last_issue + latc
            added = latc * c
            tot = c
        else:
            prefix = cd["prefix"]
            issue = prefix[o:o + j_stop] + (t - int(prefix[o]))
            c = j_stop
            cut = int(np.searchsorted(issue, ext, side="left"))
            if cut < 1:
                cut = 1
            if cut < c:
                c = cut
            ext_refs = c - int(np.searchsorted(issue[:c], horizon,
                                               side="left"))
            lat = cd["lat"]
            last_issue = int(issue[c - 1])
            comp = last_issue + int(lat[o + c - 1])
            added = int(lat[o:o + c].sum())
            tot = (int(cd["nl"][o:o + c].sum()) if cd["two_any"] else c)

        # -- bulk retirement ----------------------------------------------
        l1.hits += tot
        ms.accesses += c
        ms.fast_hits += c
        ms.vec_batches += 1
        ms.vec_refs += c
        self._fail = 0

        line0 = cd["line0"]
        # E->M upgrades (the only state change the fast path makes): flip
        # the dicts, the inclusive L2 mirror and the array mirror; repeated
        # flips of one line within the batch are idempotent
        if not cd["all_read"]:
            wr = None
            do_flip = cd["all_write"]
            if not do_flip:
                rdc = cd["rd"][o:o + c]
                if not rdc.all():
                    wr = ~rdc
                    do_flip = True
            if do_flip:
                lsts = self._lsts[cpu]
                states = ms._l1_states[cpu]
                l2s = (ms._l2_states[cpu]
                       if ms._l2_states is not None else None)
                flip0 = cd["st0"][o:o + c] == 2
                if wr is not None:
                    flip0 &= wr
                if flip0.any():
                    lsts[cd["pos0"][o:o + c][flip0]] = 3
                    for ln in line0[o:o + c][flip0].tolist():
                        states[ln] = 3
                        if l2s is not None and ln in l2s:
                            l2s[ln] = 3
                if cd["two_any"]:
                    sl = slice(o, o + c)
                    flip1 = (cd["nl"][sl] == 2) & (cd["st1"][sl] == 2)
                    if wr is not None:
                        flip1 &= wr
                    if flip1.any():
                        lsts[cd["pos1"][sl][flip1]] = 3
                        for ln in cd["line1"][sl][flip1].tolist():
                            states[ln] = 3
                            if l2s is not None and ln in l2s:
                                l2s[ln] = 3

        # LRU replay: final order = touched lines, most-recent-touch first,
        # then untouched lines in their prior order — exactly what the
        # scalar per-touch move-to-front produces. Dedupe keeps the *last*
        # occurrence of each line (stable sort groups duplicates; the last
        # element of each group has the highest original index).
        if cd["two_any"]:
            nlc = cd["nl"][o:o + c]
            starts = np.cumsum(nlc) - nlc
            offs = (np.arange(int(nlc.sum()), dtype=np.int64)
                    - np.repeat(starts, nlc))
            seq = np.repeat(line0[o:o + c], nlc) + offs
        else:
            seq = line0[o:o + c]
        nseq = seq.shape[0]
        if nseq > 1 and bool((seq[1:] >= seq[:-1]).all()):
            # nondecreasing touch sequence (the common case: ascending
            # scans): duplicates are consecutive, so keep each group's
            # last element and reverse — no sort needed
            flag = np.empty(nseq, dtype=bool)
            np.not_equal(seq[1:], seq[:-1], out=flag[:-1])
            flag[-1] = True
            recent = seq[flag][::-1]
        else:
            order = np.argsort(seq, kind="stable")
            ss = seq[order]
            flag = np.empty(nseq, dtype=bool)
            if nseq > 1:
                np.not_equal(ss[1:], ss[:-1], out=flag[:-1])
            flag[-1] = True
            recent = ss[flag][np.argsort(order[flag])[::-1]]
        sets = ms._l1_sets[cpu]
        mask = ms._l1_set_mask
        nsets = ms._l1_nsets
        fronts: dict = {}
        for ln in recent.tolist():
            si = ln & mask if mask >= 0 else ln % nsets
            f = fronts.get(si)
            if f is None:
                fronts[si] = [ln]
            else:
                f.append(ln)
        for si, front in fronts.items():
            s = sets[si]
            if len(front) == 1:
                ln = front[0]
                if s[0] != ln:
                    s.remove(ln)
                    s.insert(0, ln)
            elif s[:len(front)] != front:
                members = set(front)
                s[:] = front + [x for x in s if x not in members]

        if clock is not None and last_issue > clock.now:
            clock.now = last_issue

        if c >= m or c < j_stop:
            # run complete / budget reached, or cut by the lookahead bound
            return c, i + c, comp, added, None, ext_refs
        # prefix ended at a reference the mirror declined: hand the rest to
        # the scalar loop (which re-probes the authoritative dicts — a
        # conservative mirror decline may still be a scalar fast hit)
        nt = comp + pends[i + c]
        if nt >= ext:
            return c, i + c, comp, added, None, ext_refs
        c2, i2, t2, a2, major2, er2 = ms._access_run_scalar(
            pid, cpu, kinds, addrs, sizes, pends, i + c, n, nt,
            limit - c, horizon, ext, clock)
        return c + c2, i2, t2, added + a2, major2, ext_refs + er2
