"""Scientific kernels over a shared array segment.

Each kernel spawns P worker processes that attach one shared segment
(shmget/shmat — the §3.3.1 path) holding the matrix/grid/keys, then iterate
with barriers. Memory reference streams follow the real algorithms' shapes:
LU touches shrinking trailing submatrices, Ocean sweeps a 5-point stencil,
radix makes two passes (histogram, permute) with all-to-all writes.

FP work per element is charged with ``compute``; element addresses are laid
out row-major with 8-byte doubles, so cache lines, NUMA placement and
coherence behave exactly as they would for the real data.
"""

from __future__ import annotations

from typing import Callable, List

from ...core.engine import Engine
from ...core.frontend import Proc, SimProcess

#: shared segment base for kernel data
ARRAY_BASE = 0xB400_0000
_KERNEL_SHM_KEY = 0x51A5

#: barrier id namespace
_BAR = 90


def _elem(base: int, n: int, i: int, j: int) -> int:
    """Address of A[i][j] in a row-major n×n double matrix."""
    return base + (i * n + j) * 8


def lu_workers(nproc: int, n: int = 64, block: int = 8):
    """Blocked LU: worker ``p`` owns interleaved block-columns. Returns a
    list of app factories."""
    if n % block:
        raise ValueError("n must be a multiple of block")
    nblocks = n // block

    def make(p: int) -> Callable[[Proc], object]:
        def body(proc: Proc):
            r = yield from proc.call("shmget", _KERNEL_SHM_KEY, n * n * 8)
            r = yield from proc.call("shmat", r.value, ARRAY_BASE)
            base = r.value
            for k in range(nblocks):
                # factor diagonal block (owner only)
                if k % nproc == p:
                    for i in range(block):
                        for j in range(block):
                            yield from proc.load(
                                _elem(base, n, k * block + i, k * block + j), 8)
                        proc.compute(3 * block)
                        yield from proc.store(
                            _elem(base, n, k * block + i, k * block), 8)
                yield from proc.barrier(_BAR, nproc)
                # update trailing blocks this worker owns
                for jb in range(k + 1, nblocks):
                    if jb % nproc != p:
                        continue
                    for ib in range(k + 1, nblocks):
                        for i in range(block):
                            yield from proc.load(
                                _elem(base, n, ib * block + i, k * block), 8)
                            yield from proc.load(
                                _elem(base, n, k * block, jb * block + i), 8)
                            proc.compute(3 * block)
                            yield from proc.store(
                                _elem(base, n, ib * block + i,
                                      jb * block + i % block), 8)
                yield from proc.barrier(_BAR, nproc)
            yield from proc.call("shmdt", ARRAY_BASE)
            yield from proc.exit(0)
        return body

    return [make(p) for p in range(nproc)]


def ocean_workers(nproc: int, n: int = 64, iters: int = 4):
    """Ocean-style red-black stencil: each worker sweeps a band of rows."""
    def make(p: int) -> Callable[[Proc], object]:
        def body(proc: Proc):
            r = yield from proc.call("shmget", _KERNEL_SHM_KEY + 1, n * n * 8)
            r = yield from proc.call("shmat", r.value, ARRAY_BASE + 0x100_0000)
            base = r.value
            lo = 1 + (p * (n - 2)) // nproc
            hi = 1 + ((p + 1) * (n - 2)) // nproc
            for _it in range(iters):
                for color in (0, 1):
                    for i in range(lo, hi):
                        for j in range(1 + (i + color) % 2, n - 1, 2):
                            yield from proc.load(_elem(base, n, i - 1, j), 8)
                            yield from proc.load(_elem(base, n, i + 1, j), 8)
                            yield from proc.load(_elem(base, n, i, j - 1), 8)
                            yield from proc.load(_elem(base, n, i, j + 1), 8)
                            proc.compute(12)   # 4 FP adds + mul
                            yield from proc.store(_elem(base, n, i, j), 8)
                    yield from proc.barrier(_BAR + 1, nproc)
            yield from proc.call("shmdt", ARRAY_BASE + 0x100_0000)
            yield from proc.exit(0)
        return body

    return [make(p) for p in range(nproc)]


def radix_workers(nproc: int, nkeys: int = 4096, radix_bits: int = 8):
    """Parallel radix sort: per-pass local histogram, prefix merge at a
    barrier, then all-to-all permutation writes (heavy sharing)."""
    buckets = 1 << radix_bits

    def make(p: int) -> Callable[[Proc], object]:
        def body(proc: Proc):
            r = yield from proc.call("shmget", _KERNEL_SHM_KEY + 2,
                                     nkeys * 8 * 2 + buckets * nproc * 8)
            r = yield from proc.call("shmat", r.value, ARRAY_BASE + 0x200_0000)
            base = r.value
            keys = base
            out = base + nkeys * 8
            hist = base + nkeys * 16
            lo = (p * nkeys) // nproc
            hi = ((p + 1) * nkeys) // nproc
            for _pass in range(2):
                # local histogram
                for i in range(lo, hi):
                    yield from proc.load(keys + i * 8, 8)
                    proc.compute(4)
                    yield from proc.store(
                        hist + (p * buckets + (i * 2654435761 % buckets)) * 8, 8)
                yield from proc.barrier(_BAR + 2, nproc)
                # prefix-sum merge: read all workers' histograms
                for b in range(0, buckets, max(1, buckets // 32)):
                    for q in range(nproc):
                        yield from proc.load(hist + (q * buckets + b) * 8, 8)
                    proc.compute(2 * nproc)
                yield from proc.barrier(_BAR + 2, nproc)
                # permute: scattered writes into the output array
                for i in range(lo, hi):
                    yield from proc.load(keys + i * 8, 8)
                    dest = (i * 2654435761) % nkeys
                    yield from proc.store(out + dest * 8, 8)
                yield from proc.barrier(_BAR + 2, nproc)
                keys, out = out, keys
            yield from proc.call("shmdt", ARRAY_BASE + 0x200_0000)
            yield from proc.exit(0)
        return body

    return [make(p) for p in range(nproc)]


def spawn_kernel(engine: Engine, kind: str, nproc: int,
                 **kw) -> List[SimProcess]:
    """Spawn one of the kernels: kind in {"lu", "ocean", "radix"}."""
    makers = {"lu": lu_workers, "ocean": ocean_workers,
              "radix": radix_workers}
    if kind not in makers:
        raise ValueError(f"unknown kernel {kind!r}")
    bodies = makers[kind](nproc, **kw)
    return [engine.spawn(f"{kind}-{p}", body)
            for p, body in enumerate(bodies)]
