"""SPLASH-2-style scientific kernels.

The paper's motivation: scientific applications "spend very little time in
the operating systems", so simulators that ignore the OS are fine for them —
and wrong for commercial workloads. These kernels provide that contrast
(near-zero OS time) and exercise the shared-memory/barrier machinery:
blocked LU decomposition, an Ocean-style stencil relaxation, and a parallel
radix sort.
"""

from .kernels import lu_workers, ocean_workers, radix_workers, spawn_kernel

__all__ = ["lu_workers", "ocean_workers", "radix_workers", "spawn_kernel"]
