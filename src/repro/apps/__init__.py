"""Workloads ported to COMPASS (paper §4):

* :mod:`repro.apps.minidb` — a process-model mini database server (the DB2
  stand-in) with TPC-C-like OLTP and TPC-D-like decision-support workloads;
* :mod:`repro.apps.webserver` — a pre-fork web server (the Apache stand-in)
  driven by a SPECWeb96-style file set, workload generator and trace player;
* :mod:`repro.apps.splash` — SPLASH-2-style scientific kernels (LU, ocean
  stencil, radix sort) for the scientific/commercial contrast the paper's
  introduction draws.
"""
