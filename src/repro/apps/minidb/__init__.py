"""minidb — a process-model mini database server (the DB2 stand-in, §4.1).

Architecture follows the DB2-for-common-servers shape the paper ports:
multiple *agent* processes, one per client connection, sharing a buffer pool
in a shared-memory segment (shmget/shmat), a lock table, and a write-ahead
log; data lives in table files accessed through kreadv/kwritev (OLTP) or
mmap (decision support). Workloads:

* :mod:`oltp` — TPC-C-like transaction mix (NewOrder/Payment);
* :mod:`dss` — TPC-D-like decision-support queries (scan-aggregate and
  join), sequential I/O and mmap-heavy.
"""

from .layout import Record, Schema, Page
from .catalog import tpcc_catalog, tpcd_catalog, load_table
from .bufferpool import BufferPool
from .wal import WriteAheadLog
from .db import MiniDb
from .oltp import TpccDriver
from .dss import (TpcdDriver, q1_scan_raw, q1_scan_raw_fast,
                  q3_join_raw)

__all__ = [
    "Record",
    "Schema",
    "Page",
    "tpcc_catalog",
    "tpcd_catalog",
    "load_table",
    "BufferPool",
    "WriteAheadLog",
    "MiniDb",
    "TpccDriver",
    "TpcdDriver",
    "q1_scan_raw",
    "q1_scan_raw_fast",
    "q3_join_raw",
]
