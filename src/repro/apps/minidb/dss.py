"""TPC-D-like decision-support workload (the paper's TPCD/DB2).

Two queries:

* **Q1-like** — scan-aggregate over lineitem grouped by return flag
  (quantity/price sums, row counts), partitioned across agents with a
  barrier before the merge. Two I/O strategies, matching the paper's TPCD
  profile: ``io="read"`` streams pages through kreadv + the buffer pool;
  ``io="mmap"`` maps the table and lets major faults pull pages in, then
  msync/munmap — the mmap/munmap/msync signature of Table 1.
* **Q3-lite** — a two-table hash join: build on filtered customers, probe
  orders, aggregate total price per market segment.

The raw (native) versions compute the same answers directly from the file
bytes; simulated and raw results must match exactly — that equivalence is
what "execution-driven" means.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.engine import Engine
from ...core.frontend import Proc, SimProcess
from ...osim.filesystem import FileSystem
from .catalog import Catalog, LINEITEM, ORDERS_D, CUSTOMER_D
from .db import MiniDb
from .layout import PAGE_SIZE, Page, Record

#: barrier ids
_SCAN_BARRIER = 41
#: scratch buffer for aggregates in each agent's space
_AGG_BUF = 0x0700_0000


def _agg_update(agg: Dict, rec: Dict) -> None:
    flag = rec["l_returnflag"]
    a = agg.setdefault(flag, [0, 0, 0])
    a[0] += rec["l_quantity"]
    a[1] += rec["l_extendedprice"]
    a[2] += 1


class TpcdDriver:
    """Parallel decision-support query execution."""

    def __init__(self, db: MiniDb, nagents: int = 4, io: str = "read",
                 rows_work: int = 1400, scan_stride: int = 64,
                 passes: int = 1) -> None:
        """``rows_work``: user-mode cycles per 64-byte row for predicate
        evaluation + aggregation — DB2's user-dominant TPC-D profile.
        ``scan_stride``: bytes per scan reference (64 = one read per row;
        finer models per-field evaluation). ``passes``: scan passes over
        the table — extra passes model warm-cache re-execution (aggregation
        happens once, so the query answer is independent of ``passes``)."""
        if io not in ("read", "mmap"):
            raise ValueError(f"io must be 'read' or 'mmap', got {io!r}")
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.db = db
        self.nagents = nagents
        self.io = io
        self.rows_work = rows_work
        self.scan_stride = scan_stride
        self.passes = passes
        #: per-agent partial aggregates, merged by agent 0
        self.partials: List[Optional[Dict]] = [None] * nagents
        self.result: Optional[Dict] = None
        self.join_result: Optional[Dict] = None
        self.agents: List[SimProcess] = []

    # -- Q1-like scan-aggregate ------------------------------------------------

    def q1_agent(self, proc: Proc, index: int):
        """One scan partition: pages [lo, hi) of lineitem."""
        db = self.db
        info = db.catalog.tables["lineitem"]
        npages = info.npages
        lo = index * npages // self.nagents
        hi = (index + 1) * npages // self.nagents
        yield from db.agent_init(proc)
        agg: Dict = {}
        rpp = LINEITEM.records_per_page
        if self.io == "read":
            for pass_no in range(self.passes):
                for pg in range(lo, hi):
                    frame, page = yield from db.pool.get_page(
                        proc, db, "lineitem", pg, LINEITEM)
                    yield from db.pool.scan_page(
                        proc, frame, rpp, self.rows_work,
                        stride=self.scan_stride)
                    if pass_no == 0:
                        for i in range(rpp):
                            if pg * rpp + i < info.nrecords:
                                _agg_update(agg, page.record(i))
        else:
            fd = db.fd(proc.process.pid, "lineitem")
            r = yield from proc.call("mmap", fd, (hi - lo) * PAGE_SIZE, 1,
                                     lo * PAGE_SIZE)
            base = r.value
            assert r.ok, f"mmap failed errno {r.errno}"
            fs = self.db.engine.os_server.fs
            node = fs.lookup(info.path)
            for pass_no in range(self.passes):
                for pg in range(lo, hi):
                    addr = base + (pg - lo) * PAGE_SIZE
                    yield from proc.touch(addr, PAGE_SIZE,
                                          stride=self.scan_stride,
                                          work_per_line=self.rows_work)
                    if pass_no == 0:
                        page = Page(LINEITEM,
                                    bytes(node.data[pg * PAGE_SIZE:
                                                    (pg + 1) * PAGE_SIZE]))
                        for i in range(rpp):
                            if pg * rpp + i < info.nrecords:
                                _agg_update(agg, page.record(i))
            yield from proc.call("msync", base, (hi - lo) * PAGE_SIZE, 1)
            yield from proc.call("munmap", base)
        self.partials[index] = agg
        yield from proc.store(_AGG_BUF + 64 * index, 64)
        yield from proc.barrier(_SCAN_BARRIER, self.nagents)
        if index == 0:
            merged: Dict = {}
            for part in self.partials:
                for flag, (q, p, n) in (part or {}).items():
                    m = merged.setdefault(flag, [0, 0, 0])
                    m[0] += q
                    m[1] += p
                    m[2] += n
                proc.compute(500)
                yield from proc.load(_AGG_BUF)
            self.result = merged
        yield from db.agent_close(proc)
        yield from proc.exit(0)

    # -- Q3-lite hash join ----------------------------------------------------

    def q3_agent(self, proc: Proc, index: int, segment: int = 1):
        """Partitioned hash join: every agent builds the (small) customer
        hash table, then probes its partition of orders."""
        db = self.db
        cust = db.catalog.tables["customer_d"]
        orders = db.catalog.tables["orders_d"]
        yield from db.agent_init(proc)
        # build
        keys = set()
        for pg in range(cust.npages):
            frame, page = yield from db.pool.get_page(
                proc, db, "customer_d", pg, CUSTOMER_D)
            yield from db.pool.scan_page(proc, frame,
                                         CUSTOMER_D.records_per_page, 12)
            for i, rec in enumerate(page.records()):
                rid = pg * CUSTOMER_D.records_per_page + i
                if rid < cust.nrecords and rec["c_mktsegment"] == segment:
                    keys.add(rec["c_custkey"])
        # probe own partition
        lo = index * orders.npages // self.nagents
        hi = (index + 1) * orders.npages // self.nagents
        total = 0
        matched = 0
        for pg in range(lo, hi):
            frame, page = yield from db.pool.get_page(
                proc, db, "orders_d", pg, ORDERS_D)
            yield from db.pool.scan_page(proc, frame,
                                         ORDERS_D.records_per_page, 16)
            for i, rec in enumerate(page.records()):
                rid = pg * ORDERS_D.records_per_page + i
                if rid < orders.nrecords and rec["o_custkey"] in keys:
                    total += rec["o_totalprice"]
                    matched += 1
        self.partials[index] = {"total": total, "matched": matched}
        yield from proc.barrier(_SCAN_BARRIER + 1, self.nagents)
        if index == 0:
            t = sum((p or {}).get("total", 0) for p in self.partials)
            m = sum((p or {}).get("matched", 0) for p in self.partials)
            self.join_result = {"total": t, "matched": m}
        yield from db.agent_close(proc)
        yield from proc.exit(0)

    # -- spawning ------------------------------------------------------------

    def spawn_q1(self, engine: Engine) -> List[SimProcess]:
        self.partials = [None] * self.nagents
        self.agents = [
            engine.spawn(f"dss-q1-{i}", lambda p, i=i: self.q1_agent(p, i))
            for i in range(self.nagents)
        ]
        return self.agents

    def spawn_q3(self, engine: Engine, segment: int = 1) -> List[SimProcess]:
        self.partials = [None] * self.nagents
        self.agents = [
            engine.spawn(f"dss-q3-{i}",
                         lambda p, i=i: self.q3_agent(p, i, segment))
            for i in range(self.nagents)
        ]
        return self.agents


# ---------------------------------------------------------------------------
# native baselines (Table 2's raw execution)
# ---------------------------------------------------------------------------

def q1_scan_raw_fast(fs: FileSystem, catalog: Catalog) -> Dict:
    """Vectorised (numpy) native scan — the closest analog of the paper's
    uninstrumented native binary for the Table 2 raw baseline. Produces
    exactly the same aggregate as :func:`q1_scan_raw`."""
    import numpy as np

    info = catalog.tables["lineitem"]
    node = fs.lookup(info.path)
    if node is None:
        raise FileNotFoundError(info.path)
    rs = LINEITEM.record_size
    rpp = LINEITEM.records_per_page
    buf = np.frombuffer(bytes(node.data), dtype=np.uint8)
    pages = buf.reshape(info.npages, PAGE_SIZE)[:, :rpp * rs]
    rows = pages.reshape(info.npages * rpp, rs)[:info.nrecords]
    dt = np.dtype({
        "names": ["qty", "price", "flag"],
        "formats": ["<i8", "<i8", "u1"],
        "offsets": [16, 24, 48],
        "itemsize": rs,
    })
    recs = rows.reshape(-1).view(dt)
    agg: Dict = {}
    for flag in np.unique(recs["flag"]):
        m = recs["flag"] == flag
        agg[bytes([flag])] = [int(recs["qty"][m].sum()),
                              int(recs["price"][m].sum()),
                              int(m.sum())]
    return agg


def q1_scan_raw(fs: FileSystem, catalog: Catalog) -> Dict:
    """The same Q1 aggregate computed natively over the file bytes."""
    info = catalog.tables["lineitem"]
    node = fs.lookup(info.path)
    if node is None:
        raise FileNotFoundError(info.path)
    agg: Dict = {}
    rpp = LINEITEM.records_per_page
    for pg in range(info.npages):
        page = Page(LINEITEM, bytes(node.data[pg * PAGE_SIZE:(pg + 1) * PAGE_SIZE]))
        for i in range(rpp):
            if pg * rpp + i < info.nrecords:
                _agg_update(agg, page.record(i))
    return agg


def q3_join_raw(fs: FileSystem, catalog: Catalog, segment: int = 1) -> Dict:
    """The same Q3 join computed natively."""
    cust = catalog.tables["customer_d"]
    orders = catalog.tables["orders_d"]
    cnode = fs.lookup(cust.path)
    onode = fs.lookup(orders.path)
    keys = set()
    for pg in range(cust.npages):
        page = Page(CUSTOMER_D,
                    bytes(cnode.data[pg * PAGE_SIZE:(pg + 1) * PAGE_SIZE]))
        for i in range(CUSTOMER_D.records_per_page):
            rid = pg * CUSTOMER_D.records_per_page + i
            rec = page.record(i)
            if rid < cust.nrecords and rec["c_mktsegment"] == segment:
                keys.add(rec["c_custkey"])
    total = matched = 0
    for pg in range(orders.npages):
        page = Page(ORDERS_D,
                    bytes(onode.data[pg * PAGE_SIZE:(pg + 1) * PAGE_SIZE]))
        for i in range(ORDERS_D.records_per_page):
            rid = pg * ORDERS_D.records_per_page + i
            rec = page.record(i)
            if rid < orders.nrecords and rec["o_custkey"] in keys:
                total += rec["o_totalprice"]
                matched += 1
    return {"total": total, "matched": matched}
