"""MiniDb: database instance orchestration.

Owns the catalog, the shared buffer pool segment, the WAL and the per-agent
state (each agent process opens its own descriptors for every table file —
the process model the paper's §1 insists real databases use). All I/O flows
through the category-1 syscalls, so the OS time the paper's Table 1 profile
shows for TPC-C/TPC-D emerges from the same calls (kreadv/kwritev + mmap
family).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Optional, Tuple

from ...core.engine import Engine
from ...core.frontend import Proc
from .bufferpool import BufferPool, ROW_LOCK
from .catalog import Catalog, load_catalog
from .layout import PAGE_SIZE, Page, Record, Schema, rid_to_page
from .wal import WriteAheadLog

#: fixed attach address for the buffer-pool segment (inside the mmap region,
#: above the per-process allocator's reach for these workloads)
SHM_POOL_BASE = 0xB800_0000
#: shmget key of the pool segment
POOL_KEY = 0xDB


class MiniDb:
    """One database instance: catalog + pool + WAL + agent state."""

    def __init__(self, engine: Engine, catalog: Catalog,
                 pool_frames: int = 128, seed: int = 7) -> None:
        self.engine = engine
        self.catalog = catalog
        self.pool = BufferPool(SHM_POOL_BASE, pool_frames)
        self.wal = WriteAheadLog()
        self.seed = seed
        #: pid -> {table -> fd}
        self._fds: Dict[int, Dict[str, int]] = {}
        self._shmid = -1
        #: shared next-record-id per grow-able table
        self.next_rid: Dict[str, int] = {}
        self.loaded = False

    # -- host-side setup -------------------------------------------------------

    def setup(self) -> None:
        """Load tables into the simulated FS and create the pool segment
        (run before simulation, like restoring a database from a backup)."""
        fs = self.engine.os_server.fs
        load_catalog(fs, self.catalog, seed=self.seed)
        if not fs.exists(self.wal.path):
            fs.create(self.wal.path, b"", reserve=1 << 20)
        self._shmid = self.engine.memsys.vmm.shmget(POOL_KEY,
                                                    self.pool.shm_bytes)
        for name, info in self.catalog.tables.items():
            self.next_rid[name] = info.nrecords
        self.loaded = True

    # -- agent-side initialisation (simulated) ---------------------------------

    def agent_init(self, proc: Proc):
        """Run at the top of every agent process: attach the pool segment,
        open every table file and the log."""
        assert self.loaded, "call setup() first"
        pid = proc.process.pid
        r = yield from proc.call("shmat", self._shmid, SHM_POOL_BASE)
        if not r.ok:
            raise RuntimeError(f"shmat failed: errno {r.errno}")
        fds: Dict[str, int] = {}
        for name, info in self.catalog.tables.items():
            r = yield from proc.call("open", info.path, 2)
            if not r.ok:
                raise RuntimeError(f"open {info.path}: errno {r.errno}")
            fds[name] = r.value
        r = yield from proc.call("open", self.wal.path, 2)
        fds["__wal"] = r.value
        self._fds[pid] = fds
        return fds

    def fd(self, pid: int, table: str) -> int:
        return self._fds[pid][table]

    # -- page I/O callbacks used by the buffer pool -----------------------------

    def read_page_in(self, proc: Proc, table: str, pageno: int,
                     schema: Schema, frame_addr: int):
        """Miss path: kreadv the page into the shared frame."""
        fd = self.fd(proc.process.pid, table)
        yield from proc.call("lseek", fd, pageno * PAGE_SIZE, 0)
        # interruptible I/O: restarted on injected EINTR (chaos testing)
        r = yield from proc.call_retry("kreadv", fd, frame_addr, PAGE_SIZE)
        return Page(schema, r.data or b"")

    def write_page_out(self, proc: Proc, table: str, pageno: int,
                       frame_addr: int, page: Optional[Page]):
        """Writeback path: kwritev the frame to the table file."""
        fd = self.fd(proc.process.pid, table)
        yield from proc.call("lseek", fd, pageno * PAGE_SIZE, 0)
        data = bytes(page.data) if page is not None else b"\0" * PAGE_SIZE
        yield from proc.call_retry("kwritev", fd, frame_addr, PAGE_SIZE, data)

    # -- record-level operations -------------------------------------------

    def schema(self, table: str) -> Schema:
        return self.catalog.tables[table].schema

    def row_lock_id(self, table: str, rid: int) -> int:
        # crc32, not hash(): lock ids must not depend on the interpreter's
        # per-process string-hash salt (checkpoints resume in new processes)
        return ROW_LOCK + (zlib.crc32(f"{table}:{rid}".encode()) & 0xFFFF)

    def get_record(self, proc: Proc, table: str, rid: int,
                   for_write: bool = False):
        """Fetch record ``rid``; returns (values, page, slot)."""
        schema = self.schema(table)
        pageno, slot = rid_to_page(schema, rid)
        frame, page = yield from self.pool.get_page(
            proc, self, table, pageno, schema, for_write=for_write)
        # reference the record's bytes in the shared frame
        addr = self.pool.frame_addr(frame) + slot * schema.record_size
        if for_write:
            yield from proc.store(addr, min(schema.record_size, 64))
        else:
            yield from proc.load(addr, min(schema.record_size, 64))
        proc.compute(40)   # decode + predicate
        return page.record(slot), page, slot

    def put_record(self, proc: Proc, table: str, rid: int, values: Dict):
        """Update record ``rid`` in place (page marked dirty)."""
        schema = self.schema(table)
        pageno, slot = rid_to_page(schema, rid)
        frame, page = yield from self.pool.get_page(
            proc, self, table, pageno, schema, for_write=True)
        addr = self.pool.frame_addr(frame) + slot * schema.record_size
        yield from proc.store(addr, min(schema.record_size, 64))
        proc.compute(60)
        page.put_record(slot, values)

    def insert_record(self, proc: Proc, table: str, values: Dict):
        """Append a record; returns its rid. The shared next-rid counter is
        guarded by a (hashed) row lock on the table heap end."""
        lid = self.row_lock_id(table, -1)
        yield from proc.lock(lid)
        rid = self.next_rid[table]
        self.next_rid[table] = rid + 1
        yield from proc.unlock(lid)
        yield from self.put_record(proc, table, rid, values)
        return rid

    # -- teardown helpers -----------------------------------------------------

    def agent_close(self, proc: Proc):
        """Close descriptors and detach the pool."""
        pid = proc.process.pid
        fds = self._fds.pop(pid, {})
        for fd in fds.values():
            yield from proc.call("close", fd)
        yield from proc.call("shmdt", SHM_POOL_BASE)
