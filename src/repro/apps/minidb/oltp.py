"""TPC-C-like OLTP workload (the paper's TPCC/DB2, Table 1 row 3).

NewOrder and Payment transactions against the warehouse schema: random point
reads and updates through the shared buffer pool, row locks, WAL commit with
fsync. The access pattern is uniform-random over customers/stock, so the
pool misses at a steady rate and the disk sees random I/O — the
interrupt-handler-heavy profile of the paper's 400 MB TPCC run.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional

from ...core.engine import Engine
from ...core.frontend import Proc, SimProcess
from .db import MiniDb


class TpccDriver:
    """Spawns agent processes running a NewOrder/Payment mix."""

    #: private working area for user-mode SQL processing per agent
    _WORK_BUF = 0x0800_0000

    def __init__(self, db: MiniDb, nagents: int = 4,
                 tx_per_agent: int = 20, seed: int = 11,
                 think_cycles: int = 20_000,
                 neworder_fraction: float = 0.5,
                 user_work: int = 520_000) -> None:
        """``user_work``: user-mode cycles per transaction (SQL parsing,
        plan execution, predicate evaluation) — what makes real DB2 spend
        ~80 % of its CPU in user space (paper Table 1)."""
        if not (0.0 <= neworder_fraction <= 1.0):
            raise ValueError("neworder_fraction must be in [0,1]")
        self.db = db
        self.nagents = nagents
        self.tx_per_agent = tx_per_agent
        self.seed = seed
        self.think_cycles = think_cycles
        self.neworder_fraction = neworder_fraction
        self.user_work = user_work
        self.committed = 0
        self.neworders = 0
        self.payments = 0
        self.agents: List[SimProcess] = []

    # -- transactions -------------------------------------------------------

    def _neworder(self, proc: Proc, rng: random.Random):
        db = self.db
        cat = db.catalog.tables
        w = rng.randrange(cat["warehouse"].nrecords)
        d = rng.randrange(cat["district"].nrecords)
        c = rng.randrange(cat["customer"].nrecords)
        n_items = 5 + rng.randrange(11)

        # district: read + bump next_o_id (hot row — real TPC-C contention)
        yield from proc.lock(db.row_lock_id("district", d))
        drec, dpage, dslot = yield from db.get_record(proc, "district", d,
                                                      for_write=True)
        drec["d_next_o_id"] = drec["d_next_o_id"] + 1
        dpage.put_record(dslot, drec)
        yield from proc.unlock(db.row_lock_id("district", d))

        yield from db.get_record(proc, "customer", c)
        total = 0
        for _ in range(n_items):
            i = rng.randrange(cat["item"].nrecords)
            s = rng.randrange(cat["stock"].nrecords)
            irec, _p, _s = yield from db.get_record(proc, "item", i)
            yield from proc.lock(db.row_lock_id("stock", s))
            srec, spage, sslot = yield from db.get_record(
                proc, "stock", s, for_write=True)
            srec["s_quantity"] = max(10, srec["s_quantity"] - 1 + 91) \
                if srec["s_quantity"] <= 1 else srec["s_quantity"] - 1
            srec["s_ytd"] += 1
            srec["s_order_cnt"] += 1
            spage.put_record(sslot, srec)
            yield from proc.unlock(db.row_lock_id("stock", s))
            total += irec["i_price"]
            proc.compute(200)   # pricing arithmetic

        oid = yield from db.insert_record(proc, "orders", {
            "o_id": 0, "o_d_id": d, "o_w_id": w, "o_c_id": c,
            "o_ol_cnt": n_items, "o_entry_d": 0})
        for ln in range(n_items):
            yield from db.insert_record(proc, "order_line", {
                "ol_o_id": oid, "ol_d_id": d, "ol_w_id": w,
                "ol_number": ln, "ol_i_id": 0, "ol_quantity": 1,
                "ol_amount": total // max(1, n_items)})
        # commit: WAL force
        fd = self.db.fd(proc.process.pid, "__wal")
        yield from db.wal.append_and_commit(proc, fd, nrecords=2 + n_items)
        self.neworders += 1

    def _payment(self, proc: Proc, rng: random.Random):
        db = self.db
        cat = db.catalog.tables
        w = rng.randrange(cat["warehouse"].nrecords)
        d = rng.randrange(cat["district"].nrecords)
        c = rng.randrange(cat["customer"].nrecords)
        amount = 1 + rng.randrange(5000)

        yield from proc.lock(db.row_lock_id("warehouse", w))
        wrec, wpage, wslot = yield from db.get_record(proc, "warehouse", w,
                                                      for_write=True)
        wrec["w_ytd"] += amount
        wpage.put_record(wslot, wrec)
        yield from proc.unlock(db.row_lock_id("warehouse", w))

        yield from proc.lock(db.row_lock_id("district", d))
        drec, dpage, dslot = yield from db.get_record(proc, "district", d,
                                                      for_write=True)
        drec["d_ytd"] += amount
        dpage.put_record(dslot, drec)
        yield from proc.unlock(db.row_lock_id("district", d))

        yield from proc.lock(db.row_lock_id("customer", c))
        crec, cpage, cslot = yield from db.get_record(proc, "customer", c,
                                                      for_write=True)
        crec["c_balance"] -= amount
        crec["c_ytd_payment"] += amount
        crec["c_payment_cnt"] += 1
        cpage.put_record(cslot, crec)
        yield from proc.unlock(db.row_lock_id("customer", c))

        fd = self.db.fd(proc.process.pid, "__wal")
        yield from db.wal.append_and_commit(proc, fd, nrecords=3)
        self.payments += 1

    # -- agents -------------------------------------------------------------

    def agent_body(self, proc: Proc, agent_index: int):
        """One DB2-style agent: initialise, run the transaction mix, exit."""
        rng = random.Random(
            zlib.crc32(f"{self.seed}:{agent_index}".encode()))
        yield from self.db.agent_init(proc)
        for _tx in range(self.tx_per_agent):
            # user-mode SQL work: parse/optimize (plan cache walk), then
            # row processing over the agent's private sort/work heap
            if self.user_work:
                yield from proc.touch(self._WORK_BUF, 4096,
                                      work_per_line=self.user_work // 256)
                yield from proc.touch(self._WORK_BUF + 8192, 2048,
                                      write=True,
                                      work_per_line=self.user_work // 512)
            if rng.random() < self.neworder_fraction:
                yield from self._neworder(proc, rng)
            else:
                yield from self._payment(proc, rng)
            self.committed += 1
            if self.think_cycles:
                yield from proc.call(
                    "nanosleep", rng.randrange(1, self.think_cycles))
        yield from self.db.agent_close(proc)
        yield from proc.exit(0)

    def spawn_agents(self, engine: Engine) -> List[SimProcess]:
        """Create the agent processes (call after ``db.setup()``)."""
        self.agents = [
            engine.spawn(f"db2agent-{i}",
                         lambda p, i=i: self.agent_body(p, i))
            for i in range(self.nagents)
        ]
        return self.agents

    # -- native baseline (Table 2's "raw" execution) -------------------------

    def run_raw(self) -> int:
        """Execute the same transaction mix natively (no simulation): pure
        functional work on the loaded table bytes. Returns committed count."""
        import copy
        fs = self.db.engine.os_server.fs
        cat = self.db.catalog.tables
        tables = {}
        for name, info in cat.items():
            node = fs.lookup(info.path)
            tables[name] = bytearray(node.data) if node else bytearray()
        committed = 0
        for a in range(self.nagents):
            rng = random.Random(zlib.crc32(f"{self.seed}:{a}".encode()))
            for _ in range(self.tx_per_agent):
                rng.random()
                w = rng.randrange(cat["warehouse"].nrecords)
                d = rng.randrange(cat["district"].nrecords)
                c = rng.randrange(cat["customer"].nrecords)
                for _i in range(8):
                    rng.randrange(cat["item"].nrecords)
                    rng.randrange(cat["stock"].nrecords)
                committed += 1
        return committed
