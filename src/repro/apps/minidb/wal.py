"""Write-ahead log.

Commits append a log record with kwritev under the log lock and force it
with fsync — the kwritev + disk-interrupt signature of the paper's TPC-C
profile. Group commit is approximated by the buffer cache: closely spaced
commits often coalesce into the same dirty block, and fsync of a clean log
is free.
"""

from __future__ import annotations

from ...core.frontend import Proc
from .bufferpool import LOG_LOCK

#: staging buffer for log records in each agent's address space
_LOG_BUF = 0x0600_0000


class WriteAheadLog:
    """One log file shared by all agents (functional append state here;
    each agent supplies its own fd)."""

    def __init__(self, path: str = "/db/wal.log",
                 record_bytes: int = 512) -> None:
        self.path = path
        self.record_bytes = record_bytes
        self.appended = 0
        self.commits = 0

    def append_and_commit(self, proc: Proc, log_fd: int, nrecords: int = 1,
                          sync: bool = True):
        """Append ``nrecords`` log records and (optionally) force the log."""
        nbytes = nrecords * self.record_bytes
        yield from proc.lock(LOG_LOCK)
        # append at the shared end-of-log
        r = yield from proc.call("lseek", log_fd, 0, 2)
        r = yield from proc.call("kwritev", log_fd, _LOG_BUF, nbytes,
                                 b"L" * nbytes)
        self.appended += nrecords
        if sync:
            yield from proc.call("fsync", log_fd)
            self.commits += 1
        yield from proc.unlock(LOG_LOCK)
        return r.value
