"""On-disk record and page layout.

Fixed-width records packed into 4 KiB pages (a simplified DB2 page: no slot
indirection — record *i* of a page sits at ``i * record_size``). Fields are
integers (8-byte little-endian) or fixed-size byte strings, so encoding and
decoding is cheap and fully deterministic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

PAGE_SIZE = 4096

FieldValue = Union[int, bytes]


@dataclass(frozen=True)
class Schema:
    """A table schema: ordered (name, width) pairs; width 0 means an
    8-byte integer, otherwise a fixed byte string of that many bytes."""

    name: str
    fields: Tuple[Tuple[str, int], ...]

    @property
    def record_size(self) -> int:
        return sum(8 if w == 0 else w for _n, w in self.fields)

    @property
    def records_per_page(self) -> int:
        return PAGE_SIZE // self.record_size

    def field_names(self) -> List[str]:
        return [n for n, _w in self.fields]


class Record:
    """Encode/decode one record of a schema."""

    @staticmethod
    def encode(schema: Schema, values: Dict[str, FieldValue]) -> bytes:
        out = bytearray()
        for name, width in schema.fields:
            v = values.get(name, 0 if width == 0 else b"")
            if width == 0:
                out += struct.pack("<q", int(v))
            else:
                b = bytes(v)[:width]
                out += b.ljust(width, b"\0")
        return bytes(out)

    @staticmethod
    def decode(schema: Schema, data: bytes) -> Dict[str, FieldValue]:
        vals: Dict[str, FieldValue] = {}
        off = 0
        for name, width in schema.fields:
            if width == 0:
                vals[name] = struct.unpack_from("<q", data, off)[0]
                off += 8
            else:
                vals[name] = bytes(data[off:off + width])
                off += width
        return vals


class Page:
    """A page image: a bytearray of PAGE_SIZE with record accessors."""

    __slots__ = ("schema", "data")

    def __init__(self, schema: Schema, data: bytes = b"") -> None:
        self.schema = schema
        self.data = bytearray(data.ljust(PAGE_SIZE, b"\0")[:PAGE_SIZE])

    def record(self, i: int) -> Dict[str, FieldValue]:
        rs = self.schema.record_size
        if i < 0 or i >= self.schema.records_per_page:
            raise IndexError(f"record {i} out of page range")
        return Record.decode(self.schema, self.data[i * rs:(i + 1) * rs])

    def put_record(self, i: int, values: Dict[str, FieldValue]) -> None:
        rs = self.schema.record_size
        if i < 0 or i >= self.schema.records_per_page:
            raise IndexError(f"record {i} out of page range")
        self.data[i * rs:(i + 1) * rs] = Record.encode(self.schema, values)

    def records(self) -> List[Dict[str, FieldValue]]:
        return [self.record(i) for i in range(self.schema.records_per_page)]


def rid_to_page(schema: Schema, rid: int) -> Tuple[int, int]:
    """Map a record id to (page number, slot within page)."""
    rpp = schema.records_per_page
    return rid // rpp, rid % rpp


def table_pages(schema: Schema, nrecords: int) -> int:
    """Pages needed for ``nrecords`` records."""
    rpp = schema.records_per_page
    return (nrecords + rpp - 1) // rpp
