"""Shared-memory buffer pool.

The pool's frames live in a shared-memory segment (shmget/shmat, §3.3.1):
every agent process attaches the same segment, so page reads populate frames
that all agents' caches then contend over — the defining memory behaviour of
a process-model database. Functional page images are kept host-side (the
frontends' native memory in COMPASS terms); the simulated addresses carry
the timing.

Concurrency: one pool lock protects the mapping; per-frame latches serialise
page access. Misses read through kreadv into the frame's shared address
(the syscall's copyout traffic lands in the pool — for free, because
addresses are real); dirty victims are written back with kwritev.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.frontend import Proc
from .layout import PAGE_SIZE, Page, Schema

#: lock-id bases (application lock namespace, below the kernel's)
POOL_LOCK = 500_000
FRAME_LATCH = 510_000
ROW_LOCK = 600_000
LOG_LOCK = 520_000


class BufferPool:
    """One pool shared by all agents of a database instance."""

    def __init__(self, shm_base: int, nframes: int) -> None:
        if nframes <= 0:
            raise ValueError("nframes must be positive")
        self.base = shm_base
        self.nframes = nframes
        #: (table, pageno) -> frame index
        self.map: Dict[Tuple[str, int], int] = {}
        #: frame -> key (reverse map); None = free
        self.frame_key: List[Optional[Tuple[str, int]]] = [None] * nframes
        #: functional page images per frame
        self.frame_page: List[Optional[Page]] = [None] * nframes
        self.dirty: List[bool] = [False] * nframes
        self._lru: List[int] = []            # frame indices, MRU first
        self._free = list(range(nframes - 1, -1, -1))
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def shm_bytes(self) -> int:
        return self.nframes * PAGE_SIZE

    def frame_addr(self, frame: int) -> int:
        """Simulated address of a frame in the shared segment."""
        return self.base + frame * PAGE_SIZE

    # -- internal (functional) ------------------------------------------------

    def _touch_lru(self, frame: int) -> None:
        if self._lru and self._lru[0] == frame:
            return
        try:
            self._lru.remove(frame)
        except ValueError:
            pass
        self._lru.insert(0, frame)

    def _pick_victim(self) -> int:
        if self._free:
            return self._free.pop()
        return self._lru.pop()

    # -- simulated operations (generators; run inside agent processes) --------

    def get_page(self, proc: Proc, db, table: str, pageno: int,
                 schema: Schema, for_write: bool = False):
        """Pin (table, pageno); returns ``(frame, Page)``.

        ``db`` supplies per-process file descriptors and the I/O calls.
        The caller must hold no pool lock; the frame latch discipline is:
        pool lock → (miss I/O) → release.
        """
        key = (table, pageno)
        yield from proc.lock(POOL_LOCK)
        frame = self.map.get(key)
        if frame is not None:
            self.hits += 1
            self._touch_lru(frame)
            # pool metadata + frame header touch
            yield from proc.load(self.frame_addr(frame))
            if for_write:
                self.dirty[frame] = True
                yield from proc.store(self.frame_addr(frame))
            yield from proc.unlock(POOL_LOCK)
            return frame, self.frame_page[frame]

        self.misses += 1
        frame = self._pick_victim()
        old = self.frame_key[frame]
        if old is not None:
            del self.map[old]
            if self.dirty[frame]:
                self.writebacks += 1
                yield from db.write_page_out(proc, old[0], old[1],
                                             self.frame_addr(frame),
                                             self.frame_page[frame])
                self.dirty[frame] = False
        # read the page through the kernel into the shared frame
        page = yield from db.read_page_in(proc, table, pageno, schema,
                                          self.frame_addr(frame))
        self.map[key] = frame
        self.frame_key[frame] = key
        self.frame_page[frame] = page
        self.dirty[frame] = bool(for_write)
        self._touch_lru(frame)
        yield from proc.unlock(POOL_LOCK)
        return frame, page

    def scan_page(self, proc: Proc, frame: int, rows: int,
                  work_per_row: int = 20, stride: int = 64):
        """Reference a pinned frame's rows (predicate evaluation): one read
        per ``stride`` bytes plus per-row compute. The default reads once
        per 64-byte row; a finer stride models per-field evaluation."""
        nbytes = min(PAGE_SIZE, max(rows, 1) * 64)
        lat = yield from proc.touch(self.frame_addr(frame), nbytes,
                                    write=False, stride=stride,
                                    work_per_line=work_per_row)
        return lat

    def flush_all(self, proc: Proc, db):
        """Checkpoint: write back every dirty frame."""
        yield from proc.lock(POOL_LOCK)
        flushed = 0
        for frame in range(self.nframes):
            if self.dirty[frame] and self.frame_key[frame] is not None:
                t, pg = self.frame_key[frame]
                yield from db.write_page_out(proc, t, pg,
                                             self.frame_addr(frame),
                                             self.frame_page[frame])
                self.dirty[frame] = False
                flushed += 1
        yield from proc.unlock(POOL_LOCK)
        return flushed

    def hit_rate(self) -> float:
        t = self.hits + self.misses
        return self.hits / t if t else 0.0
