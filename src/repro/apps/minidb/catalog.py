"""Table catalogs and data generation for the TPC-C-like and TPC-D-like
workloads (scaled down from the paper's 400 MB / 100 MB databases so a pure-
Python simulation finishes; the access *patterns* — random point access with
updates vs sequential scan — are preserved)."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List

from ...osim.filesystem import FileSystem
from .layout import PAGE_SIZE, Record, Schema, table_pages


# ---------------------------------------------------------------------------
# TPC-C-like schema (OLTP)
# ---------------------------------------------------------------------------

WAREHOUSE = Schema("warehouse", (
    ("w_id", 0), ("w_ytd", 0), ("w_tax", 0), ("w_name", 16), ("w_pad", 32)))
DISTRICT = Schema("district", (
    ("d_id", 0), ("d_w_id", 0), ("d_ytd", 0), ("d_tax", 0),
    ("d_next_o_id", 0), ("d_name", 16), ("d_pad", 24)))
CUSTOMER = Schema("customer", (
    ("c_id", 0), ("c_d_id", 0), ("c_w_id", 0), ("c_balance", 0),
    ("c_ytd_payment", 0), ("c_payment_cnt", 0), ("c_name", 24),
    ("c_pad", 48)))
ITEM = Schema("item", (
    ("i_id", 0), ("i_price", 0), ("i_name", 24), ("i_pad", 16)))
STOCK = Schema("stock", (
    ("s_i_id", 0), ("s_w_id", 0), ("s_quantity", 0), ("s_ytd", 0),
    ("s_order_cnt", 0), ("s_pad", 24)))
ORDERS = Schema("orders", (
    ("o_id", 0), ("o_d_id", 0), ("o_w_id", 0), ("o_c_id", 0),
    ("o_ol_cnt", 0), ("o_entry_d", 0)))
ORDER_LINE = Schema("order_line", (
    ("ol_o_id", 0), ("ol_d_id", 0), ("ol_w_id", 0), ("ol_number", 0),
    ("ol_i_id", 0), ("ol_quantity", 0), ("ol_amount", 0)))

# ---------------------------------------------------------------------------
# TPC-D-like schema (decision support)
# ---------------------------------------------------------------------------

LINEITEM = Schema("lineitem", (
    ("l_orderkey", 0), ("l_partkey", 0), ("l_quantity", 0),
    ("l_extendedprice", 0), ("l_discount", 0), ("l_tax", 0),
    ("l_returnflag", 1), ("l_linestatus", 1), ("l_shipdate", 0),
    ("l_pad", 14)))
CUSTOMER_D = Schema("customer_d", (
    ("c_custkey", 0), ("c_mktsegment", 0), ("c_name", 24), ("c_pad", 8)))
ORDERS_D = Schema("orders_d", (
    ("o_orderkey", 0), ("o_custkey", 0), ("o_orderdate", 0),
    ("o_totalprice", 0), ("o_shippriority", 0)))


@dataclass
class TableInfo:
    """One table in a catalog: schema, cardinality, file path."""

    schema: Schema
    nrecords: int
    path: str

    @property
    def npages(self) -> int:
        return table_pages(self.schema, self.nrecords)

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE


@dataclass
class Catalog:
    """A workload's set of tables."""

    name: str
    tables: Dict[str, TableInfo] = field(default_factory=dict)

    def add(self, schema: Schema, nrecords: int, root: str) -> TableInfo:
        t = TableInfo(schema, nrecords, f"{root}/{schema.name}.tbl")
        self.tables[schema.name] = t
        return t

    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.tables.values())


def tpcc_catalog(warehouses: int = 1, scale: float = 0.02,
                 root: str = "/db/tpcc") -> Catalog:
    """TPC-C-like catalog. ``scale`` shrinks the per-warehouse cardinalities
    (1.0 would be the full 30k customers / 100k stock rows per warehouse)."""
    c = Catalog("tpcc")
    w = warehouses
    cust = max(30, int(30_000 * scale))
    stock = max(100, int(100_000 * scale))
    items = max(100, int(100_000 * scale))
    c.add(WAREHOUSE, w, root)
    c.add(DISTRICT, 10 * w, root)
    c.add(CUSTOMER, cust * w, root)
    c.add(ITEM, items, root)
    c.add(STOCK, stock * w, root)
    # orders / order_line grow at run time: reserve space
    c.add(ORDERS, max(64, cust * w), root)
    c.add(ORDER_LINE, max(640, 10 * cust * w), root)
    return c


def tpcd_catalog(scale: float = 0.001, root: str = "/db/tpcd") -> Catalog:
    """TPC-D-like catalog. ``scale`` is the fraction of SF=1 cardinalities
    (SF=1 lineitem is 6 M rows; the paper's Table 2 run used a 12 MB DB)."""
    c = Catalog("tpcd")
    li = max(200, int(6_000_000 * scale))
    orders = max(50, int(1_500_000 * scale))
    cust = max(15, int(150_000 * scale))
    c.add(LINEITEM, li, root)
    c.add(ORDERS_D, orders, root)
    c.add(CUSTOMER_D, cust, root)
    return c


# ---------------------------------------------------------------------------
# loaders (host-side: populate the simulated file system before simulating)
# ---------------------------------------------------------------------------

def _gen_record(schema: Schema, rid: int, rng: random.Random) -> Dict:
    """Deterministic contents per (schema, rid)."""
    v: Dict = {}
    for name, width in schema.fields:
        if width == 0:
            if name.endswith("_id") or name.endswith("key"):
                v[name] = rid
            elif name == "l_quantity":
                v[name] = 1 + rng.randrange(50)
            elif name == "l_extendedprice":
                v[name] = 100 + rng.randrange(100_000)
            elif name == "l_discount":
                v[name] = rng.randrange(11)
            elif name == "l_shipdate":
                v[name] = rng.randrange(2_500)
            elif name == "o_orderdate":
                v[name] = rng.randrange(2_500)
            elif name == "c_mktsegment":
                v[name] = rng.randrange(5)
            elif name == "o_custkey":
                v[name] = rng.randrange(10**6)
            elif name == "s_quantity":
                v[name] = 10 + rng.randrange(91)
            elif name == "i_price":
                v[name] = 1 + rng.randrange(10_000)
            elif name == "d_next_o_id":
                v[name] = 1
            else:
                v[name] = rng.randrange(1_000)
        elif width == 1:
            v[name] = bytes([65 + rng.randrange(3)])   # A/B/C flags
        else:
            v[name] = (name.encode() * 8)[:width]
    return v


def load_table(fs: FileSystem, info: TableInfo, seed: int = 7,
               custkey_range: int = 0) -> None:
    """Generate and write one table's pages into the simulated FS."""
    # crc32 keeps the stream stable across processes (str.__hash__ is
    # randomized per interpreter, which made generated data non-reproducible)
    rng = random.Random(zlib.crc32(f"{seed}:{info.schema.name}".encode()))
    rpp = info.schema.records_per_page
    rs = info.schema.record_size
    out = bytearray(info.npages * PAGE_SIZE)
    for rid in range(info.nrecords):
        vals = _gen_record(info.schema, rid, rng)
        if custkey_range and "o_custkey" in vals:
            vals["o_custkey"] = rng.randrange(custkey_range)
        page, slot = rid // rpp, rid % rpp
        off = page * PAGE_SIZE + slot * rs
        out[off:off + rs] = Record.encode(info.schema, vals)
    if fs.exists(info.path):
        fs.unlink(info.path)
    fs.create(info.path, bytes(out), reserve=len(out) * 2)


def load_catalog(fs: FileSystem, catalog: Catalog, seed: int = 7) -> None:
    """Load every table of a catalog."""
    cust = catalog.tables.get("customer_d")
    ckr = cust.nrecords if cust else 0
    for info in catalog.tables.values():
        load_table(fs, info, seed=seed, custkey_range=ckr)
