"""The trace player (paper §4.2).

"We solve this problem by generating an intermediate HTTP request trace file
[...] We then implement a trace player that reads the trace file and feeds
the requests to a web server."

The player is a traffic source outside the simulated machine: it injects
connection/request frames into the NIC and paces itself on *response
completion* (bytes received per connection reaching the expected
content length), never timing out no matter how slow the simulated server
is. ``nclients`` concurrent request streams model the SPECWeb client
processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.engine import Engine
from ...traces.http import HttpRequest
from .fileset import FileSet
from .server import HEADER_BYTES, QUIT_PATH


class TracePlayer:
    """Replays an HTTP trace into the simulated server."""

    def __init__(self, engine: Engine, trace: List[HttpRequest],
                 fileset: Optional[FileSet], nclients: int = 4,
                 port: int = 80, nworkers_to_quit: int = 0) -> None:
        if nclients <= 0:
            raise ValueError("nclients must be positive")
        self.engine = engine
        self.net = engine.os_server.net
        self.trace = trace
        self.sizes = fileset.sizes if fileset is not None else {}
        self.nclients = nclients
        self.port = port
        self.nworkers_to_quit = nworkers_to_quit
        self._next_conn = 1
        self._cursor = 0
        #: conn_id -> (expected_bytes, received_bytes, stream, path)
        self._open: Dict[int, list] = {}
        self.completed = 0
        self.response_cycles: List[int] = []
        self._start_cycle: Dict[int, int] = {}
        self._quits_sent = 0
        self._started = False
        self.net.on_server_send = self._on_server_send

    # -- driving -----------------------------------------------------------

    def start(self) -> None:
        """Arm the first requests (call before ``engine.run()``)."""
        if self._started:
            return
        self._started = True
        for _ in range(self.nclients):
            self._issue_next(immediate=True)

    def _expected_bytes(self, path: str) -> int:
        if path == QUIT_PATH:
            return HEADER_BYTES + 3
        size = self.sizes.get(path)
        if size is None:
            return HEADER_BYTES + 13       # 404 body
        return HEADER_BYTES + size

    def _issue_next(self, immediate: bool = False) -> None:
        gs = self.engine.gsched
        if self._cursor >= len(self.trace):
            # only shut workers down once every in-flight response is home —
            # a /quit must not steal a worker that pending requests need
            if not self._open:
                self._maybe_quit_workers()
            return
        req = self.trace[self._cursor]
        self._cursor += 1
        delay = 1 if immediate else max(1, req.think_cycles)
        gs.schedule_after(delay, self._fire, req)

    def _fire(self, req: HttpRequest) -> None:
        gs = self.engine.gsched
        conn_id = self._next_conn
        self._next_conn += 1
        self._open[conn_id] = [self._expected_bytes(req.path), 0, req.path]
        self._start_cycle[conn_id] = gs.now
        self.net.client_connect(conn_id, self.port, gs.now)
        # request data follows the SYN after a small wire gap
        gs.schedule_after(200, self._send_request, conn_id, req)

    def _send_request(self, conn_id: int, req: HttpRequest) -> None:
        self.net.client_send(conn_id, req.request_bytes(),
                             self.engine.gsched.now)

    # -- response pacing -------------------------------------------------------

    def _on_server_send(self, conn_id: int, nbytes: int,
                        _payload: object) -> None:
        state = self._open.get(conn_id)
        if state is None:
            return
        state[1] += nbytes
        if state[1] >= state[0]:
            # response complete: close, record, move on
            del self._open[conn_id]
            now = self.engine.gsched.now
            started = self._start_cycle.pop(conn_id)
            if state[2] != QUIT_PATH:   # shutdown requests aren't workload
                self.response_cycles.append(now - started)
                self.completed += 1
            self.net.client_close(conn_id, now)
            self._issue_next()

    def _maybe_quit_workers(self) -> None:
        """End of trace: one /quit request per worker so none is left
        blocked in naccept."""
        while self._quits_sent < self.nworkers_to_quit:
            self._quits_sent += 1
            self.engine.gsched.schedule_after(
                1000 * self._quits_sent, self._fire,
                HttpRequest(0, QUIT_PATH))

    # -- results -----------------------------------------------------------

    def mean_response_cycles(self) -> float:
        r = self.response_cycles
        return sum(r) / len(r) if r else 0.0
