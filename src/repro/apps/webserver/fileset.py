"""SPECWeb96-style file set and workload generation.

SPECWeb96's file set has four file classes — roughly 0.1–0.9 KB, 1–9 KB,
10–90 KB and 100–900 KB — hit with weights 35 %, 50 %, 14 % and 1 %, nine
files per class per directory. We reproduce that structure (scaled by
``ndirs`` and an optional ``size_scale`` so simulations stay tractable) and
generate the weighted random request stream the workload generator would
send.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...osim.filesystem import FileSystem
from ...traces.http import HttpRequest

#: SPECWeb96 class access weights
CLASS_WEIGHTS = (0.35, 0.50, 0.14, 0.01)
#: base size (bytes) of class c file i (i in 1..9): i * CLASS_BASE[c]
CLASS_BASE = (102, 1024, 10240, 102400)
FILES_PER_CLASS = 9


@dataclass
class FileSet:
    """Generated file set: path -> size, plus class membership."""

    root: str
    ndirs: int
    size_scale: float
    paths: List[str] = field(default_factory=list)
    sizes: Dict[str, int] = field(default_factory=dict)
    by_class: List[List[str]] = field(default_factory=lambda: [[] for _ in range(4)])

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes.values())


def _content(path: str, size: int) -> bytes:
    """Deterministic file content derived from the path."""
    seed = path.encode()
    reps = size // len(seed) + 1
    return (seed * reps)[:size]


def generate_fileset(fs: FileSystem, ndirs: int = 2, root: str = "/htdocs",
                     size_scale: float = 1.0) -> FileSet:
    """Populate the simulated file system (the SPECWeb file set generator
    run on the server before the test, §4.2)."""
    if ndirs <= 0:
        raise ValueError("ndirs must be positive")
    out = FileSet(root=root, ndirs=ndirs, size_scale=size_scale)
    for d in range(ndirs):
        for cls in range(4):
            for i in range(1, FILES_PER_CLASS + 1):
                size = max(64, int(i * CLASS_BASE[cls] * size_scale))
                path = f"{root}/dir{d}/class{cls}_{i}"
                fs.create(path, _content(path, size))
                out.paths.append(path)
                out.sizes[path] = size
                out.by_class[cls].append(path)
    return out


def make_trace(fileset: FileSet, nrequests: int, seed: int = 1,
               think_mean_cycles: int = 200_000) -> List[HttpRequest]:
    """The workload-generator side of SPECWeb96: a weighted random request
    stream with exponential think times, recorded as a trace (§4.2)."""
    rng = random.Random(seed)
    reqs: List[HttpRequest] = []
    classes = list(range(4))
    for _ in range(nrequests):
        cls = rng.choices(classes, weights=CLASS_WEIGHTS)[0]
        path = rng.choice(fileset.by_class[cls])
        think = int(rng.expovariate(1.0 / max(1, think_mean_cycles)))
        reqs.append(HttpRequest(think, path))
    return reqs
