"""Apache-like pre-fork web server.

The parent sets up the listening socket; worker processes inherit it (the
pre-fork model: all workers block in ``naccept`` on the same socket) and
serve one connection at a time: read the request, open the file, loop
kreadv-from-file / kwritev-to-socket, close. This call mix — naccept,
kreadv, kwritev, open, close, send over TCP — is exactly the Table 1
SPECWeb kernel profile.

A ``GET /quit`` request makes a worker exit after replying; the trace player
sends one per worker at end of trace so nobody is left blocked in accept.
"""

from __future__ import annotations

from typing import List, Optional

from ...core.engine import Engine
from ...core.frontend import Proc, SimProcess
from ...osim.server import FdEntry

#: fixed HTTP response header size (padded "HTTP/1.0 200 OK ..." block)
HEADER_BYTES = 64
#: user-space buffers in each worker's address space
_REQ_BUF = 0x0200_0000
_FILE_BUF = 0x0300_0000
#: per-read chunk (Apache uses 8 KB buffers)
CHUNK = 8192

QUIT_PATH = "/quit"
#: user-mode cycles per request: URI parsing, config walk, response build,
#: access-log formatting (Apache's ~15 % user share in the paper's profile)
USER_WORK_PER_REQUEST = 9_000
#: user-mode cycles per KiB of file data handled (buffer management)
USER_WORK_PER_KB = 600


def _parse_request(data: bytes) -> Optional[str]:
    """Extract the path of a ``GET <path> HTTP/1.0`` request."""
    try:
        line = data.split(b"\r\n", 1)[0].decode()
        method, path, _ = line.split(" ", 2)
        if method != "GET":
            return None
        return path
    except (ValueError, UnicodeDecodeError):
        return None


def worker_body(proc: Proc, listen_fd: int, stats: dict):
    """One pre-fork worker: accept → serve → repeat until /quit."""
    while True:
        r = yield from proc.call("naccept", listen_fd)
        if not r.ok:
            break
        cfd = r.value
        # interruptible I/O: restarted on injected EINTR (chaos testing)
        r = yield from proc.call_retry("kreadv", cfd, _REQ_BUF, 4096)
        path = _parse_request(r.data or b"")
        quit_after = path == QUIT_PATH
        # user-mode request processing: parse, map URI, check config
        yield from proc.touch(_REQ_BUF, 256, work_per_line=40)
        proc.compute(USER_WORK_PER_REQUEST // 2)

        if path is None or quit_after:
            body = b"bye" if quit_after else b"bad request"
            hdr = _response_header(len(body))
            yield from proc.call("kwritev", cfd, _FILE_BUF,
                                 HEADER_BYTES + len(body), hdr + body)
            yield from proc.call("close", cfd)
            stats["served"] = stats.get("served", 0) + 1
            if quit_after:
                break
            continue

        r = yield from proc.call("open", path, 0)
        if not r.ok:
            body = b"404 not found"
            hdr = _response_header(len(body))
            yield from proc.call("kwritev", cfd, _FILE_BUF,
                                 HEADER_BYTES + len(body), hdr + body)
            yield from proc.call("close", cfd)
            stats["errors"] = stats.get("errors", 0) + 1
            continue
        ffd = r.value
        st = yield from proc.call("statx", path)
        size = st.data["size"] if st.ok else 0

        # header first, then the file in CHUNK pieces
        hdr = _response_header(size)
        yield from proc.call_retry("kwritev", cfd, _FILE_BUF, HEADER_BYTES,
                                   hdr)
        sent = 0
        while sent < size:
            r = yield from proc.call_retry("kreadv", ffd, _FILE_BUF, CHUNK)
            if r.value <= 0:
                break
            yield from proc.call_retry("kwritev", cfd, _FILE_BUF, r.value,
                                       r.data)
            sent += r.value
        yield from proc.call("close", ffd)
        yield from proc.call("close", cfd)
        # user-mode response accounting + access-log line formatting
        proc.compute(USER_WORK_PER_REQUEST // 2
                     + (sent >> 10) * USER_WORK_PER_KB)
        yield from proc.store(_REQ_BUF + 512, 64)
        stats["served"] = stats.get("served", 0) + 1
        stats["bytes"] = stats.get("bytes", 0) + sent
    yield from proc.exit(0)


def _response_header(content_length: int) -> bytes:
    hdr = (f"HTTP/1.0 200 OK\r\nContent-Length: {content_length}\r\n"
           f"Server: compass-httpd\r\n\r\n").encode()
    return hdr.ljust(HEADER_BYTES, b" ")[:HEADER_BYTES]


def prefork_web_server(engine: Engine, nworkers: int = 4,
                       port: int = 80) -> tuple:
    """Create the listening socket and spawn ``nworkers`` worker processes
    inheriting it (pre-fork). Returns ``(workers, stats_dict)``."""
    if nworkers <= 0:
        raise ValueError("nworkers must be positive")
    net = engine.os_server.net
    stats: dict = {}
    # parent's socket/bind/listen, then fork: children inherit the fd
    lsid = net.socket(0)
    err = net.bind(lsid, port)
    if err:
        raise RuntimeError(f"bind failed: errno {err}")
    net.listen(lsid)
    workers: List[SimProcess] = []
    for i in range(nworkers):
        def body(proc, _lsid=lsid):
            lfd = engine.os_server.fd_alloc(
                proc.process.pid, FdEntry("socket", sid=_lsid))
            net.addref(_lsid)
            return (yield from worker_body(proc, lfd, stats))
        workers.append(engine.spawn(f"httpd-w{i}", body))
    # the parent's own reference is dropped: workers now own the listener
    net.close(lsid)
    return workers, stats
