"""Pre-fork web server + SPECWeb96-style driver (paper §4.2).

Pieces: :mod:`fileset` generates the class-structured test files into the
simulated file system; :mod:`server` is the Apache-like pre-fork worker; the
:mod:`client` trace player replays an HTTP request trace into the simulated
TCP/IP stack, paced by response completions (the paper's solution to SPECWeb
timing out against a slow simulated server).
"""

from .fileset import FileSet, generate_fileset, make_trace
from .server import prefork_web_server, worker_body, HEADER_BYTES
from .client import TracePlayer

__all__ = [
    "FileSet",
    "generate_fileset",
    "make_trace",
    "prefork_web_server",
    "worker_body",
    "HEADER_BYTES",
    "TracePlayer",
]
