"""Virtual instruction set used by the instrumentation path.

COMPASS instruments PowerPC assembly: inserted code accumulates per-basic-
block timing (100 % I-cache hit assumption) and fills out an event record per
memory reference. We cannot assemble PowerPC here, so this package provides
the closest synthetic equivalent: a small RISC-style virtual ISA
(:mod:`repro.isa.instructions`) with a static per-instruction timing table
(:mod:`repro.isa.timing`), a program/basic-block representation
(:mod:`repro.isa.program`), a textual assembler (:mod:`repro.isa.assembler`)
and an interpreter that executes programs as event-generating frontends
(:mod:`repro.isa.interpreter`).
"""

from .instructions import Op, Instr
from .program import BasicBlock, Program
from .assembler import assemble
from .timing import cost_of, block_cost
from .interpreter import Interpreter, Machine
from .translate import (TranslatedProgram, TranslationError, cache_stats,
                        translate)

__all__ = [
    "Op",
    "Instr",
    "BasicBlock",
    "Program",
    "assemble",
    "cost_of",
    "block_cost",
    "Interpreter",
    "Machine",
    "TranslatedProgram",
    "TranslationError",
    "cache_stats",
    "translate",
]
