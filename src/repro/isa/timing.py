"""Static instruction-timing model.

The paper's instrumentation computes each basic block's execution time from
"the estimated execution time of each instruction based on the specifications
of the microprocessor instruction set, assuming 100% instruction cache hits"
(§2). This module provides that table for the virtual ISA, with latencies
modeled on the PowerPC 604 (the 133 MHz part in Table 2): single-cycle simple
integer ops, a 4-cycle multiplier, ~20-cycle divide, 3-cycle pipelined FPU,
18-cycle FP divide. Memory instructions cost their 1-cycle issue here; the
cache/memory latency is added dynamically by the backend.
"""

from __future__ import annotations

from typing import Dict, Iterable

from .instructions import Instr, Op

#: cycles per opcode (PowerPC-604-flavoured)
COSTS: Dict[int, int] = {
    Op.ADD: 1, Op.SUB: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1,
    Op.SHL: 1, Op.SHR: 1, Op.ADDI: 1, Op.ANDI: 1, Op.LI: 1,
    Op.MOV: 1, Op.CMP: 1,
    Op.MUL: 4, Op.MULI: 4, Op.DIV: 20, Op.MOD: 20,
    Op.FADD: 3, Op.FSUB: 3, Op.FMUL: 3, Op.FMA: 3, Op.FDIV: 18,
    Op.LOAD: 1, Op.STORE: 1, Op.LOADX: 1, Op.STOREX: 1,
    Op.LWARX: 2, Op.STWCX: 2,
    Op.B: 1, Op.BEQ: 1, Op.BNE: 1, Op.BLT: 1, Op.BGE: 1,
    Op.BNZ: 1, Op.BZ: 1, Op.BL: 2, Op.RET: 2,
    Op.LOCK: 0, Op.UNLOCK: 0, Op.BARRIER: 0,   # cost comes from the event
    Op.SYSCALL: 10,   # trap entry overhead; service time is simulated
    Op.HALT: 0, Op.NOP: 1, Op.SIMON: 0, Op.SIMOFF: 0,
}


def cost_of(instr: Instr) -> int:
    """Static cycle cost of one instruction."""
    return COSTS[instr.op]


def block_cost(instrs: Iterable[Instr]) -> int:
    """Static cycle cost of a basic block (the value the instrumentor folds
    into the inserted timing-update code)."""
    return sum(COSTS[i.op] for i in instrs)
