"""Instruction definitions for the virtual ISA.

A deliberately small RISC instruction set, enough to express the SPLASH-style
kernels and synthetic OS service routines that exercise the simulator. Each
instruction is a compact tuple-like object; operands are register indices,
immediates, or label names (resolved by the assembler).

Register model: 32 general-purpose registers ``r0``–``r31`` holding Python
numbers (so integer and floating point share the file; the *timing* table
distinguishes integer and FP opcodes, which is all the backend cares about).
``r0`` is writable (unlike real PowerPC) to keep programs simple.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Optional, Tuple


class Op(IntEnum):
    """Opcodes. Grouped by functional unit for the timing table."""

    # integer ALU
    ADD = 0        # rd, ra, rb
    SUB = 1
    MUL = 2
    DIV = 3
    AND = 4
    OR = 5
    XOR = 6
    SHL = 7
    SHR = 8
    ADDI = 9       # rd, ra, imm
    MULI = 10
    ANDI = 11
    LI = 12        # rd, imm
    MOV = 13       # rd, ra
    CMP = 14       # rd, ra, rb  (rd = -1/0/1)
    MOD = 15       # rd, ra, rb

    # floating point
    FADD = 20
    FSUB = 21
    FMUL = 22
    FDIV = 23
    FMA = 24       # rd, ra, rb (rd += ra*rb)

    # memory (addresses are byte virtual addresses: [ra + imm])
    LOAD = 30      # rd, ra, imm, size
    STORE = 31     # rs, ra, imm, size
    LOADX = 32     # rd, ra, rb  (indexed: [ra + rb]), size in d
    STOREX = 33    # rs, ra, rb, size
    LWARX = 34     # rd, ra     (load-reserve, atomic path)
    STWCX = 35     # rs, ra     (store-conditional)

    # control flow (targets are block labels)
    B = 40         # label
    BEQ = 41       # ra, rb, label
    BNE = 42
    BLT = 43
    BGE = 44
    BNZ = 45       # ra, label  (branch if ra != 0)
    BZ = 46        # ra, label
    BL = 47        # label      (call)
    RET = 48

    # synchronisation pseudo-instructions (become events)
    LOCK = 50      # ra = lock id
    UNLOCK = 51
    BARRIER = 52   # ra = barrier id, rb = participant count

    # system
    SYSCALL = 60   # name, nargs popped from r3..r(3+n-1); result in r3
    HALT = 61
    NOP = 62
    SIMON = 63     # instrumentation ON  (the paper's Simulation switch)
    SIMOFF = 64    # instrumentation OFF


#: Opcodes that reference simulated data memory.
MEM_OPS = frozenset({Op.LOAD, Op.STORE, Op.LOADX, Op.STOREX, Op.LWARX, Op.STWCX})

#: Opcodes that terminate a basic block.
BLOCK_ENDERS = frozenset({
    Op.B, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BNZ, Op.BZ, Op.BL, Op.RET,
    Op.HALT, Op.SYSCALL,
})


class Instr:
    """One decoded instruction: opcode plus up to four operands.

    Operand meaning depends on the opcode (see :class:`Op` comments).
    ``label`` holds an unresolved branch target name until the assembler
    resolves it to a block index stored in ``a`` (or ``c`` for compare
    branches).
    """

    __slots__ = ("op", "a", "b", "c", "d", "label")

    def __init__(self, op: Op, a: Any = 0, b: Any = 0, c: Any = 0,
                 d: Any = 0, label: Optional[str] = None) -> None:
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.label = label

    def is_mem(self) -> bool:
        """True when this instruction references data memory."""
        return self.op in MEM_OPS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = [x for x in (self.a, self.b, self.c, self.d) if x != 0] or [0]
        lbl = f" ->{self.label}" if self.label else ""
        return f"{Op(self.op).name} {ops}{lbl}"
