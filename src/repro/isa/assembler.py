"""A tiny textual assembler for the virtual ISA.

Keeps test kernels and example programs readable::

    assemble('''
        li   r1, 0          ; i = 0
        li   r2, 1024       ; n
    loop:
        loadx r3, r10, r1, 4
        addi r3, r3, 1
        storex r3, r10, r1, 4
        addi r1, r1, 4
        blt  r1, r2, loop
        halt
    ''')

Rules: one instruction per line; ``name:`` starts a new basic block;
``;``/``#`` begin comments; registers are ``rN``; everything else numeric is
an immediate (0x hex accepted); branch targets are label names. Blocks are
also split *after* any control-transfer instruction (auto-labeled), so basic
blocks are genuine basic blocks.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..core.errors import InstrumentationError
from .instructions import BLOCK_ENDERS, Instr, Op
from .program import BasicBlock, Program

_REG = re.compile(r"^r(\d+)$")

#: ops whose final textual operand is a label
_LABEL_OPS = {
    "b": Op.B, "bl": Op.BL,
    "beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
    "bnz": Op.BNZ, "bz": Op.BZ,
}

_PLAIN_OPS = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "and": Op.AND, "or": Op.OR, "xor": Op.XOR, "shl": Op.SHL,
    "shr": Op.SHR, "addi": Op.ADDI, "muli": Op.MULI, "andi": Op.ANDI,
    "li": Op.LI, "mov": Op.MOV, "cmp": Op.CMP, "mod": Op.MOD,
    "fadd": Op.FADD, "fsub": Op.FSUB, "fmul": Op.FMUL, "fdiv": Op.FDIV,
    "fma": Op.FMA,
    "load": Op.LOAD, "store": Op.STORE, "loadx": Op.LOADX,
    "storex": Op.STOREX, "lwarx": Op.LWARX, "stwcx": Op.STWCX,
    "lock": Op.LOCK, "unlock": Op.UNLOCK, "barrier": Op.BARRIER,
    "ret": Op.RET, "halt": Op.HALT, "nop": Op.NOP,
    "simon": Op.SIMON, "simoff": Op.SIMOFF,
}


def _operand(tok: str) -> object:
    """Parse one operand token: register index or immediate."""
    m = _REG.match(tok)
    if m:
        idx = int(m.group(1))
        if idx >= 32:
            raise InstrumentationError(f"register out of range: {tok}")
        return idx
    try:
        return int(tok, 0)
    except ValueError:
        raise InstrumentationError(f"bad operand {tok!r}") from None


def assemble(text: str, name: str = "a.out") -> Program:
    """Assemble ``text`` into a resolved :class:`Program`."""
    prog = Program(name)
    current: Optional[BasicBlock] = None
    auto = 0

    def fresh_block(label: Optional[str] = None) -> BasicBlock:
        nonlocal auto, current
        if label is None:
            label = f".L{auto}"
            auto += 1
        current = BasicBlock(label)
        prog.add_block(current)
        return current

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        # labels (allow `label: instr` on one line)
        while True:
            m = re.match(r"^([A-Za-z_.][\w.]*):\s*(.*)$", line)
            if not m:
                break
            fresh_block(m.group(1))
            line = m.group(2).strip()
        if not line:
            continue

        parts = line.replace(",", " ").split()
        mnem = parts[0].lower()
        toks = parts[1:]

        try:
            if mnem in _LABEL_OPS:
                op = _LABEL_OPS[mnem]
                label = toks[-1]
                regs = [_operand(t) for t in toks[:-1]]
                ins = Instr(op, *regs, label=label)
            elif mnem == "syscall":
                # syscall name [, nargs]
                sname = toks[0]
                nargs = int(toks[1], 0) if len(toks) > 1 else 0
                ins = Instr(Op.SYSCALL, sname, nargs)
            elif mnem in _PLAIN_OPS:
                ops = [_operand(t) for t in toks]
                ins = Instr(_PLAIN_OPS[mnem], *ops)
            else:
                raise InstrumentationError(f"unknown mnemonic {mnem!r}")
        except InstrumentationError:
            raise
        except Exception as exc:
            raise InstrumentationError(
                f"{name}:{lineno}: cannot assemble {raw.strip()!r}: {exc}"
            ) from exc

        if current is None:
            fresh_block("__start" if not prog.blocks else None)
        current.append(ins)
        if ins.op in BLOCK_ENDERS:
            current = None   # next instruction opens a fresh block

    if not prog.blocks:
        raise InstrumentationError(f"empty program {name!r}")
    return prog.resolve()
